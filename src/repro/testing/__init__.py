"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness behind the resilience test suite (``REPRO_FAULTS``); it is
imported by production modules but inert unless the environment
variable points at a fault schedule.
"""

from .faults import FaultSpec, InjectedFault, install_faults, maybe_fault

__all__ = ["FaultSpec", "InjectedFault", "install_faults", "maybe_fault"]
