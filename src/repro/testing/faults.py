"""Deterministic fault injection for the resilience test suite.

The sweep engine, both persistent caches, and the replay engine call
:func:`maybe_fault` at well-known *sites*.  When the ``REPRO_FAULTS``
environment variable names a JSON schedule, a matching
:class:`FaultSpec` fires there — crashing the process, hanging,
raising, or corrupting the file just written — which lets the tests in
``tests/test_resilience.py`` prove every recovery path end-to-end
(checkpoint/resume, retry with backoff, dead-worker replacement, cache
quarantine) without non-deterministic kill timing.

Sites wired into the production code:

===========================  =====================================================
site                         fired
===========================  =====================================================
``worker.point``             before simulating/pricing one design point
                             (``index`` = the point's global sweep index)
``simcache.write``           inside the simcache writer, before the atomic rename
``simcache.store``           after a simcache entry landed (``path`` usable by
                             ``corrupt``/``truncate`` kinds)
``tracecache.write``         inside the trace spill writer, before the rename
``tracecache.spill``         after a trace spill landed on disk
``replay.point``             on entry to single-trace replay
``report.write``             inside the gem5-stats dump, before the rename
``baseline.write``           inside the analysis-baseline writer, before the rename
``export.write``             inside the CSV exporter, before the rename
``jobs.record``              before appending a line to a job's event log
``jobs.lease``               before writing a job lease (fresh acquisition or
                             adoption; ``key`` = job id, ``path`` = lease file)
``jobs.adopt``               after an adopting lease write, before the read-back
                             verify — the adoption-race window
``jobs.heartbeat``           before a lease renewal write
``jobs.cancel``              before writing a durable cancel marker
``journal.seal``             between writing a sealed results record and
                             unlinking the journal it compacts — the
                             recoverable-pair window (``repro jobs gc``
                             finishes the protocol)
===========================  =====================================================

Fault kinds: ``raise`` (raises :class:`InjectedFault`),
``keyboard-interrupt``, ``crash`` (``os._exit(137)`` — a hard worker
death), ``hang`` (sleeps ``seconds``), ``corrupt`` (flips bytes in the
middle of ``path``), ``truncate`` (cuts ``path`` in half).

Every spec carries a ``times`` budget.  Fires are accounted with
``O_CREAT|O_EXCL`` marker files next to the schedule, so the budget is
shared between the parent and all pool workers and a spec never fires
more than ``times`` times across processes — exactly what a
"crash twice, then succeed" retry test needs.

Everything is a no-op (one dict lookup) when ``REPRO_FAULTS`` is unset,
so production paths pay nothing.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.knobs import get_str

__all__ = [
    "FAULTS_ENV",
    "FaultSpec",
    "InjectedFault",
    "install_faults",
    "maybe_fault",
]

FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("raise", "keyboard-interrupt", "crash", "hang", "corrupt", "truncate")


class InjectedFault(RuntimeError):
    """Raised by a ``raise``-kind fault; never raised by real code."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``site`` must match the call site exactly; ``index`` (when given)
    must equal the site's point index, and ``match`` (when given) must
    be a substring of the site's ``key`` or ``path``.  ``times`` caps
    how often the spec fires across all processes sharing the schedule.
    """

    site: str
    kind: str
    index: Optional[int] = None
    match: Optional[str] = None
    times: int = 1
    seconds: float = 30.0
    fault_id: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def ident(self) -> str:
        return self.fault_id or f"{self.site}--{self.kind}--{self.index}"

    def matches(self, site: str, index: Optional[int], text: str) -> bool:
        if site != self.site:
            return False
        if self.index is not None and index != self.index:
            return False
        return not (self.match is not None and self.match not in text)


def install_faults(path: str, specs: Sequence[FaultSpec]) -> str:
    """Write *specs* as a schedule file; returns the ``REPRO_FAULTS`` value.

    Test helper: ``monkeypatch.setenv(FAULTS_ENV, install_faults(...))``.
    """
    doc = [
        {
            "site": s.site,
            "kind": s.kind,
            "index": s.index,
            "match": s.match,
            "times": s.times,
            "seconds": s.seconds,
            "fault_id": s.ident(),
        }
        for s in specs
    ]
    with Path(path).open("w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
    return path


#: Schedule cache: path -> (mtime_ns, specs).  Reloaded when the file
#: changes so a test can rewrite the schedule mid-run.
_loaded: Dict[str, Tuple[int, List[FaultSpec]]] = {}


def _schedule(path: str) -> List[FaultSpec]:
    try:
        mtime = Path(path).stat().st_mtime_ns
    except OSError:
        return []
    cached = _loaded.get(path)
    if cached is not None and cached[0] == mtime:
        return cached[1]
    try:
        with Path(path).open(encoding="utf-8") as fh:
            doc = json.load(fh)
        specs = [FaultSpec(**entry) for entry in doc]
    except (OSError, ValueError, TypeError):
        specs = []
    _loaded[path] = (mtime, specs)
    return specs


def _claim_fire(path: str, spec: FaultSpec) -> bool:
    """Atomically claim one of the spec's ``times`` fire slots.

    Marker files live next to the schedule so every process (parent and
    pool workers) shares the budget.
    """
    base = path + "." + spec.ident().replace("/", "_")
    for i in range(spec.times):
        try:
            fd = os.open(f"{base}.fired.{i}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            continue  # slot already claimed
        os.close(fd)
        return True
    return False


def _mangle(target: str, kind: str) -> None:
    """Corrupt or truncate *target* in place (deterministically)."""
    try:
        size = Path(target).stat().st_size
    except OSError:
        return
    if size == 0:
        return
    if kind == "truncate":
        with Path(target).open("r+b") as fh:
            fh.truncate(max(1, size // 2))
        return
    with Path(target).open("r+b") as fh:  # corrupt: flip a run of midfile bytes
        fh.seek(size // 2)
        chunk = fh.read(16) or b"\0"
        fh.seek(size // 2)
        fh.write(bytes(b ^ 0xFF for b in chunk))


def maybe_fault(
    site: str,
    index: Optional[int] = None,
    key: Optional[str] = None,
    path: Optional[str] = None,
) -> None:
    """Fire the first scheduled fault matching this call site, if any.

    No-op unless ``REPRO_FAULTS`` names a readable schedule.  ``crash``
    kills the process immediately; ``raise``/``keyboard-interrupt``
    raise; ``hang`` sleeps; ``corrupt``/``truncate`` mangle *path*.
    """
    schedule_path = get_str(FAULTS_ENV)
    if not schedule_path:
        return
    text = " ".join(filter(None, (key, path)))
    for spec in _schedule(schedule_path):
        if not spec.matches(site, index, text):
            continue
        if not _claim_fire(schedule_path, spec):
            continue
        if spec.kind == "crash":
            os._exit(137)
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return
        if spec.kind == "raise":
            raise InjectedFault(f"injected fault at {site} (index={index})")
        if spec.kind == "keyboard-interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {site}")
        if spec.kind in ("corrupt", "truncate") and path is not None:
            with suppress(OSError):
                _mangle(path, spec.kind)
            return
        return
