"""repro: reproduction of "Accelerating CNN inference on long vector
architectures via co-design" (Gupta, Papadopoulou, Pericàs — IPDPS 2023).

Subpackages
-----------
``repro.isa``
    VLA ISA models (RISC-V Vector, ARM SVE) and functional intrinsics.
``repro.machine``
    Trace-driven vector-microarchitecture timing simulator (the gem5
    substitute): caches, prefetchers, TLB, VPU, Table I presets.
``repro.kernels``
    The convolutional-layer kernels: im2col, naive / 3-loop / 6-loop
    GEMM, elementwise kernels, Winograd F(6x6,3x3) with inter-tile
    channel parallelism.
``repro.nets``
    Darknet-like framework with YOLOv3 / YOLOv3-tiny / VGG16.
``repro.core``
    Co-design sweeps, roofline analysis, algorithm selection, reporting.
``repro.service``
    Durable sweep jobs: crash-safe job store, supervising scheduler,
    journal sealing and garbage collection (docs/SERVICE.md).
``repro.workloads``
    Synthetic images and the paper's layer-shape tables.

Quickstart
----------
>>> from repro.machine import rvv_gem5
>>> from repro.nets import yolov3, KernelPolicy
>>> net = yolov3()
>>> stats = net.simulate(rvv_gem5(vlen_bits=4096), KernelPolicy(gemm="3loop"),
...                      n_layers=4)
>>> stats.cycles > 0
True
"""

__version__ = "1.0.0"

from . import core, isa, kernels, machine, nets, service, workloads  # noqa: F401

__all__ = [
    "core", "isa", "kernels", "machine", "nets", "service", "workloads",
    "__version__",
]
