"""Supervising scheduler: run durable jobs to completion, survive death.

This module turns a JSON-serializable *sweep spec* (the dict stored in
the job record — network name, machine family, axis, values, kernel
policy) into a supervised run of :func:`repro.core.codesign.sweep` with
``resume=True``:

* **Lease ownership.**  :func:`submit_and_run` registers the job (or
  attaches to an existing record — the job id is content-derived, so
  identical grids collide by construction), takes the job lease, and
  renews it from the sweep's heartbeat hook — per settled point in
  serial mode, per supervisor tick in parallel mode — so a scheduler
  that stops heartbeating for a lease TTL (or whose pid dies on this
  host) is declared dead and its job adopted by the next submitter.

* **Checkpointing.**  Progress goes through the PR-5 sweep journal:
  every completed point is fsync'd before the next starts, so a
  SIGKILL at *any* moment loses at most the in-flight point, and the
  adopter resumes with bitwise-identical statistics.

* **Dedup.**  A second submission of the same grid while the first is
  running does not simulate: with ``wait=False`` it reports the live
  state and returns; with ``wait=True`` it polls until the owner
  finishes (or dies — then adopts).  A finished grid answers from the
  sealed record with zero simulations.

* **Sealing.**  On success the journal is compacted into a verified
  sealed record (:func:`repro.core.resilience.seal_journal`).  Sealing
  is best-effort: if it fails (or the process dies mid-compaction) the
  journal remains authoritative and ``repro jobs gc`` finishes the
  write → verify → unlink protocol later.

* **Cancellation.**  The heartbeat also observes the durable cancel
  marker; a running owner raises :class:`JobCancelled`, records the
  terminal state, and leaves the journal for a later resubmission.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.codesign import SweepResult, sweep
from ..core.resilience import RetryPolicy, seal_journal, sweep_key
from . import jobs as jobstore

__all__ = [
    "JobCancelled",
    "JobOutcome",
    "Heartbeat",
    "resolve_spec",
    "spec_from_args",
    "spec_key",
    "submit_and_run",
]

#: Poll period while waiting on another owner's live job.
_WAIT_POLL_S = 0.05


class JobCancelled(RuntimeError):
    """Raised inside a job run when its durable cancel marker appears."""


@dataclass
class JobOutcome:
    """What :func:`submit_and_run` did for one submission."""

    job_id: str
    state: str
    attached: bool = False  # an identical job already existed
    adopted: bool = False  # we took over an orphaned lease
    sealed: bool = False  # answered from / compacted into a sealed record
    result: Optional[SweepResult] = None
    error: str = ""
    spec: Dict = field(default_factory=dict)


def spec_from_args(args) -> Dict:
    """Canonical job spec from parsed ``repro submit`` CLI arguments."""
    return {
        "net": args.net,
        "machine": args.machine,
        "vlen": int(args.vlen),
        "lanes": int(args.lanes),
        "l2_mb": int(args.l2_mb),
        "gemm": args.gemm,
        "winograd": args.winograd,
        "layers": args.layers,
        "axis": args.axis,
        "values": list(args.values) if args.values else None,
    }


def resolve_spec(spec: Dict) -> Tuple[object, object, str, List, Callable]:
    """Rebuild ``(net, policy, axis_name, values, factory)`` from a spec.

    Mirrors the CLI's axis resolution exactly (same default grids, same
    SVE vector-length clamp) so a job submitted from the command line
    and one resubmitted from its stored record land on the same sweep
    key — that identity is what makes job ids durable.
    """
    from ..machine import rvv_gem5, sve_gem5
    from ..nets import KernelPolicy, vgg16, yolov3, yolov3_tiny

    nets = {"yolov3": yolov3, "yolov3-tiny": yolov3_tiny, "vgg16": vgg16}
    net_name = spec.get("net", "yolov3")
    if net_name not in nets:
        raise ValueError(f"unknown network {net_name!r} in job spec")
    net = nets[net_name]()
    policy = KernelPolicy(
        gemm=spec.get("gemm", "3loop"), winograd=spec.get("winograd", "off")
    )
    machine = spec.get("machine", "rvv")
    vlen = int(spec.get("vlen", 512))
    lanes = int(spec.get("lanes", 8))
    l2_mb = int(spec.get("l2_mb", 1))
    axis = spec.get("axis", "vlen")
    values = spec.get("values")

    if axis == "vlen":
        values = list(values or [512, 1024, 2048, 4096, 8192, 16384])
        if machine == "sve":
            values = [v for v in values if v <= 2048]
            factory = lambda v: sve_gem5(vlen_bits=v, l2_mb=l2_mb)  # noqa: E731
        else:
            factory = lambda v: rvv_gem5(  # noqa: E731
                vlen_bits=v, lanes=lanes, l2_mb=l2_mb
            )
        return net, policy, "vlen_bits", values, factory
    if axis == "cache":
        values = list(values or [1, 8, 64, 256])
        if machine == "sve":
            factory = lambda mb: sve_gem5(  # noqa: E731
                vlen_bits=min(vlen, 2048), l2_mb=mb
            )
        else:
            factory = lambda mb: rvv_gem5(  # noqa: E731
                vlen_bits=vlen, lanes=lanes, l2_mb=mb
            )
        return net, policy, "l2_mb", values, factory
    if axis == "lanes":
        values = list(values or [2, 4, 8])
        factory = lambda l: rvv_gem5(  # noqa: E731
            vlen_bits=vlen, lanes=l, l2_mb=l2_mb
        )
        return net, policy, "lanes", values, factory
    raise ValueError(f"unknown sweep axis {axis!r} in job spec")


def spec_key(spec: Dict) -> Tuple[str, int]:
    """Content id of a spec: ``(sweep_key, n_points)``."""
    net, policy, axis_name, values, factory = resolve_spec(spec)
    machines = [factory(v) for v in values]
    key = sweep_key(net, axis_name, values, machines, policy, spec.get("layers"))
    return key, len(values)


class Heartbeat:
    """Lease renewal + cancel observation, throttled to the knob period.

    Called from the sweep as each point settles (serial) and on every
    supervisor tick (parallel).  The cancel check runs on *every* call
    — it is one ``Path.exists`` — while the lease write is rate-limited
    to ``REPRO_HEARTBEAT`` seconds.
    """

    def __init__(self, lease: jobstore.Lease):
        self.lease = lease
        self.period = jobstore.heartbeat_period()
        self._last = float("-inf")

    def __call__(self) -> None:
        if jobstore.cancel_requested(self.lease.job_id):
            raise JobCancelled(f"job {self.lease.job_id} cancelled")
        now = time.monotonic()
        if now - self._last >= self.period:
            self.lease.renew()
            self._last = now


def _run_owned(
    lease: jobstore.Lease,
    spec: Dict,
    skey: str,
    n_points: int,
    jobs: Optional[int],
    retry: Optional[RetryPolicy],
    max_failures: Optional[int],
) -> Tuple[str, Optional[SweepResult], bool, str]:
    """Run the sweep under a held lease; returns
    ``(state, result, sealed, error)`` with the lease released and the
    terminal state recorded."""
    job_id = lease.job_id
    sealed = False
    try:
        net, policy, axis_name, values, factory = resolve_spec(spec)
        jobstore.record_state(job_id, "running", owner=lease.token)
        result = sweep(
            net, axis_name, values, factory, policy, spec.get("layers"),
            jobs=jobs, resume=True, retry=retry, max_failures=max_failures,
            heartbeat=Heartbeat(lease),
        )
        if result.ok and "failed" not in result.sources:
            # Compaction is best-effort: a failure here leaves the
            # journal authoritative, and gc finishes the seal later.
            try:
                sealed = seal_journal(
                    skey, n_points,
                    meta={"job_id": job_id, "net": spec.get("net", "")},
                ) is not None
            except Exception:
                sealed = False
            jobstore.record_state(job_id, "done", owner=lease.token)
            return "done", result, sealed, ""
        jobstore.record_state(
            job_id, "failed", owner=lease.token,
            error="; ".join(
                f"pt{f.index}: {f.exc_type}: {f.error}" for f in result.failures()
            ),
        )
        return "failed", result, False, "sweep has failed points"
    except JobCancelled:
        jobstore.record_state(job_id, "cancelled", owner=lease.token)
        jobstore.clear_cancel(job_id)
        return "cancelled", None, False, "cancelled by request"
    except Exception as exc:  # noqa: BLE001 - terminal state must be durable
        jobstore.record_state(
            job_id, "failed", owner=lease.token,
            error=f"{type(exc).__name__}: {exc}",
        )
        return "failed", None, False, f"{type(exc).__name__}: {exc}"
    finally:
        lease.release()


def submit_and_run(
    spec: Dict,
    wait: bool = True,
    jobs: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    max_failures: Optional[int] = None,
    wait_timeout_s: Optional[float] = None,
) -> JobOutcome:
    """Submit *spec* as a durable job and (by default) drive it to a
    terminal state.

    The full dedup/adoption decision tree, in order:

    1. register or attach to the job record (content-derived id);
    2. a verified **sealed record** answers immediately — zero
       simulations, ``sealed=True``;
    3. a **live lease** means someone else is running it: attach
       (``wait=False`` returns the live state; ``wait=True`` polls for
       their result, adopting if their lease goes stale);
    4. the ``REPRO_MAX_JOBS`` gate leaves the job ``queued`` when the
       store already has that many live leases (``wait=True`` polls
       for a slot);
    5. otherwise take the lease (adopting any stale one) and run the
       sweep with journal checkpointing, heartbeats, and sealing.
    """
    skey, n_points = spec_key(spec)
    record, created = jobstore.submit(skey, n_points, spec)
    job_id = record.job_id
    outcome = JobOutcome(job_id=job_id, state=record.state,
                         attached=not created, spec=dict(spec))

    deadline = (
        time.monotonic() + wait_timeout_s if wait_timeout_s is not None else None
    )
    while True:
        # Sealed answer first: even a brand-new record for a previously
        # sealed grid (e.g. after a record wipe) responds warm.
        warm = _sealed_result(spec, skey, n_points)
        if warm is not None:
            if record is not None and record.state != "done":
                jobstore.record_state(job_id, "done", note="sealed record")
            outcome.state, outcome.result, outcome.sealed = "done", warm, True
            return outcome

        state, _doc = jobstore.lease_state(job_id)
        if state == "live":
            record = jobstore.load(job_id)
            outcome.state = record.state if record else "running"
            outcome.attached = True
            if not wait:
                return outcome
            if _expired(deadline):
                outcome.error = "timed out waiting for the live owner"
                return outcome
            time.sleep(_WAIT_POLL_S)
            continue

        cap = jobstore.max_jobs()
        if cap > 0 and jobstore.live_lease_count(exclude=job_id) >= cap:
            outcome.state = "queued"
            if not wait:
                return outcome
            if _expired(deadline):
                outcome.error = "timed out waiting for a job slot"
                return outcome
            time.sleep(_WAIT_POLL_S)
            continue

        lease = jobstore.acquire(job_id)
        if lease is None:
            continue  # lost an acquisition race; re-evaluate
        outcome.adopted = lease.adopted
        outcome.state, outcome.result, outcome.sealed, outcome.error = _run_owned(
            lease, spec, skey, n_points, jobs, retry, max_failures
        )
        return outcome


def _sealed_result(spec: Dict, skey: str, n_points: int) -> Optional[SweepResult]:
    """The grid's sealed answer, if a verified record exists."""
    from ..core.resilience import load_sealed

    if load_sealed(skey, n_points) is None:
        return None
    net, policy, axis_name, values, factory = resolve_spec(spec)
    # sweep(resume=True) takes the sealed warm path: zero simulations.
    return sweep(
        net, axis_name, values, factory, policy, spec.get("layers"), resume=True
    )


def _expired(deadline: Optional[float]) -> bool:
    return deadline is not None and time.monotonic() >= deadline
