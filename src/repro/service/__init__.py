"""Durable sweep jobs: the simulation-as-a-service layer.

Every submitted sweep becomes an addressable, restartable,
garbage-collected *job* riding on the resilience substrate of
:mod:`repro.core.resilience` (fsync'd journals, atomic replace,
quarantine, supervised execution):

* :mod:`repro.service.jobs` — the crash-safe job store: content-derived
  job ids, an append-only state machine under ``.simcache/jobs/``,
  lease/heartbeat files for orphan detection and adoption, cancellation
  markers, and cross-run garbage collection;
* :mod:`repro.service.scheduler` — the supervising scheduler: runs a
  job spec through ``codesign.sweep(resume=True)`` under a heartbeated
  lease, deduplicates identical submissions by id, seals finished
  journals into digest-chained results records.

CLI surface: ``repro submit / status / results / cancel / jobs
list|gc``.  Semantics, state diagram and GC policy: docs/SERVICE.md.
"""

from . import jobs, scheduler
from .jobs import FAULT_SITES, JobRecord, gc_state, list_jobs
from .scheduler import JobCancelled, JobOutcome, submit_and_run

__all__ = [
    "FAULT_SITES",
    "JobCancelled",
    "JobOutcome",
    "JobRecord",
    "gc_state",
    "jobs",
    "list_jobs",
    "scheduler",
    "submit_and_run",
]
