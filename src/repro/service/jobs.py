"""Crash-safe job store: every sweep becomes an addressable, durable job.

A *job* is one submitted sweep grid, identified by a content-derived id
(the first 16 hex digits of :func:`repro.core.resilience.sweep_key`,
which hashes the grid values, the network structure, every machine
config, the kernel policy, and the timing-model version).  Identical
submissions therefore collide by construction — the second submitter
*attaches* to the first job instead of creating a duplicate — and a job
id stays valid across process death, machine reboots, and re-clones of
the cache directory.

On-disk layout, under ``<cache_dir>/jobs/<job_id>/``:

``record.jsonl``
    Append-only, fsync'd, per-line-checksummed event log (the same
    discipline as the sweep journal): one ``created`` record carrying
    the submission spec, then ``state`` records tracking the machine
    ``queued → running → done | failed | cancelled``.  Corrupt lines
    are skipped; the record is the fold of the surviving lines.

``lease.json``
    The ownership lease, rewritten atomically on every heartbeat.  A
    job with a *live* lease is being run by the recorded owner; a lease
    whose owner pid is dead (same host) or whose last renewal is older
    than the TTL is *stale*, and the job is **adoptable**: the next
    submitter takes the lease over and resumes from the sweep journal.
    Acquisition is last-writer-wins with a read-back verify, so an
    adoption race resolves deterministically — exactly one winner, the
    loser attaches.

``cancel.json``
    Cancellation intent, written atomically by ``repro cancel``.  A
    running owner observes it at its next heartbeat and stops (the
    journal keeps every completed point); a queued job cancels
    immediately.  Re-submitting a cancelled job clears the marker and
    requeues.

Every write site is covered by deterministic fault injection
(:data:`FAULT_SITES`) so the chaos suite can SIGKILL a scheduler at
each one and prove adoption + bitwise-identical results.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core import knobs
from ..core.resilience import atomic_replace, payload_digest, quarantine
from ..testing import faults

__all__ = [
    "FAULT_SITES",
    "JOB_VERSION",
    "STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "Lease",
    "acquire",
    "cancel_requested",
    "clear_cancel",
    "gc_state",
    "heartbeat_period",
    "job_dir",
    "job_id_for",
    "jobs_dir",
    "lease_state",
    "lease_ttl",
    "list_jobs",
    "live_lease_count",
    "load",
    "max_jobs",
    "record_state",
    "request_cancel",
    "resolve",
    "submit",
]

#: Bump when the job-record line format changes; older records are then
#: ignored (the job re-registers on the next submission).
JOB_VERSION = 1

#: Job state machine.  ``queued`` and ``running`` are live; the rest
#: are terminal (though a terminal ``failed``/``cancelled`` job is
#: requeued by a fresh submission of the same grid).
STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Fault-injection sites of the durable job layer, in the order the
#: chaos smoke exercises them (see tests/smoke_kill_resume.py).
#: ``journal.seal`` lives in repro.core.resilience (compaction); the
#: rest fire in this module.
FAULT_SITES = (
    "jobs.record",
    "jobs.lease",
    "jobs.heartbeat",
    "jobs.adopt",
    "jobs.cancel",
    "journal.seal",
)

_ENV_TTL = "REPRO_LEASE_TTL"
_ENV_HEARTBEAT = "REPRO_HEARTBEAT"
_ENV_MAX_JOBS = "REPRO_MAX_JOBS"


def lease_ttl() -> float:
    """Seconds an unrenewed lease stays live (``REPRO_LEASE_TTL``)."""
    return knobs.get_float(_ENV_TTL, 60.0)


def heartbeat_period() -> float:
    """Minimum seconds between lease renewals (``REPRO_HEARTBEAT``)."""
    return knobs.get_float(_ENV_HEARTBEAT, 5.0)


def max_jobs() -> int:
    """Concurrent running-job cap (``REPRO_MAX_JOBS``; 0 = unlimited)."""
    return knobs.get_int(_ENV_MAX_JOBS, 0)


def _cache_dir() -> str:
    from ..core.simcache import cache_dir  # deferred: follows REPRO_SIMCACHE_DIR

    return cache_dir()


def jobs_dir() -> str:
    """Root directory of the job store (created lazily)."""
    return str(Path(_cache_dir()) / "jobs")


def job_id_for(sweep_key: str) -> str:
    """Content-derived job id: 16 hex digits of the full sweep key."""
    return sweep_key[:16]


def job_dir(job_id: str) -> str:
    return str(Path(jobs_dir()) / job_id)


def _record_path(job_id: str) -> str:
    return str(Path(job_dir(job_id)) / "record.jsonl")


def _lease_path(job_id: str) -> str:
    return str(Path(job_dir(job_id)) / "lease.json")


def _cancel_path(job_id: str) -> str:
    return str(Path(job_dir(job_id)) / "cancel.json")


def _host() -> str:
    return platform.node() or "localhost"


def _pid_alive(pid: int) -> bool:
    """Best-effort same-host liveness probe (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


# ----------------------------------------------------------------------
# Job records
# ----------------------------------------------------------------------

@dataclass
class JobRecord:
    """Folded view of one job's ``record.jsonl`` event log."""

    job_id: str
    sweep_key: str = ""
    n_points: int = 0
    state: str = "queued"
    spec: Dict = field(default_factory=dict)
    created: float = 0.0
    updated: float = 0.0
    owner: str = ""
    error: str = ""
    n_events: int = 0

    def as_row(self) -> Dict:
        """Row dict for ``repro jobs list`` / ``repro status``."""
        net = str(self.spec.get("net", ""))
        axis = str(self.spec.get("axis", self.spec.get("axis_name", "")))
        return {
            "job": self.job_id,
            "state": self.state,
            "net": net,
            "axis": axis,
            "points": self.n_points,
            "age_s": round(max(0.0, time.time() - self.created), 1),
        }


def _line_digest(rec: Dict) -> str:
    body = {k: v for k, v in rec.items() if k != "sha256"}
    return payload_digest(body)


def _append(job_id: str, rec: Dict) -> None:
    """Append one checksummed, fsync'd line to the job record."""
    faults.maybe_fault("jobs.record", key=job_id)
    rec = dict(rec)
    rec["sha256"] = _line_digest(rec)
    path = Path(_record_path(job_id))
    path.parent.mkdir(parents=True, exist_ok=True)
    # Append mode is the event log's whole point (same sanctioned
    # exception as the sweep journal): state transitions accumulate
    # across owners and crashes, fsync'd per line.
    with path.open("a", encoding="utf-8") as fh:  # reprolint: ignore[io/bare-write]
        fh.write(json.dumps(rec, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _read_lines(job_id: str) -> List[Dict]:
    out: List[Dict] = []
    try:
        with Path(_record_path(job_id)).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                with suppress(ValueError):
                    rec = json.loads(line)
                    if (
                        isinstance(rec, dict)
                        and rec.get("sha256") == _line_digest(rec)
                    ):
                        out.append(rec)
    except OSError:
        return []
    return out


def load(job_id: str) -> Optional[JobRecord]:
    """Fold *job_id*'s event log into a :class:`JobRecord` (or None)."""
    lines = _read_lines(job_id)
    record: Optional[JobRecord] = None
    for rec in lines:
        kind = rec.get("kind")
        if kind == "created" and rec.get("job_version") == JOB_VERSION:
            record = JobRecord(
                job_id=job_id,
                sweep_key=str(rec.get("sweep_key", "")),
                n_points=int(rec.get("n_points", 0)),
                spec=dict(rec.get("spec") or {}),
                created=float(rec.get("when", 0.0)),
                updated=float(rec.get("when", 0.0)),
            )
        elif kind == "state" and record is not None:
            state = str(rec.get("state", ""))
            if state in STATES:
                record.state = state
                record.updated = float(rec.get("when", record.updated))
                record.owner = str(rec.get("owner", ""))
                record.error = str(rec.get("error", ""))
    if record is not None:
        record.n_events = len(lines)
    return record


def _job_names() -> List[str]:
    """Directory names in the job store, sorted (deterministic)."""
    try:
        children = sorted(Path(jobs_dir()).iterdir())
    except OSError:
        return []
    return [p.name for p in children if p.is_dir()]


def list_jobs() -> List[JobRecord]:
    """Every job in the store, sorted by id (deterministic)."""
    out = []
    for name in _job_names():
        record = load(name)
        if record is not None:
            out.append(record)
    return out


def resolve(prefix: str) -> Optional[str]:
    """Resolve a unique job-id prefix to the full id (CLI convenience)."""
    matches = [n for n in _job_names() if n.startswith(prefix)]
    return matches[0] if len(matches) == 1 else None


def record_state(job_id: str, state: str, owner: str = "", error: str = "",
                 note: str = "") -> None:
    """Append one state transition to the job's event log."""
    if state not in STATES:
        raise ValueError(f"unknown job state {state!r}")
    rec = {"kind": "state", "state": state, "when": time.time()}
    if owner:
        rec["owner"] = owner
    if error:
        rec["error"] = error
    if note:
        rec["note"] = note
    _append(job_id, rec)


def submit(sweep_key: str, n_points: int, spec: Optional[Dict] = None
           ) -> Tuple[JobRecord, bool]:
    """Register (or re-attach to) the job for *sweep_key*.

    Idempotent and deduplicating: an existing record for the same
    content id is returned as-is (``created=False``) so a concurrent
    identical submission attaches instead of re-registering.  A job in
    a terminal ``failed``/``cancelled`` state is requeued — a fresh
    submission expresses fresh intent — and any unprocessed cancel
    marker on a non-running job is cleared for the same reason.
    """
    job_id = job_id_for(sweep_key)
    record = load(job_id)
    if record is None:
        _append(job_id, {
            "kind": "created",
            "job_version": JOB_VERSION,
            "job_id": job_id,
            "sweep_key": sweep_key,
            "n_points": n_points,
            "spec": dict(spec or {}),
            "when": time.time(),
        })
        record_state(job_id, "queued")
        return load(job_id), True
    if record.state in ("failed", "cancelled"):
        clear_cancel(job_id)
        record_state(job_id, "queued", note="resubmitted")
        record = load(job_id)
    elif record.state == "queued" and cancel_requested(job_id):
        clear_cancel(job_id)
    return record, False


# ----------------------------------------------------------------------
# Cancellation intent
# ----------------------------------------------------------------------

def request_cancel(job_id: str) -> Optional[str]:
    """Record cancellation intent; returns the job's new/likely state.

    A queued (ownerless) job is cancelled on the spot; a running job
    gets a durable marker its owner acts on at the next heartbeat
    (``"cancel-requested"`` is returned).  Unknown ids return ``None``.
    """
    record = load(job_id)
    if record is None:
        return None
    if record.state in TERMINAL_STATES:
        return record.state
    faults.maybe_fault("jobs.cancel", key=job_id)
    doc = {"job_id": job_id, "when": time.time()}
    doc["sha256"] = payload_digest(doc)

    def write(tmp: str) -> None:
        with Path(tmp).open("w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)

    atomic_replace(_cancel_path(job_id), write)
    state, _doc = lease_state(job_id)
    if state != "live":
        # Nobody is running it, so nobody would process the marker.
        record_state(job_id, "cancelled", note="no live owner")
        clear_cancel(job_id)
        return "cancelled"
    return "cancel-requested"


def cancel_requested(job_id: str) -> bool:
    """True when a durable cancel marker is pending for *job_id*."""
    return Path(_cancel_path(job_id)).exists()


def clear_cancel(job_id: str) -> None:
    with suppress(OSError):
        Path(_cancel_path(job_id)).unlink()


# ----------------------------------------------------------------------
# Leases and heartbeats
# ----------------------------------------------------------------------

def _read_lease(job_id: str) -> Optional[Dict]:
    path = _lease_path(job_id)
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return None
    except ValueError:
        quarantine(path, "job lease is not valid JSON")
        return None
    body = {k: v for k, v in doc.items() if k != "sha256"}
    if not isinstance(doc, dict) or doc.get("sha256") != payload_digest(body):
        quarantine(path, "job lease failed its integrity check")
        return None
    return doc


def _write_lease(job_id: str, doc: Dict) -> None:
    doc = {k: v for k, v in doc.items() if k != "sha256"}
    doc["sha256"] = payload_digest(doc)

    def write(tmp: str) -> None:
        with Path(tmp).open("w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)

    atomic_replace(_lease_path(job_id), write)


def lease_state(job_id: str, now: Optional[float] = None
                ) -> Tuple[str, Optional[Dict]]:
    """Classify *job_id*'s lease: ``("none"|"live"|"stale", doc)``.

    A lease is *stale* — the job orphaned and adoptable — when its
    owner pid is dead on this host, or its last renewal is older than
    the TTL it was taken with.  Anything else with a readable lease is
    *live*.
    """
    doc = _read_lease(job_id)
    if doc is None:
        return "none", None
    now = time.time() if now is None else now
    try:
        renewed = float(doc.get("renewed", 0.0))
        ttl = float(doc.get("ttl_s", lease_ttl()))
        pid = int(doc.get("pid", 0))
        host = str(doc.get("host", ""))
    except (TypeError, ValueError):
        return "stale", doc
    if host == _host() and not _pid_alive(pid):
        return "stale", doc
    if now - renewed > ttl:
        return "stale", doc
    return "live", doc


class Lease:
    """A held job lease; renew it within the TTL or lose ownership."""

    __slots__ = ("job_id", "token", "ttl_s", "acquired", "adopted")

    def __init__(self, job_id: str, token: str, ttl_s: float,
                 acquired: float, adopted: bool):
        self.job_id = job_id
        self.token = token
        self.ttl_s = ttl_s
        self.acquired = acquired
        self.adopted = adopted

    def _doc(self, renewed: float) -> Dict:
        return {
            "job_id": self.job_id,
            "owner": self.token,
            "host": _host(),
            "pid": os.getpid(),
            "acquired": self.acquired,
            "renewed": renewed,
            "ttl_s": self.ttl_s,
        }

    def renew(self) -> None:
        """Heartbeat: push the staleness horizon forward atomically."""
        faults.maybe_fault(
            "jobs.heartbeat", key=self.job_id, path=_lease_path(self.job_id)
        )
        _write_lease(self.job_id, self._doc(time.time()))

    def release(self) -> None:
        """Drop the lease iff we still own it (lost races stay lost)."""
        doc = _read_lease(self.job_id)
        if doc is not None and doc.get("owner") == self.token:
            with suppress(OSError):
                Path(_lease_path(self.job_id)).unlink()


def acquire(job_id: str, ttl: Optional[float] = None) -> Optional[Lease]:
    """Take (or adopt) *job_id*'s lease; ``None`` when someone owns it.

    Protocol: read → refuse a live lease → write ours atomically →
    read back and verify.  ``atomic_replace`` makes concurrent writes
    last-writer-wins, so the read-back resolves an adoption race to
    exactly one winner; the ``jobs.lease`` and ``jobs.adopt`` fault
    sites bracket the write for the chaos suite.
    """
    state, doc = lease_state(job_id)
    if state == "live":
        return None
    adopting = doc is not None
    now = time.time()
    token = f"{_host()}:{os.getpid()}:{time.monotonic_ns():x}"
    lease = Lease(job_id, token, ttl if ttl is not None else lease_ttl(),
                  now, adopting)
    faults.maybe_fault("jobs.lease", key=job_id, path=_lease_path(job_id))
    _write_lease(job_id, lease._doc(now))
    if adopting:
        faults.maybe_fault("jobs.adopt", key=job_id, path=_lease_path(job_id))
    check = _read_lease(job_id)
    if check is None or check.get("owner") != token:
        return None  # lost the race; the winner's lease stands
    return lease


def live_lease_count(exclude: Optional[str] = None) -> int:
    """Number of jobs currently held by a live lease (QoS gate)."""
    count = 0
    for record in list_jobs():
        if record.job_id == exclude:
            continue
        if lease_state(record.job_id)[0] == "live":
            count += 1
    return count


# ----------------------------------------------------------------------
# Cross-run garbage collection
# ----------------------------------------------------------------------

def _gc_action(actions: List[Dict], path: str, kind: str, reason: str,
               dry_run: bool) -> None:
    size = 0
    with suppress(OSError):
        size = Path(path).stat().st_size
    removed = False
    if not dry_run:
        try:
            Path(path).unlink()
            removed = True
        except OSError:
            return
    actions.append({
        "path": path,
        "kind": kind,
        "action": "removed" if removed else "would-remove",
        "reason": reason,
        "bytes": size,
    })


def gc_state(dry_run: bool = False) -> List[Dict]:
    """Prune derivable/stale durable state; returns one row per action.

    Policy (everything removed here is either superseded by a verified
    sealed record or describes an owner/intent that no longer exists):

    * **sealed journals** — a live JSONL journal whose sweep key has a
      verified sealed record is the leftover of an interrupted
      compaction; finish the write → verify → unlink protocol.
    * **unaddressable sealed records** — a sealed record whose job
      record is gone can no longer be reached by id; drop it.
    * **expired leases** — stale leases, and any lease on a
      terminal-state job.
    * **stale cancel markers** — markers on terminal-state jobs.
    * **quarantine sidecar strays** — ``.reason.json`` files whose
      quarantined data file has been deleted.

    Job records and (addressable) sealed results are never pruned:
    they are the durable answers the store exists to keep.
    """
    from ..core.resilience import (
        finish_seal,
        journal_path,
        list_journals,
        list_sealed,
        load_sealed,
        quarantine_dir,
        sealed_path,
    )

    actions: List[Dict] = []
    records = {r.sweep_key: r for r in list_jobs()}

    # 1. finish interrupted compactions (journal superseded by sealed).
    for journal in list_journals():
        key = journal["sweep_key"]
        if not key or load_sealed(key) is None:
            continue
        live = journal_path(key)
        if dry_run:
            _gc_action(actions, live, "journal",
                       "superseded by a verified sealed record", True)
        elif finish_seal(key, journal["n_points"]):
            actions.append({
                "path": live,
                "kind": "journal",
                "action": "removed",
                "reason": "superseded by a verified sealed record",
                "bytes": 0,
            })

    # 2. sealed records whose job record is gone.
    for sealed in list_sealed():
        key = sealed["sweep_key"]
        if key and key not in records:
            _gc_action(actions, sealed_path(key), "sealed",
                       "no job record addresses this sealed result", dry_run)

    # 3/4. leases and cancel markers.
    for record in records.values():
        state, _doc = lease_state(record.job_id)
        if state == "stale" or (state == "live" and record.state in TERMINAL_STATES):
            _gc_action(actions, _lease_path(record.job_id), "lease",
                       "expired lease" if state == "stale"
                       else f"lease on {record.state} job", dry_run)
        if record.state in TERMINAL_STATES and cancel_requested(record.job_id):
            _gc_action(actions, _cancel_path(record.job_id), "cancel-marker",
                       f"cancel marker on {record.state} job", dry_run)

    # 5. quarantine sidecars orphaned by a deleted data file.
    qdir = Path(quarantine_dir())
    try:
        children = sorted(qdir.iterdir())
    except OSError:
        children = []
    for child in children:
        if not child.name.endswith(".reason.json"):
            continue
        data = child.with_name(child.name[: -len(".reason.json")])
        if not data.exists():
            _gc_action(actions, str(child), "sidecar",
                       "quarantined file already deleted", dry_run)
    return actions


def _digest_short(text: str) -> str:
    """8-hex fingerprint used in display contexts (not security)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:8]
