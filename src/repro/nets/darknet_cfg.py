"""Parser for Darknet ``.cfg`` network description files.

Supports the section types used by the paper's three networks (YOLOv3,
YOLOv3-tiny, VGG16): ``[net]``, ``[convolutional]``, ``[maxpool]``,
``[route]``, ``[shortcut]``, ``[upsample]``, ``[yolo]``, ``[avgpool]``,
``[connected]``, ``[softmax]``, ``[dropout]``, ``[cost]``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .layers import (
    AvgPoolLayer,
    ConnectedLayer,
    ConvLayer,
    CostLayer,
    DropoutLayer,
    Layer,
    MaxPoolLayer,
    RouteLayer,
    ShortcutLayer,
    SoftmaxLayer,
    UpsampleLayer,
    YoloLayer,
)
from .network import Network

__all__ = ["parse_cfg", "build_network"]

Section = Tuple[str, Dict[str, str]]


def parse_cfg(text: str) -> List[Section]:
    """Parse cfg text into ``(section_name, options)`` pairs.

    Handles comments (``#``/``;``), blank lines, and ``key=value``
    options; later duplicate keys override earlier ones, as in Darknet.
    """
    sections: List[Section] = []
    current: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"malformed section header: {raw!r}")
            current = {}
            sections.append((line[1:-1].strip().lower(), current))
        else:
            if "=" not in line:
                raise ValueError(f"malformed option line: {raw!r}")
            if not sections:
                raise ValueError("option line before any section header")
            key, value = line.split("=", 1)
            current[key.strip()] = value.strip()
    return sections


def _int(opts: Dict[str, str], key: str, default: int) -> int:
    return int(opts.get(key, default))


def _build_layer(name: str, opts: Dict[str, str]) -> Layer:
    if name == "convolutional":
        size = _int(opts, "size", 1)
        # Darknet: pad=1 means "use size//2"; explicit padding= overrides.
        if "padding" in opts:
            pad = int(opts["padding"])
        elif _int(opts, "pad", 0):
            pad = size // 2
        else:
            pad = 0
        return ConvLayer(
            filters=_int(opts, "filters", 1),
            size=size,
            stride=_int(opts, "stride", 1),
            pad=pad,
            batch_normalize=bool(_int(opts, "batch_normalize", 0)),
            activation=opts.get("activation", "logistic"),
        )
    if name == "maxpool":
        size = _int(opts, "size", 1)
        stride = _int(opts, "stride", 1)
        padding = _int(opts, "padding", size - 1)
        return MaxPoolLayer(size=size, stride=stride, padding=padding)
    if name == "route":
        layers = [int(x) for x in opts["layers"].split(",")]
        return RouteLayer(layers)
    if name == "shortcut":
        return ShortcutLayer(
            from_layer=int(opts["from"]), activation=opts.get("activation", "linear")
        )
    if name == "upsample":
        return UpsampleLayer(stride=_int(opts, "stride", 2))
    if name == "yolo":
        mask = opts.get("mask", "0,1,2").split(",")
        return YoloLayer(anchors=len(mask), classes=_int(opts, "classes", 80))
    if name == "avgpool":
        return AvgPoolLayer()
    if name == "connected":
        return ConnectedLayer(
            output=_int(opts, "output", 1),
            activation=opts.get("activation", "linear"),
        )
    if name == "softmax":
        return SoftmaxLayer()
    if name == "dropout":
        return DropoutLayer(probability=float(opts.get("probability", 0.5)))
    if name == "cost":
        return CostLayer()
    raise ValueError(f"unsupported section [{name}]")


def build_network(text: str, name: str = "net") -> Network:
    """Build a :class:`Network` from cfg text.

    The leading ``[net]`` section supplies the input geometry
    (``channels`` x ``height`` x ``width``).
    """
    sections = parse_cfg(text)
    if not sections or sections[0][0] not in ("net", "network"):
        raise ValueError("cfg must start with a [net] section")
    net_opts = sections[0][1]
    input_shape = (
        _int(net_opts, "channels", 3),
        _int(net_opts, "height", 416),
        _int(net_opts, "width", 416),
    )
    layers = [_build_layer(n, o) for n, o in sections[1:]]
    return Network(layers, input_shape, name=name)
