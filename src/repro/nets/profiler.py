"""Per-kernel execution-time breakdown (paper Section II-B).

The paper profiles YOLOv3 with ``perf`` on A64FX and finds ~92 % of the
run is inference compute, of which GEMM takes 93.4 %.  This module
reproduces the breakdown from simulated cycles: the network's timing
trace attributes every cycle to a kernel label (gemm, im2col, the
elementwise kernels, the Winograd stages), and the profiler reduces
those to percentage shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..machine.config import MachineConfig
from .layers import KernelPolicy
from .network import Network

__all__ = ["KernelProfile", "profile_network"]

#: Kernel labels rolled up under the Winograd umbrella.
_WINOGRAD_LABELS = (
    "wino_input_transform",
    "wino_weight_transform",
    "wino_tuple_mult",
    "wino_output_transform",
    "winograd",
)


@dataclass
class KernelProfile:
    """Result of :func:`profile_network`."""

    total_cycles: float
    shares: Dict[str, float]  # kernel -> fraction of total cycles

    def share(self, kernel: str) -> float:
        """Fraction of compute cycles spent in *kernel* (0 when absent)."""
        return self.shares.get(kernel, 0.0)

    def top(self, n: int = 5) -> List[Tuple[str, float]]:
        """The *n* largest kernels by share."""
        return sorted(self.shares.items(), key=lambda kv: -kv[1])[:n]

    def format_table(self) -> str:
        """Printable breakdown, largest kernel first."""
        lines = [f"{'kernel':24s} {'share':>8s}"]
        for name, frac in sorted(self.shares.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:24s} {100 * frac:7.1f}%")
        return "\n".join(lines)


def profile_network(
    net: Network,
    machine: MachineConfig,
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
) -> KernelProfile:
    """Simulate *net* and reduce its cycles to per-kernel shares.

    Winograd sub-stages are rolled up under ``"winograd"`` so the
    breakdown compares directly with the paper's GEMM/im2col/... split.
    """
    if policy is None:
        policy = KernelPolicy()
    stats = net.simulate(machine, policy, n_layers=n_layers)
    total = stats.cycles or 1.0
    shares: Dict[str, float] = {}
    wino = 0.0
    for label, cycles in stats.kernel_cycles.items():
        if label in _WINOGRAD_LABELS:
            wino += cycles
        else:
            shares[label] = shares.get(label, 0.0) + cycles / total
    if wino:
        shares["winograd"] = wino / total
    return KernelProfile(total_cycles=total, shares=shares)
