"""Darknet-like CNN inference framework (functional + trace-driven).

Layers, the network container, a Darknet ``.cfg`` parser, the paper's
model zoo (YOLOv3 @608, YOLOv3-tiny, VGG16) and the per-kernel profiler
of Section II-B.
"""

from .darknet_cfg import build_network, parse_cfg
from .layers import (
    AvgPoolLayer,
    ConnectedLayer,
    ConvLayer,
    CostLayer,
    DropoutLayer,
    KernelPolicy,
    Layer,
    MaxPoolLayer,
    RouteLayer,
    ShortcutLayer,
    SoftmaxLayer,
    UpsampleLayer,
    YoloLayer,
)
from .network import Network
from .profiler import KernelProfile, profile_network
from .zoo import vgg16, vgg16_cfg, yolov3, yolov3_cfg, yolov3_tiny, yolov3_tiny_cfg

__all__ = [
    "build_network",
    "parse_cfg",
    "AvgPoolLayer",
    "ConnectedLayer",
    "ConvLayer",
    "CostLayer",
    "DropoutLayer",
    "KernelPolicy",
    "Layer",
    "MaxPoolLayer",
    "RouteLayer",
    "ShortcutLayer",
    "SoftmaxLayer",
    "UpsampleLayer",
    "YoloLayer",
    "Network",
    "KernelProfile",
    "profile_network",
    "vgg16",
    "vgg16_cfg",
    "yolov3",
    "yolov3_cfg",
    "yolov3_tiny",
    "yolov3_tiny_cfg",
]
