"""Model zoo: the paper's three evaluation networks.

``yolov3()`` (107 layers, 75 convolutional — Section II-B), at the
608x608 network resolution implied by Table IV's matrix sizes (the
768x576 input image is resized by Darknet); ``yolov3_tiny()`` (13
convolutional layers); ``vgg16()`` (Darknet's vgg-16.cfg: 13 conv +
3 connected layers at 224x224).

Each builder emits Darknet ``.cfg`` text and parses it through
:mod:`repro.nets.darknet_cfg`, so the cfg parser is exercised on every
use and the definitions stay printable/diffable against upstream cfgs.
"""

from __future__ import annotations

from .darknet_cfg import build_network
from .network import Network

__all__ = [
    "yolov3",
    "yolov3_tiny",
    "vgg16",
    "yolov3_cfg",
    "yolov3_tiny_cfg",
    "vgg16_cfg",
]


def _conv(filters, size, stride=1, bn=1, activation="leaky"):
    pad = 1 if size > 1 else 0
    return (
        "[convolutional]\n"
        + (f"batch_normalize={bn}\n" if bn else "")
        + f"filters={filters}\nsize={size}\nstride={stride}\npad={pad}\n"
        + f"activation={activation}\n\n"
    )


def _res_block(bottleneck, filters):
    """YOLOv3 residual block: 1x1 bottleneck, 3x3, shortcut from -3."""
    return (
        _conv(bottleneck, 1)
        + _conv(filters, 3)
        + "[shortcut]\nfrom=-3\nactivation=linear\n\n"
    )


def yolov3_cfg(width: int = 608, height: int = 608) -> str:
    """Generate the standard YOLOv3 cfg (Darknet yolov3.cfg structure)."""
    s = f"[net]\nchannels=3\nheight={height}\nwidth={width}\n\n"
    s += _conv(32, 3)  # 0
    # Downsample + residual towers (Darknet layer indices in comments).
    s += _conv(64, 3, 2)  # 1
    s += _res_block(32, 64)  # 2-4
    s += _conv(128, 3, 2)  # 5
    s += _res_block(64, 128) * 2  # 6-11
    s += _conv(256, 3, 2)  # 12
    s += _res_block(128, 256) * 8  # 13-36
    s += _conv(512, 3, 2)  # 37
    s += _res_block(256, 512) * 8  # 38-61
    s += _conv(1024, 3, 2)  # 62
    s += _res_block(512, 1024) * 4  # 63-74
    # Detection head, scale 1 (13x13 at 416; 19x19 at 608).
    s += _conv(512, 1) + _conv(1024, 3) + _conv(512, 1)  # 75-77
    s += _conv(1024, 3) + _conv(512, 1) + _conv(1024, 3)  # 78-80
    s += _conv(255, 1, bn=0, activation="linear")  # 81
    s += "[yolo]\nmask=6,7,8\nclasses=80\n\n"  # 82
    # Scale 2.
    s += "[route]\nlayers=-4\n\n"  # 83
    s += _conv(256, 1)  # 84
    s += "[upsample]\nstride=2\n\n"  # 85
    s += "[route]\nlayers=-1,61\n\n"  # 86
    s += _conv(256, 1) + _conv(512, 3) + _conv(256, 1)  # 87-89
    s += _conv(512, 3) + _conv(256, 1) + _conv(512, 3)  # 90-92
    s += _conv(255, 1, bn=0, activation="linear")  # 93
    s += "[yolo]\nmask=3,4,5\nclasses=80\n\n"  # 94
    # Scale 3.
    s += "[route]\nlayers=-4\n\n"  # 95
    s += _conv(128, 1)  # 96
    s += "[upsample]\nstride=2\n\n"  # 97
    s += "[route]\nlayers=-1,36\n\n"  # 98
    s += _conv(128, 1) + _conv(256, 3) + _conv(128, 1)  # 99-101
    s += _conv(256, 3) + _conv(128, 1) + _conv(256, 3)  # 102-104
    s += _conv(255, 1, bn=0, activation="linear")  # 105
    s += "[yolo]\nmask=0,1,2\nclasses=80\n\n"  # 106
    return s


def yolov3(width: int = 608, height: int = 608) -> Network:
    """YOLOv3 at the paper's evaluation resolution (default 608x608)."""
    return build_network(yolov3_cfg(width, height), name=f"yolov3-{width}")


def yolov3_tiny_cfg(width: int = 416, height: int = 416) -> str:
    """Generate the standard YOLOv3-tiny cfg (13 convolutional layers)."""
    s = f"[net]\nchannels=3\nheight={height}\nwidth={width}\n\n"
    s += _conv(16, 3)  # 0
    s += "[maxpool]\nsize=2\nstride=2\n\n"  # 1
    s += _conv(32, 3)  # 2
    s += "[maxpool]\nsize=2\nstride=2\n\n"  # 3
    s += _conv(64, 3)  # 4
    s += "[maxpool]\nsize=2\nstride=2\n\n"  # 5
    s += _conv(128, 3)  # 6
    s += "[maxpool]\nsize=2\nstride=2\n\n"  # 7
    s += _conv(256, 3)  # 8
    s += "[maxpool]\nsize=2\nstride=2\n\n"  # 9
    s += _conv(512, 3)  # 10
    s += "[maxpool]\nsize=2\nstride=1\n\n"  # 11
    s += _conv(1024, 3)  # 12
    s += _conv(256, 1)  # 13
    s += _conv(512, 3)  # 14
    s += _conv(255, 1, bn=0, activation="linear")  # 15
    s += "[yolo]\nmask=3,4,5\nclasses=80\n\n"  # 16
    s += "[route]\nlayers=-4\n\n"  # 17
    s += _conv(128, 1)  # 18
    s += "[upsample]\nstride=2\n\n"  # 19
    s += "[route]\nlayers=-1,8\n\n"  # 20
    s += _conv(256, 3)  # 21
    s += _conv(255, 1, bn=0, activation="linear")  # 22
    s += "[yolo]\nmask=0,1,2\nclasses=80\n\n"  # 23
    return s


def yolov3_tiny(width: int = 416, height: int = 416) -> Network:
    """YOLOv3-tiny (Section VI-A's 14x-speedup workload)."""
    return build_network(yolov3_tiny_cfg(width, height), name="yolov3-tiny")


def vgg16_cfg(width: int = 224, height: int = 224) -> str:
    """Generate Darknet's vgg-16.cfg: 13 conv (all 3x3 stride 1, relu),
    5 maxpool, 3 connected, dropout and softmax — 25 layers."""
    s = f"[net]\nchannels=3\nheight={height}\nwidth={width}\n\n"

    def block(filters, convs):
        out = _conv(filters, 3, bn=0, activation="relu") * convs
        out += "[maxpool]\nsize=2\nstride=2\npadding=0\n\n"
        return out

    s += block(64, 2)  # 0-2
    s += block(128, 2)  # 3-5
    s += block(256, 3)  # 6-9
    s += block(512, 3)  # 10-13
    s += block(512, 3)  # 14-17
    s += "[connected]\noutput=4096\nactivation=relu\n\n"  # 18
    s += "[dropout]\nprobability=.5\n\n"  # 19
    s += "[connected]\noutput=4096\nactivation=relu\n\n"  # 20
    s += "[dropout]\nprobability=.5\n\n"  # 21
    s += "[connected]\noutput=1000\nactivation=linear\n\n"  # 22
    s += "[softmax]\n\n"  # 23
    s += "[cost]\ntype=sse\n\n"  # 24
    return s


def vgg16(width: int = 224, height: int = 224) -> Network:
    """VGG16 image classifier (all conv layers 3x3 stride 1 — the
    all-Winograd workload of Section VII)."""
    return build_network(vgg16_cfg(width, height), name="vgg16")
