"""Darknet-style network layers.

Each layer implements the functional forward pass (NumPy, matching
Darknet's inference semantics) and a ``trace`` method that replays its
kernels on the timing simulator.  The convolutional layer composes the
kernels the paper optimizes (Section II-B): im2col, GEMM (naive /
3-loop / 6-loop), the elementwise kernels, and optionally the Winograd
path of Section VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..isa import VectorISA
from ..kernels import (
    ConvSpec,
    activate_array,
    add_bias,
    gemm_3loop,
    gemm_6loop,
    gemm_naive,
    im2col,
    normalize_cpu,
    scale_bias,
    trace_gemm_3loop,
    trace_gemm_6loop,
    trace_gemm_naive,
    trace_im2col,
    trace_stream_kernel,
)
from ..kernels.gemm_6loop import BlockSizes
from ..kernels.winograd import trace_winograd_conv, winograd_conv2d
from ..machine.simulator import TraceSimulator

__all__ = [
    "KernelPolicy",
    "Layer",
    "ConvLayer",
    "MaxPoolLayer",
    "ConnectedLayer",
    "RouteLayer",
    "ShortcutLayer",
    "UpsampleLayer",
    "YoloLayer",
    "AvgPoolLayer",
    "SoftmaxLayer",
    "DropoutLayer",
    "CostLayer",
]

Shape = Tuple[int, int, int]  # (channels, height, width)


@dataclass(frozen=True)
class KernelPolicy:
    """Selects kernel implementations for convolutional layers.

    Attributes
    ----------
    gemm:
        ``"naive"`` (Fig. 1), ``"3loop"`` (Fig. 2) or ``"6loop"`` (Fig. 3).
    winograd:
        ``"off"``, ``"stride1"`` (3x3 stride-1 layers only — the
        configuration Section VII-B recommends) or ``"all3x3"``
        (3x3 stride 1 and 2, as in the Section VII-A study).
    unroll:
        Unroll factor of the GEMM micro-kernel (Section VI-A: 16).
    blocks:
        Block sizes for the 6-loop GEMM.
    functional_gemm:
        Implementation for the *functional* forward pass: ``"blas"``
        (np.dot; numerically equivalent, fast) or one of the kernel
        names to exercise the VLA kernels end-to-end in examples/tests.
    """

    gemm: str = "3loop"
    winograd: str = "off"
    unroll: int = 16
    blocks: BlockSizes = BlockSizes()
    functional_gemm: str = "blas"

    def __post_init__(self):
        if self.gemm not in ("naive", "3loop", "6loop"):
            raise ValueError(f"unknown gemm kernel {self.gemm!r}")
        if self.winograd not in ("off", "stride1", "all3x3"):
            raise ValueError(f"unknown winograd policy {self.winograd!r}")
        if self.functional_gemm not in ("blas", "naive", "3loop", "6loop"):
            raise ValueError(f"unknown functional gemm {self.functional_gemm!r}")

    def uses_winograd(self, spec: ConvSpec) -> bool:
        """Whether this policy routes *spec* through Winograd."""
        if self.winograd == "off" or spec.ksize != 3:
            return False
        if self.winograd == "stride1":
            return spec.stride == 1
        return spec.stride in (1, 2)


class Layer:
    """Base class: shape propagation, functional forward, timing trace."""

    #: Label used in per-kernel breakdowns.
    kind = "layer"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        raise NotImplementedError

    def forward(
        self, x: np.ndarray, outputs: List[np.ndarray], policy: KernelPolicy, isa
    ) -> np.ndarray:
        """Functional forward pass (Darknet inference semantics)."""
        raise NotImplementedError

    def trace(
        self,
        sim: TraceSimulator,
        in_shape: Shape,
        policy: KernelPolicy,
        bases: dict,
    ) -> None:
        """Default: free (bookkeeping-only layers)."""

    def shape_key(self, in_shape: Shape):
        """Hashable key identifying this layer's simulated work; layers
        with equal keys are deduplicated by the network simulator."""
        return (self.kind, repr(self), in_shape)


class ConvLayer(Layer):
    """Darknet ``[convolutional]``: conv + batchnorm + bias + activation."""

    kind = "conv"

    def __init__(
        self,
        filters: int,
        size: int = 3,
        stride: int = 1,
        pad: Optional[int] = None,
        batch_normalize: bool = True,
        activation: str = "leaky",
    ):
        self.filters = filters
        self.size = size
        self.stride = stride
        self.pad = size // 2 if pad is None else pad
        self.batch_normalize = batch_normalize
        self.activation = activation
        self._weights = {}

    def __repr__(self):
        return (
            f"conv(f={self.filters},k={self.size},s={self.stride},p={self.pad},"
            f"bn={int(self.batch_normalize)},act={self.activation})"
        )

    def spec(self, in_shape: Shape) -> ConvSpec:
        """The layer's :class:`ConvSpec` for a given input shape."""
        c, h, w = in_shape
        return ConvSpec(c, h, w, self.filters, self.size, self.stride, self.pad)

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        s = self.spec(in_shape)
        return (s.M, s.out_h, s.out_w)

    # -- weights ---------------------------------------------------------
    def weights_for(self, in_shape: Shape, seed: int = 0) -> dict:
        """Materialize (or fetch cached) random weights for *in_shape*.

        Random weights preserve all performance behaviour; scaled by
        He-style fan-in so activations stay bounded through deep nets.
        """
        key = in_shape
        if key not in self._weights:
            spec = self.spec(in_shape)
            rng = np.random.default_rng(seed + hash(key) % 65536)
            fan_in = spec.K
            w = rng.standard_normal(
                (self.filters, spec.in_channels, self.size, self.size)
            ).astype(np.float32) * np.float32(np.sqrt(2.0 / fan_in))
            self._weights[key] = {
                "w": w,
                "bias": rng.standard_normal(self.filters).astype(np.float32) * 0.1,
                "scales": np.ones(self.filters, dtype=np.float32),
                "mean": np.zeros(self.filters, dtype=np.float32),
                "var": np.ones(self.filters, dtype=np.float32),
            }
        return self._weights[key]

    # -- functional forward ----------------------------------------------
    def forward(self, x, outputs, policy: KernelPolicy, isa: VectorISA):
        """Functional forward pass (Darknet inference semantics)."""
        spec = self.spec(x.shape)
        wt = self.weights_for(x.shape)
        if policy.uses_winograd(spec):
            out = winograd_conv2d(x, wt["w"], spec)
        else:
            a = wt["w"].reshape(spec.M, spec.K)
            cols = (
                x.reshape(spec.K, spec.N)  # Darknet skips im2col
                if self.size == 1 and self.stride == 1 and self.pad == 0
                else im2col(x, spec)
            )
            c = np.zeros((spec.M, spec.N), dtype=np.float32)  # fill_cpu
            impl = policy.functional_gemm
            if impl == "blas":
                c += a @ cols
            elif impl == "naive":
                gemm_naive(1.0, a, cols, c)
            elif impl == "3loop":
                gemm_3loop(isa, 1.0, a, cols, c, unroll=policy.unroll)
            else:
                gemm_6loop(isa, 1.0, a, cols, c, blocks=policy.blocks,
                           unroll=policy.unroll)
            out = c.reshape(spec.M, spec.out_h, spec.out_w)
        if self.batch_normalize:
            normalize_cpu(out, wt["mean"], wt["var"])
            scale_bias(out, wt["scales"])
        add_bias(out, wt["bias"])
        return activate_array(out, self.activation)

    # -- timing trace ------------------------------------------------------
    def trace(self, sim, in_shape, policy, bases):
        spec = self.spec(in_shape)
        n_out = spec.M * spec.N
        src = bases["activations"]
        dst = bases["activations2"]
        if policy.uses_winograd(spec):
            trace_winograd_conv(sim, spec)
        else:
            a = bases["weights"]
            workspace = bases["workspace"]
            if self.size == 1 and self.stride == 1 and self.pad == 0:
                b_base = src  # input used directly as the B matrix
            else:
                trace_im2col(sim, spec, src, workspace)
                b_base = workspace
            trace_stream_kernel(sim, "fill", n_out, dst, reads=0, writes=1,
                                arith_per_elem=0)
            tracer = {
                "naive": trace_gemm_naive,
                "3loop": trace_gemm_3loop,
                "6loop": trace_gemm_6loop,
            }[policy.gemm]
            kwargs = {}
            if policy.gemm == "3loop":
                kwargs = {"unroll": policy.unroll}
            elif policy.gemm == "6loop":
                kwargs = {"unroll": policy.unroll, "blocks": policy.blocks}
            tracer(sim, spec.M, spec.N, spec.K, a, b_base, dst, **kwargs)
        if self.batch_normalize:
            trace_stream_kernel(sim, "normalize", n_out, dst, reads=1, writes=1,
                                arith_per_elem=2)
            trace_stream_kernel(sim, "scale_bias", n_out, dst, reads=1, writes=1)
        trace_stream_kernel(sim, "add_bias", n_out, dst, reads=1, writes=1)
        if self.activation != "linear":
            trace_stream_kernel(sim, "activate", n_out, dst, reads=1, writes=1,
                                arith_per_elem=2)


class MaxPoolLayer(Layer):
    """Darknet ``[maxpool]``."""

    kind = "maxpool"

    def __init__(self, size: int = 2, stride: int = 2, padding: Optional[int] = None):
        self.size = size
        self.stride = stride
        self.padding = (size - 1) if padding is None else padding

    def __repr__(self):
        return f"maxpool(k={self.size},s={self.stride})"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        c, h, w = in_shape
        return (
            c,
            (h + self.padding - self.size) // self.stride + 1,
            (w + self.padding - self.size) // self.stride + 1,
        )

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        c, h, w = x.shape
        _, oh, ow = self.out_shape(x.shape)
        pad_before = self.padding // 2
        xp = np.full(
            (c, h + self.padding, w + self.padding), -np.inf, dtype=x.dtype
        )
        xp[:, pad_before : pad_before + h, pad_before : pad_before + w] = x
        out = np.full((c, oh, ow), -np.inf, dtype=x.dtype)
        for ky in range(self.size):
            for kx in range(self.size):
                np.maximum(
                    out,
                    xp[
                        :,
                        ky : ky + self.stride * oh : self.stride,
                        kx : kx + self.stride * ow : self.stride,
                    ],
                    out=out,
                )
        return out

    def trace(self, sim, in_shape, policy, bases):
        c, oh, ow = self.out_shape(in_shape)
        trace_stream_kernel(
            sim, "maxpool", c * oh * ow, bases["activations"],
            bases["activations2"], reads=self.size * self.size,
            arith_per_elem=self.size * self.size,
        )


class ConnectedLayer(Layer):
    """Darknet ``[connected]`` (fully connected) — a GEMV (GEMM, N=1)."""

    kind = "connected"

    def __init__(self, output: int, activation: str = "relu"):
        self.output = output
        self.activation = activation
        self._weights = {}

    def __repr__(self):
        return f"connected(out={self.output},act={self.activation})"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return (self.output, 1, 1)

    def _w(self, n_in):
        if n_in not in self._weights:
            rng = np.random.default_rng(n_in)
            self._weights[n_in] = (
                rng.standard_normal((self.output, n_in)).astype(np.float32)
                * np.float32(np.sqrt(1.0 / n_in)),
                rng.standard_normal(self.output).astype(np.float32) * 0.1,
            )
        return self._weights[n_in]

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        flat = x.reshape(-1)
        w, b = self._w(flat.size)
        out = (w @ flat + b).reshape(self.output, 1, 1)
        return activate_array(out, self.activation)

    def trace(self, sim, in_shape, policy, bases):
        k = in_shape[0] * in_shape[1] * in_shape[2]
        with sim.kernel("gemm"):
            # GEMV: M=output, N=1, K=k; the 3-loop kernel with gvl=1.
            trace_gemm_3loop(
                sim, self.output, 1, k, bases["weights"], bases["activations"],
                bases["activations2"], unroll=policy.unroll,
            )
        trace_stream_kernel(sim, "add_bias", self.output, bases["activations2"])
        if self.activation != "linear":
            trace_stream_kernel(sim, "activate", self.output, bases["activations2"])


class RouteLayer(Layer):
    """Darknet ``[route]``: concatenate earlier layers' outputs."""

    kind = "route"

    def __init__(self, layers: Sequence[int]):
        if not layers:
            raise ValueError("route needs at least one source layer")
        self.layers = tuple(layers)

    def __repr__(self):
        return f"route({','.join(map(str, self.layers))})"

    def resolve(self, index: int) -> Tuple[int, ...]:
        """Translate relative indices to absolute, given our index."""
        return tuple(l if l >= 0 else index + l for l in self.layers)

    def out_shape_multi(self, shapes: Sequence[Shape]) -> Shape:
        """Concatenated channels over same-spatial-size sources."""
        c = sum(s[0] for s in shapes)
        if any(s[1:] != shapes[0][1:] for s in shapes):
            raise ValueError(f"route sources disagree on spatial dims: {shapes}")
        return (c, shapes[0][1], shapes[0][2])

    def out_shape(self, in_shape: Shape) -> Shape:  # pragma: no cover
        raise RuntimeError("route shape depends on multiple inputs")

    def forward_multi(self, xs: Sequence[np.ndarray]) -> np.ndarray:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return np.concatenate(xs, axis=0)

    def trace_multi(self, sim, shapes: Sequence[Shape], bases) -> None:
        """Timing trace: a copy of all source activations."""
        n = sum(s[0] * s[1] * s[2] for s in shapes)
        trace_stream_kernel(sim, "copy", n, bases["activations"],
                            bases["activations2"], arith_per_elem=0)


class ShortcutLayer(Layer):
    """Darknet ``[shortcut]``: residual addition."""

    kind = "shortcut"

    def __init__(self, from_layer: int, activation: str = "linear"):
        self.from_layer = from_layer
        self.activation = activation

    def __repr__(self):
        return f"shortcut(from={self.from_layer},act={self.activation})"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return in_shape

    def forward_shortcut(self, x, skip):
        """Residual addition of *x* and *skip*, plus activation."""
        out = x + skip
        return activate_array(out, self.activation)

    def forward(self, x, outputs, policy, isa):  # pragma: no cover
        raise RuntimeError("shortcut needs the network to supply the skip input")

    def trace(self, sim, in_shape, policy, bases):
        """Functional forward pass (Darknet inference semantics)."""
        n = in_shape[0] * in_shape[1] * in_shape[2]
        trace_stream_kernel(sim, "shortcut", n, bases["activations"],
                            bases["activations2"], reads=2)


class UpsampleLayer(Layer):
    """Darknet ``[upsample]``: nearest-neighbour x2 (YOLOv3 FPN)."""

    kind = "upsample"

    def __init__(self, stride: int = 2):
        self.stride = stride

    def __repr__(self):
        return f"upsample(x{self.stride})"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        c, h, w = in_shape
        return (c, h * self.stride, w * self.stride)

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        return x.repeat(self.stride, axis=1).repeat(self.stride, axis=2)

    def trace(self, sim, in_shape, policy, bases):
        c, h, w = self.out_shape(in_shape)
        trace_stream_kernel(sim, "upsample", c * h * w, bases["activations"],
                            bases["activations2"], arith_per_elem=0)


class YoloLayer(Layer):
    """Darknet ``[yolo]`` detection head (inference part).

    Applies the logistic function to the x, y, objectness and class
    channels of each anchor; leaves w/h channels raw.
    """

    kind = "yolo"

    def __init__(self, anchors: int = 3, classes: int = 80):
        self.anchors = anchors
        self.classes = classes

    def __repr__(self):
        return f"yolo(anchors={self.anchors},classes={self.classes})"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return in_shape

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        out = x.copy()
        per = self.classes + 5
        for a in range(self.anchors):
            base = a * per
            sl = np.r_[base : base + 2, base + 4 : base + per]
            out[sl] = activate_array(out[sl].copy(), "logistic")
        return out

    def trace(self, sim, in_shape, policy, bases):
        n = in_shape[0] * in_shape[1] * in_shape[2]
        trace_stream_kernel(sim, "activate", n, bases["activations"],
                            arith_per_elem=4)


class AvgPoolLayer(Layer):
    """Darknet ``[avgpool]`` (global average pool)."""

    kind = "avgpool"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return (in_shape[0], 1, 1)

    def __repr__(self):
        return "avgpool(global)"

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        return x.mean(axis=(1, 2), keepdims=True).astype(x.dtype)

    def trace(self, sim, in_shape, policy, bases):
        n = in_shape[0] * in_shape[1] * in_shape[2]
        trace_stream_kernel(sim, "avgpool", n, bases["activations"], writes=0)


class SoftmaxLayer(Layer):
    """Darknet ``[softmax]``."""

    kind = "softmax"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return in_shape

    def __repr__(self):
        return "softmax"

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        flat = x.reshape(-1).astype(np.float64)
        e = np.exp(flat - flat.max())
        return (e / e.sum()).astype(np.float32).reshape(x.shape)

    def trace(self, sim, in_shape, policy, bases):
        n = in_shape[0] * in_shape[1] * in_shape[2]
        trace_stream_kernel(sim, "softmax", n, bases["activations"],
                            arith_per_elem=4)


class DropoutLayer(Layer):
    """Darknet ``[dropout]`` — identity at inference time."""

    kind = "dropout"

    def __init__(self, probability: float = 0.5):
        self.probability = probability

    def __repr__(self):
        return f"dropout(p={self.probability})"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return in_shape

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        return x


class CostLayer(Layer):
    """Darknet ``[cost]`` — no-op at inference time."""

    kind = "cost"

    def __repr__(self):
        return "cost"

    def out_shape(self, in_shape: Shape) -> Shape:
        """Output ``(C, H, W)`` for an input of shape *in_shape*."""
        return in_shape

    def forward(self, x, outputs, policy, isa):
        """Functional forward pass (Darknet inference semantics)."""
        return x
