"""Network container: functional inference + trace-driven timing.

The timing runner mirrors how the paper collects results: it excludes
the one-time setup, attributes cycles to kernels (for the Section II-B
breakdown), can restrict itself to the first N layers (the paper's
"first 20 layers of YOLOv3" experiments), and deduplicates layers with
identical shapes (YOLOv3's residual towers repeat the same convolution
dozens of times) by simulating one representative at the repeat weight.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats, TraceSimulator
from .layers import (
    ConnectedLayer,
    ConvLayer,
    KernelPolicy,
    Layer,
    RouteLayer,
    ShortcutLayer,
)

__all__ = ["Network"]

Shape = Tuple[int, int, int]

#: Scalar SimStats fields differenced by :meth:`Network.simulate_stream`
#: (canonical list lives on SimStats).
_STREAM_FIELDS = SimStats.FIELDS


class Network:
    """An ordered list of layers with Darknet-style cross references."""

    def __init__(self, layers: Sequence[Layer], input_shape: Shape, name: str = "net"):
        if not layers:
            raise ValueError("network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        self._shapes: Optional[List[Shape]] = None

    # ------------------------------------------------------------------
    # Shape propagation
    # ------------------------------------------------------------------
    def shapes(self) -> List[Shape]:
        """Output shape of every layer (cached)."""
        if self._shapes is not None:
            return self._shapes
        shapes: List[Shape] = []
        for idx, layer in enumerate(self.layers):
            if isinstance(layer, RouteLayer):
                srcs = layer.resolve(idx)
                shapes.append(layer.out_shape_multi([shapes[s] for s in srcs]))
            else:
                prev = shapes[idx - 1] if idx else self.input_shape
                shapes.append(layer.out_shape(prev))
        self._shapes = shapes
        return shapes

    def in_shape_of(self, idx: int) -> Shape:
        """Input shape of layer *idx*."""
        return self.shapes()[idx - 1] if idx else self.input_shape

    # -- layer inventory -------------------------------------------------
    def conv_layers(self) -> List[Tuple[int, ConvLayer]]:
        """(index, layer) for every convolutional layer."""
        return [(i, l) for i, l in enumerate(self.layers) if isinstance(l, ConvLayer)]

    def describe(self) -> str:
        """Multi-line summary (index, kind, shape), like darknet's stdout."""
        lines = [f"{self.name}: input {self.input_shape}"]
        for i, (layer, shape) in enumerate(zip(self.layers, self.shapes())):
            lines.append(f"{i:4d} {layer!r:58s} -> {shape}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Functional inference
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        policy: Optional[KernelPolicy] = None,
        isa=None,
        n_layers: Optional[int] = None,
    ) -> np.ndarray:
        """Run inference; returns the last executed layer's activation."""
        if policy is None:
            policy = KernelPolicy()
        if x.shape != self.input_shape:
            raise ValueError(f"input shape {x.shape} != {self.input_shape}")
        outputs: List[np.ndarray] = []
        limit = len(self.layers) if n_layers is None else min(n_layers, len(self.layers))
        current = x.astype(np.float32)
        for idx in range(limit):
            layer = self.layers[idx]
            if isinstance(layer, RouteLayer):
                current = layer.forward_multi(
                    [outputs[s] for s in layer.resolve(idx)]
                )
            elif isinstance(layer, ShortcutLayer):
                current = layer.forward_shortcut(
                    outputs[idx - 1], outputs[idx + layer.from_layer]
                )
            else:
                current = layer.forward(current, outputs, policy, isa)
            outputs.append(current)
        return current

    # ------------------------------------------------------------------
    # Timing simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        machine: MachineConfig,
        policy: Optional[KernelPolicy] = None,
        n_layers: Optional[int] = None,
        deduplicate: bool = True,
        use_cache: Optional[bool] = None,
        use_trace: Optional[bool] = None,
    ) -> SimStats:
        """Trace-simulate inference on *machine*; returns the statistics.

        Buffers follow Darknet: one shared im2col ``workspace`` sized for
        the largest layer, ping-pong activation buffers, and a per-network
        weight region.  With ``deduplicate`` (default), repeated
        layer shapes are simulated once inside a weighted region.

        ``use_cache`` opts into the persistent result cache
        (:mod:`repro.core.simcache`): ``True``/``False`` force it on or
        off, ``None`` (default) defers to the ``REPRO_SIMCACHE``
        environment variable.  Simulation is deterministic, so a cache
        hit returns the same statistics the simulation would produce.

        ``use_trace`` opts into the capture-once/replay-many trace path
        (:mod:`repro.core.tracecache`): the kernel event stream is
        captured once per (layers, policy, ISA, VL) bucket and replayed
        here — bitwise-identical statistics, and nearly free when the
        trace registry already holds the stream (e.g. during a sweep
        along an L2 or lane axis).  ``None`` (default) defers to
        ``REPRO_TRACE``, which is off for single simulations.
        """
        if policy is None:
            policy = KernelPolicy()
        # Imported lazily to avoid a cycle (repro.core imports this
        # module at package init).
        from ..core import simcache, tracecache

        ckey = None
        if simcache.cache_enabled(use_cache):
            ckey = simcache.cache_key(self, machine, policy, n_layers, deduplicate)
            cached = simcache.load(ckey)
            if cached is not None:
                return cached
        if tracecache.trace_enabled(use_trace, default=False):
            from ..machine.replay import replay

            trace, _ = tracecache.get_or_capture(
                self, machine, policy, n_layers, deduplicate
            )
            stats = replay(trace, machine)
        else:
            sim = TraceSimulator(machine)
            self._emit_trace(sim, policy, n_layers, deduplicate)
            stats = sim.stats
        if ckey is not None:
            simcache.store(ckey, stats)
        return stats

    def record_trace(
        self,
        machine: MachineConfig,
        policy: Optional[KernelPolicy] = None,
        n_layers: Optional[int] = None,
        deduplicate: bool = True,
        key: Optional[str] = None,
    ):
        """Capture this network's macro-event stream without pricing it.

        Returns a :class:`repro.machine.trace.RecordedTrace` that
        :func:`repro.machine.replay.replay` turns into the exact
        :class:`SimStats` that :meth:`simulate` would produce on any
        machine sharing *machine*'s ISA name, vector length and L1 line
        size.
        """
        if policy is None:
            policy = KernelPolicy()
        from ..machine.trace import TraceRecorder

        rec = TraceRecorder(machine)
        self._emit_trace(rec, policy, n_layers, deduplicate)
        limit = len(self.layers) if n_layers is None else min(
            n_layers, len(self.layers)
        )
        return rec.finish(
            key=key,
            meta={"net": self.name, "n_layers": limit, "policy": repr(policy)},
        )

    def analyze(
        self,
        machine: MachineConfig,
        policy: Optional[KernelPolicy] = None,
        n_layers: Optional[int] = None,
        deduplicate: bool = True,
        oracle: bool = False,
        max_examples: int = 3,
        rules=None,
        ignore=None,
        reuse: bool = True,
        predict: bool = True,
    ):
        """Statically analyze this network's trace on *machine*.

        Runs the :mod:`repro.analysis` pass pipeline (config lint, trace
        verifier, working-set estimator, static roofline bound) over the
        recorded macro-event stream — fetched through the trace registry,
        so a stream already captured for simulation or a sweep is
        analyzed without re-tracing.  With ``oracle=True`` the report
        also cross-checks the static bounds against one simulated run.
        ``rules``/``ignore`` scope the reported findings by rule-id
        prefix, *max_examples* caps example events per finding, and
        ``reuse=False`` / ``predict=False`` skip the temporal
        reuse-distance pass and the static cost model respectively.
        Returns an :class:`repro.analysis.AnalysisReport`.
        """
        if policy is None:
            policy = KernelPolicy()
        from ..analysis import analyze_network

        return analyze_network(
            self, machine, policy=policy, n_layers=n_layers,
            deduplicate=deduplicate, oracle=oracle,
            max_examples=max_examples, rules=rules, ignore=ignore,
            reuse=reuse, predict=predict,
        )

    def _emit_trace(self, sim, policy, n_layers, deduplicate) -> None:
        """Drive all layer traces into *sim*.

        *sim* is anything with the TraceSimulator event API — the pricing
        simulator itself or a :class:`repro.machine.trace.TraceRecorder`.
        """
        limit = len(self.layers) if n_layers is None else min(n_layers, len(self.layers))
        bases = self._alloc_shared_buffers(sim, limit)

        counts = {}
        if deduplicate:
            for idx in range(limit):
                layer = self.layers[idx]
                key = self._dedup_key(idx, layer)
                counts[key] = counts.get(key, 0) + 1

        # Occurrence-based weighting: the first occurrence runs cold
        # (weight 1); the second runs cache-warm and stands in for all
        # remaining repeats (weight count-1); later repeats are skipped.
        seen: Dict = {}
        for idx in range(limit):
            layer = self.layers[idx]
            key = self._dedup_key(idx, layer)
            if deduplicate:
                occurrence = seen.get(key, 0)
                seen[key] = occurrence + 1
                if occurrence == 0:
                    weight = 1
                elif occurrence == 1:
                    weight = counts[key] - 1
                else:
                    continue
            else:
                weight = 1
            with sim.region(weight):
                self._trace_layer(sim, idx, layer, policy, bases)
            # Activation buffers ping-pong between layers.
            bases["activations"], bases["activations2"] = (
                bases["activations2"],
                bases["activations"],
            )

    def simulate_stream(
        self,
        machine: MachineConfig,
        policy: Optional[KernelPolicy] = None,
        n_images: int = 4,
        n_layers: Optional[int] = None,
    ) -> List[SimStats]:
        """Simulate inference over a *stream* of images (Section VI of the
        paper excludes one-time setup because inference runs continuously
        over a stream).  Returns per-image statistics sharing one cache /
        TLB state: the first image runs cold, later images steady-state.
        """
        if policy is None:
            policy = KernelPolicy()
        if n_images < 1:
            raise ValueError("need at least one image")
        sim = TraceSimulator(machine)
        per_image: List[SimStats] = []
        limit = len(self.layers) if n_layers is None else min(
            n_layers, len(self.layers)
        )
        # Buffer sizing and dedup counts are per-network constants —
        # computed once here, not once per image.
        buffers = self._alloc_shared_buffers(sim, limit)
        counts = {}
        for idx in range(limit):
            key = self._dedup_key(idx, self.layers[idx])
            counts[key] = counts.get(key, 0) + 1
        # Reuse the buffer layout of simulate() but keep one simulator
        # alive across images, as Darknet does with a resident network.
        for _img in range(n_images):
            before = self._snapshot(sim.stats)
            self._simulate_into(sim, policy, limit, buffers, counts)
            after = self._snapshot(sim.stats)
            delta = SimStats()
            for field_, b, a in zip(_STREAM_FIELDS, before, after):
                setattr(delta, field_, a - b)
            per_image.append(delta)
        return per_image

    @staticmethod
    def _snapshot(stats: SimStats):
        return [getattr(stats, f) for f in _STREAM_FIELDS]

    def _alloc_shared_buffers(self, sim, limit: int) -> Dict[str, int]:
        """Allocate the shared Darknet-style buffer layout.

        ``weights`` must cover every layer that streams a weight matrix
        through ``bases["weights"]`` — convolutions read ``M*K`` packed
        filter elements, fully-connected layers read their full
        ``output x n_in`` matrix (a GEMV's A operand), which for VGG-16's
        first FC layer is ~40x larger than any conv filter block.
        """
        shapes = self.shapes()
        max_elems = max(
            (s[0] * s[1] * s[2] for s in shapes[:limit]), default=1
        )
        max_elems = max(
            max_elems,
            self.input_shape[0] * self.input_shape[1] * self.input_shape[2],
        )
        workspace_elems = 1
        weight_elems = 1
        for idx in range(limit):
            layer = self.layers[idx]
            if isinstance(layer, ConvLayer):
                spec = layer.spec(self.in_shape_of(idx))
                workspace_elems = max(workspace_elems, spec.K * spec.N)
                weight_elems = max(weight_elems, spec.M * spec.K)
            elif isinstance(layer, ConnectedLayer):
                in_shape = self.in_shape_of(idx)
                n_in = in_shape[0] * in_shape[1] * in_shape[2]
                weight_elems = max(weight_elems, layer.output * n_in)
        return {
            "activations": sim.alloc("activations", max_elems * 4).base,
            "activations2": sim.alloc("activations2", max_elems * 4).base,
            "workspace": sim.alloc("workspace", workspace_elems * 4).base,
            "weights": sim.alloc("weights", weight_elems * 4).base,
        }

    def _simulate_into(self, sim, policy, limit, buffers, counts):
        """One forward pass's trace into an existing simulator."""
        seen: Dict = {}
        for idx in range(limit):
            layer = self.layers[idx]
            key = self._dedup_key(idx, layer)
            occurrence = seen.get(key, 0)
            seen[key] = occurrence + 1
            if occurrence == 0:
                weight = 1
            elif occurrence == 1:
                weight = counts[key] - 1
            else:
                continue
            with sim.region(weight):
                self._trace_layer(sim, idx, layer, policy, buffers)
            buffers["activations"], buffers["activations2"] = (
                buffers["activations2"],
                buffers["activations"],
            )

    def _dedup_key(self, idx: int, layer: Layer):
        if isinstance(layer, RouteLayer):
            srcs = layer.resolve(idx)
            return ("route", tuple(self.shapes()[s] for s in srcs))
        return layer.shape_key(self.in_shape_of(idx))

    def _trace_layer(self, sim, idx, layer, policy, bases):
        if isinstance(layer, RouteLayer):
            srcs = layer.resolve(idx)
            layer.trace_multi(sim, [self.shapes()[s] for s in srcs], bases)
        else:
            layer.trace(sim, self.in_shape_of(idx), policy, bases)
