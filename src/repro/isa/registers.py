"""Vector register file model with spill detection.

Section VI-A of the paper reports that unrolling the 3-loop GEMM to use
all 32 RVV registers caused a ~15 % slowdown from *register spilling*,
which is why the paper fixes ``unrollfactor = 16``.  This module lets the
kernels account for register pressure: an allocation beyond the
architectural register count records spill traffic (a store + reload pair
per spilled register per use) that the timing simulator charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .base import VectorISA

__all__ = ["RegisterPressureError", "RegisterFile", "estimate_gemm_register_usage"]


class RegisterPressureError(RuntimeError):
    """Raised when strict mode is on and an allocation would spill."""


@dataclass
class RegisterFile:
    """Tracks live vector registers and spill events.

    Parameters
    ----------
    isa:
        The ISA, supplying the architectural register count.
    strict:
        When ``True``, allocating past the register count raises
        :class:`RegisterPressureError` instead of spilling.
    """

    isa: VectorISA
    strict: bool = False
    #: Currently live logical registers (name -> ref count).
    live: Dict[str, int] = field(default_factory=dict)
    #: Peak simultaneous live registers.
    peak_live: int = 0
    #: Number of allocations that exceeded the architectural registers.
    spills: int = 0

    @property
    def capacity(self) -> int:
        """Architectural vector register count."""
        return self.isa.num_vector_registers

    def alloc(self, name: str) -> str:
        """Mark logical register *name* live; detect spills.

        Returns the name, so calls can be used inline.
        """
        self.live[name] = self.live.get(name, 0) + 1
        n_live = len(self.live)
        if n_live > self.peak_live:
            self.peak_live = n_live
        if n_live > self.capacity:
            if self.strict:
                raise RegisterPressureError(
                    f"{n_live} live vector registers exceed the "
                    f"{self.capacity} architectural registers of {self.isa.name}"
                )
            self.spills += 1
        return name

    def free(self, name: str) -> None:
        """Release one reference to logical register *name*."""
        if name not in self.live:
            raise KeyError(f"register {name!r} is not live")
        self.live[name] -= 1
        if self.live[name] <= 0:
            del self.live[name]

    def free_all(self) -> None:
        """Release every live register (end of kernel)."""
        self.live.clear()

    @property
    def would_spill(self) -> bool:
        """Whether current pressure exceeds the architectural registers."""
        return len(self.live) > self.capacity


def estimate_gemm_register_usage(unroll: int, extra: int = 3) -> int:
    """Vector registers used by the paper's unrolled GEMM micro-kernel.

    The 3-loop/6-loop inner kernel keeps one accumulator per unrolled row
    of C, plus a register for the loaded B vector, the broadcast A scalar,
    and a scratch register (``extra`` in total).

    >>> estimate_gemm_register_usage(16)
    19
    >>> estimate_gemm_register_usage(32) > 32   # spills, per Section VI-A
    True
    """
    if unroll < 1:
        raise ValueError("unroll factor must be >= 1")
    return unroll + extra


def spill_traffic_bytes(regfile: RegisterFile, vlen_bytes: int) -> int:
    """Bytes of extra memory traffic implied by recorded spills.

    Each spill forces a register store and a later reload of a full
    vector register.
    """
    return 2 * regfile.spills * vlen_bytes


# Re-export for convenient import in kernels.
__all__.append("spill_traffic_bytes")
