"""Base definitions for vector-length-agnostic (VLA) instruction sets.

The paper targets two VLA ISAs: the RISC-V Vector extension (RVV) and the
ARM Scalable Vector Extension (SVE).  Both expose a *maximum* vector length
(MVL) fixed by the ISA, while the hardware implements some *vector length*
(``vlen``) no larger than the MVL, and code queries the usable length at
run time (``vsetvl`` on RVV, ``svcntw``/``whilelt`` on SVE).

This module defines the shared vocabulary: element types, the abstract
:class:`VectorISA`, and small helpers used by both concrete ISAs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ElementType",
    "F16",
    "F32",
    "F64",
    "I32",
    "I64",
    "VectorISA",
    "is_power_of_two",
]


def is_power_of_two(x: int) -> bool:
    """Return ``True`` when *x* is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class ElementType:
    """A vector element type (SEW in RVV terminology).

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"f32"``.
    bits:
        Element width in bits (SEW).
    dtype:
        The NumPy dtype backing functional simulation of this type.
    """

    name: str
    bits: int
    dtype: np.dtype

    @property
    def bytes(self) -> int:
        """Element width in bytes."""
        return self.bits // 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Half-precision float (not used by the paper's kernels, supported for
#: completeness of the ISA model).
F16 = ElementType("f16", 16, np.dtype(np.float16))
#: Single-precision float — the element type of every CNN kernel in the paper.
F32 = ElementType("f32", 32, np.dtype(np.float32))
#: Double-precision float.
F64 = ElementType("f64", 64, np.dtype(np.float64))
#: 32-bit signed integer (index vectors for gather/scatter).
I32 = ElementType("i32", 32, np.dtype(np.int32))
#: 64-bit signed integer.
I64 = ElementType("i64", 64, np.dtype(np.int64))


class VectorISA(abc.ABC):
    """Abstract base class describing a VLA vector ISA implementation.

    A :class:`VectorISA` instance couples the *architectural* limits of an
    ISA (MVL, register count, feature set) with one concrete *hardware*
    vector length ``vlen_bits``, mirroring how a VLA binary runs unchanged
    on cores with different vector lengths.

    Parameters
    ----------
    vlen_bits:
        The hardware vector length in bits.  Must be legal for the ISA
        (validated by :meth:`validate_vlen`).
    """

    #: ISA name, e.g. ``"rvv"``.
    name: str = "abstract"
    #: Architectural maximum vector length in bits.
    mvl_bits: int = 0
    #: Number of architectural vector registers.
    num_vector_registers: int = 32
    #: Number of predicate registers (0 when the ISA has no predication).
    num_predicate_registers: int = 0
    #: Whether software prefetch instructions exist in the ISA.  On RVV the
    #: compiler drops the intrinsics entirely (paper, Section IV-A).
    has_sw_prefetch: bool = False
    #: Whether the ISA offers in-register interleave/transpose intrinsics.
    #: SVE has them; RVV (at the paper's snapshot) does not, forcing the
    #: Winograd port to bounce through memory (paper, Section VII).
    has_register_transpose: bool = False

    def __init__(self, vlen_bits: int):
        self.validate_vlen(vlen_bits)
        self.vlen_bits = int(vlen_bits)

    # ------------------------------------------------------------------
    # Vector-length negotiation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def validate_vlen(self, vlen_bits: int) -> None:
        """Raise :class:`ValueError` if *vlen_bits* is illegal for the ISA."""

    @abc.abstractmethod
    def grant_vl(self, requested_elems: int, etype: ElementType) -> int:
        """Return the *granted* vector length in elements.

        Models ``vsetvl`` (RVV) or ``whilelt`` predication (SVE): given a
        request of ``requested_elems`` remaining elements, return how many
        lanes the next vector instruction will process.
        """

    def max_elems(self, etype: ElementType) -> int:
        """Maximum number of *etype* elements per vector register."""
        return self.vlen_bits // etype.bits

    @property
    def vlen_bytes(self) -> int:
        """Hardware vector length in bytes."""
        return self.vlen_bits // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(vlen_bits={self.vlen_bits})"
