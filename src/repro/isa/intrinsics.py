"""Functional (NumPy-backed) vector intrinsics.

The paper's kernels are written in C with low-level intrinsics (EPI
builtins on RVV, ACLE on SVE).  This module provides the same vocabulary
as plain functions over flat NumPy arrays, so the Python kernels in
:mod:`repro.kernels` can be written loop-for-loop like the paper's
pseudocode (Figs. 1-4) while remaining numerically testable.

Conventions
-----------
* "memory" is a flat, 1-D :class:`numpy.ndarray`; offsets are in
  *elements*, not bytes (the byte<->element mapping is the timing
  simulator's concern).
* Loads return fresh arrays (a vector register is a copy of memory, not a
  view); stores write back explicitly.  This mirrors actual register
  semantics and avoids accidental aliasing bugs in kernels.
* Every operation takes ``gvl`` — the granted vector length — and touches
  exactly ``gvl`` lanes, like predicated/VL-trimmed hardware ops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vle",
    "vlse",
    "vse",
    "vsse",
    "vgather",
    "vscatter",
    "vbroadcast",
    "vfmacc",
    "vfmacc_vv",
    "vfmul",
    "vfadd",
    "vfsub",
    "vfmax",
    "vle_masked",
    "vse_masked",
]


def _check_gvl(gvl: int, max_elems: int = None) -> None:
    """Validate a granted vector length.

    ``max_elems`` is the ISA grant ceiling (``isa.max_elems(etype)``).
    When supplied, a ``gvl`` above it fails fast instead of silently
    over-reading memory — a mis-negotiated ``vsetvl``/``whilelt`` would
    otherwise surface only as wrong numerics far downstream.
    """
    if gvl < 0:
        raise ValueError(f"gvl must be non-negative, got {gvl}")
    if max_elems is not None and gvl > max_elems:
        raise ValueError(
            f"gvl {gvl} exceeds the ISA grant of {max_elems} elements"
        )


# ----------------------------------------------------------------------
# Memory ops
# ----------------------------------------------------------------------

def vle(mem: np.ndarray, off: int, gvl: int, max_elems: int = None) -> np.ndarray:
    """Unit-stride vector load of ``gvl`` elements starting at *off*."""
    _check_gvl(gvl, max_elems)
    return np.array(mem[off : off + gvl], copy=True)


def vlse(
    mem: np.ndarray, off: int, stride: int, gvl: int, max_elems: int = None
) -> np.ndarray:
    """Strided vector load: elements ``mem[off + i*stride]``."""
    _check_gvl(gvl, max_elems)
    if stride == 0:
        return np.full(gvl, mem[off], dtype=mem.dtype)
    return np.array(mem[off : off + gvl * stride : stride], copy=True)


def vse(
    vec: np.ndarray, mem: np.ndarray, off: int, gvl: int, max_elems: int = None
) -> None:
    """Unit-stride vector store of the first ``gvl`` lanes of *vec*."""
    _check_gvl(gvl, max_elems)
    mem[off : off + gvl] = vec[:gvl]


def vsse(
    vec: np.ndarray, mem: np.ndarray, off: int, stride: int, gvl: int,
    max_elems: int = None,
) -> None:
    """Strided vector store: ``mem[off + i*stride] = vec[i]``."""
    _check_gvl(gvl, max_elems)
    mem[off : off + gvl * stride : stride] = vec[:gvl]


def vgather(mem: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Gather load: ``out[i] = mem[idx[i]]`` (indices in elements)."""
    return np.array(mem[idx], copy=True)


def vscatter(vec: np.ndarray, mem: np.ndarray, idx: np.ndarray) -> None:
    """Scatter store: ``mem[idx[i]] = vec[i]``."""
    mem[idx] = vec[: len(idx)]


def vle_masked(
    mem: np.ndarray, off: int, pred: np.ndarray, fill: float = 0.0
) -> np.ndarray:
    """SVE-style predicated load: inactive lanes read as *fill*.

    ``pred`` is a boolean mask over the register's lanes (see
    :func:`repro.isa.sve.whilelt`).
    """
    lanes = len(pred)
    out = np.full(lanes, fill, dtype=mem.dtype)
    n_active = int(pred.sum())
    # whilelt predicates are contiguous from lane 0; general masks are
    # honoured lane-by-lane.
    if n_active and pred[:n_active].all():
        out[:n_active] = mem[off : off + n_active]
    else:
        active = np.flatnonzero(pred)
        out[active] = mem[off + active]
    return out


def vse_masked(vec: np.ndarray, mem: np.ndarray, off: int, pred: np.ndarray) -> None:
    """SVE-style predicated store: only active lanes are written."""
    active = np.flatnonzero(pred)
    mem[off + active] = vec[active]


# ----------------------------------------------------------------------
# Arithmetic ops
# ----------------------------------------------------------------------

def vbroadcast(x: float, gvl: int, dtype=np.float32, max_elems: int = None) -> np.ndarray:
    """Broadcast a scalar into a vector register (``vfmv.v.f``/``svdup``)."""
    _check_gvl(gvl, max_elems)
    return np.full(gvl, x, dtype=dtype)


def vfmacc(
    acc: np.ndarray, scalar: float, vec: np.ndarray, gvl: int, max_elems: int = None
) -> np.ndarray:
    """Vector-scalar fused multiply-accumulate: ``acc += scalar * vec``.

    This is the ``vfmacc``/``svmla`` at the heart of the paper's GEMM
    micro-kernel (Fig. 2 line 11, Fig. 3 line 21).  Updates *acc* in place
    and returns it.  The scalar operand is converted to the accumulator's
    element type, as the hardware instruction would.
    """
    _check_gvl(gvl, max_elems)
    acc[:gvl] += acc.dtype.type(scalar) * vec[:gvl]
    return acc


def vfmacc_vv(acc: np.ndarray, a: np.ndarray, b: np.ndarray, gvl: int) -> np.ndarray:
    """Vector-vector FMA: ``acc += a * b`` (Winograd tuple multiply)."""
    _check_gvl(gvl)
    acc[:gvl] += a[:gvl] * b[:gvl]
    return acc


def vfmul(a: np.ndarray, b, gvl: int) -> np.ndarray:
    """Elementwise multiply; *b* may be a vector or scalar."""
    _check_gvl(gvl)
    return a[:gvl] * b if np.isscalar(b) else a[:gvl] * b[:gvl]


def vfadd(a: np.ndarray, b, gvl: int) -> np.ndarray:
    """Elementwise add; *b* may be a vector or scalar."""
    _check_gvl(gvl)
    return a[:gvl] + b if np.isscalar(b) else a[:gvl] + b[:gvl]


def vfsub(a: np.ndarray, b, gvl: int) -> np.ndarray:
    """Elementwise subtract; *b* may be a vector or scalar."""
    _check_gvl(gvl)
    return a[:gvl] - b if np.isscalar(b) else a[:gvl] - b[:gvl]


def vfmax(a: np.ndarray, b, gvl: int) -> np.ndarray:
    """Elementwise maximum (used by the vectorized ReLU/leaky activate)."""
    _check_gvl(gvl)
    return np.maximum(a[:gvl], b if np.isscalar(b) else b[:gvl])
