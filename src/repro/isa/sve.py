"""ARM Scalable Vector Extension (SVE) ISA model.

Mirrors the description in Section II-A(b) of the paper:

* 32 vector registers and 16 predicate registers;
* MVL of 2048 bits, hardware lengths from 128 to 2048 bits in increments
  of 128 bits;
* per-lane predication: loop tails are handled by ``whilelt``-style
  predicates masking out inactive lanes rather than a scalar tail loop;
* gather-load / scatter-store available;
* software prefetch (``svprfw``-style) instructions exist, and tuple
  create/transpose intrinsics exist (used by the paper's Winograd port).
"""

from __future__ import annotations

import numpy as np

from .base import F32, ElementType, VectorISA

__all__ = ["SVE", "svcntw", "whilelt"]


class SVE(VectorISA):
    """The ARM SVE ISA at one hardware vector length.

    Examples
    --------
    >>> from repro.isa import SVE, F32
    >>> isa = SVE(vlen_bits=512)
    >>> isa.max_elems(F32)      # svcntw()
    16
    >>> isa.grant_vl(7, F32)    # whilelt keeps 7 active lanes
    7
    """

    name = "sve"
    mvl_bits = 2048
    num_vector_registers = 32
    num_predicate_registers = 16
    has_sw_prefetch = True
    has_register_transpose = True

    #: SVE hardware lengths are multiples of this granule.
    granule_bits = 128

    def validate_vlen(self, vlen_bits: int) -> None:
        if vlen_bits % self.granule_bits != 0:
            raise ValueError(
                f"SVE vlen must be a multiple of {self.granule_bits} bits, "
                f"got {vlen_bits}"
            )
        if not (self.granule_bits <= vlen_bits <= self.mvl_bits):
            raise ValueError(
                f"SVE vlen must lie in [{self.granule_bits}, {self.mvl_bits}] "
                f"bits, got {vlen_bits}"
            )

    def grant_vl(self, requested_elems: int, etype: ElementType) -> int:
        """Number of active lanes under a ``whilelt`` predicate."""
        if requested_elems < 0:
            raise ValueError("requested element count must be non-negative")
        return min(requested_elems, self.max_elems(etype))


def svcntw(isa: SVE) -> int:
    """``svcntw()``: number of 32-bit lanes in a vector register.

    This is the intrinsic the paper's Winograd inter-tile scheme uses to
    derive ``interchannels = VL / elements`` (Fig. 4, lines 3-4).
    """
    return isa.max_elems(F32)


def whilelt(isa: SVE, start: int, bound: int, etype: ElementType = F32) -> np.ndarray:
    """``whilelt``: build a loop predicate for lanes ``start .. bound``.

    Returns a boolean mask with one entry per lane of a vector register of
    *etype* elements; lane *i* is active when ``start + i < bound``.
    """
    lanes = isa.max_elems(etype)
    idx = start + np.arange(lanes)
    return idx < bound
