"""Vector-length-agnostic ISA models (RISC-V Vector and ARM SVE).

See Section II-A of the paper.  The concrete classes couple architectural
limits (MVL, register counts, feature set) with one hardware vector
length, and :mod:`repro.isa.intrinsics` provides the functional vector
operations the kernels are written against.
"""

from .base import F16, F32, F64, I32, I64, ElementType, VectorISA, is_power_of_two
from .registers import (
    RegisterFile,
    RegisterPressureError,
    estimate_gemm_register_usage,
    spill_traffic_bytes,
)
from .rvv import RVV, vsetvl
from .sve import SVE, svcntw, whilelt

__all__ = [
    "ElementType",
    "VectorISA",
    "F16",
    "F32",
    "F64",
    "I32",
    "I64",
    "is_power_of_two",
    "RVV",
    "vsetvl",
    "SVE",
    "svcntw",
    "whilelt",
    "RegisterFile",
    "RegisterPressureError",
    "estimate_gemm_register_usage",
    "spill_traffic_bytes",
]


def make_isa(name: str, vlen_bits: int) -> VectorISA:
    """Factory: build an ISA model by name (``"rvv"`` or ``"sve"``)."""
    name = name.lower()
    if name == "rvv":
        return RVV(vlen_bits)
    if name == "sve":
        return SVE(vlen_bits)
    raise ValueError(f"unknown ISA {name!r}; expected 'rvv' or 'sve'")


__all__.append("make_isa")
