"""RISC-V Vector extension (RVV) ISA model.

Mirrors the description in Section II-A(a) of the paper:

* 32 vector registers, maximum supported vector length (MVL) of 16384 bits;
* ``vlen`` can be any power of two up to the MVL;
* ``vsetvl`` negotiates the granted vector length (``gvl``) at run time
  from the requested length (``rvl``) and the element width (``sew``);
* strided, gather-load and scatter-store operations are available;
* software prefetch intrinsics are silently dropped by the compiler, and
  there are (at the paper's snapshot) no in-register transpose intrinsics.
"""

from __future__ import annotations

from .base import ElementType, VectorISA, is_power_of_two

__all__ = ["RVV", "vsetvl"]


class RVV(VectorISA):
    """The RISC-V Vector extension at one hardware vector length.

    Examples
    --------
    >>> from repro.isa import RVV, F32
    >>> isa = RVV(vlen_bits=16384)
    >>> isa.max_elems(F32)
    512
    >>> isa.grant_vl(100, F32)   # tail shorter than a full register
    100
    """

    name = "rvv"
    mvl_bits = 16384
    num_vector_registers = 32
    num_predicate_registers = 0
    has_sw_prefetch = False
    has_register_transpose = False

    def validate_vlen(self, vlen_bits: int) -> None:
        if not is_power_of_two(vlen_bits):
            raise ValueError(
                f"RVV vlen must be a power of two, got {vlen_bits}"
            )
        if vlen_bits < 64:
            raise ValueError(f"RVV vlen must be at least 64 bits, got {vlen_bits}")
        if vlen_bits > self.mvl_bits:
            raise ValueError(
                f"RVV vlen {vlen_bits} exceeds the architectural MVL "
                f"{self.mvl_bits}"
            )

    def grant_vl(self, requested_elems: int, etype: ElementType) -> int:
        """``vsetvl``: grant ``min(rvl, vlen/sew)`` elements.

        The real instruction may grant fewer than the maximum for odd
        requests; like the EPI toolchain used in the paper we model the
        common ``gvl = min(rvl, VLMAX)`` behaviour.
        """
        if requested_elems < 0:
            raise ValueError("requested element count must be non-negative")
        return min(requested_elems, self.max_elems(etype))


def vsetvl(isa: RVV, rvl: int, etype: ElementType) -> int:
    """Free-function spelling of the ``vsetvl`` intrinsic (paper Fig. 2, l. 4).

    Parameters
    ----------
    isa:
        The :class:`RVV` instance describing the hardware vector length.
    rvl:
        Requested vector length in elements (remaining trip count).
    etype:
        Element type, supplying the SEW.

    Returns
    -------
    int
        The granted vector length ``gvl`` in elements.
    """
    return isa.grant_vl(rvl, etype)
