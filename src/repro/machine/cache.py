"""Set-associative cache model with LRU replacement.

This is the storage component of the simulated memory hierarchy
(Table I of the paper: 64 KB 4-way L1, 1 MB-256 MB 8/16-way L2, 64 B or
256 B lines).  The model is functional-state only — *timing* is applied
by :class:`repro.machine.hierarchy.MemoryHierarchy` using the hit/miss
outcome returned here.

Implementation notes (hot path)
-------------------------------
``access`` is called once per cache line touched by every memory event in
a simulation, so it is written for speed: each set is a plain Python dict
mapping line address -> dirty flag, ordered LRU -> MRU (dict insertion
order).  Membership, LRU refresh (pop + reinsert) and LRU eviction
(``next(iter(set))``) are all O(1), which matters most for the RVV
VectorCache — a 32-way fully-associative set that a list scan would walk
on every single vector line touch.
"""

from __future__ import annotations

from .latency import BASE_L2_LATENCY

__all__ = ["SetAssocCache"]


class SetAssocCache:
    """A single level of set-associative, write-back, write-allocate cache.

    Parameters
    ----------
    size_bytes:
        Total capacity.  Must be a multiple of ``assoc * line_bytes``.
    assoc:
        Associativity (ways per set).
    line_bytes:
        Cache-line size in bytes.
    latency:
        Hit latency in cycles (used by the hierarchy's timing).
    name:
        Label used in stats and error messages.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "assoc",
        "line_bytes",
        "latency",
        "num_sets",
        "_sets",
        "hits",
        "misses",
        "writebacks",
        "prefetch_fills",
    )

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
        latency: int = BASE_L2_LATENCY,
        name: str = "cache",
    ):
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} is not a multiple of "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        # One dict per set: line address -> dirty flag, LRU -> MRU order.
        self._sets = [{} for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0

    # ------------------------------------------------------------------
    def access(self, line_addr: int, write: bool = False) -> bool:
        """Demand access to *line_addr* (already line-granular).

        Returns ``True`` on hit.  A miss allocates the line (write-allocate)
        and evicts the LRU way, recording a writeback if it was dirty.
        """
        ways = self._sets[line_addr % self.num_sets]
        dirty = ways.pop(line_addr, None)
        if dirty is not None:
            # LRU update: reinsertion moves the line to the MRU position.
            ways[line_addr] = dirty or write
            self.hits += 1
            return True
        self.misses += 1
        ways[line_addr] = write
        if len(ways) > self.assoc and ways.pop(next(iter(ways))):
            self.writebacks += 1
        return False

    def fill(self, line_addr: int) -> bool:
        """Prefetch fill: insert *line_addr* without counting a demand access.

        Returns ``True`` when the line was newly inserted (i.e. the
        prefetch was useful work, not a duplicate of a resident line).
        """
        ways = self._sets[line_addr % self.num_sets]
        if line_addr in ways:
            return False
        ways[line_addr] = False
        self.prefetch_fills += 1
        if len(ways) > self.assoc and ways.pop(next(iter(ways))):
            self.writebacks += 1
        return True

    def contains(self, line_addr: int) -> bool:
        """Whether *line_addr* is resident (no LRU update, no stats)."""
        return line_addr in self._sets[line_addr % self.num_sets]

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the raw hit/miss counters (state is kept)."""
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0

    def flush(self) -> None:
        """Invalidate all lines and clear dirty state (stats kept).

        Clears the set dicts *in place* so that hot-path code holding a
        direct reference to a set (see ``MemoryHierarchy``) stays valid.
        """
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        """Total demand accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Raw demand miss rate (0 when there were no accesses)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def resident_lines(self) -> int:
        """Number of lines currently resident (for capacity tests)."""
        return sum(len(ways) for ways in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssocCache({self.name}, {self.size_bytes >> 10}KB, "
            f"{self.assoc}-way, {self.line_bytes}B lines)"
        )
