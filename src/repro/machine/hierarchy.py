"""Two-level memory hierarchy with ISA-specific VPU integration.

Table I and Section III-A of the paper describe two integration styles:

* **RVV @ gem5** — the VPU is *decoupled* and attached to the **L2**: all
  vector loads/stores bypass the L1 and stream through a small (2 KB)
  VectorCache into the L2.  Consequence (Section VI-A): BLIS-style L1
  blocking is useless to vector code, which is why the 6-loop GEMM does
  not beat the 3-loop GEMM on RVV.
* **SVE** — vector data is accessed **through the L1** like scalar data,
  so cache blocking and prefetching pay off (Section VI-C).

Scalar accesses always travel L1 -> L2 -> DRAM.

Each access method returns ``(latency_sum, occupancy, stats)``:
``latency_sum`` accumulates per-line hit/miss latencies (the simulator
divides it by the machine's memory-level parallelism to get exposed
stall), ``occupancy`` is a pair ``(l1_fill, dram_fill)`` of
*fill-bandwidth* costs for moving whole cache lines between levels —
bandwidth cannot be hidden by MLP; the simulator nets the L1-fill
component against the useful transfer already priced, so only *wasted*
fill (partially-used lines, e.g. 64 useful bytes of an A64FX 256-byte
line) costs extra — and
``stats`` is a 6-tuple ``(l1_hits, l1_misses, l2_hits, l2_misses,
dram_fills, vc_hits)`` over the lines the access touches.

.. warning:: Lock-step with :mod:`repro.machine.replay`.  The trace
   replay engines duplicate this module's L2 walk — set indexing,
   eviction, dirty-bit and resident-range handling, including the
   order of ``_range_hit`` LRU refreshes — so that replayed sweeps are
   *bitwise identical* to direct simulation.  Any behavioural change
   here (or in accumulation order) must be mirrored in replay.py's
   point passes; ``tests/test_trace_replay.py`` is the tripwire.
"""

from __future__ import annotations

from .cache import SetAssocCache
from .config import MachineConfig
from .prefetcher import NullPrefetcher, StreamPrefetcher

__all__ = ["MemoryHierarchy", "AccessStats", "Tlb"]


class AccessStats:
    """Index names for the stats tuples returned by the hierarchy."""

    L1_HITS = 0
    L1_MISSES = 1
    L2_HITS = 2
    L2_MISSES = 3
    DRAM = 4
    VC_HITS = 5


#: Latency of a VectorCache (staging buffer) hit, cycles.
_VC_HIT_LATENCY = 2


class Tlb:
    """LRU data-TLB (see :class:`repro.machine.config.TLBParams`).

    Exploits Python dict insertion order for the LRU: a hit re-inserts
    the page at the MRU end; a miss evicts the oldest entry.
    """

    __slots__ = ("entries", "shift", "penalty", "_pages", "misses", "hits")

    def __init__(self, entries: int, page_bytes: int, penalty: int):
        self.entries = entries
        self.shift = page_bytes.bit_length() - 1
        self.penalty = penalty
        self._pages = {}
        self.misses = 0
        self.hits = 0

    def access(self, addr: int, nbytes: int) -> int:
        """Translate an access; return the total miss penalty in cycles."""
        first = addr >> self.shift
        last = (addr + nbytes - 1) >> self.shift
        pages = self._pages
        cost = 0
        for page in range(first, last + 1):
            if page in pages:
                del pages[page]  # refresh LRU position
                pages[page] = True
                self.hits += 1
            else:
                self.misses += 1
                cost += self.penalty
                pages[page] = True
                if len(pages) > self.entries:
                    del pages[next(iter(pages))]
        return cost

    def flush(self) -> None:
        """Invalidate all translations."""
        self._pages.clear()


class MemoryHierarchy:
    """Builds and times the cache hierarchy for one machine config."""

    def __init__(self, cfg: MachineConfig):
        self.cfg = cfg
        self.l1 = SetAssocCache(
            cfg.l1.size_bytes, cfg.l1.assoc, cfg.l1.line_bytes, cfg.l1.latency, "L1"
        )
        self.l2 = SetAssocCache(
            cfg.l2.size_bytes, cfg.l2.assoc, cfg.l2.line_bytes, cfg.l2.latency, "L2"
        )
        if cfg.vpu.mem_port == "L2" and cfg.vpu.vector_cache_bytes:
            vc_bytes = cfg.vpu.vector_cache_bytes
            lines = max(1, vc_bytes // cfg.l2.line_bytes)
            # The VectorCache is a small fully-associative staging buffer.
            self.vector_cache = SetAssocCache(
                vc_bytes, lines, cfg.l2.line_bytes, _VC_HIT_LATENCY, "VectorCache"
            )
        else:
            self.vector_cache = None
        self.l1_prefetcher = (
            StreamPrefetcher(
                cfg.l1_prefetcher.num_streams,
                cfg.l1_prefetcher.degree,
                cfg.l1_prefetcher.trigger,
            )
            if cfg.l1_prefetcher
            else NullPrefetcher()
        )
        self.l2_prefetcher = (
            StreamPrefetcher(
                cfg.l2_prefetcher.num_streams,
                cfg.l2_prefetcher.degree,
                cfg.l2_prefetcher.trigger,
            )
            if cfg.l2_prefetcher
            else NullPrefetcher()
        )
        self.tlb = (
            Tlb(cfg.tlb.entries, cfg.tlb.page_bytes, cfg.tlb.miss_penalty)
            if cfg.tlb
            else None
        )
        self._l1_shift = cfg.l1.line_bytes.bit_length() - 1
        self._l2_shift = cfg.l2.line_bytes.bit_length() - 1
        # Hot-path constants, hoisted out of the per-line loops.
        self._l1_lat = cfg.l1.latency
        self._l2_lat = cfg.l2.latency
        self._dram_lat = cfg.dram_latency
        self._fill_l1 = cfg.l1.line_bytes / cfg.l2_to_l1_bytes_per_cycle
        self._fill_l2 = cfg.l2.line_bytes / cfg.dram_bytes_per_cycle
        self._l1_l2_ratio = cfg.l2.line_bytes // cfg.l1.line_bytes
        # The VectorCache is fully associative (lines == assoc), i.e. a
        # single set; the access paths manipulate that dict directly.
        # Cache.flush() clears sets in place, so the reference stays valid.
        self._vc_set = self.vector_cache._sets[0] if self.vector_cache else None
        self._pf1_on = not isinstance(self.l1_prefetcher, NullPrefetcher)
        self._pf2_on = not isinstance(self.l2_prefetcher, NullPrefetcher)
        # Pre-resolved access paths (the VPU integration is fixed per
        # config): callers on the simulator hot path bind these directly
        # instead of going through the dispatching wrappers below.
        self.scalar_path = self._l1_path
        if cfg.vpu.mem_port == "L1":
            self.vector_path = self._l1_path
            self.strided_vector_path = self._strided_l1_path
        else:
            self.vector_path = self._l2_path
            self.strided_vector_path = self._strided_l2_path
        # Coarse residency ranges (see note_resident_range): [start, end),
        # most recently used last.  Total bytes bounded by the L2 size.
        self._ranges = []
        self._range_budget = cfg.l2.size_bytes

    @classmethod
    def pricing_view(cls, cfg: MachineConfig) -> "MemoryHierarchy":
        """A hierarchy shell for replay point passes that never touch
        cache structure: the residency-range model plus the hoisted
        timing constants, nothing else.

        ``SetAssocCache`` allocates one dict per set, so a full
        ``MemoryHierarchy`` for a 256 MB L2 builds half a million empty
        dicts — prohibitive when a conflict-free point pass only reads
        three scalars and walks the byte-range model.  The constants
        below are computed by the exact expressions ``__init__`` uses,
        so pricing stays bitwise identical.
        """
        self = cls.__new__(cls)
        self.cfg = cfg
        self._l1_lat = cfg.l1.latency
        self._l2_lat = cfg.l2.latency
        self._dram_lat = cfg.dram_latency
        self._fill_l1 = cfg.l1.line_bytes / cfg.l2_to_l1_bytes_per_cycle
        self._fill_l2 = cfg.l2.line_bytes / cfg.dram_bytes_per_cycle
        self._ranges = []
        self._range_budget = cfg.l2.size_bytes
        return self

    # ------------------------------------------------------------------
    # Coarse residency model
    # ------------------------------------------------------------------
    # Loop *sampling* in the trace kernels (see simulator.py) touches only
    # a subset of a buffer's lines, which would make inter-kernel reuse
    # invisible to the line-level cache state: im2col writes the workspace
    # and GEMM immediately re-reads it; Darknet reuses the same workspace
    # and activation buffers across layers; Winograd re-streams its U
    # tiles every tile iteration.  Whether those re-reads hit is purely a
    # question of whether the buffer still fits in the L2 — which this
    # byte-range model answers exactly, at O(#buffers) cost.  A demand
    # miss that falls inside a registered range is priced as an L2 hit.

    def note_resident_range(self, base: int, nbytes: int) -> None:
        """Declare that ``[base, base+nbytes)`` was just streamed through
        the L2 (written or fully read).  If the range exceeds the L2
        capacity only its tail survives, and older ranges are evicted
        LRU-first until the total fits."""
        if nbytes <= 0:
            return
        end = base + nbytes
        start = max(base, end - self._range_budget)
        # Drop any overlapping older registration.
        self._ranges = [r for r in self._ranges if r[1] <= start or r[0] >= end]
        self._ranges.append([start, end])
        total = sum(r[1] - r[0] for r in self._ranges)
        while total > self._range_budget and len(self._ranges) > 1:
            victim = self._ranges.pop(0)
            total -= victim[1] - victim[0]
        if total > self._range_budget:
            r = self._ranges[0]
            r[0] = r[1] - self._range_budget

    def _range_hit(self, addr: int) -> bool:
        ranges = self._ranges
        for i in range(len(ranges) - 1, -1, -1):
            r = ranges[i]
            if r[0] <= addr < r[1]:
                if i != len(ranges) - 1:
                    ranges.append(ranges.pop(i))  # LRU refresh
                return True
        return False

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def scalar_access(self, addr: int, nbytes: int, write: bool = False):
        """Scalar-side access: L1 -> L2 -> DRAM.

        Returns ``(latency, occupancy, stats)``.
        """
        return self._l1_path(addr, nbytes, write)

    def vector_access(self, addr: int, nbytes: int, write: bool = False):
        """Vector-side access; the path depends on the VPU integration."""
        if self.cfg.vpu.mem_port == "L1":
            return self._l1_path(addr, nbytes, write)
        return self._l2_path(addr, nbytes, write)

    # The four path methods below inline :meth:`SetAssocCache.access`
    # (dict pop / reinsert, LRU eviction, dirty merge) instead of calling
    # it: they run once per cache line of every memory event in a
    # simulation, and the call overhead plus live counter updates
    # dominate the profile.  ``SetAssocCache.access`` remains the
    # reference semantics — keep them in lock-step.  Cache-object
    # hit/miss/writeback counters are accumulated in locals and flushed
    # once per call (addition commutes, and nothing reads them mid-call).

    def _l1_path(self, addr: int, nbytes: int, write: bool):
        shift = self._l1_shift
        first = addr >> shift
        if (addr + nbytes - 1) >> shift == first:
            return self._l1_one_line(addr, nbytes, first, write)
        tlb_cost = self.tlb.access(addr, nbytes) if self.tlb else 0
        l1, l2 = self.l1, self.l2
        l1_sets, l1_num, l1_assoc = l1._sets, l1.num_sets, l1.assoc
        l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
        pf1 = self.l1_prefetcher if self._pf1_on else None
        pf2 = self.l2_prefetcher if self._pf2_on else None
        shift = self._l1_shift
        l1_lat = self._l1_lat
        l1_l2_lat = l1_lat + self._l2_lat
        l1_l2_dram_lat = l1_l2_lat + self._dram_lat
        fill_l1 = self._fill_l1
        fill_l2 = self._fill_l2
        first = addr >> shift
        last = (addr + nbytes - 1) >> shift
        ratio = self._l1_l2_ratio  # L2 lines may be wider (equal here)
        range_hit = self._range_hit
        lat = tlb_cost
        occ1 = 0.0
        occ2 = 0.0
        l1h = l1m = l2h = l2m = dram = 0
        l1_wb = l2m_o = l2_wb = 0
        for la in range(first, last + 1):
            ways = l1_sets[la % l1_num]
            dirty = ways.pop(la, None)
            if dirty is not None:
                ways[la] = dirty or write
                lat += l1_lat
                l1h += 1
                continue
            ways[la] = write
            if len(ways) > l1_assoc and ways.pop(next(iter(ways))):
                l1_wb += 1
            l1m += 1
            if pf1 is not None:
                pf1.observe(l1, la)
            occ1 += fill_l1
            l2a = la // ratio if ratio > 1 else la
            ways2 = l2_sets[l2a % l2_num]
            dirty2 = ways2.pop(l2a, None)
            if dirty2 is not None:
                ways2[l2a] = dirty2 or write
                hit2 = True
            else:
                l2m_o += 1
                ways2[l2a] = write
                if len(ways2) > l2_assoc and ways2.pop(next(iter(ways2))):
                    l2_wb += 1
                hit2 = range_hit(la << shift)
            if hit2:
                lat += l1_l2_lat
                l2h += 1
            else:
                l2m += 1
                dram += 1
                if pf2 is not None:
                    pf2.observe(l2, l2a)
                occ2 += fill_l2
                lat += l1_l2_dram_lat
        l1.hits += l1h
        l1.misses += l1m
        l1.writebacks += l1_wb
        l2.hits += l1m - l2m_o
        l2.misses += l2m_o
        l2.writebacks += l2_wb
        return lat, (occ1, occ2), (l1h, l1m, l2h, l2m, dram, 0)

    def _l1_one_line(self, addr: int, nbytes: int, la: int, write: bool):
        """Single-line specialization of :meth:`_l1_path`.

        Scalar loads/stores are overwhelmingly single-line (and mostly
        L1 hits), so the common case skips the multi-line prologue and
        the per-line loop entirely.  Side effects and arithmetic mirror
        one iteration of :meth:`_l1_path` exactly.
        """
        tlb = self.tlb
        lat = 0
        if tlb is not None:
            page = addr >> tlb.shift
            pages = tlb._pages
            if page in pages and (addr + nbytes - 1) >> tlb.shift == page:
                del pages[page]  # refresh LRU position
                pages[page] = True
                tlb.hits += 1
            else:
                lat = tlb.access(addr, nbytes)
        l1 = self.l1
        ways = l1._sets[la % l1.num_sets]
        dirty = ways.pop(la, None)
        if dirty is not None:
            ways[la] = dirty or write
            l1.hits += 1
            return lat + self._l1_lat, (0.0, 0.0), (1, 0, 0, 0, 0, 0)
        l1.misses += 1
        ways[la] = write
        if len(ways) > l1.assoc and ways.pop(next(iter(ways))):
            l1.writebacks += 1
        if self._pf1_on:
            self.l1_prefetcher.observe(l1, la)
        occ1 = 0.0 + self._fill_l1
        ratio = self._l1_l2_ratio
        l2a = la // ratio if ratio > 1 else la
        l2 = self.l2
        ways2 = l2._sets[l2a % l2.num_sets]
        dirty2 = ways2.pop(l2a, None)
        if dirty2 is not None:
            ways2[l2a] = dirty2 or write
            l2.hits += 1
            return (
                lat + self._l1_lat + self._l2_lat,
                (occ1, 0.0),
                (0, 1, 1, 0, 0, 0),
            )
        l2.misses += 1
        ways2[l2a] = write
        if len(ways2) > l2.assoc and ways2.pop(next(iter(ways2))):
            l2.writebacks += 1
        if self._range_hit(la << self._l1_shift):
            return (
                lat + self._l1_lat + self._l2_lat,
                (occ1, 0.0),
                (0, 1, 1, 0, 0, 0),
            )
        if self._pf2_on:
            self.l2_prefetcher.observe(l2, l2a)
        return (
            lat + self._l1_lat + self._l2_lat + self._dram_lat,
            (occ1, 0.0 + self._fill_l2),
            (0, 1, 0, 1, 1, 0),
        )

    def _l2_path(self, addr: int, nbytes: int, write: bool):
        """RVV decoupled-VPU path: VectorCache -> L2 -> DRAM (L1 bypassed).

        A VectorCache *miss* write-allocates the line (that is what
        staging means here), so no separate fill step is needed after the
        L2 lookup — the line is already resident for the next access.
        """
        tlb = self.tlb
        if tlb is not None:
            page = addr >> tlb.shift
            pages = tlb._pages
            if page in pages and (addr + nbytes - 1) >> tlb.shift == page:
                del pages[page]  # refresh LRU position
                pages[page] = True
                tlb.hits += 1
                tlb_cost = 0
            else:
                tlb_cost = tlb.access(addr, nbytes)
        else:
            tlb_cost = 0
        vc, l2 = self.vector_cache, self.l2
        vc_set = self._vc_set
        l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
        shift = self._l2_shift
        l2_lat = self._l2_lat
        l2_dram_lat = l2_lat + self._dram_lat
        fill_l2 = self._fill_l2
        range_hit = self._range_hit
        ranges = self._ranges
        first = addr >> shift
        last = (addr + nbytes - 1) >> shift
        lat = tlb_cost
        occ2 = 0.0
        l2h = l2m = dram = vch = 0
        vc_wb = l2h_o = l2m_o = l2_wb = 0
        if vc_set is not None:
            # The VC is a single fully-associative set at steady-state
            # capacity; its size is tracked in a local (a hit leaves it
            # unchanged, a miss either evicts or grows it) to avoid a
            # len() call per line.
            vc_assoc = vc.assoc
            vc_pop = vc_set.pop
            vc_len = len(vc_set)
            for la in range(first, last + 1):
                dirty = vc_pop(la, None)
                if dirty is not None:
                    vc_set[la] = dirty or write
                    lat += _VC_HIT_LATENCY
                    vch += 1
                    continue
                vc_set[la] = write
                if vc_len >= vc_assoc:
                    if vc_pop(next(iter(vc_set))):
                        vc_wb += 1
                else:
                    vc_len += 1
                ways = l2_sets[la % l2_num]
                dirty = ways.pop(la, None)
                if dirty is not None:
                    ways[la] = dirty or write
                    l2h_o += 1
                    lat += l2_lat
                    l2h += 1
                    continue
                l2m_o += 1
                ways[la] = write
                if len(ways) > l2_assoc and ways.pop(next(iter(ways))):
                    l2_wb += 1
                # MRU-range fast path: _range_hit walks newest-first and
                # does not reorder on a last-entry hit, so checking it
                # inline is equivalent.
                a = la << shift
                if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                    lat += l2_lat
                    l2h += 1
                else:
                    l2m += 1
                    dram += 1
                    occ2 += fill_l2
                    lat += l2_dram_lat
        else:
            for la in range(first, last + 1):
                ways = l2_sets[la % l2_num]
                dirty = ways.pop(la, None)
                if dirty is not None:
                    ways[la] = dirty or write
                    l2h_o += 1
                    lat += l2_lat
                    l2h += 1
                    continue
                l2m_o += 1
                ways[la] = write
                if len(ways) > l2_assoc and ways.pop(next(iter(ways))):
                    l2_wb += 1
                # MRU-range fast path: _range_hit walks newest-first and
                # does not reorder on a last-entry hit, so checking it
                # inline is equivalent.
                a = la << shift
                if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                    lat += l2_lat
                    l2h += 1
                else:
                    l2m += 1
                    dram += 1
                    occ2 += fill_l2
                    lat += l2_dram_lat
        if vc is not None:
            vc.hits += vch
            vc.misses += l2h_o + l2m_o
            vc.writebacks += vc_wb
        l2.hits += l2h_o
        l2.misses += l2m_o
        l2.writebacks += l2_wb
        return lat, (0.0, occ2), (0, 0, l2h, l2m, dram, vch)

    # ------------------------------------------------------------------
    # Bulk strided access
    # ------------------------------------------------------------------
    def strided_vector_access(
        self, addr: int, n_elems: int, ew: int, stride: int, write: bool = False
    ):
        """Bulk vector-side access of *n_elems* elements of width *ew* at
        byte distance *stride*, as issued by one strided load/store or
        gather/scatter.

        Numerically identical to ``n_elems`` successive
        :meth:`vector_access` calls at ``addr + i * stride`` with the
        partial latencies / occupancies / stats summed — but evaluated in
        one pass: consecutive elements that fall on the line just touched
        (``stride < line_bytes``) take a deduplicated fast path that
        charges the guaranteed hit directly instead of re-walking the
        lookup machinery, and the same-page TLB refresh is likewise
        short-circuited.  Returns the same ``(latency, occupancy, stats)``
        triple as :meth:`vector_access`.
        """
        if self.cfg.vpu.mem_port == "L1":
            return self._strided_l1_path(addr, n_elems, ew, stride, write)
        return self._strided_l2_path(addr, n_elems, ew, stride, write)

    def _strided_l1_path(self, addr: int, n_elems: int, ew: int, stride: int, write: bool):
        l1, l2 = self.l1, self.l2
        l1_sets, l1_num, l1_assoc = l1._sets, l1.num_sets, l1.assoc
        l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
        pf1 = self.l1_prefetcher if self._pf1_on else None
        pf2 = self.l2_prefetcher if self._pf2_on else None
        tlb = self.tlb
        tlb_shift = tlb.shift if tlb is not None else 0
        shift = self._l1_shift
        l1_lat = self._l1_lat
        l1_l2_lat = l1_lat + self._l2_lat
        l1_l2_dram_lat = l1_l2_lat + self._dram_lat
        fill_l1 = self._fill_l1
        fill_l2 = self._fill_l2
        ratio = self._l1_l2_ratio
        range_hit = self._range_hit
        lat = 0
        occ1 = 0.0
        occ2 = 0.0
        l1h = l1m = l2h = l2m = dram = 0
        l1_wb = l2m_o = l2_wb = 0
        prev_line = -1
        prev_page = -1
        for i in range(n_elems):
            a = addr + i * stride
            end = a + ew - 1
            if tlb is not None:
                page = a >> tlb_shift
                if page == prev_page and (end >> tlb_shift) == page:
                    tlb.hits += 1  # page is MRU from the previous element
                else:
                    lat += tlb.access(a, ew)
                    prev_page = page if (end >> tlb_shift) == page else -1
            first = a >> shift
            last = end >> shift
            if first == last == prev_line:
                # Deduplicated line: normally still resident from the
                # previous element (write-allocate); refresh LRU and merge
                # the dirty bit exactly as access() would.  If prefetch
                # fills evicted it in between (only possible in degenerate
                # single-set geometries), fall through to the miss path.
                ways = l1_sets[first % l1_num]
                dirty = ways.pop(first, None)
                if dirty is not None:
                    ways[first] = dirty or write
                    lat += l1_lat
                    l1h += 1
                    continue
            for la in range(first, last + 1):
                ways = l1_sets[la % l1_num]
                dirty = ways.pop(la, None)
                if dirty is not None:
                    ways[la] = dirty or write
                    lat += l1_lat
                    l1h += 1
                    continue
                ways[la] = write
                if len(ways) > l1_assoc and ways.pop(next(iter(ways))):
                    l1_wb += 1
                l1m += 1
                if pf1 is not None:
                    pf1.observe(l1, la)
                occ1 += fill_l1
                l2a = la // ratio if ratio > 1 else la
                ways2 = l2_sets[l2a % l2_num]
                dirty2 = ways2.pop(l2a, None)
                if dirty2 is not None:
                    ways2[l2a] = dirty2 or write
                    hit2 = True
                else:
                    l2m_o += 1
                    ways2[l2a] = write
                    if len(ways2) > l2_assoc and ways2.pop(next(iter(ways2))):
                        l2_wb += 1
                    hit2 = range_hit(la << shift)
                if hit2:
                    lat += l1_l2_lat
                    l2h += 1
                else:
                    l2m += 1
                    dram += 1
                    if pf2 is not None:
                        pf2.observe(l2, l2a)
                    occ2 += fill_l2
                    lat += l1_l2_dram_lat
            prev_line = last
        l1.hits += l1h
        l1.misses += l1m
        l1.writebacks += l1_wb
        l2.hits += l1m - l2m_o
        l2.misses += l2m_o
        l2.writebacks += l2_wb
        return lat, (occ1, occ2), (l1h, l1m, l2h, l2m, dram, 0)

    def _strided_l2_path(self, addr: int, n_elems: int, ew: int, stride: int, write: bool):
        vc, l2 = self.vector_cache, self.l2
        vc_set = self._vc_set
        vc_assoc = vc.assoc if vc is not None else 0
        l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
        tlb = self.tlb
        tlb_shift = tlb.shift if tlb is not None else 0
        shift = self._l2_shift
        l2_lat = self._l2_lat
        l2_dram_lat = l2_lat + self._dram_lat
        fill_l2 = self._fill_l2
        range_hit = self._range_hit
        lat = 0
        occ2 = 0.0
        l2h = l2m = dram = vch = 0
        vc_wb = l2h_o = l2m_o = l2_wb = 0
        prev_line = -1
        prev_page = -1
        for i in range(n_elems):
            a = addr + i * stride
            end = a + ew - 1
            if tlb is not None:
                page = a >> tlb_shift
                if page == prev_page and (end >> tlb_shift) == page:
                    tlb.hits += 1
                else:
                    lat += tlb.access(a, ew)
                    prev_page = page if (end >> tlb_shift) == page else -1
            first = a >> shift
            last = end >> shift
            if first == last == prev_line:
                # Deduplicated line: the previous element left it resident
                # (and MRU) in the cache that served it — a guaranteed hit.
                if vc_set is not None:
                    vc_set[first] = vc_set.pop(first) or write
                    lat += _VC_HIT_LATENCY
                    vch += 1
                else:
                    ways = l2_sets[first % l2_num]
                    ways[first] = ways.pop(first) or write
                    l2h_o += 1
                    lat += l2_lat
                    l2h += 1
                continue
            for la in range(first, last + 1):
                if vc_set is not None:
                    dirty = vc_set.pop(la, None)
                    if dirty is not None:
                        vc_set[la] = dirty or write
                        lat += _VC_HIT_LATENCY
                        vch += 1
                        continue
                    vc_set[la] = write
                    if len(vc_set) > vc_assoc and vc_set.pop(next(iter(vc_set))):
                        vc_wb += 1
                ways = l2_sets[la % l2_num]
                dirty = ways.pop(la, None)
                if dirty is not None:
                    ways[la] = dirty or write
                    l2h_o += 1
                    hit = True
                else:
                    l2m_o += 1
                    ways[la] = write
                    if len(ways) > l2_assoc and ways.pop(next(iter(ways))):
                        l2_wb += 1
                    hit = range_hit(la << shift)
                if hit:
                    lat += l2_lat
                    l2h += 1
                else:
                    l2m += 1
                    dram += 1
                    occ2 += fill_l2
                    lat += l2_dram_lat
            prev_line = last
        if vc is not None:
            vc.hits += vch
            vc.misses += l2h_o + l2m_o
            vc.writebacks += vc_wb
        l2.hits += l2h_o
        l2.misses += l2m_o
        l2.writebacks += l2_wb
        return lat, (0.0, occ2), (0, 0, l2h, l2m, dram, vch)

    # ------------------------------------------------------------------
    # Software prefetch
    # ------------------------------------------------------------------
    def sw_prefetch(self, addr: int, nbytes: int, level: str = "L1") -> int:
        """Honour a software prefetch hint into *level* (``"L1"``/``"L2"``).

        Returns the number of lines filled.  The caller is responsible for
        checking :attr:`MachineConfig.honors_sw_prefetch` — on gem5 these
        are no-ops and on RVV the compiler deletes them (Section IV-A).
        """
        if level == "L1":
            cache, shift = self.l1, self._l1_shift
        elif level == "L2":
            cache, shift = self.l2, self._l2_shift
        else:
            raise ValueError(f"unknown prefetch level {level!r}")
        first = addr >> shift
        last = (addr + nbytes - 1) >> shift
        filled = 0
        for la in range(first, last + 1):
            # Prefetching into L1 implies the line also lands in L2
            # (inclusive hierarchy).
            if cache is self.l1:
                ratio = self.cfg.l2.line_bytes // self.cfg.l1.line_bytes
                self.l2.fill(la // ratio if ratio > 1 else la)
            if cache.fill(la):
                filled += 1
        return filled

    def flush(self) -> None:
        """Invalidate all cache state (between independent simulations)."""
        self.l1.flush()
        self.l2.flush()
        if self.vector_cache is not None:
            self.vector_cache.flush()
        self.l1_prefetcher.reset()
        self.l2_prefetcher.reset()
        self._ranges.clear()
        if self.tlb:
            self.tlb.flush()
