"""Two-level memory hierarchy with ISA-specific VPU integration.

Table I and Section III-A of the paper describe two integration styles:

* **RVV @ gem5** — the VPU is *decoupled* and attached to the **L2**: all
  vector loads/stores bypass the L1 and stream through a small (2 KB)
  VectorCache into the L2.  Consequence (Section VI-A): BLIS-style L1
  blocking is useless to vector code, which is why the 6-loop GEMM does
  not beat the 3-loop GEMM on RVV.
* **SVE** — vector data is accessed **through the L1** like scalar data,
  so cache blocking and prefetching pay off (Section VI-C).

Scalar accesses always travel L1 -> L2 -> DRAM.

Each access method returns ``(latency_sum, occupancy, stats)``:
``latency_sum`` accumulates per-line hit/miss latencies (the simulator
divides it by the machine's memory-level parallelism to get exposed
stall), ``occupancy`` is a pair ``(l1_fill, dram_fill)`` of
*fill-bandwidth* costs for moving whole cache lines between levels —
bandwidth cannot be hidden by MLP; the simulator nets the L1-fill
component against the useful transfer already priced, so only *wasted*
fill (partially-used lines, e.g. 64 useful bytes of an A64FX 256-byte
line) costs extra — and
``stats`` is a 6-tuple ``(l1_hits, l1_misses, l2_hits, l2_misses,
dram_fills, vc_hits)`` over the lines the access touches.
"""

from __future__ import annotations

from .cache import SetAssocCache
from .config import MachineConfig
from .prefetcher import NullPrefetcher, StreamPrefetcher

__all__ = ["MemoryHierarchy", "AccessStats", "Tlb"]


class AccessStats:
    """Index names for the stats tuples returned by the hierarchy."""

    L1_HITS = 0
    L1_MISSES = 1
    L2_HITS = 2
    L2_MISSES = 3
    DRAM = 4
    VC_HITS = 5


#: Latency of a VectorCache (staging buffer) hit, cycles.
_VC_HIT_LATENCY = 2


class Tlb:
    """LRU data-TLB (see :class:`repro.machine.config.TLBParams`).

    Exploits Python dict insertion order for the LRU: a hit re-inserts
    the page at the MRU end; a miss evicts the oldest entry.
    """

    __slots__ = ("entries", "shift", "penalty", "_pages", "misses", "hits")

    def __init__(self, entries: int, page_bytes: int, penalty: int):
        self.entries = entries
        self.shift = page_bytes.bit_length() - 1
        self.penalty = penalty
        self._pages = {}
        self.misses = 0
        self.hits = 0

    def access(self, addr: int, nbytes: int) -> int:
        """Translate an access; return the total miss penalty in cycles."""
        first = addr >> self.shift
        last = (addr + nbytes - 1) >> self.shift
        pages = self._pages
        cost = 0
        for page in range(first, last + 1):
            if page in pages:
                del pages[page]  # refresh LRU position
                pages[page] = True
                self.hits += 1
            else:
                self.misses += 1
                cost += self.penalty
                pages[page] = True
                if len(pages) > self.entries:
                    del pages[next(iter(pages))]
        return cost

    def flush(self) -> None:
        """Invalidate all translations."""
        self._pages.clear()


class MemoryHierarchy:
    """Builds and times the cache hierarchy for one machine config."""

    def __init__(self, cfg: MachineConfig):
        self.cfg = cfg
        self.l1 = SetAssocCache(
            cfg.l1.size_bytes, cfg.l1.assoc, cfg.l1.line_bytes, cfg.l1.latency, "L1"
        )
        self.l2 = SetAssocCache(
            cfg.l2.size_bytes, cfg.l2.assoc, cfg.l2.line_bytes, cfg.l2.latency, "L2"
        )
        if cfg.vpu.mem_port == "L2" and cfg.vpu.vector_cache_bytes:
            vc_bytes = cfg.vpu.vector_cache_bytes
            lines = max(1, vc_bytes // cfg.l2.line_bytes)
            # The VectorCache is a small fully-associative staging buffer.
            self.vector_cache = SetAssocCache(
                vc_bytes, lines, cfg.l2.line_bytes, _VC_HIT_LATENCY, "VectorCache"
            )
        else:
            self.vector_cache = None
        self.l1_prefetcher = (
            StreamPrefetcher(
                cfg.l1_prefetcher.num_streams,
                cfg.l1_prefetcher.degree,
                cfg.l1_prefetcher.trigger,
            )
            if cfg.l1_prefetcher
            else NullPrefetcher()
        )
        self.l2_prefetcher = (
            StreamPrefetcher(
                cfg.l2_prefetcher.num_streams,
                cfg.l2_prefetcher.degree,
                cfg.l2_prefetcher.trigger,
            )
            if cfg.l2_prefetcher
            else NullPrefetcher()
        )
        self.tlb = (
            Tlb(cfg.tlb.entries, cfg.tlb.page_bytes, cfg.tlb.miss_penalty)
            if cfg.tlb
            else None
        )
        self._l1_shift = cfg.l1.line_bytes.bit_length() - 1
        self._l2_shift = cfg.l2.line_bytes.bit_length() - 1
        # Coarse residency ranges (see note_resident_range): [start, end),
        # most recently used last.  Total bytes bounded by the L2 size.
        self._ranges = []
        self._range_budget = cfg.l2.size_bytes

    # ------------------------------------------------------------------
    # Coarse residency model
    # ------------------------------------------------------------------
    # Loop *sampling* in the trace kernels (see simulator.py) touches only
    # a subset of a buffer's lines, which would make inter-kernel reuse
    # invisible to the line-level cache state: im2col writes the workspace
    # and GEMM immediately re-reads it; Darknet reuses the same workspace
    # and activation buffers across layers; Winograd re-streams its U
    # tiles every tile iteration.  Whether those re-reads hit is purely a
    # question of whether the buffer still fits in the L2 — which this
    # byte-range model answers exactly, at O(#buffers) cost.  A demand
    # miss that falls inside a registered range is priced as an L2 hit.

    def note_resident_range(self, base: int, nbytes: int) -> None:
        """Declare that ``[base, base+nbytes)`` was just streamed through
        the L2 (written or fully read).  If the range exceeds the L2
        capacity only its tail survives, and older ranges are evicted
        LRU-first until the total fits."""
        if nbytes <= 0:
            return
        end = base + nbytes
        start = max(base, end - self._range_budget)
        # Drop any overlapping older registration.
        self._ranges = [r for r in self._ranges if r[1] <= start or r[0] >= end]
        self._ranges.append([start, end])
        total = sum(r[1] - r[0] for r in self._ranges)
        while total > self._range_budget and len(self._ranges) > 1:
            victim = self._ranges.pop(0)
            total -= victim[1] - victim[0]
        if total > self._range_budget:
            r = self._ranges[0]
            r[0] = r[1] - self._range_budget

    def _range_hit(self, addr: int) -> bool:
        ranges = self._ranges
        for i in range(len(ranges) - 1, -1, -1):
            r = ranges[i]
            if r[0] <= addr < r[1]:
                if i != len(ranges) - 1:
                    ranges.append(ranges.pop(i))  # LRU refresh
                return True
        return False

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def scalar_access(self, addr: int, nbytes: int, write: bool = False):
        """Scalar-side access: L1 -> L2 -> DRAM.

        Returns ``(latency, occupancy, stats)``.
        """
        return self._l1_path(addr, nbytes, write)

    def vector_access(self, addr: int, nbytes: int, write: bool = False):
        """Vector-side access; the path depends on the VPU integration."""
        if self.cfg.vpu.mem_port == "L1":
            return self._l1_path(addr, nbytes, write)
        return self._l2_path(addr, nbytes, write)

    def _l1_path(self, addr: int, nbytes: int, write: bool):
        cfg = self.cfg
        tlb_cost = self.tlb.access(addr, nbytes) if self.tlb else 0
        l1, l2 = self.l1, self.l2
        pf1, pf2 = self.l1_prefetcher, self.l2_prefetcher
        line = cfg.l1.line_bytes
        fill_l1 = line / cfg.l2_to_l1_bytes_per_cycle
        fill_l2 = cfg.l2.line_bytes / cfg.dram_bytes_per_cycle
        first = addr >> self._l1_shift
        last = (addr + nbytes - 1) >> self._l1_shift
        ratio = cfg.l2.line_bytes // line  # L2 lines may be wider (equal here)
        lat = tlb_cost
        occ1 = 0.0
        occ2 = 0.0
        l1h = l1m = l2h = l2m = dram = 0
        for la in range(first, last + 1):
            if l1.access(la, write):
                lat += cfg.l1.latency
                l1h += 1
            else:
                l1m += 1
                pf1.observe(l1, la)
                occ1 += fill_l1
                l2a = la // ratio if ratio > 1 else la
                if l2.access(l2a, write) or self._range_hit(la << self._l1_shift):
                    lat += cfg.l1.latency + cfg.l2.latency
                    l2h += 1
                else:
                    l2m += 1
                    dram += 1
                    pf2.observe(l2, l2a)
                    occ2 += fill_l2
                    lat += cfg.l1.latency + cfg.l2.latency + cfg.dram_latency
        return lat, (occ1, occ2), (l1h, l1m, l2h, l2m, dram, 0)

    def _l2_path(self, addr: int, nbytes: int, write: bool):
        """RVV decoupled-VPU path: VectorCache -> L2 -> DRAM (L1 bypassed)."""
        cfg = self.cfg
        tlb_cost = self.tlb.access(addr, nbytes) if self.tlb else 0
        vc, l2 = self.vector_cache, self.l2
        fill_l2 = cfg.l2.line_bytes / cfg.dram_bytes_per_cycle
        first = addr >> self._l2_shift
        last = (addr + nbytes - 1) >> self._l2_shift
        lat = tlb_cost
        occ2 = 0.0
        l2h = l2m = dram = vch = 0
        for la in range(first, last + 1):
            if vc is not None and vc.access(la, write):
                lat += _VC_HIT_LATENCY
                vch += 1
                continue
            if l2.access(la, write) or self._range_hit(la << self._l2_shift):
                lat += cfg.l2.latency
                l2h += 1
            else:
                l2m += 1
                dram += 1
                occ2 += fill_l2
                lat += cfg.l2.latency + cfg.dram_latency
            if vc is not None:
                vc.fill(la)
        return lat, (0.0, occ2), (0, 0, l2h, l2m, dram, vch)

    # ------------------------------------------------------------------
    # Software prefetch
    # ------------------------------------------------------------------
    def sw_prefetch(self, addr: int, nbytes: int, level: str = "L1") -> int:
        """Honour a software prefetch hint into *level* (``"L1"``/``"L2"``).

        Returns the number of lines filled.  The caller is responsible for
        checking :attr:`MachineConfig.honors_sw_prefetch` — on gem5 these
        are no-ops and on RVV the compiler deletes them (Section IV-A).
        """
        if level == "L1":
            cache, shift = self.l1, self._l1_shift
        elif level == "L2":
            cache, shift = self.l2, self._l2_shift
        else:
            raise ValueError(f"unknown prefetch level {level!r}")
        first = addr >> shift
        last = (addr + nbytes - 1) >> shift
        filled = 0
        for la in range(first, last + 1):
            # Prefetching into L1 implies the line also lands in L2
            # (inclusive hierarchy).
            if cache is self.l1:
                ratio = self.cfg.l2.line_bytes // self.cfg.l1.line_bytes
                self.l2.fill(la // ratio if ratio > 1 else la)
            if cache.fill(la):
                filled += 1
        return filled

    def flush(self) -> None:
        """Invalidate all cache state (between independent simulations)."""
        self.l1.flush()
        self.l2.flush()
        if self.vector_cache is not None:
            self.vector_cache.flush()
        self.l1_prefetcher.reset()
        self.l2_prefetcher.reset()
        self._ranges.clear()
        if self.tlb:
            self.tlb.flush()
