"""Machine design points and the paper's hardware presets (Table I).

A :class:`MachineConfig` is one point in the co-design space: an ISA at a
hardware vector length, a vector processing unit (lanes, bandwidth,
integration style), a two-level cache hierarchy, and DRAM parameters.
The three presets mirror Table I of the paper:

* :func:`rvv_gem5`  — RISC-V Vector on gem5: in-order core, *decoupled*
  VPU attached to the **L2** through a 2 KB VectorCache, no prefetch,
  vlen up to 16384 bits, 2-8 vector lanes;
* :func:`sve_gem5`  — ARM-SVE on gem5: in-order core, VPU fed through the
  **L1**, lanes proportional to the vector length, software prefetch
  instructions become no-ops (gem5 limitation, Section IV-A);
* :func:`a64fx`     — Fujitsu A64FX: out-of-order, 2x512-bit SIMD pipes,
  256 B lines, 8 MB L2, hardware stream prefetcher, software prefetch
  honoured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..isa import VectorISA, make_isa
from .latency import latency_for

__all__ = [
    "CacheParams",
    "PrefetcherParams",
    "TLBParams",
    "VPUParams",
    "CoreParams",
    "MachineConfig",
    "rvv_gem5",
    "sve_gem5",
    "a64fx",
    "MB",
    "KB",
]

KB = 1 << 10
MB = 1 << 20


@dataclass(frozen=True)
class CacheParams:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    def __post_init__(self):
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not a multiple of "
                f"assoc*line = {self.assoc * self.line_bytes}"
            )


@dataclass(frozen=True)
class PrefetcherParams:
    """Hardware stream-prefetcher parameters (see ``prefetcher.py``)."""

    num_streams: int = 8
    degree: int = 4
    trigger: int = 2


@dataclass(frozen=True)
class VPUParams:
    """Vector processing unit parameters.

    Attributes
    ----------
    lanes:
        Number of 64-bit datapath lanes; f32 elements per cycle is
        ``2 * lanes`` per pipe.
    pipes:
        Parallel SIMD pipelines (A64FX has 2, gem5 models 1).
    mem_port:
        ``"L1"`` or ``"L2"`` — which cache level feeds the VPU.  RVV on
        gem5 attaches the VPU to the L2 (through the VectorCache); SVE
        reads vector data through the L1 (paper Section III-A).
    vector_cache_bytes:
        Size of the RVV VectorCache staging buffer (0 disables it).
    port_bytes_per_cycle:
        Peak bytes/cycle between the memory port and the VPU.
    mlp:
        Memory-level parallelism: how many outstanding line fills overlap
        (divides accumulated miss latency).  Higher on the decoupled RVV
        VPU and on the out-of-order A64FX.
    mem_issue_overhead:
        Fixed cycles per vector memory instruction (address generation,
        dispatch to the memory pipeline).
    issue_overhead:
        Cycles the scalar front-end spends dispatching *each* vector
        instruction to the VPU.  Large on a decoupled VPU (the RVV design
        the paper simulates), small on a tightly-integrated SVE pipeline,
        fractional on an OoO core.  Long vector lengths amortize this —
        the first-order mechanism behind Fig. 6's 2.5x scaling.
    """

    lanes: int = 8
    pipes: int = 1
    mem_port: str = "L1"
    vector_cache_bytes: int = 0
    port_bytes_per_cycle: int = 64
    mlp: float = 4.0
    mem_issue_overhead: int = 2
    issue_overhead: float = 1.0
    #: Execution datapath width in bytes/cycle per pipe; ``None`` derives
    #: it from ``lanes`` (8 bytes per 64-bit lane).  gem5's MinorCPU
    #: executes wide SVE operations as fixed-width micro-ops, so the
    #: sve_gem5 preset pins this to the 512-bit datapath regardless of
    #: the architectural vector length — which is why Fig. 8's VL gains
    #: (1.34x) are much smaller than RVV's (2.5x): they come only from
    #: amortized per-instruction overheads.
    exec_bytes_per_cycle: object = None
    #: Maximum outstanding line fills one (long) vector access overlaps.
    #: A vector load spanning many lines issues them back to back, so its
    #: effective MLP grows with the access size up to this cap — the
    #: reason long vectors tolerate misses better (Fig. 6 saturates
    #: instead of collapsing as the miss rate climbs).
    max_outstanding: int = 32

    def __post_init__(self):
        if self.mem_port not in ("L1", "L2"):
            raise ValueError(f"mem_port must be 'L1' or 'L2', got {self.mem_port!r}")
        if self.lanes <= 0 or self.pipes <= 0:
            raise ValueError("lanes and pipes must be positive")

    def elems_per_cycle(self, ew_bytes: int = 4) -> int:
        """Elements of width *ew_bytes* processed per cycle (all pipes)."""
        return self.exec_elems_per_cycle(ew_bytes) * self.pipes

    def exec_elems_per_cycle(self, ew_bytes: int = 4) -> int:
        """Elements of width *ew_bytes* executed per cycle on one pipe."""
        width = self.exec_bytes_per_cycle
        if width is None:
            width = self.lanes * 8
        return max(1, int(width) // ew_bytes)

    @property
    def lane_fill_cycles(self) -> int:
        """Start-up cycles to fill the lane pipelines (grows with lanes).

        Models the effect the paper describes in Section V: "adding more
        pipelines increases the start-up overhead, which can potentially
        degrade the performance with short vector lengths".
        """
        return max(1, self.lanes // 4)


@dataclass(frozen=True)
class TLBParams:
    """Data-TLB model (LRU, single level).

    Enabled only on the real-silicon preset (A64FX): gem5's SE mode
    services TLB misses with a functional walk at negligible cost, but on
    hardware the 3-loop GEMM's K concurrent row streams touch one page
    per stream and thrash the DTLB — one more benefit of the 6-loop
    kernel's packed buffers.
    """

    entries: int = 48
    page_bytes: int = 4096
    miss_penalty: int = 30


@dataclass(frozen=True)
class CoreParams:
    """Scalar core parameters."""

    model: str = "in-order"  # "in-order" (MinorCPU-like) or "out-of-order"
    freq_ghz: float = 2.0
    scalar_cpi: float = 1.0
    #: Fraction of vector memory stall an OoO window hides on top of MLP.
    ooo_hide: float = 0.0

    def __post_init__(self):
        if self.model not in ("in-order", "out-of-order"):
            raise ValueError(f"unknown core model {self.model!r}")
        if not (0.0 <= self.ooo_hide < 1.0):
            raise ValueError("ooo_hide must be in [0, 1)")


@dataclass(frozen=True)
class MachineConfig:
    """One point in the hardware design space."""

    name: str
    isa_name: str
    vlen_bits: int
    core: CoreParams
    vpu: VPUParams
    l1: CacheParams
    l2: CacheParams
    dram_latency: int = 120
    dram_bytes_per_cycle: int = 16
    #: Fill bandwidth between the L2 and the L1 (occupancy per line fill).
    l2_to_l1_bytes_per_cycle: int = 64
    #: Whether software prefetch instructions actually prefetch (A64FX).
    honors_sw_prefetch: bool = False
    #: Whether ignored software prefetches still occupy an issue slot
    #: (gem5-SVE emits them as no-ops; the RVV compiler deletes them).
    sw_prefetch_is_noop_instr: bool = False
    #: Hardware prefetcher on the L1 (None = absent).
    l1_prefetcher: Optional[PrefetcherParams] = None
    #: Hardware prefetcher on the L2 (None = absent).
    l2_prefetcher: Optional[PrefetcherParams] = None
    #: Data TLB (None = TLB misses are free, as in gem5 SE mode).
    tlb: Optional[TLBParams] = None
    #: Peak single-core GFLOP/s, for roofline analysis (Table IV).
    peak_gflops: float = 0.0

    def make_isa(self) -> VectorISA:
        """Instantiate the ISA model at this design point's vector length."""
        return make_isa(self.isa_name, self.vlen_bits)

    @property
    def vlen_f32(self) -> int:
        """Vector length in single-precision elements."""
        return self.vlen_bits // 32

    def with_(self, **kw) -> "MachineConfig":
        """Return a copy with selected fields replaced (sweep helper)."""
        return replace(self, **kw)

    def describe(self) -> str:
        """One-line summary used by the reporting module."""
        return (
            f"{self.name}: {self.isa_name.upper()} vlen={self.vlen_bits}b "
            f"lanes={self.vpu.lanes}x{self.vpu.pipes} "
            f"L1={self.l1.size_bytes // KB}KB L2={self.l2.size_bytes // MB}MB "
            f"core={self.core.model} VPU<-{self.vpu.mem_port}"
        )


# ----------------------------------------------------------------------
# Table I presets
# ----------------------------------------------------------------------

def rvv_gem5(
    vlen_bits: int = 512,
    lanes: int = 8,
    l2_mb: int = 1,
    latency_model: str = "constant",
) -> MachineConfig:
    """RISC-V Vector @ gem5 (Table I, column 1).

    In-order core @ 2 GHz, 64 KB 4-way L1, configurable L2 (1-256 MB,
    8-way, 64 B lines), decoupled VPU attached to the L2 through a 2 KB
    VectorCache, 2-8 vector lanes, vlen up to 16384 bits, no prefetching.
    """
    l2_bytes = l2_mb * MB
    return MachineConfig(
        name=f"rvv-gem5-{vlen_bits}b-{lanes}l-{l2_mb}MB",
        isa_name="rvv",
        vlen_bits=vlen_bits,
        core=CoreParams(model="in-order", freq_ghz=2.0, scalar_cpi=1.0),
        vpu=VPUParams(
            lanes=lanes,
            pipes=1,
            mem_port="L2",
            vector_cache_bytes=2 * KB,
            port_bytes_per_cycle=8 * lanes,
            mlp=2.0,
            mem_issue_overhead=2,
            issue_overhead=3.0,  # decoupled VPU: costly per-instr dispatch
            max_outstanding=24,
        ),
        l1=CacheParams(64 * KB, 4, 64, 4),
        l2=CacheParams(l2_bytes, 8, 64, latency_for(l2_bytes, latency_model)),
        dram_latency=200,
        dram_bytes_per_cycle=16,
        honors_sw_prefetch=False,
        sw_prefetch_is_noop_instr=False,  # EPI compiler drops the intrinsics
        peak_gflops=2.0 * lanes * 2 * 2,  # lanes * 2 f32 * FMA(2 flops) * GHz
    )


def sve_gem5(
    vlen_bits: int = 512,
    l2_mb: int = 1,
    latency_model: str = "constant",
) -> MachineConfig:
    """ARM-SVE @ gem5 (Table I, column 2).

    In-order core @ 2 GHz, 64 KB 4-way L1, configurable L2, VPU fed
    through the L1, lanes *proportional to the vector length* (paper
    Section VI-D), vlen 512-2048 bits, prefetch instructions are no-ops.
    """
    lanes = max(1, vlen_bits // 128)  # proportional to vector length
    l2_bytes = l2_mb * MB
    return MachineConfig(
        name=f"sve-gem5-{vlen_bits}b-{l2_mb}MB",
        isa_name="sve",
        vlen_bits=vlen_bits,
        core=CoreParams(model="in-order", freq_ghz=2.0, scalar_cpi=1.0),
        vpu=VPUParams(
            lanes=lanes,
            pipes=1,
            mem_port="L1",
            vector_cache_bytes=0,
            port_bytes_per_cycle=64,
            # MinorCPU blocks on dependent loads: single-line accesses
            # expose their full latency; multi-line vector accesses still
            # overlap their own fills (footprint MLP).
            mlp=1.0,
            mem_issue_overhead=1,
            issue_overhead=1.0,  # tightly integrated in-order pipeline
            # gem5 executes wide SVE ops as 512-bit micro-ops.
            exec_bytes_per_cycle=64,
        ),
        l1=CacheParams(64 * KB, 4, 64, 4),
        l2=CacheParams(l2_bytes, 8, 64, latency_for(l2_bytes, latency_model)),
        dram_latency=120,
        dram_bytes_per_cycle=16,
        honors_sw_prefetch=False,
        sw_prefetch_is_noop_instr=True,  # emitted, treated as no-ops by gem5
        peak_gflops=2.0 * lanes * 2 * 2,
    )


def a64fx() -> MachineConfig:
    """Fujitsu A64FX (Table I, column 3).

    Out-of-order core @ 2 GHz, 2x512-bit SIMD pipes, 64 KB 4-way L1 and
    8 MB 16-way L2 with 256 B lines, hardware stream prefetcher, software
    prefetch honoured.  Peak single-core performance is 62.5 GFLOP/s
    (paper, Section VI-C(a)).
    """
    return MachineConfig(
        name="a64fx",
        isa_name="sve",
        vlen_bits=512,
        core=CoreParams(
            model="out-of-order", freq_ghz=2.0, scalar_cpi=0.5, ooo_hide=0.5
        ),
        vpu=VPUParams(
            lanes=8,
            # One FMA pipe sustained: GEMM is L1-port limited, so the
            # second SIMD unit does not contribute to streaming kernels.
            # 16 f32 FMAs/cycle * 2 GHz * 2 flops = 64 GFLOP/s ~ the
            # paper's 62.5 GFLOP/s single-core peak.
            pipes=1,
            mem_port="L1",
            vector_cache_bytes=0,
            port_bytes_per_cycle=128,
            mlp=3.0,
            mem_issue_overhead=1,
            issue_overhead=0.5,  # OoO front-end hides most dispatch cost
        ),
        l1=CacheParams(64 * KB, 4, 256, 5),
        l2=CacheParams(8 * MB, 16, 256, 37),
        dram_latency=200,
        dram_bytes_per_cycle=32,
        honors_sw_prefetch=True,
        sw_prefetch_is_noop_instr=False,
        l1_prefetcher=PrefetcherParams(num_streams=8, degree=4, trigger=2),
        l2_prefetcher=PrefetcherParams(num_streams=16, degree=8, trigger=2),
        tlb=TLBParams(entries=48, page_bytes=4096, miss_penalty=40),
        peak_gflops=62.5,
    )


# field is used in doc examples / future extension points.
_ = field
