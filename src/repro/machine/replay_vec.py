"""Vectorized shared pass: NumPy column arithmetic over a recorded trace.

:func:`_shared_pass_vec` produces the same ``(prog, inv, gc)`` triple as
the per-event reference loop in :mod:`repro.machine.replay`
(``_shared_pass_python``), but lowers everything that does not read
mutable cache state to NumPy column arithmetic over the trace's columnar
arrays:

* the nine *pure* invariant ``SimStats`` fields (instruction/byte/flop
  counters) are folded with ``np.add.accumulate`` over per-event
  contribution columns built with the exact operand order of the
  reference loop (inserting ``+ 0.0`` for non-contributing events is an
  exact identity on these non-negative accumulators);
* pre-priced floats for compute events (``scalar``, ``varith``,
  ``vbroadcast``, no-op prefetches, spill serialization tails) are
  computed column-wise — ``varith_cycles`` runs once per *distinct*
  ``(n_elems, n_instr, ew)`` key via ``np.unique``, mirroring the
  reference loop's memo;
* kernel-label switch items and every program item's final position are
  derived from cumulative-sum index arithmetic, so the assembled
  ``prog`` list is laid out item for item like the reference loop's.

Only the *walk* events — scalar/vector memory accesses, honoured
software prefetches and residency-range notes, whose outcome threads
through the TLB/L1/prefetcher/VectorCache state — still run
sequentially.  They are driven through a real
:class:`~repro.machine.replay._GroupCapture` (the walk logic lives in
exactly one place; this module never duplicates it) whose label state is
pinned so it emits payload items only; the items are then scattered into
the assembled program at the precomputed positions.  The three
walk-dependent invariant fields (``l1_hits``, ``l1_misses``,
``vc_hits``) are taken from that capture — they are only ever touched by
walk events, in walk order, so the fold is unchanged.

Hex identity with the reference loop is enforced across all machine
presets by tests/test_replay_vec.py; pick the loop explicitly with
``REPRO_REPLAY_ENGINE=python`` (see ``replay._shared_pass``).
"""

from __future__ import annotations

import numpy as np

from .hierarchy import _VC_HIT_LATENCY
from .simulator import (
    _SCALAR_MLP,
    _SPILL_SERIALIZE_CYCLES,
    _STORE_STALL_FACTOR,
    SimStats,
    vmem_event_cycles,
)
from .trace import (
    OP_COUNT_FLOPS,
    OP_NOTE_RANGE,
    OP_SCALAR,
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_SPILL,
    OP_SW_PREFETCH,
    OP_VARITH,
    OP_VBROADCAST,
    OP_VLOAD,
    OP_VSTORE,
    RecordedTrace,
)
from .vpu import varith_cycles

__all__ = ["_shared_pass_vec"]

#: Internal pseudo-opcode for the serialization tail of an expanded
#: OP_SPILL row (never appears in a trace; must not collide with real
#: opcodes above).
_OP_SPILL_TAIL = 250


def _expand_spills(cols, vlen_bits: int):
    """Expand OP_SPILL rows into their vstore/vload/tail sub-events.

    ``TraceSimulator.spill(n)`` issues, per register, one full-vector
    store and reload at stack address 0, then a serialization penalty —
    the reference loop replays that expansion event by event, and the
    counter folds (``acc += w`` once per sub-event) are only exact if
    the column engine sees the same sub-event rows.  Returns the eight
    expanded columns; cheap no-op when the trace has no spills.
    """
    op, w, kid, i0, i1, i2, i3, f0 = cols
    spill = op == OP_SPILL
    if not spill.any():
        return op, w, kid, i0, i1, i2, i3, f0
    counts = np.ones(len(op), dtype=np.int64)
    counts[spill] = 2 * i0[spill] + 1
    idx = np.repeat(np.arange(len(op), dtype=np.int64), counts)
    opx = op[idx].astype(np.int64)  # room for _OP_SPILL_TAIL
    wx = w[idx]
    kidx = kid[idx]
    i0x = i0[idx].copy()
    i1x = i1[idx].copy()
    i2x = i2[idx].copy()
    i3x = i3[idx].copy()
    f0x = f0[idx]
    # Position of each expanded row inside its source row's group.
    starts = np.zeros(len(op) + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    sub = np.arange(len(idx), dtype=np.int64) - starts[idx]
    insp = spill[idx]
    n_regs = i0[idx]
    is_tail = insp & (sub == 2 * n_regs)
    is_mem = insp & ~is_tail
    n_elems = (vlen_bits // 8) // 4
    # Alternating vstore/vload at stack address 0, mirroring spill().
    opx[is_mem] = np.where(
        sub[is_mem] % 2 == 0, OP_VSTORE, OP_VLOAD
    )
    i0x[is_mem] = 0
    i1x[is_mem] = n_elems
    i2x[is_mem] = 4
    i3x[is_mem] = 0
    opx[is_tail] = _OP_SPILL_TAIL
    i0x[is_tail] = n_regs[is_tail]  # n_registers, for the tail price
    return opx, wx, kidx, i0x, i1x, i2x, i3x, f0x


def _acc(col) -> float:
    """Strict left-to-right fold of a contribution column."""
    if len(col) == 0:
        return 0.0
    return float(np.add.accumulate(col)[-1])


def _unique_shapes(x0, x1, x2):
    """``np.unique(axis=0)`` minus the row argsort.

    Packs the three non-negative shape columns into one int64 key, so
    the unique runs on a flat integer array (an order of magnitude
    cheaper than the lexicographic row sort).  Falls back to the axis
    path when the packed range could overflow.  Returns
    ``(first_index, inverse)``; the distinct rows themselves are read
    back through ``first_index``.
    """
    m1 = int(x1.max()) + 1
    m2 = int(x2.max()) + 1
    if (int(x0.max()) + 1) * m1 * m2 < (1 << 62):
        key = (x0 * m1 + x1) * m2 + x2
    else:  # pragma: no cover - pathological shape magnitudes
        key = np.stack([x0, x1, x2], axis=1)
        _, first, inverse = np.unique(
            key, axis=0, return_index=True, return_inverse=True
        )
        return first, np.asarray(inverse).reshape(-1)
    _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    return first, np.asarray(inverse).reshape(-1)


def _walk_events_fast(cap, ops, ws, a0, a1, a2, a3) -> None:
    """Specialized walk loop for TLB-less, prefetcher-less configs.

    A transcription of ``_GroupCapture._scalar_mem`` / ``_vmem`` /
    ``note_resident_range`` with every per-event attribute load hoisted
    into a local and the method-call dispatch flattened into one loop —
    the arithmetic (operation, operand order, accumulation order) is
    kept exactly lock-step with the reference, and
    tests/test_replay_vec.py enforces hex identity against it.  Only
    valid when ``cap._tlb is None and cap._pf1 is None and not
    cap._honors`` (the rvv/sve preset family); richer configs take the
    ``_GroupCapture``-driven loop in :func:`_shared_pass_vec`.

    Items are appended to ``cap._prog``; the three walk counters are
    accumulated locally and written back.
    """
    append = cap._prog.append
    note_range = cap.note_resident_range
    class_id = cap._class_id
    port_l1 = cap._port_l1
    l1_line = cap._l1_line
    l1_shift = cap._l1_shift
    l2_shift = cap._l2_shift
    l1_lat = cap._l1_lat
    fill_l1 = cap._fill_l1
    l1_sets = cap._l1_sets
    l1_num = cap._l1_num
    l1_assoc = cap._l1_assoc
    vc_set = cap._vc_set
    vc_assoc = cap._vc_assoc
    v_shift = cap._v_shift
    scalar_cpi = cap._scalar_cpi
    ooo_hide = cap._ooo_hide
    vpu = cap._vpu
    defer = cap._defer
    seen = cap._seen
    seen_add = seen.add
    inv_ids = cap._inv_ids
    vmem_memo = cap._vmem_inv_memo
    l1_hits_c = cap._l1_hits_c
    l1_misses_c = cap._l1_misses_c
    vc_hits_c = cap._vc_hits_c
    op_vl, op_vs = OP_VLOAD, OP_VSTORE
    op_sl, op_ss = OP_SCALAR_LOAD, OP_SCALAR_STORE
    for j in range(len(ops)):
        o = ops[j]
        w = ws[j]
        if o == op_sl or o == op_ss:
            addr = a0[j]
            nbytes = a1[j]
            write = o == op_ss
            first = addr >> l1_shift
            last = (addr + nbytes - 1) >> l1_shift
            if first == last:
                # Single-line fast path (lat_i == 0 without a TLB).
                ways = l1_sets[first % l1_num]
                dirty = ways.pop(first, None)
                if dirty is not None:
                    ways[first] = dirty or write
                    l1_hits_c += w
                    append(w * scalar_cpi)
                    continue
                ways[first] = write
                if len(ways) > l1_assoc:
                    ways.pop(next(iter(ways)))
                l1_misses_c += w * 1
                a = first << l1_shift
                k = a >> l2_shift
                if k in seen:
                    nh0 = 1
                    ft = ()
                else:
                    seen_add(k)
                    nh0 = 0
                    ft = (a,)
                append((4, w, (a,), l1_lat, 0.0 + fill_l1, write, nh0, ft))
                continue
            lat_i = 0
            occ1 = 0.0
            l1h = l1m = 0
            pend = []
            for la in range(first, last + 1):
                ways = l1_sets[la % l1_num]
                dirty = ways.pop(la, None)
                if dirty is not None:
                    ways[la] = dirty or write
                    lat_i += l1_lat
                    l1h += 1
                    continue
                ways[la] = write
                if len(ways) > l1_assoc:
                    ways.pop(next(iter(ways)))
                l1m += 1
                occ1 += fill_l1
                lat_i += l1_lat
                pend.append(la)
            l1_hits_c += w * l1h
            if l1m:
                l1_misses_c += w * l1m
            if pend:
                nh0 = 0
                addrs = []
                ft = []
                for la in pend:
                    a = la << l1_shift
                    addrs.append(a)
                    k = a >> l2_shift
                    if k in seen:
                        nh0 += 1
                    else:
                        seen_add(k)
                        ft.append(a)
                append((4, w, tuple(addrs), lat_i, occ1, write, nh0, tuple(ft)))
            else:
                d = lat_i - l1_lat
                if d > 0:
                    stall = max(0.0, d) / _SCALAR_MLP
                    if write:
                        stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                    else:
                        stall *= 1.0 - ooo_hide
                    append(w * (scalar_cpi + stall + 0.0 + 0.0))
                else:
                    append(w * scalar_cpi)
        elif o == op_vl or o == op_vs:
            addr = a0[j]
            n_elems = a1[j]
            ew = a2[j]
            stride = a3[j]
            write = o == op_vs
            nbytes = n_elems * ew
            vch = 0
            if stride == 0 or stride == ew:
                unit = True
                n_lines = (addr + nbytes - 1) // l1_line - addr // l1_line + 1
                if port_l1:
                    lat_i = 0
                    first = addr >> l1_shift
                    last = (addr + nbytes - 1) >> l1_shift
                    occ1 = 0.0
                    l1h = l1m = 0
                    pend = []
                    for la in range(first, last + 1):
                        ways = l1_sets[la % l1_num]
                        dirty = ways.pop(la, None)
                        if dirty is not None:
                            ways[la] = dirty or write
                            lat_i += l1_lat
                            l1h += 1
                            continue
                        ways[la] = write
                        if len(ways) > l1_assoc:
                            ways.pop(next(iter(ways)))
                        l1m += 1
                        occ1 += fill_l1
                        lat_i += l1_lat
                        pend.append(la)
                else:
                    lat_i = 0
                    first = addr >> l2_shift
                    last = (addr + nbytes - 1) >> l2_shift
                    if vc_set is not None:
                        pend = []
                        vc_pop = vc_set.pop
                        vc_len = len(vc_set)
                        for la in range(first, last + 1):
                            dirty = vc_pop(la, None)
                            if dirty is not None:
                                vc_set[la] = dirty or write
                                lat_i += _VC_HIT_LATENCY
                                vch += 1
                                continue
                            vc_set[la] = write
                            if vc_len >= vc_assoc:
                                vc_pop(next(iter(vc_set)))
                            else:
                                vc_len += 1
                            pend.append(la)
                    else:
                        pend = list(range(first, last + 1))
                    occ1 = 0.0
                    l1h = l1m = 0
            else:
                unit = False
                n_lines = n_elems
                if port_l1:
                    lat_i = 0
                    occ1 = 0.0
                    l1h = l1m = 0
                    pend = []
                    prev_line = -1
                    for idx in range(n_elems):
                        a = addr + idx * stride
                        end = a + ew - 1
                        first = a >> l1_shift
                        last = end >> l1_shift
                        if first == last == prev_line:
                            ways = l1_sets[first % l1_num]
                            dirty = ways.pop(first, None)
                            if dirty is not None:
                                ways[first] = dirty or write
                                lat_i += l1_lat
                                l1h += 1
                                continue
                        for la in range(first, last + 1):
                            ways = l1_sets[la % l1_num]
                            dirty = ways.pop(la, None)
                            if dirty is not None:
                                ways[la] = dirty or write
                                lat_i += l1_lat
                                l1h += 1
                                continue
                            ways[la] = write
                            if len(ways) > l1_assoc:
                                ways.pop(next(iter(ways)))
                            l1m += 1
                            occ1 += fill_l1
                            lat_i += l1_lat
                            pend.append(la)
                        prev_line = last
                else:
                    lat_i = 0
                    pend = []
                    prev_line = -1
                    for idx in range(n_elems):
                        a = addr + idx * stride
                        end = a + ew - 1
                        first = a >> l2_shift
                        last = end >> l2_shift
                        if first == last == prev_line:
                            if vc_set is not None:
                                vc_set[first] = vc_set.pop(first) or write
                                lat_i += _VC_HIT_LATENCY
                                vch += 1
                            else:
                                pend.append(first)
                            continue
                        for la in range(first, last + 1):
                            if vc_set is not None:
                                dirty = vc_set.pop(la, None)
                                if dirty is not None:
                                    vc_set[la] = dirty or write
                                    lat_i += _VC_HIT_LATENCY
                                    vch += 1
                                    continue
                                vc_set[la] = write
                                if len(vc_set) > vc_assoc:
                                    vc_set.pop(next(iter(vc_set)))
                            pend.append(la)
                        prev_line = last
                    occ1 = 0.0
                    l1h = l1m = 0
            if l1h:
                l1_hits_c += w * l1h
            if l1m:
                l1_misses_c += w * l1m
            if vch:
                vc_hits_c += w * vch
            if pend:
                key = (w, lat_i, occ1, nbytes, n_lines, write, unit)
                iid = inv_ids.get(key)
                if iid is None:
                    iid = inv_ids[key] = len(inv_ids)
                nh0 = 0
                addrs = []
                ft = []
                for la in pend:
                    a = la << v_shift
                    addrs.append(a)
                    k = a >> l2_shift
                    if k in seen:
                        nh0 += 1
                    else:
                        seen_add(k)
                        ft.append(a)
                append(
                    (3, w, tuple(addrs), lat_i, occ1, nbytes, n_lines,
                     write, unit, iid, nh0, tuple(ft))
                )
            elif defer:
                mkey = (lat_i, occ1, nbytes, n_lines, write, unit)
                cid = vmem_memo.get(mkey)
                if cid is None:
                    cid = vmem_memo[mkey] = class_id(("m",) + mkey)
                append((6, w, cid))
            else:
                mkey = (lat_i, occ1, nbytes, n_lines, write, unit)
                cycles = vmem_memo.get(mkey)
                if cycles is None:
                    cycles = vmem_memo[mkey] = vmem_event_cycles(
                        vpu, l1_lat, ooo_hide, lat_i, occ1, 0.0,
                        nbytes, n_lines, write, unit,
                    )
                append(w * cycles)
        else:  # OP_NOTE_RANGE (rare)
            note_range(a0[j], a1[j])
    cap._l1_hits_c = l1_hits_c
    cap._l1_misses_c = l1_misses_c
    cap._vc_hits_c = vc_hits_c


def _shared_pass_vec(trace: RecordedTrace, base, defer_vpu: bool = False):
    """Column-arithmetic twin of ``replay._shared_pass_python``."""
    from .replay import _GroupCapture  # deferred: avoids a cycle at import

    cap = _GroupCapture(base, defer_vpu=defer_vpu)
    cols = trace._columns()
    known = {
        OP_SCALAR, OP_SCALAR_LOAD, OP_SCALAR_STORE, OP_VLOAD, OP_VSTORE,
        OP_VARITH, OP_VBROADCAST, OP_SW_PREFETCH, OP_COUNT_FLOPS,
        OP_SPILL, OP_NOTE_RANGE,
    }
    present = set(np.unique(cols[0]).tolist())
    bad = present - known
    if bad:
        raise ValueError(f"unknown trace opcode {sorted(bad)[0]}")
    op, w, kid, i0, i1, i2, i3, f0 = _expand_spills(cols, trace.vlen_bits)
    n = len(op)
    if op.dtype != np.int64:
        op = op.astype(np.int64)
    kid = kid.astype(np.int64)

    honors = cap._honors
    noop_pf = cap._noop_pf
    defer = cap._defer

    is_scalar = op == OP_SCALAR
    is_sload = op == OP_SCALAR_LOAD
    is_sstore = op == OP_SCALAR_STORE
    is_vload = op == OP_VLOAD
    is_vstore = op == OP_VSTORE
    is_vmem = is_vload | is_vstore
    is_varith = (op == OP_VARITH) & (i0 > 0) & (i1 > 0)
    is_vb = op == OP_VBROADCAST
    is_pf = op == OP_SW_PREFETCH
    is_cf = op == OP_COUNT_FLOPS
    is_nr = op == OP_NOTE_RANGE
    is_tail = op == _OP_SPILL_TAIL

    # ------------------------------------------------------------------
    # Pure invariant counters — exact operand order of the reference
    # loop per event kind, folded left-to-right over all events.
    # ------------------------------------------------------------------
    zeros = np.zeros(n, dtype=np.float64)
    c = zeros.copy()  # scalar_instrs
    c[is_scalar] = w[is_scalar] * i0[is_scalar]
    sm = is_sload | is_sstore
    c[sm] = w[sm]
    if noop_pf and not honors:
        c[is_pf] = w[is_pf]
    scalar_instrs = _acc(c)

    c = zeros.copy()  # vec_instrs
    c[is_vmem] = w[is_vmem]
    c[is_varith] = w[is_varith] * i1[is_varith]
    c[is_vb] = w[is_vb] * i0[is_vb]
    vec_instrs = _acc(c)

    vec_mem_instrs = _acc(np.where(is_vmem, w, 0.0))
    c = zeros.copy()  # vec_elems
    c[is_vmem] = w[is_vmem] * i1[is_vmem]
    c[is_varith] = (w[is_varith] * i1[is_varith]) * i0[is_varith]
    vec_elems = _acc(c)

    c = zeros.copy()  # flops
    c[is_varith] = (
        (w[is_varith] * i1[is_varith]) * i0[is_varith]
    ) * f0[is_varith]
    c[is_cf] = w[is_cf] * f0[is_cf]
    flops = _acc(c)

    c = zeros.copy()  # bytes_loaded:  vmem nbytes = n_elems * ew (int)
    ld = is_vload
    c[ld] = w[ld] * (i1[ld] * i2[ld])
    c[is_sload] = w[is_sload] * i1[is_sload]
    bytes_loaded = _acc(c)

    c = zeros.copy()  # bytes_stored
    st = is_vstore
    c[st] = w[st] * (i1[st] * i2[st])
    c[is_sstore] = w[is_sstore] * i1[is_sstore]
    bytes_stored = _acc(c)

    sw_prefetches = _acc(np.where(is_pf, w, 0.0)) if honors else 0.0
    spills = _acc(np.where(is_tail, w * i0, 0.0))

    # ------------------------------------------------------------------
    # Program layout: per-event payload counts, lazy label switches,
    # and item positions, all from cumulative sums.
    # ------------------------------------------------------------------
    pf_items = 2 if honors else (1 if noop_pf else 0)
    payload = np.zeros(n, dtype=np.int64)
    payload[is_scalar | sm | is_vmem | is_varith | is_vb | is_nr | is_tail] = 1
    if pf_items:
        payload[is_pf] = pf_items
    # Events that run the lazy switch check: every payload producer
    # except note_range (which appends its tag-2 item unconditionally
    # and never touches the label state).
    checks = (payload > 0) & ~is_nr
    flags = np.zeros(n, dtype=np.int64)
    ck = np.flatnonzero(checks)
    if len(ck):
        ckids = kid[ck]
        f = np.empty(len(ck), dtype=bool)
        f[0] = True  # cur_label starts None: first check always switches
        np.not_equal(ckids[1:], ckids[:-1], out=f[1:])
        flags[ck] = f
    counts = payload + flags
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    total = int(starts[-1])
    starts = starts[:-1]
    # Honoured prefetches append their tag-5 fills *before* the switch
    # check; everything else switches first.
    pre = np.zeros(n, dtype=np.int64)
    if honors:
        pre[is_pf] = 1
    switch_pos = starts + pre
    pay_pos = starts + pre + flags  # first (or only) payload slot

    obj = np.empty(total, dtype=object)

    # Switch items (few: one per kernel-label transition).
    labels = trace.labels
    for e in ck[flags[ck] > 0].tolist():
        obj[switch_pos[e]] = (1, labels[kid[e]])

    # ------------------------------------------------------------------
    # Pre-priced compute floats (column-wise).
    # ------------------------------------------------------------------
    def _put_floats(mask, vals):
        pos = pay_pos[mask]
        if len(pos):
            obj[pos] = vals.astype(object)  # python floats

    _put_floats(is_scalar, w[is_scalar] * (i0[is_scalar] * cap._scalar_cpi))
    _put_floats(is_tail, w[is_tail] * (i0[is_tail] * _SPILL_SERIALIZE_CYCLES))
    if noop_pf and not honors:
        _put_floats(is_pf, w[is_pf] * cap._scalar_cpi)
    if defer:
        # Deferred VPU pricing: intern (kind, shape) classes with
        # np.unique — ids are assigned in first-occurrence order among
        # the priced events; the walk's "m" classes are appended after.
        # (Class numbering may differ from the reference loop's global
        # interleaving; prices[cid] lookups stay self-consistent, so
        # every SimStats float is unchanged.)
        va = np.flatnonzero(is_varith)
        vb = np.flatnonzero(is_vb)
        keydefs: list = []  # (first_pos, defn, event_positions, 'a'|'b')
        if len(va):
            x0, x1, x2 = i0[va], i1[va], i2[va]
            first, inverse = _unique_shapes(x0, x1, x2)
            for k, fi in enumerate(first.tolist()):
                defn = ("a", int(x0[fi]), int(x1[fi]), int(x2[fi]))
                keydefs.append((int(va[fi]), defn, va[inverse == k]))
        if len(vb):
            uniq, first, inverse = np.unique(
                i0[vb], return_index=True, return_inverse=True
            )
            for k in range(len(uniq)):
                defn = ("b", int(uniq[k]))
                keydefs.append((int(vb[first[k]]), defn, vb[inverse == k]))
        keydefs.sort(key=lambda t: t[0])
        one = np.empty(1, dtype=object)
        for _, defn, evs in keydefs:
            cid = cap._class_id(defn)
            # One (6, w, cid) tuple per distinct weight, broadcast to
            # every event position carrying it (tag-6 items are only
            # ever read, so sharing the tuple object is safe).
            wv = w[evs]
            for uw in np.unique(wv).tolist():
                one[0] = (6, uw, cid)
                obj[pay_pos[evs[wv == uw]]] = one
    else:
        va = np.flatnonzero(is_varith)
        if len(va):
            x0, x1, x2 = i0[va], i1[va], i2[va]
            first, inverse = _unique_shapes(x0, x1, x2)
            prices = np.empty(len(first), dtype=np.float64)
            vpu = cap._vpu
            for k, fi in enumerate(first.tolist()):
                prices[k] = varith_cycles(vpu, int(x0[fi]), int(x1[fi]), int(x2[fi]))
            _put_floats(is_varith, w[va] * prices[inverse])
        _put_floats(is_vb, w[is_vb] * (i0[is_vb] * cap._vb_cycles))

    # ------------------------------------------------------------------
    # Walk events: sequential, through the real _GroupCapture (the one
    # place the TLB/L1/prefetcher/VC logic lives).  Pinning the label
    # state suppresses its switch items, so its program contains the
    # payload items only, in walk order — scattered into place below.
    # ------------------------------------------------------------------
    cap._cur_label = cap._kernel_stack[-1]  # never emit (1, ...) items
    walk = sm | is_vmem | is_nr
    if honors:
        walk |= is_pf
    wk = np.flatnonzero(walk)
    if len(wk):
        w_op = op[wk].tolist()
        w_w = w[wk].tolist()
        w_i0 = i0[wk].tolist()
        w_i1 = i1[wk].tolist()
        w_i2 = i2[wk].tolist()
        w_i3 = i3[wk].tolist()
        if cap._tlb is None and cap._pf1 is None and not honors:
            # Flattened transcription with hoisted locals — the hot
            # configuration (rvv/sve preset family).
            _walk_events_fast(cap, w_op, w_w, w_i0, w_i1, w_i2, w_i3)
        else:
            vmem = cap._vmem
            scalar_mem = cap._scalar_mem
            note_range = cap.note_resident_range
            sw_prefetch = cap.sw_prefetch
            cur_w = cap._w
            for j in range(len(wk)):
                wv = w_w[j]
                if wv != cur_w:
                    cap._w = cur_w = wv
                o = w_op[j]
                if o == OP_VLOAD:
                    vmem(w_i0[j], w_i1[j], w_i2[j], w_i3[j], False)
                elif o == OP_VSTORE:
                    vmem(w_i0[j], w_i1[j], w_i2[j], w_i3[j], True)
                elif o == OP_SCALAR_LOAD:
                    scalar_mem(w_i0[j], w_i1[j], False)
                elif o == OP_SCALAR_STORE:
                    scalar_mem(w_i0[j], w_i1[j], True)
                elif o == OP_NOTE_RANGE:
                    note_range(w_i0[j], w_i1[j])
                else:  # honoured OP_SW_PREFETCH
                    sw_prefetch(w_i0[j], w_i1[j], "L1" if w_i2[j] == 0 else "L2")
        items = cap._prog
        # Scatter: each walk event occupies exactly its payload slots.
        wp = pay_pos[wk]
        if honors and is_pf[wk].any():
            # An honoured prefetch occupies two slots: (5, fills) at
            # ``starts`` and its float at ``starts + 1 + flag`` (which
            # is ``pay_pos`` — ``pre`` reserved the tag-5 slot).
            out_pos: list = []
            for j in range(len(wk)):
                e = int(wk[j])
                if payload[e] == 2:
                    out_pos.append(int(starts[e]))
                out_pos.append(int(wp[j]))
        else:
            out_pos = wp.tolist()
        if len(items) != len(out_pos):
            raise AssertionError(
                f"walk emitted {len(items)} items, layout reserved "
                f"{len(out_pos)} (engine out of lock-step)"
            )
        if items:
            # Single fancy scatter: fromiter keeps the mixed
            # float/tuple items as opaque objects (a plain asarray
            # would try to broadcast the tuples).
            items_arr = np.fromiter(items, dtype=object, count=len(items))
            obj[np.asarray(out_pos, dtype=np.int64)] = items_arr

    prog = obj.tolist()

    inv = SimStats()
    inv.scalar_instrs = scalar_instrs
    inv.vec_instrs = vec_instrs
    inv.vec_mem_instrs = vec_mem_instrs
    inv.vec_elems = vec_elems
    inv.flops = flops
    inv.bytes_loaded = bytes_loaded
    inv.bytes_stored = bytes_stored
    inv.l1_hits = cap._l1_hits_c
    inv.l1_misses = cap._l1_misses_c
    inv.vc_hits = cap._vc_hits_c
    inv.sw_prefetches = sw_prefetches
    inv.spills = spills
    gc = {
        "vpu": cap._vpu,
        "port_l1": cap._port_l1,
        "l1_lat": cap._l1_lat,
        "ooo_hide": cap._ooo_hide,
        "scalar_cpi": cap._scalar_cpi,
        "l2_shift": cap._l2_shift,
        "distinct": cap._seen,
        "max_range_total": cap._max_range_total,
        "has_fills": cap._has_fills,
        "pf2_cfg": cap._pf2_cfg,
        "classes": cap._classes,
    }
    return prog, inv, gc
