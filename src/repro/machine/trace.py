"""Address-space bookkeeping for trace-driven simulation.

Kernels don't simulate real data values on the timing path — they replay
the *addresses* their memory instructions touch.  :class:`AddressSpace`
is a bump allocator handing out line-aligned regions for the matrices and
buffers a kernel run uses, so distinct buffers never falsely alias in the
cache model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["AddressSpace", "Buffer"]

#: Allocation alignment; a large power of two keeps buffers page-aligned
#: and makes line-address arithmetic exact for any simulated line size.
_ALIGN = 4096


@dataclass(frozen=True)
class Buffer:
    """A named, contiguous simulated allocation."""

    name: str
    base: int
    nbytes: int

    def addr(self, byte_offset: int) -> int:
        """Absolute address of *byte_offset* inside the buffer."""
        if not (0 <= byte_offset <= self.nbytes):
            raise ValueError(
                f"offset {byte_offset} outside buffer {self.name!r} "
                f"of {self.nbytes} bytes"
            )
        return self.base + byte_offset

    def elem(self, index: int, ew: int = 4) -> int:
        """Absolute address of element *index* of width *ew* bytes."""
        return self.addr(index * ew)

    @property
    def end(self) -> int:
        """One past the last byte of the buffer."""
        return self.base + self.nbytes


@dataclass
class AddressSpace:
    """Bump allocator for simulated buffers."""

    next_free: int = _ALIGN  # keep address 0 unused; eases debugging
    buffers: Dict[str, Buffer] = field(default_factory=dict)

    def alloc(self, name: str, nbytes: int) -> Buffer:
        """Allocate *nbytes* under *name*; names may repeat (suffixing)."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        base = self.next_free
        size = max(nbytes, 1)
        self.next_free = (base + size + _ALIGN - 1) // _ALIGN * _ALIGN
        unique = name
        seq = 1
        while unique in self.buffers:
            seq += 1
            unique = f"{name}#{seq}"
        buf = Buffer(unique, base, nbytes)
        self.buffers[unique] = buf
        return buf

    def total_allocated(self) -> int:
        """Total bytes handed out so far."""
        return sum(b.nbytes for b in self.buffers.values())
