"""Address-space bookkeeping and trace capture for trace-driven simulation.

Kernels don't simulate real data values on the timing path — they replay
the *addresses* their memory instructions touch.  :class:`AddressSpace`
is a bump allocator handing out line-aligned regions for the matrices and
buffers a kernel run uses, so distinct buffers never falsely alias in the
cache model.

This module also holds the capture side of the capture-once /
replay-many engine (see docs/TRACE_REPLAY.md): :class:`TraceRecorder`
presents the same event API as :class:`~repro.machine.simulator
.TraceSimulator` but, instead of pricing events, appends them — with
their final sampling weight and kernel label — to an in-memory list
that :meth:`TraceRecorder.finish` freezes into a :class:`RecordedTrace`
(compact columnar NumPy arrays).  A recorded trace can then be replayed
against any machine that shares the trace's VL-relevant fields
(ISA name, vector length, L1 line size) without re-entering kernel
code — see :mod:`repro.machine.replay`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "AddressSpace",
    "Buffer",
    "SampledTraceBase",
    "TraceRecorder",
    "RecordedTrace",
]

#: Allocation alignment; a large power of two keeps buffers page-aligned
#: and makes line-address arithmetic exact for any simulated line size.
_ALIGN = 4096


@dataclass(frozen=True)
class Buffer:
    """A named, contiguous simulated allocation."""

    name: str
    base: int
    nbytes: int

    def addr(self, byte_offset: int) -> int:
        """Absolute address of *byte_offset* inside the buffer."""
        if not (0 <= byte_offset <= self.nbytes):
            raise ValueError(
                f"offset {byte_offset} outside buffer {self.name!r} "
                f"of {self.nbytes} bytes"
            )
        return self.base + byte_offset

    def elem(self, index: int, ew: int = 4) -> int:
        """Absolute address of element *index* of width *ew* bytes."""
        return self.addr(index * ew)

    @property
    def end(self) -> int:
        """One past the last byte of the buffer."""
        return self.base + self.nbytes


@dataclass
class AddressSpace:
    """Bump allocator for simulated buffers."""

    next_free: int = _ALIGN  # keep address 0 unused; eases debugging
    buffers: Dict[str, Buffer] = field(default_factory=dict)

    def alloc(self, name: str, nbytes: int) -> Buffer:
        """Allocate *nbytes* under *name*; names may repeat (suffixing)."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        base = self.next_free
        size = max(nbytes, 1)
        self.next_free = (base + size + _ALIGN - 1) // _ALIGN * _ALIGN
        unique = name
        seq = 1
        while unique in self.buffers:
            seq += 1
            unique = f"{name}#{seq}"
        buf = Buffer(unique, base, nbytes)
        self.buffers[unique] = buf
        return buf

    def total_allocated(self) -> int:
        """Total bytes handed out so far."""
        return sum(b.nbytes for b in self.buffers.values())


class SampledTraceBase:
    """Weight-stack and kernel-attribution machinery for trace consumers.

    Shared by :class:`~repro.machine.simulator.TraceSimulator` (which
    prices events) and :class:`TraceRecorder` (which records them): both
    must compute *identical* sampling weights, so the region/loop float
    arithmetic lives in exactly one place.
    """

    def __init__(self):
        self._weights = [1.0]
        self._w = 1.0
        self._kernel_stack = ["other"]

    @contextmanager
    def kernel(self, label: str):
        """Attribute cycles accrued in this context to *label*.

        Used by the network runner to reproduce the per-kernel execution
        breakdown of Section II-B (GEMM = 93.4 % of compute time).
        """
        self._kernel_stack.append(label)
        try:
            yield
        finally:
            self._kernel_stack.pop()

    @contextmanager
    def region(self, weight: float):
        """Scale everything inside the context by *weight*."""
        if weight < 0:
            raise ValueError("region weight must be non-negative")
        self._weights.append(weight)
        self._w *= weight
        try:
            yield
        finally:
            self._weights.pop()
            self._w /= weight if weight else 1.0
            # Recompute to avoid float drift after many regions.
            prod = 1.0
            for w in self._weights:
                prod *= w
            self._w = prod

    def loop(self, total: int, warmup: int = 2, sample: int = 8) -> Iterator[int]:
        """Iterate a homogeneous loop with warm-up + weighted sampling.

        Yields iteration indices.  When ``total <= warmup + sample + 1``
        every iteration runs at weight 1; otherwise ``warmup`` leading
        iterations run unweighted, ``sample`` evenly-spaced *interior*
        iterations run with weight ``(total - warmup - 1) / sample``, and
        the final iteration runs unweighted — loop tails (partial vector
        chunks, edge blocks) are usually on the last iteration and would
        otherwise be mis-extrapolated.
        """
        if total < 0:
            raise ValueError("loop trip count must be non-negative")
        if total <= warmup + sample + 1:
            for i in range(total):
                yield i
            return
        for i in range(warmup):
            yield i
        interior = total - warmup - 1
        weight = interior / sample
        self._weights.append(weight)
        self._w *= weight
        try:
            step = interior / sample
            for s in range(sample):
                yield warmup + int(s * step)
        finally:
            self._weights.pop()
            prod = 1.0
            for w in self._weights:
                prod *= w
            self._w = prod
        yield total - 1  # the tail iteration, at weight 1


# ----------------------------------------------------------------------
# Trace capture
# ----------------------------------------------------------------------
# Event opcodes.  The recorder lowers the full TraceSimulator API onto
# these: gathers/scatters become strided loads/stores at capture time
# (using the simulator's exact stride formula), so the replayer never
# needs the gather-specific entry points.
OP_SCALAR = 0
OP_SCALAR_LOAD = 1
OP_SCALAR_STORE = 2
OP_VLOAD = 3
OP_VSTORE = 4
OP_VARITH = 5
OP_VBROADCAST = 6
OP_SW_PREFETCH = 7
OP_COUNT_FLOPS = 8
OP_SPILL = 9
OP_NOTE_RANGE = 10

#: Bumped whenever the event encoding or the set of recorded operations
#: changes; part of the trace content key (see repro.core.tracecache).
#: v2 added the allocation table (``RecordedTrace.buffers``), which the
#: static analyzers need to prove bounds (see repro.analysis).
#: v3 added a mandatory sha256 content digest over the column data, so
#: a truncated or bit-flipped spill file is rejected (and quarantined
#: by repro.core.tracecache) instead of silently poisoning a sweep.
#: v4 moved spill persistence to the compressed ``.rtz`` container
#: (delta+zigzag+varint address/size columns, zlib/zstd block
#: compression — see repro.core.tracecache) so reference traces are
#: small enough to commit; the ``.npz`` writer below remains for
#: ad-hoc export and analysis tooling.
TRACE_FORMAT_VERSION = 4


class RecordedTrace:
    """A frozen, columnar macro-event trace.

    Eight parallel NumPy arrays hold one entry per event: ``op`` (opcode
    above), ``w`` (the sampling weight the event ran at), ``kid`` (index
    into :attr:`labels`, the kernel-attribution label), four integer
    operands ``i0..i3`` and one float operand ``f0`` (meaning depends on
    the opcode — see :class:`TraceRecorder`).  Replay is valid on any
    machine whose VL-relevant fields match :attr:`isa_name`,
    :attr:`vlen_bits` and :attr:`l1_line_bytes`; everything else (L2
    geometry, lane count, latencies, prefetchers) is free to vary.
    """

    __slots__ = (
        "key", "isa_name", "vlen_bits", "l1_line_bytes", "labels",
        "buffers", "meta", "_cols", "_rows", "_digest",
    )

    #: Column (name, dtype) pairs, in row-tuple order.
    _COLUMNS = (
        ("op", np.uint8), ("w", np.float64), ("kid", np.uint32),
        ("i0", np.int64), ("i1", np.int64), ("i2", np.int64),
        ("i3", np.int64), ("f0", np.float64),
    )

    def __init__(self, key, isa_name, vlen_bits, l1_line_bytes, labels,
                 op=None, w=None, kid=None, i0=None, i1=None, i2=None,
                 i3=None, f0=None, meta=None, rows=None, buffers=()):
        self.key: Optional[str] = key
        self.isa_name: str = isa_name
        self.vlen_bits: int = vlen_bits
        self.l1_line_bytes: int = l1_line_bytes
        self.labels: Tuple[str, ...] = tuple(labels)
        #: Allocation table at capture time: ``(name, base, nbytes)``
        #: triples in allocation order.  Lets the static analyzers
        #: (repro.analysis) prove every event lands inside a buffer.
        self.buffers: Tuple[Tuple[str, int, int], ...] = tuple(
            (str(n), int(b), int(s)) for n, b, s in buffers
        )
        if op is not None:
            self._cols = (op, w, kid, i0, i1, i2, i3, f0)
        elif rows is None:
            raise ValueError("need either columns or rows")
        else:
            self._cols = None  # built lazily from rows (see _columns)
        self.meta: Dict = dict(meta or {})
        self._rows = rows
        self._digest: Optional[str] = None

    def _columns(self) -> tuple:
        """The eight parallel arrays, columnarizing the rows on demand.

        Capture hands over the raw event-tuple list (columnarizing is
        pure overhead when the trace is consumed in-process, which walks
        :meth:`rows` anyway); the arrays are materialized only when
        something needs them — :meth:`save`, :meth:`nbytes`, or direct
        column access.
        """
        if self._cols is None:
            ev = self._rows
            n = len(ev)
            if n == 0:
                self._cols = tuple(
                    np.zeros(0, dt) for _, dt in self._COLUMNS
                )
            else:
                # One C-level pass over the tuples; exact as long as the
                # integer operands fit a float64 mantissa (bump-allocator
                # addresses are far below 2**53 — checked, with an exact
                # per-column fallback just in case).
                arr = np.array(ev, dtype=np.float64)
                if float(np.abs(arr[:, 3:7]).max()) < 2.0**53:
                    self._cols = tuple(
                        arr[:, i].copy() if dt is np.float64
                        else arr[:, i].astype(dt)
                        for i, (_, dt) in enumerate(self._COLUMNS)
                    )
                else:
                    cols = list(zip(*ev))
                    self._cols = tuple(
                        np.fromiter(cols[i], dt, n)
                        for i, (_, dt) in enumerate(self._COLUMNS)
                    )
        return self._cols

    op = property(lambda self: self._columns()[0])
    w = property(lambda self: self._columns()[1])
    kid = property(lambda self: self._columns()[2])
    i0 = property(lambda self: self._columns()[3])
    i1 = property(lambda self: self._columns()[4])
    i2 = property(lambda self: self._columns()[5])
    i3 = property(lambda self: self._columns()[6])
    f0 = property(lambda self: self._columns()[7])

    # -- introspection -------------------------------------------------
    @property
    def n_events(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._cols[0])

    def nbytes(self) -> int:
        """In-memory size of the columnar encoding."""
        return sum(c.nbytes for c in self._columns())

    def content_digest(self) -> str:
        """sha256 of the column data, labels and buffers — lazily cached.

        Loaders that already computed (and verified) the digest pre-seed
        the cache, so warm paths never re-hash; a freshly captured trace
        pays one hash on first use.  The replay layer keys its shared-pass
        memo and the persistent compiled-pass cache on this value, so a
        quarantined-and-recaptured trace (same key, different bytes) can
        never be served a stale compiled pass.
        """
        if self._digest is None:
            self._digest = self._content_digest(
                self._columns(), self.labels, self.buffers
            )
        return self._digest

    def compatible_with(self, machine) -> bool:
        """True if *machine* can replay this trace (VL bucket match)."""
        return (
            machine.isa_name == self.isa_name
            and machine.vlen_bits == self.vlen_bits
            and machine.l1.line_bytes == self.l1_line_bytes
        )

    def rows(self) -> list:
        """Decoded row tuples ``(op, w, kid, i0, i1, i2, i3, f0)``.

        Built once per trace and cached — the replayer iterates plain
        Python tuples, which is much faster than per-row array indexing.
        Freshly captured traces are already row-backed (the recorder's
        event tuples have exactly this shape), so this is free for them.
        """
        if self._rows is None:
            cols = self._columns()
            self._rows = list(zip(*(c.tolist() for c in cols)))
        return self._rows

    # -- persistence ---------------------------------------------------
    @staticmethod
    def _content_digest(cols, labels, buffers) -> str:
        """sha256 over the column bytes plus labels/buffers.

        Stored in (and checked against) the spill header so a torn or
        bit-flipped ``.npz`` can never replay: the loader raises and
        the trace cache quarantines the file.
        """
        import hashlib

        h = hashlib.sha256()
        for c in cols:
            arr = np.ascontiguousarray(c)
            h.update(str(arr.dtype).encode("utf-8"))
            h.update(arr.tobytes())
        h.update(
            json.dumps(
                [list(labels), [list(b) for b in buffers]], sort_keys=True
            ).encode("utf-8")
        )
        return h.hexdigest()

    def save(self, path: str) -> None:
        """Serialize to an ``.npz`` file (no pickling)."""
        cols = self._columns()
        np.savez(
            path,
            op=self.op, w=self.w, kid=self.kid,
            i0=self.i0, i1=self.i1, i2=self.i2, i3=self.i3, f0=self.f0,
            labels=np.array(self.labels, dtype=np.str_),
            header=np.array(
                json.dumps(
                    {
                        "key": self.key,
                        "isa_name": self.isa_name,
                        "vlen_bits": self.vlen_bits,
                        "l1_line_bytes": self.l1_line_bytes,
                        "format": TRACE_FORMAT_VERSION,
                        "buffers": [list(b) for b in self.buffers],
                        "meta": self.meta,
                        "sha256": self._content_digest(
                            cols, self.labels, self.buffers
                        ),
                    }
                ),
                dtype=np.str_,
            ),
        )

    @classmethod
    def load(cls, path: str) -> "RecordedTrace":
        with np.load(path, allow_pickle=False) as z:
            header = json.loads(str(z["header"]))
            if header.get("format") != TRACE_FORMAT_VERSION:
                raise ValueError(
                    f"trace format {header.get('format')!r} != "
                    f"{TRACE_FORMAT_VERSION} (stale spill file)"
                )
            labels = [str(s) for s in z["labels"].tolist()]
            buffers = header.get("buffers", ())
            cols = tuple(
                z[name].copy() for name, _ in cls._COLUMNS
            )
            digest = cls._content_digest(cols, labels, buffers)
            if header.get("sha256") != digest:
                raise ValueError("trace content digest mismatch (corrupt spill)")
            tr = cls(
                header.get("key"),
                header["isa_name"],
                header["vlen_bits"],
                header["l1_line_bytes"],
                labels,
                *cols,
                meta=header.get("meta"),
                buffers=buffers,
            )
            tr._digest = digest
            return tr


class _RecorderHierarchy:
    """Stand-in for ``sim.hierarchy`` while recording.

    Kernels only touch the hierarchy through
    :meth:`note_resident_range`; the recorder captures those calls as
    events so replay can reconstruct the residency-range state.
    """

    __slots__ = ("_rec",)

    def __init__(self, rec: "TraceRecorder"):
        self._rec = rec

    def note_resident_range(self, base: int, nbytes: int) -> None:
        rec = self._rec
        rec._events.append(
            (OP_NOTE_RANGE, rec._w, rec._cur_kid, base, nbytes, 0, 0, 0.0)
        )


class TraceRecorder(SampledTraceBase):
    """Captures the macro-event stream a kernel issues, without pricing.

    Presents the same API surface as
    :class:`~repro.machine.simulator.TraceSimulator` (events, sampling
    contexts, allocation, ``machine``/``hierarchy`` attributes) so the
    network runner and kernels run unmodified.  Events are appended as
    plain tuples (one append per event — this is the capture hot path)
    and frozen into a :class:`RecordedTrace` by :meth:`finish`.

    The event methods replicate the TraceSimulator's early-out guards
    exactly: an event the simulator would not price at all (e.g. a
    zero-element vector load) is not recorded, while events that merely
    contribute zero cycles (e.g. ``scalar(0)``) *are*, because they
    still touch the kernel-cycle attribution dict.
    """

    def __init__(self, machine):
        super().__init__()
        self.machine = machine
        self.address_space = AddressSpace()
        self.hierarchy = _RecorderHierarchy(self)
        self._events: list = []
        self._labels: Dict[str, int] = {"other": 0}
        self._cur_kid = 0

    # -- bookkeeping ---------------------------------------------------
    def alloc(self, name: str, nbytes: int) -> Buffer:
        """Allocate a simulated buffer (same bump allocator as pricing)."""
        return self.address_space.alloc(name, nbytes)

    @contextmanager
    def kernel(self, label: str):
        """Attribute events in this context to *label*.

        Overrides the base context manager to keep the current label id
        cached — events record it once per ``kernel()`` entry instead of
        one dict lookup per event (the capture hot path).
        """
        self._kernel_stack.append(label)
        prev = self._cur_kid
        labels = self._labels
        kid = labels.get(label)
        if kid is None:
            kid = labels[label] = len(labels)
        self._cur_kid = kid
        try:
            yield
        finally:
            self._kernel_stack.pop()
            self._cur_kid = prev

    def _kid(self) -> int:
        return self._cur_kid

    # -- events (mirror TraceSimulator's signatures) -------------------
    def scalar(self, n: int = 1) -> None:
        self._events.append((OP_SCALAR, self._w, self._cur_kid, n, 0, 0, 0, 0.0))

    def scalar_load(self, addr: int, nbytes: int = 4) -> None:
        self._events.append(
            (OP_SCALAR_LOAD, self._w, self._cur_kid, addr, nbytes, 0, 0, 0.0)
        )

    def scalar_store(self, addr: int, nbytes: int = 4) -> None:
        self._events.append(
            (OP_SCALAR_STORE, self._w, self._cur_kid, addr, nbytes, 0, 0, 0.0)
        )

    def vload(self, addr: int, n_elems: int, ew: int = 4, stride: int = 0) -> None:
        if n_elems <= 0:
            return
        self._events.append(
            (OP_VLOAD, self._w, self._cur_kid, addr, n_elems, ew, stride, 0.0)
        )

    def vstore(self, addr: int, n_elems: int, ew: int = 4, stride: int = 0) -> None:
        if n_elems <= 0:
            return
        self._events.append(
            (OP_VSTORE, self._w, self._cur_kid, addr, n_elems, ew, stride, 0.0)
        )

    def vgather(self, addr: int, n_elems: int, span_bytes: int, ew: int = 4) -> None:
        if n_elems <= 0:
            return
        # Same lowering as TraceSimulator.vgather.
        stride = max(ew, span_bytes // max(1, n_elems))
        self._events.append(
            (OP_VLOAD, self._w, self._cur_kid, addr, n_elems, ew, stride, 0.0)
        )

    def vscatter(self, addr: int, n_elems: int, span_bytes: int, ew: int = 4) -> None:
        if n_elems <= 0:
            return
        stride = max(ew, span_bytes // max(1, n_elems))
        self._events.append(
            (OP_VSTORE, self._w, self._cur_kid, addr, n_elems, ew, stride, 0.0)
        )

    def varith(
        self, n_elems: int, n_instr: int = 1, flops_per_elem: float = 2.0, ew: int = 4
    ) -> None:
        if n_elems <= 0 or n_instr <= 0:
            return
        self._events.append(
            (OP_VARITH, self._w, self._cur_kid, n_elems, n_instr, ew, 0,
             flops_per_elem)
        )

    def vbroadcast(self, n: int = 1) -> None:
        self._events.append(
            (OP_VBROADCAST, self._w, self._cur_kid, n, 0, 0, 0, 0.0)
        )

    def sw_prefetch(self, addr: int, nbytes: int, level: str = "L1") -> None:
        if level not in ("L1", "L2"):
            raise ValueError(f"unknown prefetch level {level!r}")
        self._events.append(
            (OP_SW_PREFETCH, self._w, self._cur_kid, addr, nbytes,
             0 if level == "L1" else 1, 0, 0.0)
        )

    def count_flops(self, n: float) -> None:
        self._events.append(
            (OP_COUNT_FLOPS, self._w, self._cur_kid, 0, 0, 0, 0, float(n))
        )

    def spill(self, n_registers: int = 1) -> None:
        self._events.append(
            (OP_SPILL, self._w, self._cur_kid, n_registers, 0, 0, 0, 0.0)
        )

    # -- freezing ------------------------------------------------------
    def finish(self, key: Optional[str] = None, meta=None) -> RecordedTrace:
        """Freeze the captured events into a :class:`RecordedTrace`.

        The event tuples already have the row shape replay iterates, so
        the trace is handed over row-backed; the columnar arrays are
        materialized lazily, only if the trace is spilled to disk.
        """
        labels = [None] * len(self._labels)
        for name, kid in self._labels.items():
            labels[kid] = name
        m = self.machine
        return RecordedTrace(
            key,
            m.isa_name,
            m.vlen_bits,
            m.l1.line_bytes,
            labels,
            meta=meta,
            rows=self._events,
            buffers=[
                (b.name, b.base, b.nbytes)
                for b in self.address_space.buffers.values()
            ],
        )
