"""gem5-substitute: trace-driven vector microarchitecture simulator.

See DESIGN.md §2 (substitution table) and §5 (timing-model notes).
Public surface: machine presets matching the paper's Table I, the cache /
prefetcher / hierarchy models, and :class:`TraceSimulator`, which kernels
replay their instruction streams against.
"""

from .cache import SetAssocCache
from .config import (
    KB,
    MB,
    CacheParams,
    CoreParams,
    MachineConfig,
    PrefetcherParams,
    VPUParams,
    a64fx,
    rvv_gem5,
    sve_gem5,
)
from .hierarchy import AccessStats, MemoryHierarchy
from .latency import (
    BASE_L2_BYTES,
    BASE_L2_LATENCY,
    cacti_like_latency,
    constant_latency,
    latency_for,
)
from .prefetcher import NullPrefetcher, StreamPrefetcher
from .report import dump_gem5_stats, format_gem5_stats
from .simulator import SimStats, TraceSimulator
from .trace import AddressSpace, Buffer
from .vpu import varith_cycles, vbroadcast_cycles, vmem_transfer_cycles

__all__ = [
    "SetAssocCache",
    "CacheParams",
    "CoreParams",
    "MachineConfig",
    "PrefetcherParams",
    "VPUParams",
    "KB",
    "MB",
    "a64fx",
    "rvv_gem5",
    "sve_gem5",
    "AccessStats",
    "MemoryHierarchy",
    "BASE_L2_BYTES",
    "BASE_L2_LATENCY",
    "cacti_like_latency",
    "constant_latency",
    "latency_for",
    "NullPrefetcher",
    "dump_gem5_stats",
    "format_gem5_stats",
    "StreamPrefetcher",
    "SimStats",
    "TraceSimulator",
    "AddressSpace",
    "Buffer",
    "varith_cycles",
    "vbroadcast_cycles",
    "vmem_transfer_cycles",
]
