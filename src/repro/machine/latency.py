"""Cache-latency models.

The paper derives its simulated L2 latency from the AMD Zen2 L2
(12 cycles at 7 nm) extrapolated to 1 MB with CACTI, arriving at
12 cycles, and then — when sweeping L2 size up to 256 MB — argues that
"larger caches are beneficial, *given that their latency remains low*"
(Section VI-B(b)).  We therefore provide two models:

* :func:`constant_latency` — the paper's experimental setting: latency
  stays at the 1 MB value for every size in the sweep (isolating capacity
  effects from latency effects);
* :func:`cacti_like_latency` — a CACTI-flavoured power-law growth with
  capacity, available for the latency-sensitivity ablation bench.
"""

from __future__ import annotations

import math

__all__ = [
    "BASE_L2_BYTES",
    "BASE_L2_LATENCY",
    "constant_latency",
    "cacti_like_latency",
]

#: Reference point from the paper: 1 MB L2 at 12 cycles.
BASE_L2_BYTES = 1 << 20
BASE_L2_LATENCY = 12


def constant_latency(size_bytes: int, base_latency: int = BASE_L2_LATENCY) -> int:
    """The paper's setting: L2 latency independent of capacity."""
    if size_bytes <= 0:
        raise ValueError("cache size must be positive")
    return base_latency


def cacti_like_latency(
    size_bytes: int,
    base_bytes: int = BASE_L2_BYTES,
    base_latency: int = BASE_L2_LATENCY,
    exponent: float = 0.35,
) -> int:
    """CACTI-flavoured latency growth: ``lat = base * (size/base_size)**e``.

    CACTI 6.0 shows SRAM access time growing roughly with the square root
    of the macro area for NUCA organizations; ``exponent = 0.35`` keeps a
    256 MB L2 at ~84 cycles, in line with published large-SRAM designs.

    >>> cacti_like_latency(1 << 20)
    12
    >>> cacti_like_latency(256 << 20) > 4 * cacti_like_latency(1 << 20)
    True
    """
    if size_bytes <= 0:
        raise ValueError("cache size must be positive")
    scale = (size_bytes / base_bytes) ** exponent
    return max(1, int(round(base_latency * scale)))


def latency_for(size_bytes: int, model: str = "constant") -> int:
    """Dispatch helper used by the machine presets."""
    if model == "constant":
        return constant_latency(size_bytes)
    if model == "cacti":
        return cacti_like_latency(size_bytes)
    raise ValueError(f"unknown latency model {model!r}")


__all__.append("latency_for")

# Keep ``math`` referenced for introspection tools even though the power
# law uses the ** operator.
_ = math.sqrt
