"""Replay recorded kernel traces against one or many design points.

Three engines, three speed classes:

* :func:`replay` — feed a :class:`~repro.machine.trace.RecordedTrace`
  back through a regular :class:`~repro.machine.simulator.TraceSimulator`
  event by event.  Skips all kernel-side work (loop bookkeeping, address
  arithmetic, policy dispatch) but re-prices every event; bitwise
  identical to direct simulation by construction, since it calls the
  very same event methods with the very same arguments and weights.

* :func:`replay_sweep` — price one trace on a whole *group* of machines
  that differ only in L2 geometry/latency and DRAM parameters (the
  paper's Fig. 7/8 cache sweeps) or only in VPU pricing parameters —
  lanes, pipes, MLP, port width, issue overheads (the Fig. 6/8 lane
  and MLP axes).  The trace is walked **once** through the
  group-invariant upstream levels (TLB, L1, prefetcher, VectorCache
  — all identical across the group), producing a compact *program* of
  pre-priced invariant cycle contributions plus the per-event list of
  line addresses that reached the L2.  Each design point then replays
  only that program against its own L2/range model — typically a few
  percent of the events carry pending lines, so a point costs a small
  fraction of a direct simulation.  In a VPU group
  (:func:`group_mode` returns ``"vpu"``) the lane/MLP-dependent cycle
  terms are not pre-priced: the shared pass records each distinct
  (event kind, element count, operand shape) as a *pricing class*
  (tag-6 program items), and every point resolves the class table
  once against its own VPU before folding — so one capture prices a
  whole lane sweep bitwise-identically to per-point simulation.

* :func:`capture_sweep` — the same split, but the shared pass is driven
  directly by the kernels (no intermediate trace): one kernel run prices
  the whole group.  This is the serial cold-sweep fast path.

Bitwise identity
----------------
The split relies on properties of the direct simulator that are easy to
state and checked by tests/test_trace_replay.py:

* Latency sums are integers until the final stall arithmetic, so
  splitting ``lat`` into an upstream part (shared pass) and
  ``l2_lat * pending + dram_lat * misses`` (point pass) is exact.
* Per-event cycle pricing is a pure function of the walk outcome —
  :func:`~repro.machine.simulator.vmem_event_cycles` is shared with the
  simulator, and the scalar-miss formula below is kept in lock-step
  with ``TraceSimulator.scalar_load``/``scalar_store``.
* ``SimStats`` counters are accumulated per field in event order; the
  twelve group-invariant fields are folded once in the shared pass and
  copied into every point's result.
* ``occ2`` is a repeated sum of ``fill_l2`` — reproduced with a
  running table so point ``k`` misses cost exactly the same float.
* Dirty bits only feed cache-object writeback counters (never
  ``SimStats``), so the point-pass L2 walk may store ``True``
  unconditionally without perturbing residency or LRU order.

The conflict-free fast path (:func:`_point_pass_fast`) additionally
exploits that an L2 in which no set's distinct-line population exceeds
the associativity never evicts: a lookup then hits **iff** the line was
touched before, which the shared pass precomputes per event (a repeat
count plus the list of first-touch lines).  Only the residency-range
outcome still varies per point, so those points skip the cache walk
entirely.  Prefetcher/prefetch-hint fills disable the shortcut (they
insert lines outside the demand stream).

Conflict-free points whose residency ranges also never trim (the
recorded working set fits the point's L2) go one step further: their
walk outcome is *point-invariant*, so the program is compiled once
into flat NumPy columns (:func:`_compile_fast`) and each point is
priced by :func:`_point_pass_vec` with ``np.add.accumulate`` /
``np.bincount`` column arithmetic instead of a per-event Python loop.
Both folds are strictly sequential in event order (NumPy accumulate
and bincount-with-weights are defined as in-order loops, unlike the
pairwise ``np.sum``), so the result stays bitwise identical.

The hierarchy walks in :class:`_GroupCapture` mirror
``MemoryHierarchy._l1_path`` / ``_l2_path`` and their strided variants
line for line (minus the L2 lookup, which is deferred): keep them in
lock-step with hierarchy.py when the model changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .config import MachineConfig
from .hierarchy import _VC_HIT_LATENCY, MemoryHierarchy
from .simulator import (
    _SCALAR_MLP,
    _SPILL_SERIALIZE_CYCLES,
    _STORE_STALL_FACTOR,
    SimStats,
    TraceSimulator,
    vmem_event_cycles,
)
from .trace import (
    OP_COUNT_FLOPS,
    OP_NOTE_RANGE,
    OP_SCALAR,
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_SPILL,
    OP_SW_PREFETCH,
    OP_VARITH,
    OP_VBROADCAST,
    OP_VLOAD,
    OP_VSTORE,
    TRACE_FORMAT_VERSION,
    AddressSpace,
    RecordedTrace,
    SampledTraceBase,
)
from .vpu import varith_cycles, vbroadcast_cycles

__all__ = [
    "replay",
    "replay_sweep",
    "replay_sweep_cached",
    "capture_sweep",
    "uniform_group",
    "group_mode",
    "supports_axis",
    "nonuniform_fields",
]

#: SimStats fields that do not depend on L2/DRAM parameters: everything
#: upstream of the L2 plus the pure instruction/byte/flop counts.
_INVARIANT_FIELDS = (
    "scalar_instrs",
    "vec_instrs",
    "vec_mem_instrs",
    "vec_elems",
    "flops",
    "bytes_loaded",
    "bytes_stored",
    "l1_hits",
    "l1_misses",
    "vc_hits",
    "sw_prefetches",
    "spills",
)


def _check_compatible(trace: RecordedTrace, machine: MachineConfig) -> None:
    if not trace.compatible_with(machine):
        raise ValueError(
            f"trace (isa={trace.isa_name}, vlen={trace.vlen_bits}b, "
            f"l1_line={trace.l1_line_bytes}) cannot replay on machine "
            f"{machine.name!r} ({machine.isa_name}, {machine.vlen_bits}b, "
            f"l1_line={machine.l1.line_bytes})"
        )


# ----------------------------------------------------------------------
# Single-point replay
# ----------------------------------------------------------------------
def replay(
    trace: RecordedTrace, machine: MachineConfig, verify: bool = False
) -> SimStats:
    """Price *trace* on *machine*; bitwise identical to direct simulation.

    Raises ``ValueError`` if the trace was captured for a different
    (ISA, vector length, L1 line) combination — those change the event
    stream itself, not just its pricing.  With ``verify=True`` the
    trace is first run through the static verifier
    (:func:`repro.analysis.verify_trace`) and a ``ValueError`` raised
    on any finding — cheap insurance when replaying traces of unknown
    provenance (e.g. spill files from another process).
    """
    _check_compatible(trace, machine)
    from ..testing import faults  # inert unless REPRO_FAULTS is set

    faults.maybe_fault("replay.point", key=trace.key)
    if verify:
        from ..analysis import verify_trace  # deferred: analysis is optional

        bad = verify_trace(trace, machine)
        if bad:
            raise ValueError(
                f"trace failed verification ({len(bad)} findings): "
                + "; ".join(f.message for f in bad[:3])
            )
    sim = TraceSimulator(machine)
    labels = trace.labels
    stack = sim._kernel_stack
    vmem = sim._vmem
    scalar = sim.scalar
    scalar_load = sim.scalar_load
    scalar_store = sim.scalar_store
    varith = sim.varith
    note_range = sim.hierarchy.note_resident_range
    cur_w = 1.0
    cur_kid = 0
    for op, w, kid, i0, i1, i2, i3, f0 in trace.rows():
        if w != cur_w:
            sim._w = cur_w = w
        if kid != cur_kid:
            stack[-1] = labels[kid]
            cur_kid = kid
        if op == OP_VLOAD:
            vmem(i0, i1, i2, i3, False)
        elif op == OP_SCALAR:
            scalar(i0)
        elif op == OP_SCALAR_LOAD:
            scalar_load(i0, i1)
        elif op == OP_VARITH:
            varith(i0, i1, f0, i2)
        elif op == OP_VSTORE:
            vmem(i0, i1, i2, i3, True)
        elif op == OP_SCALAR_STORE:
            scalar_store(i0, i1)
        elif op == OP_NOTE_RANGE:
            note_range(i0, i1)
        elif op == OP_SW_PREFETCH:
            sim.sw_prefetch(i0, i1, "L1" if i2 == 0 else "L2")
        elif op == OP_VBROADCAST:
            sim.vbroadcast(i0)
        elif op == OP_COUNT_FLOPS:
            sim.count_flops(f0)
        elif op == OP_SPILL:
            sim.spill(i0)
        else:
            raise ValueError(f"unknown trace opcode {op}")
    return sim.stats


# ----------------------------------------------------------------------
# Group replay: shared upstream pass + per-point L2 pass
# ----------------------------------------------------------------------
#: VPU fields that shape the upstream *walk* (which hierarchy level a
#: vector access reaches, VectorCache residency) rather than just the
#: per-event cycle price.  A group varying in these cannot share one
#: shared pass; everything else on VPUParams is pricing-only and is
#: deferred to the point pass in ``"vpu"`` mode.
_VPU_WALK_FIELDS = ("mem_port", "vector_cache_bytes")


def group_mode(machines: Sequence[MachineConfig]) -> Optional[str]:
    """Classify a sweep group for the shared-pass split.

    * ``"l2"`` — machines differ only in L2 size/associativity/latency
      and DRAM latency/bandwidth (and labels).  Every per-event compute
      price is group-invariant and pre-priced in the shared pass.
    * ``"vpu"`` — machines additionally differ in VPU *pricing* fields
      (lanes, pipes, MLP, port width, issue overheads, outstanding
      limit).  The walk is still group-invariant, but vector compute
      prices are deferred as tag-6 pricing classes and resolved per
      point.
    * ``None`` — the group varies in a field the split cannot express
      (ISA, vector length, L1 geometry, core model, VPU port level,
      VectorCache size, L2 line size); callers must fall back to
      per-point simulation.

    The L2 *line size* must match across the group — it sets the line
    granularity of the recorded pending-line lists.
    """
    m0 = machines[0]
    v0 = m0.vpu
    mode = "l2"
    for m in machines[1:]:
        if m.l2.line_bytes != m0.l2.line_bytes:
            return None
        norm = replace(
            m,
            name=m0.name,
            l2=m0.l2,
            dram_latency=m0.dram_latency,
            dram_bytes_per_cycle=m0.dram_bytes_per_cycle,
            peak_gflops=m0.peak_gflops,
        )
        if norm == m0:
            continue
        v = m.vpu
        if any(getattr(v, f) != getattr(v0, f) for f in _VPU_WALK_FIELDS):
            return None
        if replace(norm, vpu=v0) != m0:
            return None
        mode = "vpu"
    return mode


def uniform_group(machines: Sequence[MachineConfig]) -> bool:
    """True if the machines differ only in L2/DRAM pricing fields (the
    ``"l2"`` mode of :func:`group_mode`); kept for callers that cannot
    defer VPU pricing."""
    return group_mode(machines) == "l2"


_uniform_group = uniform_group  # private alias kept for callers/tests


#: Sweep axes the replay engines can price.  L2/DRAM axes and VPU
#: pricing axes replay in a shared-pass group; ``vlen`` changes the
#: event stream itself, so each VL records its own trace — but every
#: such single-point group still replays from its (cached) capture.
_REPLAY_AXES = frozenset(
    {
        "l2_mb",
        "l2_size",
        "l2_assoc",
        "l2_latency",
        "dram_latency",
        "dram_bytes_per_cycle",
        "dram_bw",
        "lanes",
        "pipes",
        "mlp",
        "vlen",
        "vlen_bits",
    }
)


def supports_axis(name: str) -> bool:
    """True if the pricing pass can replay a sweep along axis *name*.

    Capability query for sweep drivers: a supported axis either forms a
    replayable group (:func:`group_mode` returns non-``None``) or, for
    ``vlen``, splits into per-point captures that each replay — one
    capture per VL serving every pricing axis at that VL, with warm
    runs served from the persistent compiled-pass cache
    (:func:`replay_sweep_cached`).  An unsupported axis (e.g.
    ``l1_size``, ``mem_port``) changes the recorded walk itself and
    must simulate per point.
    """
    return name in _REPLAY_AXES


def nonuniform_fields(machines: Sequence[MachineConfig]) -> List[str]:
    """Names of ``MachineConfig`` fields that differ across *machines*.

    Used to build actionable error messages when a group declines
    replay (``name`` and the derived ``peak_gflops`` are ignored).
    """
    from dataclasses import fields

    m0 = machines[0]
    diff = set()
    for m in machines[1:]:
        for f in fields(m0):
            if getattr(m, f.name) != getattr(m0, f.name):
                diff.add(f.name)
    return sorted(diff - {"name", "peak_gflops"})


class _GroupCapture(SampledTraceBase):
    """Event-driven shared pass over the group-invariant hierarchy levels.

    Presents the TraceSimulator event API (so kernels — or a recorded
    trace — can drive it directly) and walks every memory event through
    the levels that are identical across an L2/DRAM sweep group: TLB,
    L1, L1 prefetcher, VectorCache.  Output (see :meth:`finish`) is the
    replay *program* the point passes price, the folded invariant
    ``SimStats`` fields, and the group constants.

    ``prog`` items (in original event order):

    * ``float`` — a pre-priced, weighted cycle contribution.  Never
      coalesced: the point pass must fold cycles in the direct
      simulator's event order for bitwise identity.
    * ``(1, label)`` — kernel-label switch (emitted lazily, only ahead
      of items that add cycles, so no spurious ``kernel_cycles``
      entries).
    * ``(2, base, nbytes)`` — ``note_resident_range`` call.
    * ``(3, w, addrs, inv_lat, occ1, nbytes, n_lines, write, unit, iid,
      nh0, ft)`` — a vector memory event with pending lines for the L2.
      ``addrs`` holds one *byte address* per pending line (the
      source-level granularity and shift are group constants, so they
      are folded here once instead of per line per point; the point
      pass recovers the L2 line as ``a >> l2_shift``).  ``nh0`` counts
      lines touched before (guaranteed hits in a conflict-free L2) and
      ``ft`` holds the first-touch lines' addresses, both for
      :func:`_point_pass_fast`.
    * ``(4, w, addrs, inv_lat, occ1, write, nh0, ft)`` — a scalar
      access with at least one L1 miss.
    * ``(5, lines)`` — honoured software-prefetch fills into the L2.
    * ``(6, w, cid)`` — (``defer_vpu`` mode only) a VPU-priced event
      whose cycle cost depends on lane count / MLP / port width.  The
      class table (``gc["classes"]``) maps ``cid`` to the event's
      pricing inputs; each point resolves the table once against its
      own VPU (:func:`_vpu_price_table`) and folds ``w * price``
      exactly where the l2-mode float would have been.
    """

    def __init__(self, base: MachineConfig, defer_vpu: bool = False):
        super().__init__()
        self.machine = base
        self.address_space = AddressSpace()
        # Kernels only reach the hierarchy via note_resident_range.
        self.hierarchy = self
        hier = MemoryHierarchy(base)
        vpu = base.vpu
        self._vpu = vpu
        self._port_l1 = vpu.mem_port == "L1"
        self._scalar_cpi = base.core.scalar_cpi
        self._ooo_hide = base.core.ooo_hide
        self._l1_line = base.l1.line_bytes
        self._l1_shift = hier._l1_shift
        self._l2_shift = hier._l2_shift
        self._l1_lat = hier._l1_lat
        self._fill_l1 = hier._fill_l1
        self._ratio = hier._l1_l2_ratio
        l1 = hier.l1
        self._l1 = l1
        self._l1_sets = l1._sets
        self._l1_num = l1.num_sets
        self._l1_assoc = l1.assoc
        self._pf1 = hier.l1_prefetcher if hier._pf1_on else None
        self._pf2_cfg = hier._pf2_on
        self._tlb = hier.tlb
        self._tlb_shift = hier.tlb.shift if hier.tlb is not None else 0
        vc = hier.vector_cache
        self._vc_set = hier._vc_set
        self._vc_assoc = vc.assoc if vc is not None else 0
        self._honors = base.honors_sw_prefetch
        self._noop_pf = base.sw_prefetch_is_noop_instr
        self._vb_cycles = vbroadcast_cycles(vpu)
        # Vector pending lines are L1-granular on an L1-port machine,
        # L2-granular otherwise; scalar ones are always L1-granular.
        # Both are emitted as byte addresses (granularity folded at
        # capture).  ``seen`` (the first-touch set, = the distinct-line
        # set the eligibility checks use) is kept L2-granular.
        self._v_shift = self._l1_shift if self._port_l1 else self._l2_shift

        self._prog: list = []
        self._append = self._prog.append  # pre-bound: hot-path use
        self._cur_label: Optional[str] = None  # forces the first switch
        self._seen: set = set()
        self._inv_ids: dict = {}
        self._vmem_inv_memo: dict = {}
        self._varith_memo: dict = {}
        # Deferred VPU pricing: the memos above then cache class ids
        # instead of cycle prices (the mode is fixed per instance).
        self._defer = defer_vpu
        self._classes: list = []
        self._cls_ids: dict = {}
        self._has_fills = False
        self._max_range_total = 0
        self._inf_ranges: list = []

        self._scalar_instrs = 0.0
        self._vec_instrs = 0.0
        self._vec_mem_instrs = 0.0
        self._vec_elems = 0.0
        self._flops = 0.0
        self._bytes_loaded = 0.0
        self._bytes_stored = 0.0
        self._l1_hits_c = 0.0
        self._l1_misses_c = 0.0
        self._vc_hits_c = 0.0
        self._sw_prefetches_c = 0.0
        self._spills_c = 0.0

    # -- bookkeeping ---------------------------------------------------
    def alloc(self, name, nbytes):
        return self.address_space.alloc(name, nbytes)

    def note_resident_range(self, base: int, nbytes: int) -> None:
        self._prog.append((2, base, nbytes))
        if nbytes > 0:
            # Track the would-be range total under an infinite budget:
            # if it never exceeds a point's L2 capacity, that point
            # never trims or evicts a range (eligibility for the
            # equivalence-class shortcut in the point driver).
            end_r = base + nbytes
            inf_ranges = [
                r for r in self._inf_ranges if r[1] <= base or r[0] >= end_r
            ]
            inf_ranges.append((base, end_r))
            self._inf_ranges = inf_ranges
            total = 0
            for r in inf_ranges:
                total += r[1] - r[0]
            if total > self._max_range_total:
                self._max_range_total = total

    def _switch(self, append) -> None:
        label = self._kernel_stack[-1]
        if label != self._cur_label:
            append((1, label))
            self._cur_label = label

    def _class_id(self, defn: tuple) -> int:
        """Intern a VPU pricing-class descriptor, returning its id."""
        cid = self._cls_ids.get(defn)
        if cid is None:
            cid = self._cls_ids[defn] = len(self._classes)
            self._classes.append(defn)
        return cid

    # -- events (TraceSimulator API) -----------------------------------
    def scalar(self, n: int = 1) -> None:
        w = self._w
        self._scalar_instrs += w * n
        append = self._append
        label = self._kernel_stack[-1]
        if label != self._cur_label:
            append((1, label))
            self._cur_label = label
        append(w * (n * self._scalar_cpi))

    def scalar_load(self, addr: int, nbytes: int = 4) -> None:
        self._scalar_mem(addr, nbytes, False)

    def scalar_store(self, addr: int, nbytes: int = 4) -> None:
        self._scalar_mem(addr, nbytes, True)

    def _scalar_mem(self, addr: int, nbytes: int, write: bool) -> None:
        # Scalar accesses always take the L1 path (mirrors
        # MemoryHierarchy._l1_path minus the deferred L2 walk).
        l1_shift = self._l1_shift
        first = addr >> l1_shift
        last = (addr + nbytes - 1) >> l1_shift
        if first == last:
            # Single-line fast path — the overwhelmingly common scalar
            # shape.  Same arithmetic as the generic loop below on a
            # one-line walk, minus its list/loop machinery.
            tlb = self._tlb
            lat_i = tlb.access(addr, nbytes) if tlb is not None else 0
            ways = self._l1_sets[first % self._l1_num]
            dirty = ways.pop(first, None)
            w = self._w
            self._scalar_instrs += w
            if write:
                self._bytes_stored += w * nbytes
            else:
                self._bytes_loaded += w * nbytes
            append = self._append
            label = self._kernel_stack[-1]
            if label != self._cur_label:
                append((1, label))
                self._cur_label = label
            if dirty is not None:
                ways[first] = dirty or write
                self._l1_hits_c += w
                # No pending line: invariant price, lock-step with
                # TraceSimulator.scalar_load/scalar_store where
                # d = (lat_i + l1_lat) - l1_lat == lat_i exactly (ints).
                if lat_i > 0:
                    stall = max(0.0, lat_i) / _SCALAR_MLP
                    if write:
                        stall *= _STORE_STALL_FACTOR * (1.0 - self._ooo_hide)
                    else:
                        stall *= 1.0 - self._ooo_hide
                    append(w * (self._scalar_cpi + stall + 0.0 + 0.0))
                else:
                    append(w * self._scalar_cpi)
                return
            ways[first] = write
            if len(ways) > self._l1_assoc:
                ways.pop(next(iter(ways)))
            if self._pf1 is not None:
                self._pf1.observe(self._l1, first)
            self._l1_misses_c += w * 1
            # occ1 = 0.0 + fill_l1 and lat_i += l1_lat, as in the loop.
            lat_i += self._l1_lat
            a = first << l1_shift
            k = a >> self._l2_shift
            seen = self._seen
            if k in seen:
                nh0 = 1
                ft = ()
            else:
                seen.add(k)
                nh0 = 0
                ft = (a,)
            append((4, w, (a,), lat_i, 0.0 + self._fill_l1, write, nh0, ft))
            return
        tlb = self._tlb
        lat_i = tlb.access(addr, nbytes) if tlb is not None else 0
        l1_sets, l1_num, l1_assoc = self._l1_sets, self._l1_num, self._l1_assoc
        l1_lat = self._l1_lat
        pf1 = self._pf1
        fill_l1 = self._fill_l1
        occ1 = 0.0
        l1h = l1m = 0
        pend = []
        for la in range(first, last + 1):
            ways = l1_sets[la % l1_num]
            dirty = ways.pop(la, None)
            if dirty is not None:
                ways[la] = dirty or write
                lat_i += l1_lat
                l1h += 1
                continue
            ways[la] = write
            if len(ways) > l1_assoc:
                ways.pop(next(iter(ways)))
            l1m += 1
            if pf1 is not None:
                pf1.observe(self._l1, la)
            occ1 += fill_l1
            lat_i += l1_lat  # L1 share of the miss latency
            pend.append(la)
        w = self._w
        self._scalar_instrs += w
        if write:
            self._bytes_stored += w * nbytes
        else:
            self._bytes_loaded += w * nbytes
        self._l1_hits_c += w * l1h
        if l1m:
            self._l1_misses_c += w * l1m
        append = self._append
        label = self._kernel_stack[-1]
        if label != self._cur_label:
            append((1, label))
            self._cur_label = label
        if pend:
            seen = self._seen
            l2_shift = self._l2_shift
            nh0 = 0
            addrs = []
            ft = []
            for la in pend:
                a = la << l1_shift
                addrs.append(a)
                k = a >> l2_shift
                if k in seen:
                    nh0 += 1
                else:
                    seen.add(k)
                    ft.append(a)
            append((4, w, tuple(addrs), lat_i, occ1, write, nh0, tuple(ft)))
        else:
            # Lock-step with TraceSimulator.scalar_load/scalar_store
            # (occupancies are 0.0 without an L1 miss).
            d = lat_i - l1_lat
            if d > 0:
                stall = max(0.0, d) / _SCALAR_MLP
                if write:
                    stall *= _STORE_STALL_FACTOR * (1.0 - self._ooo_hide)
                else:
                    stall *= 1.0 - self._ooo_hide
                append(w * (self._scalar_cpi + stall + 0.0 + 0.0))
            else:
                append(w * self._scalar_cpi)

    def vload(self, addr: int, n_elems: int, ew: int = 4, stride: int = 0) -> None:
        if n_elems <= 0:
            return
        self._vmem(addr, n_elems, ew, stride, False)

    def vstore(self, addr: int, n_elems: int, ew: int = 4, stride: int = 0) -> None:
        if n_elems <= 0:
            return
        self._vmem(addr, n_elems, ew, stride, True)

    def vgather(self, addr: int, n_elems: int, span_bytes: int, ew: int = 4) -> None:
        if n_elems <= 0:
            return
        # Same lowering as TraceSimulator.vgather.
        stride = max(ew, span_bytes // max(1, n_elems))
        self._vmem(addr, n_elems, ew, stride, False)

    def vscatter(self, addr: int, n_elems: int, span_bytes: int, ew: int = 4) -> None:
        if n_elems <= 0:
            return
        stride = max(ew, span_bytes // max(1, n_elems))
        self._vmem(addr, n_elems, ew, stride, True)

    def _vmem(self, addr: int, n_elems: int, ew: int, stride: int, write: bool) -> None:
        nbytes = n_elems * ew
        tlb = self._tlb
        port_l1 = self._port_l1
        vch = 0
        if stride in (0, ew):
            unit = True
            # Pricing granularity is the L1 line even on L2-port
            # machines — lock-step with TraceSimulator._vmem.
            l1_line = self._l1_line
            n_lines = (addr + nbytes - 1) // l1_line - addr // l1_line + 1
            if port_l1:
                # Mirrors MemoryHierarchy._l1_path minus the L2 walk
                # (its single-line fast path is semantics-preserving,
                # so the generic loop covers both).
                lat_i = tlb.access(addr, nbytes) if tlb is not None else 0
                l1_shift = self._l1_shift
                first = addr >> l1_shift
                last = (addr + nbytes - 1) >> l1_shift
                l1_sets, l1_num = self._l1_sets, self._l1_num
                l1_assoc = self._l1_assoc
                l1_lat = self._l1_lat
                pf1 = self._pf1
                fill_l1 = self._fill_l1
                occ1 = 0.0
                l1h = l1m = 0
                pend = []
                for la in range(first, last + 1):
                    ways = l1_sets[la % l1_num]
                    dirty = ways.pop(la, None)
                    if dirty is not None:
                        ways[la] = dirty or write
                        lat_i += l1_lat
                        l1h += 1
                        continue
                    ways[la] = write
                    if len(ways) > l1_assoc:
                        ways.pop(next(iter(ways)))
                    l1m += 1
                    if pf1 is not None:
                        pf1.observe(self._l1, la)
                    occ1 += fill_l1
                    lat_i += l1_lat  # L1 share of the miss latency
                    pend.append(la)
            else:
                # Mirrors MemoryHierarchy._l2_path up to the L2 walk
                # (a VC miss write-allocates before the L2 lookup).
                lat_i = tlb.access(addr, nbytes) if tlb is not None else 0
                l2_shift = self._l2_shift
                first = addr >> l2_shift
                last = (addr + nbytes - 1) >> l2_shift
                vc_set = self._vc_set
                if vc_set is not None:
                    vc_assoc = self._vc_assoc
                    pend = []
                    vc_pop = vc_set.pop
                    vc_len = len(vc_set)
                    for la in range(first, last + 1):
                        dirty = vc_pop(la, None)
                        if dirty is not None:
                            vc_set[la] = dirty or write
                            lat_i += _VC_HIT_LATENCY
                            vch += 1
                            continue
                        vc_set[la] = write
                        if vc_len >= vc_assoc:
                            vc_pop(next(iter(vc_set)))
                        else:
                            vc_len += 1
                        pend.append(la)
                else:
                    pend = list(range(first, last + 1))
                occ1 = 0.0
                l1h = l1m = 0
        else:
            unit = False
            n_lines = n_elems
            tlb_shift = self._tlb_shift
            if port_l1:
                # Mirrors MemoryHierarchy._strided_l1_path.
                l1_shift = self._l1_shift
                l1_sets, l1_num = self._l1_sets, self._l1_num
                l1_assoc = self._l1_assoc
                l1_lat = self._l1_lat
                pf1 = self._pf1
                fill_l1 = self._fill_l1
                lat_i = 0
                occ1 = 0.0
                l1h = l1m = 0
                pend = []
                prev_line = -1
                prev_page = -1
                for idx in range(n_elems):
                    a = addr + idx * stride
                    end = a + ew - 1
                    if tlb is not None:
                        page = a >> tlb_shift
                        if page == prev_page and (end >> tlb_shift) == page:
                            tlb.hits += 1  # MRU page: no LRU refresh
                        else:
                            lat_i += tlb.access(a, ew)
                            prev_page = (
                                page if (end >> tlb_shift) == page else -1
                            )
                    first = a >> l1_shift
                    last = end >> l1_shift
                    if first == last == prev_line:
                        ways = l1_sets[first % l1_num]
                        dirty = ways.pop(first, None)
                        if dirty is not None:
                            ways[first] = dirty or write
                            lat_i += l1_lat
                            l1h += 1
                            continue
                    for la in range(first, last + 1):
                        ways = l1_sets[la % l1_num]
                        dirty = ways.pop(la, None)
                        if dirty is not None:
                            ways[la] = dirty or write
                            lat_i += l1_lat
                            l1h += 1
                            continue
                        ways[la] = write
                        if len(ways) > l1_assoc:
                            ways.pop(next(iter(ways)))
                        l1m += 1
                        if pf1 is not None:
                            pf1.observe(self._l1, la)
                        occ1 += fill_l1
                        lat_i += l1_lat
                        pend.append(la)
                    prev_line = last
            else:
                # Mirrors MemoryHierarchy._strided_l2_path.
                l2_shift = self._l2_shift
                vc_set = self._vc_set
                vc_assoc = self._vc_assoc
                lat_i = 0
                pend = []
                prev_line = -1
                prev_page = -1
                for idx in range(n_elems):
                    a = addr + idx * stride
                    end = a + ew - 1
                    if tlb is not None:
                        page = a >> tlb_shift
                        if page == prev_page and (end >> tlb_shift) == page:
                            tlb.hits += 1
                        else:
                            lat_i += tlb.access(a, ew)
                            prev_page = (
                                page if (end >> tlb_shift) == page else -1
                            )
                    first = a >> l2_shift
                    last = end >> l2_shift
                    if first == last == prev_line:
                        if vc_set is not None:
                            vc_set[first] = vc_set.pop(first) or write
                            lat_i += _VC_HIT_LATENCY
                            vch += 1
                        else:
                            # Guaranteed L2 hit: the previous element
                            # left the line resident and MRU in every
                            # point's L2, so a plain pending line
                            # reproduces the hit and its latency.
                            pend.append(first)
                        continue
                    for la in range(first, last + 1):
                        if vc_set is not None:
                            dirty = vc_set.pop(la, None)
                            if dirty is not None:
                                vc_set[la] = dirty or write
                                lat_i += _VC_HIT_LATENCY
                                vch += 1
                                continue
                            vc_set[la] = write
                            if len(vc_set) > vc_assoc:
                                vc_set.pop(next(iter(vc_set)))
                        pend.append(la)
                    prev_line = last
                occ1 = 0.0
                l1h = l1m = 0
        w = self._w
        self._vec_instrs += w
        self._vec_mem_instrs += w
        self._vec_elems += w * n_elems
        if write:
            self._bytes_stored += w * nbytes
        else:
            self._bytes_loaded += w * nbytes
        if l1h:
            self._l1_hits_c += w * l1h
        if l1m:
            self._l1_misses_c += w * l1m
        if vch:
            self._vc_hits_c += w * vch
        append = self._append
        label = self._kernel_stack[-1]
        if label != self._cur_label:
            append((1, label))
            self._cur_label = label
        if pend:
            key = (w, lat_i, occ1, nbytes, n_lines, write, unit)
            inv_ids = self._inv_ids
            iid = inv_ids.get(key)
            if iid is None:
                iid = inv_ids[key] = len(inv_ids)
            seen = self._seen
            v_shift = self._v_shift
            l2_shift = self._l2_shift
            nh0 = 0
            addrs = []
            ft = []
            for la in pend:
                a = la << v_shift
                addrs.append(a)
                k = a >> l2_shift
                if k in seen:
                    nh0 += 1
                else:
                    seen.add(k)
                    ft.append(a)
            append(
                (3, w, tuple(addrs), lat_i, occ1, nbytes, n_lines, write,
                 unit, iid, nh0, tuple(ft))
            )
        elif self._defer:
            # Fully served upstream, but the price reads the VPU:
            # defer it as a pricing class.
            mkey = (lat_i, occ1, nbytes, n_lines, write, unit)
            memo = self._vmem_inv_memo
            cid = memo.get(mkey)
            if cid is None:
                cid = memo[mkey] = self._class_id(("m",) + mkey)
            append((6, w, cid))
        else:
            # Fully served upstream: the cycle cost is invariant.
            mkey = (lat_i, occ1, nbytes, n_lines, write, unit)
            memo = self._vmem_inv_memo
            cycles = memo.get(mkey)
            if cycles is None:
                cycles = memo[mkey] = vmem_event_cycles(
                    self._vpu, self._l1_lat, self._ooo_hide, lat_i, occ1,
                    0.0, nbytes, n_lines, write, unit,
                )
            append(w * cycles)

    def varith(
        self, n_elems: int, n_instr: int = 1, flops_per_elem: float = 2.0, ew: int = 4
    ) -> None:
        if n_elems <= 0 or n_instr <= 0:
            return
        vkey = (n_elems, n_instr, ew)
        memo = self._varith_memo
        cached = memo.get(vkey)
        if cached is None:
            if self._defer:
                cached = memo[vkey] = self._class_id(("a",) + vkey)
            else:
                cached = memo[vkey] = varith_cycles(
                    self._vpu, n_elems, n_instr, ew
                )
        w = self._w
        self._vec_instrs += w * n_instr
        self._vec_elems += w * n_instr * n_elems
        self._flops += w * n_instr * n_elems * flops_per_elem
        append = self._append
        label = self._kernel_stack[-1]
        if label != self._cur_label:
            append((1, label))
            self._cur_label = label
        if self._defer:
            append((6, w, cached))
        else:
            append(w * cached)

    def vbroadcast(self, n: int = 1) -> None:
        w = self._w
        self._vec_instrs += w * n
        append = self._append
        label = self._kernel_stack[-1]
        if label != self._cur_label:
            append((1, label))
            self._cur_label = label
        if self._defer:
            append((6, w, self._class_id(("b", n))))
        else:
            append(w * (n * self._vb_cycles))

    def sw_prefetch(self, addr: int, nbytes: int, level: str = "L1") -> None:
        if level not in ("L1", "L2"):
            raise ValueError(f"unknown prefetch level {level!r}")
        w = self._w
        append = self._append
        if self._honors:
            self._has_fills = True
            if level == "L1":
                # L1-level prefetch: the L1 fill is group-invariant
                # (done here); the implied inclusive L2 fill runs in
                # every point (mirrors MemoryHierarchy.sw_prefetch).
                l1_shift = self._l1_shift
                firstp = addr >> l1_shift
                lastp = (addr + nbytes - 1) >> l1_shift
                ratio = self._ratio
                l1_sets, l1_num = self._l1_sets, self._l1_num
                l1_assoc = self._l1_assoc
                fills = []
                for la in range(firstp, lastp + 1):
                    fills.append(la // ratio if ratio > 1 else la)
                    ways = l1_sets[la % l1_num]
                    if la not in ways:
                        ways[la] = False
                        if len(ways) > l1_assoc:
                            ways.pop(next(iter(ways)))
                append((5, tuple(fills)))
            else:
                l2_shift = self._l2_shift
                firstp = addr >> l2_shift
                lastp = (addr + nbytes - 1) >> l2_shift
                append((5, tuple(range(firstp, lastp + 1))))
            self._sw_prefetches_c += w
            self._switch(append)
            append(w * self._scalar_cpi)
        elif self._noop_pf:
            self._scalar_instrs += w
            self._switch(append)
            append(w * self._scalar_cpi)
        # else: dropped at compile time — free.

    def count_flops(self, n: float) -> None:
        self._flops += self._w * n

    def spill(self, n_registers: int = 1) -> None:
        # Mirrors TraceSimulator.spill: per register one full-vector
        # store and reload at stack address 0, then the serialization
        # penalty and the spill counter.
        n_elems = (self.machine.vlen_bits // 8) // 4
        for _ in range(n_registers):
            self.vstore(0, n_elems, 4)
            self.vload(0, n_elems, 4)
        w = self._w
        append = self._append
        self._switch(append)
        append(w * (n_registers * _SPILL_SERIALIZE_CYCLES))
        self._spills_c += w * n_registers

    # -- freezing ------------------------------------------------------
    def finish(self):
        """Return ``(prog, inv, gc)`` for the point passes."""
        inv = SimStats()
        inv.scalar_instrs = self._scalar_instrs
        inv.vec_instrs = self._vec_instrs
        inv.vec_mem_instrs = self._vec_mem_instrs
        inv.vec_elems = self._vec_elems
        inv.flops = self._flops
        inv.bytes_loaded = self._bytes_loaded
        inv.bytes_stored = self._bytes_stored
        inv.l1_hits = self._l1_hits_c
        inv.l1_misses = self._l1_misses_c
        inv.vc_hits = self._vc_hits_c
        inv.sw_prefetches = self._sw_prefetches_c
        inv.spills = self._spills_c
        gc = {
            "vpu": self._vpu,
            "port_l1": self._port_l1,
            "l1_lat": self._l1_lat,
            "ooo_hide": self._ooo_hide,
            "scalar_cpi": self._scalar_cpi,
            "l2_shift": self._l2_shift,
            "distinct": self._seen,
            "max_range_total": self._max_range_total,
            "has_fills": self._has_fills,
            "pf2_cfg": self._pf2_cfg,
            "classes": self._classes,
        }
        return self._prog, inv, gc


def _vpu_price_table(classes: list, vpu, l1_lat, ooo_hide) -> list:
    """Resolve deferred pricing classes against one point's VPU.

    Returns ``prices`` such that a tag-6 item ``(6, w, cid)`` folds
    ``w * prices[cid]`` — the very float the shared pass would have
    appended had the group been VPU-uniform (bitwise: the class holds
    the exact arguments the l2-mode pre-pricing would have used).
    """
    prices = []
    append = prices.append
    for d in classes:
        kind = d[0]
        if kind == "a":
            append(varith_cycles(vpu, d[1], d[2], d[3]))
        elif kind == "b":
            append(d[1] * vbroadcast_cycles(vpu))
        else:  # "m": fully-upstream-served vector memory event
            append(
                vmem_event_cycles(
                    vpu, l1_lat, ooo_hide, d[1], d[2], 0.0, d[3], d[4],
                    d[5], d[6],
                )
            )
    return prices


#: Engine knob for the trace-driven shared pass.  ``vec`` (the default)
#: runs the NumPy column engine (:mod:`repro.machine.replay_vec`);
#: ``python`` runs the per-event reference loop below.  The two are
#: hex-identical on every SimStats field (tests/test_replay_vec.py);
#: the loop is retained as the oracle the column engine is checked
#: against, and as the fallback of record.
_ENGINE_ENV = "REPRO_REPLAY_ENGINE"
_ENGINES = ("vec", "vectorized", "python", "")


def _replay_engine() -> str:
    from ..core.knobs import get_raw  # deferred: machine must not import core eagerly

    val = get_raw(_ENGINE_ENV).lower()
    if val not in _ENGINES:
        raise ValueError(
            f"{_ENGINE_ENV}={val!r}: expected 'vec' or 'python'"
        )
    return "python" if val == "python" else "vec"


def _shared_pass(
    trace: RecordedTrace, base: MachineConfig, defer_vpu: bool = False
):
    """Shared pass over *trace*: dispatches on ``REPRO_REPLAY_ENGINE``."""
    if _replay_engine() == "python":
        return _shared_pass_python(trace, base, defer_vpu=defer_vpu)
    from .replay_vec import _shared_pass_vec  # deferred: import cycle

    return _shared_pass_vec(trace, base, defer_vpu=defer_vpu)


def _shared_pass_python(
    trace: RecordedTrace, base: MachineConfig, defer_vpu: bool = False
):
    """Drive a :class:`_GroupCapture` from a recorded trace's rows.

    The per-event reference loop — the oracle the vectorized engine
    (:func:`repro.machine.replay_vec._shared_pass_vec`) is verified
    against, selectable via ``REPRO_REPLAY_ENGINE=python``.
    """
    cap = _GroupCapture(base, defer_vpu=defer_vpu)
    labels = trace.labels
    stack = cap._kernel_stack
    vmem = cap._vmem
    scalar = cap.scalar
    scalar_mem = cap._scalar_mem
    varith = cap.varith
    note_range = cap.note_resident_range
    cur_w = 1.0
    cur_kid = 0
    for op, w, kid, i0, i1, i2, i3, f0 in trace.rows():
        if w != cur_w:
            cap._w = cur_w = w
        if kid != cur_kid:
            stack[-1] = labels[kid]
            cur_kid = kid
        if op == OP_VLOAD:
            vmem(i0, i1, i2, i3, False)
        elif op == OP_SCALAR:
            scalar(i0)
        elif op == OP_SCALAR_LOAD:
            scalar_mem(i0, i1, False)
        elif op == OP_VARITH:
            varith(i0, i1, f0, i2)
        elif op == OP_VSTORE:
            vmem(i0, i1, i2, i3, True)
        elif op == OP_SCALAR_STORE:
            scalar_mem(i0, i1, True)
        elif op == OP_NOTE_RANGE:
            note_range(i0, i1)
        elif op == OP_SW_PREFETCH:
            cap.sw_prefetch(i0, i1, "L1" if i2 == 0 else "L2")
        elif op == OP_VBROADCAST:
            cap.vbroadcast(i0)
        elif op == OP_COUNT_FLOPS:
            cap.count_flops(f0)
        elif op == OP_SPILL:
            cap.spill(i0)
        else:
            raise ValueError(f"unknown trace opcode {op}")
    return cap.finish()


def _point_pass(prog: list, inv: SimStats, machine: MachineConfig, gc: dict) -> SimStats:
    """Price the shared-pass program against one design point's L2."""
    hier = MemoryHierarchy(machine)
    l2 = hier.l2
    l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
    pf2 = hier.l2_prefetcher if hier._pf2_on else None
    range_hit = hier._range_hit
    note_range = hier.note_resident_range
    l2_lat = hier._l2_lat
    dram_lat = hier._dram_lat
    fill_l2 = hier._fill_l2
    # The point's own VPU: identical to the capture VPU in an l2-mode
    # group, the varying one in a vpu-mode group.
    vpu = machine.vpu
    l1_lat = gc["l1_lat"]
    ooo_hide = gc["ooo_hide"]
    scalar_cpi = gc["scalar_cpi"]
    l2_shift = gc["l2_shift"]
    classes = gc["classes"]
    prices = (
        _vpu_price_table(classes, vpu, l1_lat, ooo_hide) if classes else ()
    )
    # Only the L1-port vector path feeds the L2 prefetcher (the RVV L2
    # path has no prefetcher); the scalar path always does.
    v_pf2 = pf2 if gc["port_l1"] else None
    # occ2 is a repeated sum of fill_l2 in the direct simulator; the
    # table reproduces the exact fold for any miss count.
    occ_tab = [0.0]
    fin_memo = {}
    fin4 = {}
    kc = {}
    cur = None
    kcur = 0.0
    cycles = 0.0
    l2_hits = l2_misses = dram_fills = 0.0
    # _range_hit only reorders the range list in place;
    # note_resident_range (tag 2) rebinds it, refreshed there.
    ranges = hier._ranges

    for it in prog:
        if type(it) is float:
            cycles += it
            kcur += it
            continue
        tag = it[0]
        if tag == 3:
            (_, w, addrs, inv_lat, occ1, nbytes, n_lines, write, unit,
             iid, _nh0, _ft) = it
            nh = nm = 0
            for a in addrs:
                l2a = a >> l2_shift
                ways = l2_sets[l2a % l2_num]
                if ways.pop(l2a, None) is not None:
                    # Dirty bits only feed writeback counters SimStats
                    # never reads; storing True keeps LRU state exact.
                    ways[l2a] = True
                    nh += 1
                    continue
                ways[l2a] = True
                if len(ways) > l2_assoc:
                    ways.pop(next(iter(ways)))
                if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                    nh += 1
                else:
                    nm += 1
                    if v_pf2 is not None:
                        v_pf2.observe(l2, l2a)
            mkey = (iid, nh, nm)
            cached = fin_memo.get(mkey)
            if cached is None:
                while nm >= len(occ_tab):
                    occ_tab.append(occ_tab[-1] + fill_l2)
                lat = inv_lat + l2_lat * (nh + nm) + dram_lat * nm
                c = vmem_event_cycles(
                    vpu, l1_lat, ooo_hide, lat, occ1, occ_tab[nm],
                    nbytes, n_lines, write, unit,
                )
                cached = fin_memo[mkey] = (w * c, w * nh, w * nm)
            wc, wh, wm = cached
            cycles += wc
            kcur += wc
            if wh:
                l2_hits += wh
            if wm:
                l2_misses += wm
                dram_fills += wm
        elif tag == 4:
            _, w, addrs, inv_lat, occ1, write, _nh0, _ft = it
            nh = nm = 0
            for a in addrs:
                l2a = a >> l2_shift
                ways = l2_sets[l2a % l2_num]
                if ways.pop(l2a, None) is not None:
                    ways[l2a] = True
                    nh += 1
                    continue
                ways[l2a] = True
                if len(ways) > l2_assoc:
                    ways.pop(next(iter(ways)))
                if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                    nh += 1
                else:
                    nm += 1
                    if pf2 is not None:
                        pf2.observe(l2, l2a)
            mkey = (w, inv_lat, occ1, write, nh, nm)
            cached = fin4.get(mkey)
            if cached is None:
                while nm >= len(occ_tab):
                    occ_tab.append(occ_tab[-1] + fill_l2)
                lat = inv_lat + l2_lat * (nh + nm) + dram_lat * nm
                # Lock-step with TraceSimulator.scalar_load/scalar_store.
                d = lat - l1_lat
                if d > 0:
                    stall = max(0.0, d) / _SCALAR_MLP
                    if write:
                        stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                    else:
                        stall *= 1.0 - ooo_hide
                    wc = w * (scalar_cpi + stall + occ1 + occ_tab[nm])
                else:
                    wc = w * scalar_cpi
                cached = fin4[mkey] = (wc, w * nh, w * nm)
            wc, wh, wm = cached
            cycles += wc
            kcur += wc
            l2_hits += wh
            l2_misses += wm
            dram_fills += wm
        elif tag == 6:
            wc = it[1] * prices[it[2]]
            cycles += wc
            kcur += wc
        elif tag == 1:
            if cur is not None:
                kc[cur] = kcur
            cur = it[1]
            kcur = kc.get(cur, 0.0)
        elif tag == 2:
            note_range(it[1], it[2])
            ranges = hier._ranges
        else:  # tag 5: honoured software-prefetch fills into the L2
            for la in it[1]:
                ways = l2_sets[la % l2_num]
                if la not in ways:
                    ways[la] = False
                    if len(ways) > l2_assoc:
                        ways.pop(next(iter(ways)))

    if cur is not None:
        kc[cur] = kcur
    out = SimStats()
    out.cycles = cycles
    out.l2_hits = l2_hits
    out.l2_misses = l2_misses
    out.dram_fills = dram_fills
    for name in _INVARIANT_FIELDS:
        setattr(out, name, getattr(inv, name))
    out.kernel_cycles = kc
    return out


def _point_pass_hybrid(
    prog: list, inv: SimStats, machine: MachineConfig, gc: dict, hot: set
) -> SimStats:
    """Point pass that walks only lines mapping to *hot* L2 sets.

    ``hot`` holds every distinct L2 line whose set's distinct-line
    population exceeds the associativity.  All other ("cold") sets can
    never evict, so a cold lookup hits **iff** the line was touched
    before — decided from the per-event first-touch list without
    touching cache structures.  Cold first touches still run the
    residency-range check *in stream order* (interleaved with the hot
    walk exactly as in :func:`_point_pass`), because ``_range_hit``
    LRU-refreshes the range list and a later trim picks its victims by
    that order.  Caller guarantees no prefetcher fills (cold sets must
    see the pure demand stream).
    """
    hier = MemoryHierarchy(machine)
    l2 = hier.l2
    l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
    range_hit = hier._range_hit
    note_range = hier.note_resident_range
    l2_lat = hier._l2_lat
    dram_lat = hier._dram_lat
    fill_l2 = hier._fill_l2
    vpu = machine.vpu
    l1_lat = gc["l1_lat"]
    ooo_hide = gc["ooo_hide"]
    scalar_cpi = gc["scalar_cpi"]
    l2_shift = gc["l2_shift"]
    classes = gc["classes"]
    prices = (
        _vpu_price_table(classes, vpu, l1_lat, ooo_hide) if classes else ()
    )
    occ_tab = [0.0]
    fin_memo = {}
    fin4 = {}
    kc = {}
    cur = None
    kcur = 0.0
    cycles = 0.0
    l2_hits = l2_misses = dram_fills = 0.0
    # _range_hit only reorders the range list in place;
    # note_resident_range (tag 2) rebinds it, refreshed there.
    ranges = hier._ranges

    for it in prog:
        if type(it) is float:
            cycles += it
            kcur += it
            continue
        tag = it[0]
        if tag == 3:
            (_, w, addrs, inv_lat, occ1, nbytes, n_lines, write, unit,
             iid, _nh0, ft) = it
            nh = nm = 0
            if ft:
                ftset = set(ft)
                for a in addrs:
                    l2a = a >> l2_shift
                    if l2a in hot:
                        ways = l2_sets[l2a % l2_num]
                        if ways.pop(l2a, None) is not None:
                            ways[l2a] = True
                            nh += 1
                            continue
                        ways[l2a] = True
                        if len(ways) > l2_assoc:
                            ways.pop(next(iter(ways)))
                        if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                            nh += 1
                        else:
                            nm += 1
                    elif a in ftset:
                        # Cold first touch: range check, in stream order.
                        ftset.remove(a)
                        if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                            nh += 1
                        else:
                            nm += 1
                    else:
                        nh += 1  # cold repeat: can never have been evicted
            else:
                # No first touches in this event: every cold line is a
                # repeat, hence a guaranteed hit.
                for a in addrs:
                    l2a = a >> l2_shift
                    if l2a in hot:
                        ways = l2_sets[l2a % l2_num]
                        if ways.pop(l2a, None) is not None:
                            ways[l2a] = True
                            nh += 1
                            continue
                        ways[l2a] = True
                        if len(ways) > l2_assoc:
                            ways.pop(next(iter(ways)))
                        if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                            nh += 1
                        else:
                            nm += 1
                    else:
                        nh += 1
            mkey = (iid, nh, nm)
            cached = fin_memo.get(mkey)
            if cached is None:
                while nm >= len(occ_tab):
                    occ_tab.append(occ_tab[-1] + fill_l2)
                lat = inv_lat + l2_lat * (nh + nm) + dram_lat * nm
                c = vmem_event_cycles(
                    vpu, l1_lat, ooo_hide, lat, occ1, occ_tab[nm],
                    nbytes, n_lines, write, unit,
                )
                cached = fin_memo[mkey] = (w * c, w * nh, w * nm)
            wc, wh, wm = cached
            cycles += wc
            kcur += wc
            if wh:
                l2_hits += wh
            if wm:
                l2_misses += wm
                dram_fills += wm
        elif tag == 4:
            _, w, addrs, inv_lat, occ1, write, _nh0, ft = it
            nh = nm = 0
            if ft:
                ftset = set(ft)
                for a in addrs:
                    l2a = a >> l2_shift
                    if l2a in hot:
                        ways = l2_sets[l2a % l2_num]
                        if ways.pop(l2a, None) is not None:
                            ways[l2a] = True
                            nh += 1
                            continue
                        ways[l2a] = True
                        if len(ways) > l2_assoc:
                            ways.pop(next(iter(ways)))
                        if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                            nh += 1
                        else:
                            nm += 1
                    elif a in ftset:
                        ftset.remove(a)
                        if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                            nh += 1
                        else:
                            nm += 1
                    else:
                        nh += 1
            else:
                for a in addrs:
                    l2a = a >> l2_shift
                    if l2a in hot:
                        ways = l2_sets[l2a % l2_num]
                        if ways.pop(l2a, None) is not None:
                            ways[l2a] = True
                            nh += 1
                            continue
                        ways[l2a] = True
                        if len(ways) > l2_assoc:
                            ways.pop(next(iter(ways)))
                        if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                            nh += 1
                        else:
                            nm += 1
                    else:
                        nh += 1
            mkey = (w, inv_lat, occ1, write, nh, nm)
            cached = fin4.get(mkey)
            if cached is None:
                while nm >= len(occ_tab):
                    occ_tab.append(occ_tab[-1] + fill_l2)
                lat = inv_lat + l2_lat * (nh + nm) + dram_lat * nm
                d = lat - l1_lat
                if d > 0:
                    stall = max(0.0, d) / _SCALAR_MLP
                    if write:
                        stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                    else:
                        stall *= 1.0 - ooo_hide
                    wc = w * (scalar_cpi + stall + occ1 + occ_tab[nm])
                else:
                    wc = w * scalar_cpi
                cached = fin4[mkey] = (wc, w * nh, w * nm)
            wc, wh, wm = cached
            cycles += wc
            kcur += wc
            l2_hits += wh
            l2_misses += wm
            dram_fills += wm
        elif tag == 6:
            wc = it[1] * prices[it[2]]
            cycles += wc
            kcur += wc
        elif tag == 1:
            if cur is not None:
                kc[cur] = kcur
            cur = it[1]
            kcur = kc.get(cur, 0.0)
        elif tag == 2:
            note_range(it[1], it[2])
            ranges = hier._ranges
        else:
            raise ValueError("prefetch fills in a hybrid point pass")

    if cur is not None:
        kc[cur] = kcur
    out = SimStats()
    out.cycles = cycles
    out.l2_hits = l2_hits
    out.l2_misses = l2_misses
    out.dram_fills = dram_fills
    for name in _INVARIANT_FIELDS:
        setattr(out, name, getattr(inv, name))
    out.kernel_cycles = kc
    return out


def _point_pass_fast(
    prog: list, inv: SimStats, machine: MachineConfig, gc: dict
) -> SimStats:
    """Conflict-free point pass: no L2 set ever exceeds its associativity.

    Such an L2 never evicts, so a lookup hits **iff** the line was
    touched before — which the shared pass precomputed per event
    (``nh0`` repeat-touch hits plus the ``ft`` first-touch list).  Only
    the residency-range checks still depend on the point (range budgets
    trim differently per L2 capacity), so this walks just the
    first-touch lines against the range model and skips the cache
    structures entirely.  Caller guarantees: no prefetcher fills, no
    tag-5 items (checked via ``gc``), and the set-population bound.
    """
    hier = MemoryHierarchy.pricing_view(machine)
    range_hit = hier._range_hit
    note_range = hier.note_resident_range
    l2_lat = hier._l2_lat
    dram_lat = hier._dram_lat
    fill_l2 = hier._fill_l2
    vpu = machine.vpu
    l1_lat = gc["l1_lat"]
    ooo_hide = gc["ooo_hide"]
    scalar_cpi = gc["scalar_cpi"]
    classes = gc["classes"]
    prices = (
        _vpu_price_table(classes, vpu, l1_lat, ooo_hide) if classes else ()
    )
    occ_tab = [0.0]
    fin_memo = {}
    fin4 = {}
    kc = {}
    cur = None
    kcur = 0.0
    cycles = 0.0
    l2_hits = l2_misses = dram_fills = 0.0
    # _range_hit only reorders the range list in place;
    # note_resident_range (tag 2) rebinds it, refreshed there.
    ranges = hier._ranges

    for it in prog:
        if type(it) is float:
            cycles += it
            kcur += it
            continue
        tag = it[0]
        if tag == 3:
            nh = it[10]
            nm = 0
            ft = it[11]
            if ft:
                for a in ft:
                    if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                        nh += 1
                    else:
                        nm += 1
            mkey = (it[9], nh, nm)
            cached = fin_memo.get(mkey)
            if cached is None:
                w = it[1]
                while nm >= len(occ_tab):
                    occ_tab.append(occ_tab[-1] + fill_l2)
                lat = it[3] + l2_lat * (nh + nm) + dram_lat * nm
                c = vmem_event_cycles(
                    vpu, l1_lat, ooo_hide, lat, it[4], occ_tab[nm],
                    it[5], it[6], it[7], it[8],
                )
                cached = fin_memo[mkey] = (w * c, w * nh, w * nm)
            wc, wh, wm = cached
            cycles += wc
            kcur += wc
            if wh:
                l2_hits += wh
            if wm:
                l2_misses += wm
                dram_fills += wm
        elif tag == 4:
            nh = it[6]
            nm = 0
            ft = it[7]
            if ft:
                for a in ft:
                    if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                        nh += 1
                    else:
                        nm += 1
            w = it[1]
            mkey = (w, it[3], it[4], it[5], nh, nm)
            cached = fin4.get(mkey)
            if cached is None:
                while nm >= len(occ_tab):
                    occ_tab.append(occ_tab[-1] + fill_l2)
                lat = it[3] + l2_lat * (nh + nm) + dram_lat * nm
                d = lat - l1_lat
                if d > 0:
                    stall = max(0.0, d) / _SCALAR_MLP
                    if it[5]:
                        stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                    else:
                        stall *= 1.0 - ooo_hide
                    wc = w * (scalar_cpi + stall + it[4] + occ_tab[nm])
                else:
                    wc = w * scalar_cpi
                cached = fin4[mkey] = (wc, w * nh, w * nm)
            wc, wh, wm = cached
            cycles += wc
            kcur += wc
            l2_hits += wh
            l2_misses += wm
            dram_fills += wm
        elif tag == 6:
            wc = it[1] * prices[it[2]]
            cycles += wc
            kcur += wc
        elif tag == 1:
            if cur is not None:
                kc[cur] = kcur
            cur = it[1]
            kcur = kc.get(cur, 0.0)
        elif tag == 2:
            note_range(it[1], it[2])
            ranges = hier._ranges
        else:
            raise ValueError(
                "prefetch fills in a conflict-free point pass"
            )

    if cur is not None:
        kc[cur] = kcur
    out = SimStats()
    out.cycles = cycles
    out.l2_hits = l2_hits
    out.l2_misses = l2_misses
    out.dram_fills = dram_fills
    for name in _INVARIANT_FIELDS:
        setattr(out, name, getattr(inv, name))
    out.kernel_cycles = kc
    return out


def _point_pass_fast2(
    prog: list,
    inv: SimStats,
    ma: MachineConfig,
    mb: MachineConfig,
    gc: dict,
):
    """Two conflict-free points in one pass over the program.

    Identical per-point arithmetic to :func:`_point_pass_fast` (fully
    duplicated state, suffixes ``a``/``b``); the shared iteration,
    dispatch, and invariant-float handling are paid once instead of
    twice — which dominates a conflict-free pass.  Returns a pair of
    ``SimStats``.
    """
    hier_a = MemoryHierarchy.pricing_view(ma)
    hier_b = MemoryHierarchy.pricing_view(mb)
    range_hit_a = hier_a._range_hit
    range_hit_b = hier_b._range_hit
    note_range_a = hier_a.note_resident_range
    note_range_b = hier_b.note_resident_range
    l2_lat_a, l2_lat_b = hier_a._l2_lat, hier_b._l2_lat
    dram_lat_a, dram_lat_b = hier_a._dram_lat, hier_b._dram_lat
    fill_l2_a, fill_l2_b = hier_a._fill_l2, hier_b._fill_l2
    vpu_a, vpu_b = ma.vpu, mb.vpu
    l1_lat = gc["l1_lat"]
    ooo_hide = gc["ooo_hide"]
    scalar_cpi = gc["scalar_cpi"]
    classes = gc["classes"]
    if classes:
        prices_a = _vpu_price_table(classes, vpu_a, l1_lat, ooo_hide)
        prices_b = _vpu_price_table(classes, vpu_b, l1_lat, ooo_hide)
    else:
        prices_a = prices_b = ()
    occ_tab_a = [0.0]
    occ_tab_b = [0.0]
    fin_a = {}
    fin_b = {}
    fin4_a = {}
    fin4_b = {}
    kc_a = {}
    kc_b = {}
    cur = None
    kcur_a = kcur_b = 0.0
    cycles_a = cycles_b = 0.0
    l2h_a = l2m_a = df_a = 0.0
    l2h_b = l2m_b = df_b = 0.0
    ranges_a = hier_a._ranges
    ranges_b = hier_b._ranges

    for it in prog:
        if type(it) is float:
            cycles_a += it
            kcur_a += it
            cycles_b += it
            kcur_b += it
            continue
        tag = it[0]
        if tag == 3:
            nh0 = it[10]
            ft = it[11]
            nh_a = nh_b = nh0
            nm_a = nm_b = 0
            if ft:
                for a in ft:
                    if (ranges_a and ranges_a[-1][0] <= a < ranges_a[-1][1]) or range_hit_a(a):
                        nh_a += 1
                    else:
                        nm_a += 1
                for a in ft:
                    if (ranges_b and ranges_b[-1][0] <= a < ranges_b[-1][1]) or range_hit_b(a):
                        nh_b += 1
                    else:
                        nm_b += 1
            iid = it[9]
            mkey = (iid, nh_a, nm_a)
            cached = fin_a.get(mkey)
            if cached is None:
                w = it[1]
                while nm_a >= len(occ_tab_a):
                    occ_tab_a.append(occ_tab_a[-1] + fill_l2_a)
                lat = it[3] + l2_lat_a * (nh_a + nm_a) + dram_lat_a * nm_a
                c = vmem_event_cycles(
                    vpu_a, l1_lat, ooo_hide, lat, it[4], occ_tab_a[nm_a],
                    it[5], it[6], it[7], it[8],
                )
                cached = fin_a[mkey] = (w * c, w * nh_a, w * nm_a)
            wc, wh, wm = cached
            cycles_a += wc
            kcur_a += wc
            if wh:
                l2h_a += wh
            if wm:
                l2m_a += wm
                df_a += wm
            mkey = (iid, nh_b, nm_b)
            cached = fin_b.get(mkey)
            if cached is None:
                w = it[1]
                while nm_b >= len(occ_tab_b):
                    occ_tab_b.append(occ_tab_b[-1] + fill_l2_b)
                lat = it[3] + l2_lat_b * (nh_b + nm_b) + dram_lat_b * nm_b
                c = vmem_event_cycles(
                    vpu_b, l1_lat, ooo_hide, lat, it[4], occ_tab_b[nm_b],
                    it[5], it[6], it[7], it[8],
                )
                cached = fin_b[mkey] = (w * c, w * nh_b, w * nm_b)
            wc, wh, wm = cached
            cycles_b += wc
            kcur_b += wc
            if wh:
                l2h_b += wh
            if wm:
                l2m_b += wm
                df_b += wm
        elif tag == 4:
            nh0 = it[6]
            ft = it[7]
            nh_a = nh_b = nh0
            nm_a = nm_b = 0
            if ft:
                for a in ft:
                    if (ranges_a and ranges_a[-1][0] <= a < ranges_a[-1][1]) or range_hit_a(a):
                        nh_a += 1
                    else:
                        nm_a += 1
                for a in ft:
                    if (ranges_b and ranges_b[-1][0] <= a < ranges_b[-1][1]) or range_hit_b(a):
                        nh_b += 1
                    else:
                        nm_b += 1
            w = it[1]
            mkey = (w, it[3], it[4], it[5], nh_a, nm_a)
            cached = fin4_a.get(mkey)
            if cached is None:
                while nm_a >= len(occ_tab_a):
                    occ_tab_a.append(occ_tab_a[-1] + fill_l2_a)
                lat = it[3] + l2_lat_a * (nh_a + nm_a) + dram_lat_a * nm_a
                d = lat - l1_lat
                if d > 0:
                    stall = max(0.0, d) / _SCALAR_MLP
                    if it[5]:
                        stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                    else:
                        stall *= 1.0 - ooo_hide
                    wc = w * (scalar_cpi + stall + it[4] + occ_tab_a[nm_a])
                else:
                    wc = w * scalar_cpi
                cached = fin4_a[mkey] = (wc, w * nh_a, w * nm_a)
            wc, wh, wm = cached
            cycles_a += wc
            kcur_a += wc
            l2h_a += wh
            l2m_a += wm
            df_a += wm
            mkey = (w, it[3], it[4], it[5], nh_b, nm_b)
            cached = fin4_b.get(mkey)
            if cached is None:
                while nm_b >= len(occ_tab_b):
                    occ_tab_b.append(occ_tab_b[-1] + fill_l2_b)
                lat = it[3] + l2_lat_b * (nh_b + nm_b) + dram_lat_b * nm_b
                d = lat - l1_lat
                if d > 0:
                    stall = max(0.0, d) / _SCALAR_MLP
                    if it[5]:
                        stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                    else:
                        stall *= 1.0 - ooo_hide
                    wc = w * (scalar_cpi + stall + it[4] + occ_tab_b[nm_b])
                else:
                    wc = w * scalar_cpi
                cached = fin4_b[mkey] = (wc, w * nh_b, w * nm_b)
            wc, wh, wm = cached
            cycles_b += wc
            kcur_b += wc
            l2h_b += wh
            l2m_b += wm
            df_b += wm
        elif tag == 6:
            w = it[1]
            cid = it[2]
            wc = w * prices_a[cid]
            cycles_a += wc
            kcur_a += wc
            wc = w * prices_b[cid]
            cycles_b += wc
            kcur_b += wc
        elif tag == 1:
            if cur is not None:
                kc_a[cur] = kcur_a
                kc_b[cur] = kcur_b
            cur = it[1]
            kcur_a = kc_a.get(cur, 0.0)
            kcur_b = kc_b.get(cur, 0.0)
        elif tag == 2:
            note_range_a(it[1], it[2])
            note_range_b(it[1], it[2])
            ranges_a = hier_a._ranges
            ranges_b = hier_b._ranges
        else:
            raise ValueError("prefetch fills in a conflict-free point pass")

    if cur is not None:
        kc_a[cur] = kcur_a
        kc_b[cur] = kcur_b
    out = []
    for cycles, l2h, l2m, df, kc in (
        (cycles_a, l2h_a, l2m_a, df_a, kc_a),
        (cycles_b, l2h_b, l2m_b, df_b, kc_b),
    ):
        st = SimStats()
        st.cycles = cycles
        st.l2_hits = l2h
        st.l2_misses = l2m
        st.dram_fills = df
        for name in _INVARIANT_FIELDS:
            setattr(st, name, getattr(inv, name))
        st.kernel_cycles = kc
        out.append(st)
    return out


class _VecProgram:
    """The shared-pass program flattened into NumPy columns.

    Valid only for conflict-free points sharing one L2 byte budget:
    there the walk outcome (per-event hit/miss split) is identical
    across the points, so it is resolved once at compile time and each
    point only re-prices.
    """

    __slots__ = (
        "base",
        "kid",
        "labels",
        "cls_pos",
        "cls_idx",
        "cls_defs",
        "wh_by_cls",
        "wm_by_cls",
        "max_nm",
    )


def _compile_fast(prog: list, gc: dict, hier=None) -> _VecProgram:
    """Flatten *prog* for :func:`_point_pass_vec`.

    Walks the program once, resolving every residency-range check.
    With ``hier=None`` (never-trimming points) membership is checked
    against the same infinite-budget range list every such point's
    ``MemoryHierarchy`` would hold (``note_resident_range`` with
    ``start == base``, no eviction, no tail trim — so membership is
    the entire outcome and LRU order is irrelevant).  With a *hier*
    (:meth:`MemoryHierarchy.pricing_view` of any point in the group),
    the walk runs the true trimming range model in stream order —
    valid for every point sharing that L2 byte budget, since the range
    outcome depends on nothing else.  Events collapse into per-item
    columns plus an interned table of pricing classes; two events
    price identically on every point iff they share a class.
    """
    inf_ranges: list = []
    if hier is not None:
        range_hit = hier._range_hit
        note_range = hier.note_resident_range
    base_vals: list = []
    kid_col: list = []
    labels: list = []
    label_ids: dict = {}
    cls_pos: list = []
    cls_idx: list = []
    cls_ids: dict = {}
    cls_defs: list = []
    wh_by_cls: list = []
    wm_by_cls: list = []
    max_nm = 0
    cur_kid = -1
    n = 0
    for it in prog:
        if type(it) is float:
            base_vals.append(it)
            kid_col.append(cur_kid)
            n += 1
            continue
        tag = it[0]
        if tag == 3 or tag == 4:
            if tag == 3:
                nh, ft = it[10], it[11]
            else:
                nh, ft = it[6], it[7]
            nm = 0
            if hier is None:
                for a in ft:
                    for r in inf_ranges:
                        if r[0] <= a < r[1]:
                            nh += 1
                            break
                    else:
                        nm += 1
            else:
                # Exact mirror of _point_pass_fast: MRU shortcut, then
                # the LRU-refreshing lookup.
                ranges = hier._ranges
                for a in ft:
                    if (
                        ranges and ranges[-1][0] <= a < ranges[-1][1]
                    ) or range_hit(a):
                        nh += 1
                    else:
                        nm += 1
            if tag == 3:
                key = (3, it[9], nh, nm)
            else:
                key = (4, it[1], it[3], it[4], it[5], nh, nm)
            cid = cls_ids.get(key)
            if cid is None:
                cid = cls_ids[key] = len(cls_defs)
                w = it[1]
                if tag == 3:
                    cls_defs.append(
                        (3, w, it[3], it[4], it[5], it[6], it[7], it[8],
                         nh, nm)
                    )
                else:
                    cls_defs.append((4, w, it[3], it[4], it[5], nh, nm))
                wh_by_cls.append(w * nh)
                wm_by_cls.append(w * nm)
                if nm > max_nm:
                    max_nm = nm
            base_vals.append(0.0)
            kid_col.append(cur_kid)
            cls_pos.append(n)
            cls_idx.append(cid)
            n += 1
        elif tag == 6:
            key = (6, it[1], it[2])
            cid = cls_ids.get(key)
            if cid is None:
                cid = cls_ids[key] = len(cls_defs)
                cls_defs.append(key)
                wh_by_cls.append(0.0)
                wm_by_cls.append(0.0)
            base_vals.append(0.0)
            kid_col.append(cur_kid)
            cls_pos.append(n)
            cls_idx.append(cid)
            n += 1
        elif tag == 1:
            kid = label_ids.get(it[1])
            if kid is None:
                kid = label_ids[it[1]] = len(labels)
                labels.append(it[1])
            cur_kid = kid
        elif tag == 2:
            if hier is not None:
                note_range(it[1], it[2])
                continue
            # Mirror MemoryHierarchy.note_resident_range for a budget
            # that never binds: drop overlapped older ranges, append.
            nbytes = it[2]
            if nbytes > 0:
                b = it[1]
                e = b + nbytes
                inf_ranges = [
                    r for r in inf_ranges if r[1] <= b or r[0] >= e
                ]
                inf_ranges.append((b, e))
        else:
            raise ValueError("prefetch fills in a vectorized point pass")
    cols = _VecProgram()
    cols.base = np.asarray(base_vals, dtype=np.float64)
    cols.kid = np.asarray(kid_col, dtype=np.int64)
    cols.labels = labels
    cols.cls_pos = np.asarray(cls_pos, dtype=np.int64)
    cols.cls_idx = np.asarray(cls_idx, dtype=np.int64)
    cols.cls_defs = cls_defs
    cols.wh_by_cls = np.asarray(wh_by_cls, dtype=np.float64)
    cols.wm_by_cls = np.asarray(wm_by_cls, dtype=np.float64)
    cols.max_nm = max_nm
    return cols


def _compile_walk(prog: list, gc: dict, machine: MachineConfig) -> _VecProgram:
    """Resolve the full L2 walk once for a uniform-L2 group.

    State transitions identical to :func:`_point_pass` — conflicted
    sets evict, honoured prefetch fills land, residency ranges trim in
    stream order — but each resolved event is interned into the column
    layout of :func:`_compile_fast` instead of being priced.  The
    walk reads only the L2 geometry, the L2 prefetcher, and the event
    stream, so the compiled program is valid for every point sharing
    those with *machine* (a lane sweep, or a DRAM-latency sweep over a
    conflicted L2), whatever its latencies or VPU: the class keys here
    are exactly the pricing-memo keys of :func:`_point_pass`.
    """
    hier = MemoryHierarchy(machine)
    l2 = hier.l2
    l2_sets, l2_num, l2_assoc = l2._sets, l2.num_sets, l2.assoc
    pf2 = hier.l2_prefetcher if hier._pf2_on else None
    range_hit = hier._range_hit
    note_range = hier.note_resident_range
    l2_shift = gc["l2_shift"]
    v_pf2 = pf2 if gc["port_l1"] else None
    ranges = hier._ranges

    base_vals: list = []
    kid_col: list = []
    labels: list = []
    label_ids: dict = {}
    cls_pos: list = []
    cls_idx: list = []
    cls_ids: dict = {}
    cls_defs: list = []
    wh_by_cls: list = []
    wm_by_cls: list = []
    max_nm = 0
    cur_kid = -1
    n = 0
    for it in prog:
        if type(it) is float:
            base_vals.append(it)
            kid_col.append(cur_kid)
            n += 1
            continue
        tag = it[0]
        if tag == 3:
            (_, w, addrs, inv_lat, occ1, nbytes, n_lines, write, unit,
             iid, _nh0, _ft) = it
            nh = nm = 0
            for a in addrs:
                l2a = a >> l2_shift
                ways = l2_sets[l2a % l2_num]
                if ways.pop(l2a, None) is not None:
                    ways[l2a] = True
                    nh += 1
                    continue
                ways[l2a] = True
                if len(ways) > l2_assoc:
                    ways.pop(next(iter(ways)))
                if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                    nh += 1
                else:
                    nm += 1
                    if v_pf2 is not None:
                        v_pf2.observe(l2, l2a)
            key = (3, iid, nh, nm)
            cid = cls_ids.get(key)
            if cid is None:
                cid = cls_ids[key] = len(cls_defs)
                cls_defs.append(
                    (3, w, inv_lat, occ1, nbytes, n_lines, write, unit,
                     nh, nm)
                )
                wh_by_cls.append(w * nh)
                wm_by_cls.append(w * nm)
                if nm > max_nm:
                    max_nm = nm
            base_vals.append(0.0)
            kid_col.append(cur_kid)
            cls_pos.append(n)
            cls_idx.append(cid)
            n += 1
        elif tag == 4:
            _, w, addrs, inv_lat, occ1, write, _nh0, _ft = it
            nh = nm = 0
            for a in addrs:
                l2a = a >> l2_shift
                ways = l2_sets[l2a % l2_num]
                if ways.pop(l2a, None) is not None:
                    ways[l2a] = True
                    nh += 1
                    continue
                ways[l2a] = True
                if len(ways) > l2_assoc:
                    ways.pop(next(iter(ways)))
                if (ranges and ranges[-1][0] <= a < ranges[-1][1]) or range_hit(a):
                    nh += 1
                else:
                    nm += 1
                    if pf2 is not None:
                        pf2.observe(l2, l2a)
            key = (4, w, inv_lat, occ1, write, nh, nm)
            cid = cls_ids.get(key)
            if cid is None:
                cid = cls_ids[key] = len(cls_defs)
                cls_defs.append((4, w, inv_lat, occ1, write, nh, nm))
                wh_by_cls.append(w * nh)
                wm_by_cls.append(w * nm)
                if nm > max_nm:
                    max_nm = nm
            base_vals.append(0.0)
            kid_col.append(cur_kid)
            cls_pos.append(n)
            cls_idx.append(cid)
            n += 1
        elif tag == 6:
            key = (6, it[1], it[2])
            cid = cls_ids.get(key)
            if cid is None:
                cid = cls_ids[key] = len(cls_defs)
                cls_defs.append(key)
                wh_by_cls.append(0.0)
                wm_by_cls.append(0.0)
            base_vals.append(0.0)
            kid_col.append(cur_kid)
            cls_pos.append(n)
            cls_idx.append(cid)
            n += 1
        elif tag == 1:
            kid = label_ids.get(it[1])
            if kid is None:
                kid = label_ids[it[1]] = len(labels)
                labels.append(it[1])
            cur_kid = kid
        elif tag == 2:
            note_range(it[1], it[2])
            ranges = hier._ranges
        else:  # tag 5: honoured software-prefetch fills into the L2
            for la in it[1]:
                ways = l2_sets[la % l2_num]
                if la not in ways:
                    ways[la] = False
                    if len(ways) > l2_assoc:
                        ways.pop(next(iter(ways)))
    cols = _VecProgram()
    cols.base = np.asarray(base_vals, dtype=np.float64)
    cols.kid = np.asarray(kid_col, dtype=np.int64)
    cols.labels = labels
    cols.cls_pos = np.asarray(cls_pos, dtype=np.int64)
    cols.cls_idx = np.asarray(cls_idx, dtype=np.int64)
    cols.cls_defs = cls_defs
    cols.wh_by_cls = np.asarray(wh_by_cls, dtype=np.float64)
    cols.wm_by_cls = np.asarray(wm_by_cls, dtype=np.float64)
    cols.max_nm = max_nm
    return cols


def _point_pass_vec(
    cols: _VecProgram, inv: SimStats, machine: MachineConfig, gc: dict
) -> SimStats:
    """Price a compiled program on one point with column arithmetic.

    Bitwise identical to :func:`_point_pass_fast` on the same point:
    ``np.add.accumulate`` and ``np.bincount`` with weights both fold
    strictly left-to-right (no pairwise reassociation), class prices
    are computed with the scalar formulas shared with the simulator,
    and the extra ``+ 0.0`` terms this layout introduces (class items
    contribute 0.0 to ``base``, tag-6 items 0.0 to the hit/miss
    columns) are exact identities on these non-negative counters.
    """
    hier = MemoryHierarchy.pricing_view(machine)
    l2_lat = hier._l2_lat
    dram_lat = hier._dram_lat
    fill_l2 = hier._fill_l2
    vpu = machine.vpu
    l1_lat = gc["l1_lat"]
    ooo_hide = gc["ooo_hide"]
    scalar_cpi = gc["scalar_cpi"]
    classes = gc["classes"]
    prices = (
        _vpu_price_table(classes, vpu, l1_lat, ooo_hide) if classes else ()
    )
    occ_tab = [0.0]
    while cols.max_nm >= len(occ_tab):
        occ_tab.append(occ_tab[-1] + fill_l2)
    cls_defs = cols.cls_defs
    wc_by_cls = np.empty(len(cls_defs), dtype=np.float64)
    for k, d in enumerate(cls_defs):
        kind = d[0]
        if kind == 3:
            _, w, inv_lat, occ1, nbytes, n_lines, write, unit, nh, nm = d
            lat = inv_lat + l2_lat * (nh + nm) + dram_lat * nm
            wc_by_cls[k] = w * vmem_event_cycles(
                vpu, l1_lat, ooo_hide, lat, occ1, occ_tab[nm],
                nbytes, n_lines, write, unit,
            )
        elif kind == 4:
            _, w, inv_lat, occ1, write, nh, nm = d
            lat = inv_lat + l2_lat * (nh + nm) + dram_lat * nm
            diff = lat - l1_lat
            if diff > 0:
                stall = max(0.0, diff) / _SCALAR_MLP
                if write:
                    stall *= _STORE_STALL_FACTOR * (1.0 - ooo_hide)
                else:
                    stall *= 1.0 - ooo_hide
                wc_by_cls[k] = w * (scalar_cpi + stall + occ1 + occ_tab[nm])
            else:
                wc_by_cls[k] = w * scalar_cpi
        else:  # kind == 6: deferred VPU class
            wc_by_cls[k] = d[1] * prices[d[2]]

    out = SimStats()
    if len(cols.base):
        contrib = cols.base.copy()
        if len(cols.cls_pos):
            contrib[cols.cls_pos] = wc_by_cls[cols.cls_idx]
        out.cycles = float(np.add.accumulate(contrib)[-1])
        binc = np.bincount(
            cols.kid, weights=contrib, minlength=len(cols.labels)
        )
        out.kernel_cycles = {
            label: float(binc[i]) for i, label in enumerate(cols.labels)
        }
    if len(cols.cls_pos):
        wh_seq = cols.wh_by_cls[cols.cls_idx]
        wm_seq = cols.wm_by_cls[cols.cls_idx]
        out.l2_hits = float(np.add.accumulate(wh_seq)[-1])
        out.l2_misses = float(np.add.accumulate(wm_seq)[-1])
        out.dram_fills = out.l2_misses
    for name in _INVARIANT_FIELDS:
        setattr(out, name, getattr(inv, name))
    return out


def _copy_stats(st: SimStats) -> SimStats:
    out = SimStats()
    for name in SimStats.FIELDS:
        setattr(out, name, getattr(st, name))
    out.kernel_cycles = dict(st.kernel_cycles)
    return out


def _run_points(
    prog: list,
    inv: SimStats,
    gc: dict,
    machines: Sequence[MachineConfig],
    cache_ctx: Optional[Tuple[str, str, str, dict]] = None,
) -> List[SimStats]:
    """Price the shared-pass program on every machine of the group.

    With *cache_ctx* — ``(trace_key, sig_token, trace_sha256, compat)``
    — compiled tiers are exchanged with the on-disk pass cache: every
    compile tries a ``load_vecprog`` first and persists its result on
    a miss, and points that would take a per-point loop pass anyway
    (singleton trimming budgets, full exact walks) route through the
    compiler at the same cost so the tier exists for the next process.
    Fast tiers additionally record the walk fingerprints of every
    machine whose engine choice endorsed them, which is what lets the
    warm :func:`replay_sweep_cached` path trust a fast tier without
    re-deriving conflict-freedom from the program.

    Per point, picks the cheapest valid engine:

    * conflict-free points (no set over associativity, no prefetch
      fills) have walk outcomes that depend only on the L2 byte budget
      (``None`` when the residency ranges never trim): each budget
      shared by two or more points is compiled once
      (:func:`_compile_fast`) and every point priced with column
      arithmetic (:func:`_point_pass_vec`); points that also share
      ``(l2_latency, dram_latency, dram_bytes_per_cycle, vpu)`` are
      exact duplicates and copy the owner's stats (on a
      constant-latency L2 model this collapses the whole large-cache
      tail of a Fig. 7 sweep into one pass, and a lane sweep into one
      compile plus one cheap pricing per point).  A trimming budget
      owned by a single point gains nothing from compiling (the
      compile walk costs one pass) and runs :func:`_point_pass_fast`
      instead, pairwise via :func:`_point_pass_fast2`;
    * conflicted points of a group whose L2 geometry and prefetcher
      are uniform (lane sweeps, DRAM-latency sweeps over a small L2)
      run the exact cache walk once (:func:`_compile_walk`) and price
      every point with column arithmetic;
    * remaining points where under half the distinct lines map to
      conflicted sets walk only those via :func:`_point_pass_hybrid`;
    * everything else takes the exact cache walk of :func:`_point_pass`.
    """
    distinct = gc["distinct"]
    lines = (
        np.fromiter(distinct, dtype=np.int64, count=len(distinct))
        if distinct
        else None
    )
    can_fast = not gc["has_fills"] and not gc["pf2_cfg"]
    max_total = gc["max_range_total"]
    if cache_ctx is not None:
        from ..core import tracecache

        if not tracecache.pass_cache_enabled():
            cache_ctx = None

    def _load_tier(tier):
        if cache_ctx is None:
            return None
        from ..core import tracecache

        key, sig_tok, digest, compat = cache_ctx
        hit = tracecache.load_vecprog(key, sig_tok, tier["token"], digest)
        if hit is None:
            return None
        cols = _cols_from_dict(hit[1])
        if tier["kind"] == "fast":
            have = set(hit[0]["tier"].get("fps", ()))
            want = set(tier["fps"])
            if not want <= have:
                # A new machine endorsed this tier: refresh the stored
                # fingerprint list so replay_sweep_cached can serve it
                # to that machine without the program in hand.
                _store_tier(dict(tier, fps=sorted(have | want)), cols)
        return cols

    def _store_tier(tier, cols):
        if cache_ctx is None:
            return
        from ..core import tracecache

        key, sig_tok, digest, compat = cache_ctx
        tracecache.store_vecprog(
            _cols_to_dict(cols), _inv_fields(inv), gc,
            key=key, sig=sig_tok, tier=tier,
            trace_sha256=digest, compat=compat,
        )

    results: List[Optional[SimStats]] = [None] * len(machines)
    fast_fps: dict = {}  # budget -> walk fps of endorsing machines
    eq_owner = {}  # sig -> index of the point that computes it
    eq_copies = []  # (index, owner index)
    fast_cands = []  # (index, budget-or-None): conflict-free
    walk_jobs = []  # indices: conflicted, uniform L2 walk
    slow_jobs = []  # (index, hot-or-None)
    # The full walk reads only the L2 geometry+prefetcher (latencies
    # and VPU price, they don't steer); when those are uniform across
    # the group, one walk resolves every point.
    m0 = machines[0]
    walk_uniform = len(machines) > 1 and all(
        m.l2 == m0.l2 and m.l2_prefetcher == m0.l2_prefetcher
        for m in machines[1:]
    )
    for i, m in enumerate(machines):
        engine = _point_pass
        hot = None
        if can_fast:
            l2cfg = m.l2
            num_sets = l2cfg.size_bytes // (l2cfg.assoc * l2cfg.line_bytes)
            if num_sets > 0:
                if lines is None:
                    engine = _point_pass_fast
                else:
                    line_hot = (
                        np.bincount(lines % num_sets)[lines % num_sets]
                        > l2cfg.assoc
                    )
                    if not line_hot.any():
                        engine = _point_pass_fast
                    elif float(line_hot.mean()) < 0.5:
                        engine = _point_pass_hybrid
                        hot = set(lines[line_hot].tolist())
        if engine is _point_pass_fast:
            budget = (
                None if max_total <= m.l2.size_bytes else m.l2.size_bytes
            )
            fast_fps.setdefault(budget, set()).add(_machine_walk_fp(m))
            sig = (
                budget,
                m.l2.latency,
                m.dram_latency,
                m.dram_bytes_per_cycle,
                m.vpu,
            )
            owner = eq_owner.get(sig)
            if owner is not None:
                eq_copies.append((i, owner))
                continue
            eq_owner[sig] = i
            fast_cands.append((i, budget))
        elif walk_uniform:
            sig = (
                "walk",
                m.l2.latency,
                m.dram_latency,
                m.dram_bytes_per_cycle,
                m.vpu,
            )
            owner = eq_owner.get(sig)
            if owner is not None:
                eq_copies.append((i, owner))
                continue
            eq_owner[sig] = i
            walk_jobs.append(i)
        elif engine is _point_pass_hybrid:
            slow_jobs.append((i, hot))
        else:
            slow_jobs.append((i, None))
    budget_count: dict = {}
    for _, budget in fast_cands:
        budget_count[budget] = budget_count.get(budget, 0) + 1
    fast_jobs = []  # singleton trimming budgets: paired loop passes
    cols_by_budget = {}
    for i, budget in fast_cands:
        if (
            budget is not None
            and budget_count[budget] < 2
            and cache_ctx is None
        ):
            # A trimming budget owned by one point gains nothing from
            # compiling unless the tier can be persisted for reuse.
            fast_jobs.append(i)
            continue
        cols = cols_by_budget.get(budget)
        if cols is None:
            tier = _fast_tier(budget)
            tier["fps"] = sorted(fast_fps.get(budget, ()))
            cols = _load_tier(tier)
            if cols is None:
                view = (
                    None
                    if budget is None
                    else MemoryHierarchy.pricing_view(machines[i])
                )
                cols = _compile_fast(prog, gc, view)
                _store_tier(tier, cols)
            cols_by_budget[budget] = cols
        results[i] = _point_pass_vec(cols, inv, machines[i], gc)
    j = 0
    while j + 1 < len(fast_jobs):
        ia, ib = fast_jobs[j], fast_jobs[j + 1]
        results[ia], results[ib] = _point_pass_fast2(
            prog, inv, machines[ia], machines[ib], gc
        )
        j += 2
    if j < len(fast_jobs):
        i = fast_jobs[j]
        results[i] = _point_pass_fast(prog, inv, machines[i], gc)
    if walk_jobs:
        m = machines[walk_jobs[0]]
        tier = _walk_tier(m)
        cols = _load_tier(tier)
        if cols is None:
            cols = _compile_walk(prog, gc, m)
            _store_tier(tier, cols)
        for i in walk_jobs:
            results[i] = _point_pass_vec(cols, inv, machines[i], gc)
    for i, hot in slow_jobs:
        m = machines[i]
        if cache_ctx is not None:
            tier = _walk_tier(m)
            cols = _load_tier(tier)
            if cols is None and hot is None:
                # The full exact walk costs the same whether it prices
                # one point or compiles a reusable tier.
                cols = _compile_walk(prog, gc, m)
                _store_tier(tier, cols)
            if cols is not None:
                results[i] = _point_pass_vec(cols, inv, m, gc)
                continue
        results[i] = (
            _point_pass_hybrid(prog, inv, m, gc, hot)
            if hot is not None
            else _point_pass(prog, inv, m, gc)
        )
    for i, owner in eq_copies:
        results[i] = _copy_stats(results[owner])
    return results


# Memo for _shared_pass results across replay_sweep calls.  A session
# replaying several pricing axes from one capture (the paper-figures
# flow: L2 size, DRAM latency, DRAM bandwidth, lanes) would otherwise
# re-walk the full event stream once per axis — by far the dominant
# cost on a multi-million-event trace.  Keyed by the trace's content
# *digest* (not just its key: a quarantined-and-recaptured trace must
# never serve a stale pass) and the group-invariant remainder of the
# base config (the normalization mirrors group_mode: every
# per-point-priced field is canonicalised away, so two bases that
# would group together share an entry).  The cached (prog, inv, gc)
# is treated as immutable by every point engine.  Sized for the
# paper-figures flow: one always-deferred entry per live VL capture
# (Figs. 6/8 sweep eight) plus slack for direct _shared_pass callers.
_SHARED_PASS_MEMO: "dict" = {}
_SHARED_PASS_MEMO_MAX = 16


def _shared_pass_sig(m: MachineConfig, defer_vpu: bool):
    l2n = replace(m.l2, size_bytes=m.l2.line_bytes * 8, assoc=1, latency=0)
    norm = replace(
        m,
        name="",
        l2=l2n,
        dram_latency=0,
        dram_bytes_per_cycle=1,
        peak_gflops=0.0,
    )
    if defer_vpu:
        # VPU pricing is deferred per point; only the walk fields bind.
        v = m.vpu
        return (
            replace(norm, vpu=None),
            v.mem_port,
            v.vector_cache_bytes,
        )
    return norm


def _sig_token(sig) -> str:
    """Filesystem token for a shared-pass signature.

    Dataclass ``repr`` is deterministic across processes (field order
    is declaration order, float repr round-trips), so the token is
    stable for the on-disk compiled-pass cache keyed by it.
    """
    return hashlib.sha256(repr(sig).encode("utf-8")).hexdigest()[:12]


def _trace_compat(trace: RecordedTrace) -> dict:
    return {
        "isa_name": trace.isa_name,
        "vlen_bits": trace.vlen_bits,
        "l1_line_bytes": trace.l1_line_bytes,
    }


def _inv_fields(inv: SimStats) -> dict:
    return {f: getattr(inv, f) for f in _INVARIANT_FIELDS}


def _inv_from_fields(fields: dict) -> SimStats:
    inv = SimStats()
    for f in _INVARIANT_FIELDS:
        setattr(inv, f, fields[f])
    return inv


def _shared_pass_cached(
    trace: RecordedTrace, base: MachineConfig, defer_vpu: bool
):
    if not trace.key:
        return _shared_pass(trace, base, defer_vpu=defer_vpu)
    from ..core import tracecache

    digest = trace.content_digest()
    sig = _shared_pass_sig(base, defer_vpu)
    key = (trace.key, digest, defer_vpu, sig)
    hit = _SHARED_PASS_MEMO.get(key)
    if hit is not None:
        return hit
    out = None
    from_disk = False
    use_disk = tracecache.pass_cache_enabled()
    if use_disk:
        loaded = tracecache.load_pass(trace.key, _sig_token(sig), digest)
        if loaded is not None:
            _header, prog, inv_fields, gc = loaded
            gc["vpu"] = base.vpu
            out = (prog, _inv_from_fields(inv_fields), gc)
            from_disk = True
    if out is None:
        out = _shared_pass(trace, base, defer_vpu=defer_vpu)
    while len(_SHARED_PASS_MEMO) >= _SHARED_PASS_MEMO_MAX:
        _SHARED_PASS_MEMO.pop(next(iter(_SHARED_PASS_MEMO)))
    _SHARED_PASS_MEMO[key] = out
    if use_disk and not from_disk:
        tracecache.store_pass(
            out[0], _inv_fields(out[1]), out[2],
            key=trace.key, sig=_sig_token(sig), defer=defer_vpu,
            trace_sha256=digest, compat=_trace_compat(trace),
        )
    return out


def replay_sweep(
    trace: RecordedTrace, machines: Sequence[MachineConfig]
) -> Optional[List[SimStats]]:
    """Price *trace* on every machine of an L2/DRAM or VPU sweep group.

    Returns one ``SimStats`` per machine (bitwise identical to direct
    simulation), or ``None`` when the group varies in a field the
    shared-pass split does not support (see :func:`group_mode`; e.g. a
    VL sweep, whose event streams differ per point) — the caller
    should fall back to per-point simulation.

    The shared pass always runs in deferred-VPU mode: tag-6 classes
    resolve to the exact floats an eagerly-priced pass would have
    appended (see :func:`_vpu_price_table`), so the result is bitwise
    unchanged, and one cached pass serves *every* replayable axis of a
    capture — L2 size, DRAM latency/bandwidth, and lane count — both
    in the memo and in the on-disk compiled-pass cache.
    """
    machines = list(machines)
    if not machines:
        return []
    for m in machines:
        _check_compatible(trace, m)
    mode = group_mode(machines)
    if mode is None:
        return None
    prog, inv, gc = _shared_pass_cached(trace, machines[0], defer_vpu=True)
    ctx = None
    if trace.key:
        sig = _shared_pass_sig(machines[0], True)
        ctx = (
            trace.key,
            _sig_token(sig),
            trace.content_digest(),
            _trace_compat(trace),
        )
    return _run_points(prog, inv, gc, machines, cache_ctx=ctx)


def _machine_walk_fp(m: MachineConfig) -> str:
    """Fingerprint of the fields that steer a point's L2 walk."""
    return f"{m.l2!r}|{m.l2_prefetcher!r}"


def _fast_tier(budget) -> dict:
    desc = f"fast:{budget}"
    return {
        "kind": "fast",
        "token": hashlib.sha256(desc.encode("utf-8")).hexdigest()[:12],
        "desc": desc,
        "fps": [],
    }


def _walk_tier(m: MachineConfig) -> dict:
    desc = f"walk:{_machine_walk_fp(m)}"
    return {
        "kind": "walk",
        "token": hashlib.sha256(desc.encode("utf-8")).hexdigest()[:12],
        "desc": desc,
        "fps": [],
    }


def _cols_to_dict(cols: _VecProgram) -> dict:
    return {s: getattr(cols, s) for s in _VecProgram.__slots__}


def _cols_from_dict(d: dict) -> _VecProgram:
    cols = _VecProgram()
    for s in _VecProgram.__slots__:
        setattr(cols, s, d[s])
    return cols


def replay_sweep_cached(
    key: str, machines: Sequence[MachineConfig]
) -> Optional[List[SimStats]]:
    """Price a sweep group straight from the compiled-pass cache.

    The warm path for a spilled trace: the trace's content digest and
    compatibility fields come from the in-process registry or the
    spill file's JSON header (no column decode), the shared pass from
    the memo or its ``.rpp`` container, and — for a singleton group —
    the whole answer from a compiled ``.rvp`` tier, collapsing a warm
    figure point to one column-arithmetic pricing.  Returns ``None``
    unless every needed artifact is cached and digest-consistent; the
    caller falls back to :func:`replay_sweep` after loading (or
    re-capturing) the trace.
    """
    from ..core import tracecache

    if not key or not tracecache.pass_cache_enabled():
        return None
    machines = list(machines)
    if not machines:
        return []
    mode = group_mode(machines)
    if mode is None:
        return None
    trace = tracecache._REGISTRY.get(key)
    if trace is not None:
        digest = trace.content_digest()
        compat = _trace_compat(trace)
    else:
        try:
            header = tracecache.read_header(tracecache._spill_path(key))
        except (OSError, ValueError):
            return None
        if header.get("format") != TRACE_FORMAT_VERSION:
            return None
        digest = header.get("sha256")
        compat = {
            "isa_name": header.get("isa_name"),
            "vlen_bits": header.get("vlen_bits"),
            "l1_line_bytes": header.get("l1_line_bytes"),
        }
    if not digest:
        return None
    for m in machines:
        if (
            compat["isa_name"] != m.isa_name
            or compat["vlen_bits"] != m.vlen_bits
            or compat["l1_line_bytes"] != m.l1.line_bytes
        ):
            return None
    sig = _shared_pass_sig(machines[0], True)
    tok = _sig_token(sig)
    ctx = (key, tok, digest, compat)
    memo_key = (key, digest, True, sig)
    hit = _SHARED_PASS_MEMO.get(memo_key)
    if hit is not None:
        prog, inv, gc = hit
        return _run_points(prog, inv, gc, machines, cache_ctx=ctx)
    if len(machines) == 1:
        st = _cached_point(key, tok, digest, machines[0])
        if st is not None:
            return [st]
    loaded = tracecache.load_pass(key, tok, digest)
    if loaded is None:
        return None
    _header, prog, inv_fields, gc = loaded
    gc["vpu"] = machines[0].vpu
    inv = _inv_from_fields(inv_fields)
    out = (prog, inv, gc)
    while len(_SHARED_PASS_MEMO) >= _SHARED_PASS_MEMO_MAX:
        _SHARED_PASS_MEMO.pop(next(iter(_SHARED_PASS_MEMO)))
    _SHARED_PASS_MEMO[memo_key] = out
    return _run_points(prog, inv, gc, machines, cache_ctx=ctx)


def _cached_point(
    key: str, sig_token: str, digest: str, m: MachineConfig
) -> Optional[SimStats]:
    """Serve one point entirely from a compiled ``.rvp`` tier.

    Tier files embed the invariant stats and the pricing subset of the
    group constants, so nothing else needs decoding.  A walk tier's
    token is derived from this machine's own L2 walk fields, so a
    token match is validity; a fast tier is only trusted when this
    machine's walk fingerprint is recorded in it (the engine choice
    that compiled it was made for exactly this L2/prefetcher, so the
    conflict-free eligibility and budget decision are known to apply).
    """
    from ..core import tracecache

    fp = _machine_walk_fp(m)
    for tier in (
        _walk_tier(m),
        _fast_tier(None),
        _fast_tier(m.l2.size_bytes),
    ):
        hit = tracecache.load_vecprog(key, sig_token, tier["token"], digest)
        if hit is None:
            continue
        header, col_dict, inv_fields, gc_pricing = hit
        if tier["kind"] == "fast" and fp not in header["tier"].get("fps", ()):
            continue
        cols = _cols_from_dict(col_dict)
        inv = _inv_from_fields(inv_fields)
        return _point_pass_vec(cols, inv, m, gc_pricing)
    return None


def capture_sweep(
    emit: Callable, machines: Sequence[MachineConfig]
) -> Optional[List[SimStats]]:
    """Run the kernels once and price every machine of a sweep group.

    *emit* is called with a simulator-API object (a
    :class:`_GroupCapture`) and must drive the kernel event stream into
    it — e.g. ``lambda sim: net._emit_trace(sim, policy, n, True)``.
    The kernels run against ``machines[0]``; since a replayable group
    only varies in fields kernels never read (L2 geometry, DRAM, VPU
    pricing parameters), the event stream is valid for the whole group.

    Returns one ``SimStats`` per machine (bitwise identical to direct
    simulation), or ``None`` for unsupported groups — the caller should
    fall back to per-point simulation.  This fuses capture and the
    shared pricing pass: nothing is re-walked, making it the fastest
    cold path for a serial one-axis sweep.
    """
    machines = list(machines)
    if not machines:
        return []
    mode = group_mode(machines)
    if mode is None:
        return None
    cap = _GroupCapture(machines[0], defer_vpu=mode == "vpu")
    emit(cap)
    prog, inv, gc = cap.finish()
    return _run_points(prog, inv, gc, machines)
