"""Hardware stream prefetcher model.

The A64FX's hardware prefetcher is the feature the paper credits for the
6-loop (BLIS-like) GEMM's 2x win over the 3-loop GEMM on real hardware —
versus only 15 % on gem5-SVE, which does not model prefetching
(Section VI-C).  The mechanism: the 6-loop kernel *packs* A and B into
contiguous buffers, which a sequential stream prefetcher follows
perfectly, while the 3-loop kernel's inner loop hops across K distinct
matrix rows (stride N*4 bytes), defeating a stream table of limited size.

We model a classic next-N-lines stream prefetcher with a finite stream
table: an access that extends a tracked stream prefetches the next
``degree`` lines into the attached cache; an access that matches no
stream allocates a new entry (confidence-gated), evicting the least
recently used stream.
"""

from __future__ import annotations

__all__ = ["StreamPrefetcher", "NullPrefetcher"]


class NullPrefetcher:
    """Prefetcher stub for machines without hardware prefetch (gem5 runs)."""

    issued = 0

    def observe(self, cache, line_addr: int) -> int:
        """No-op; returns the number of lines prefetched (always 0)."""
        return 0

    def reset(self) -> None:
        """No state to reset."""


class StreamPrefetcher:
    """Sequential stream prefetcher with a finite stream table.

    Parameters
    ----------
    num_streams:
        Stream-table entries.  The 3-loop GEMM generates ~K concurrent row
        streams; once K exceeds this, its B-matrix loads stop being
        prefetched — exactly the packing advantage the paper exploits.
    degree:
        Lines fetched ahead when a stream advances.
    trigger:
        Consecutive-line confirmations required before a stream starts
        issuing prefetches.
    """

    __slots__ = ("num_streams", "degree", "trigger", "_streams", "issued")

    def __init__(self, num_streams: int = 8, degree: int = 4, trigger: int = 2):
        if num_streams <= 0 or degree <= 0 or trigger <= 0:
            raise ValueError("prefetcher parameters must be positive")
        self.num_streams = num_streams
        self.degree = degree
        self.trigger = trigger
        # Each stream: [next_expected_line, confidence]; list order is LRU.
        self._streams = []
        self.issued = 0

    def observe(self, cache, line_addr: int) -> int:
        """Feed a demand access; prefetch into *cache* when a stream fires.

        Returns the number of lines inserted into the cache.
        """
        streams = self._streams
        for i, st in enumerate(streams):
            expected, conf = st
            # Allow the access to land within the prefetch window of the
            # stream (it may hit lines we already fetched ahead).
            if expected <= line_addr < expected + self.degree + 1:
                st[0] = line_addr + 1
                st[1] = conf + 1
                streams.append(streams.pop(i))  # LRU -> MRU
                if st[1] >= self.trigger:
                    filled = 0
                    base = line_addr + 1
                    for d in range(self.degree):
                        if cache.fill(base + d):
                            filled += 1
                    self.issued += filled
                    return filled
                return 0
        # No stream matched: allocate one expecting the next line.
        streams.append([line_addr + 1, 1])
        if len(streams) > self.num_streams:
            streams.pop(0)
        return 0

    def reset(self) -> None:
        """Drop all tracked streams and the issue counter."""
        self._streams.clear()
        self.issued = 0
