"""Trace-driven timing simulator.

This is the stand-in for gem5 in the reproduction (see DESIGN.md's
substitution table).  Kernels *replay* their instruction stream — vector
loads/stores with real address patterns, vector arithmetic groups, scalar
bookkeeping — against a :class:`TraceSimulator`, which prices each event
using the machine's VPU and memory-hierarchy models and accumulates
cycles plus cache statistics.

Loop sampling
-------------
Simulating every iteration of a YOLOv3 GEMM (hundreds of millions of
MACs) in Python is infeasible, and unnecessary: the loop nests are
periodic.  :meth:`TraceSimulator.loop` therefore runs a few *warm-up*
iterations at weight 1 (to warm the caches into steady state) and then a
small number of *sampled* iterations whose cycle and hit/miss
contributions are scaled by ``(total - warmup) / sample``.  Cache *state*
evolves normally during sampled iterations; only the accounting is
weighted.  Sampling is exact for uniform iterations and a close
approximation for GEMM/Winograd loop nests, whose per-iteration work and
reuse pattern are homogeneous after warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .config import MachineConfig
from .hierarchy import MemoryHierarchy
from .trace import AddressSpace, Buffer, SampledTraceBase
from .vpu import varith_cycles, vbroadcast_cycles, vmem_transfer_cycles

__all__ = ["SimStats", "TraceSimulator", "SampledTraceBase", "vmem_event_cycles"]

#: Fraction of a store's latency that stalls the pipeline (store buffers
#: hide most of it).
_STORE_STALL_FACTOR = 0.25
#: Outstanding scalar misses overlapped by an in-order core's LSU.
_SCALAR_MLP = 2.0
#: Dependency-chain serialization per spilled/reloaded vector register.
_SPILL_SERIALIZE_CYCLES = 8


def vmem_event_cycles(
    vpu,
    l1_lat: float,
    ooo_hide: float,
    lat,
    occ1: float,
    occ2: float,
    nbytes: int,
    n_lines: int,
    write: bool,
    unit_stride: bool,
) -> float:
    """Pure cycle cost of one vector memory event.

    Extracted from :meth:`TraceSimulator._vmem` so the trace replayer
    (:mod:`repro.machine.replay`) prices replayed events with the exact
    same arithmetic — bitwise identity depends on the operation order
    here, so treat any edit as a model change.
    """
    if vpu.mem_port == "L1":
        # Streamed L1 hits are fully pipelined on an L1-fed VPU:
        # only latency *beyond* the hit baseline stalls the pipe.
        lat = lat - n_lines * l1_lat
        if lat < 0.0:
            lat = 0.0
    # Effective MLP grows with the access footprint: a vector
    # load spanning L lines keeps its own fills in flight.  An
    # L1-fed scoreboarded pipeline (SVE) additionally overlaps
    # the next access's fills; the decoupled RVV unit serializes
    # accesses through its VectorCache.
    if not unit_stride:
        # Gathers/strided accesses serialize on address
        # generation: only a few element fills overlap.
        overlap = n_lines if n_lines < 4 else 4
    elif n_lines == 1:
        overlap = 1  # a dependent 1-line load exposes its latency
    elif vpu.mem_port == "L1":
        # Scoreboarded streams overlap across accesses too.
        overlap = 2 * n_lines
    else:
        overlap = n_lines  # decoupled unit overlaps own fills only
    if overlap > vpu.max_outstanding:
        overlap = vpu.max_outstanding
    mlp_eff = vpu.mlp if vpu.mlp > overlap else overlap
    stall = lat * (1.0 - ooo_hide) / mlp_eff
    if write:
        stall *= _STORE_STALL_FACTOR
    transfer = vmem_transfer_cycles(vpu, nbytes)
    # L1-fill occupancy is netted against the useful transfer
    # already priced: only *wasted* fill bandwidth (partially-
    # used lines) costs extra.  DRAM fill bandwidth is a
    # separate, narrower pipe and is charged in full.
    occ = occ1 - transfer
    if occ < 0.0:
        occ = 0.0
    occ += occ2
    # No lane-fill term: memory data streams into the lanes as
    # it arrives (chained), so transfer + exposed stall covers
    # it.
    return (
        vpu.mem_issue_overhead
        + vpu.issue_overhead
        + transfer
        + stall
        + occ
    )


@dataclass(slots=True)
class SimStats:
    """Weighted statistics accumulated by a :class:`TraceSimulator`.

    All counters are floats because sampled iterations contribute
    fractional (weighted) amounts.  ``slots=True`` because the counter
    updates are on the simulator's hottest path.
    """

    #: Canonical ordering of the scalar (float) counters.  Single source
    #: of truth for :meth:`merge`, :meth:`Network.simulate_stream`'s
    #: snapshot differencing, and the simcache's (de)serialization.
    FIELDS = (
        "cycles",
        "scalar_instrs",
        "vec_instrs",
        "vec_mem_instrs",
        "vec_elems",
        "flops",
        "bytes_loaded",
        "bytes_stored",
        "l1_hits",
        "l1_misses",
        "l2_hits",
        "l2_misses",
        "dram_fills",
        "vc_hits",
        "sw_prefetches",
        "spills",
    )

    cycles: float = 0.0
    scalar_instrs: float = 0.0
    vec_instrs: float = 0.0
    vec_mem_instrs: float = 0.0
    vec_elems: float = 0.0
    flops: float = 0.0
    bytes_loaded: float = 0.0
    bytes_stored: float = 0.0
    l1_hits: float = 0.0
    l1_misses: float = 0.0
    l2_hits: float = 0.0
    l2_misses: float = 0.0
    dram_fills: float = 0.0
    vc_hits: float = 0.0
    sw_prefetches: float = 0.0
    spills: float = 0.0
    kernel_cycles: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def l2_accesses(self) -> float:
        """Demand accesses that reached the L2."""
        return self.l2_hits + self.l2_misses

    @property
    def l2_miss_rate(self) -> float:
        """L2 demand miss rate, as reported in Table III of the paper."""
        total = self.l2_accesses
        return self.l2_misses / total if total else 0.0

    @property
    def l1_miss_rate(self) -> float:
        """L1 demand miss rate."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def avg_vlen_elems(self) -> float:
        """Consumed average vector length in elements (Table III)."""
        return self.vec_elems / self.vec_instrs if self.vec_instrs else 0.0

    @property
    def avg_vlen_bits(self) -> float:
        """Consumed average vector length in bits, assuming f32 elements."""
        return self.avg_vlen_elems * 32

    def gflops_per_sec(self, freq_ghz: float) -> float:
        """Sustained GFLOP/s at the given core frequency."""
        if self.cycles <= 0:
            return 0.0
        return self.flops / self.cycles * freq_ghz

    def merge(self, other: "SimStats") -> "SimStats":
        """Accumulate *other* into ``self`` and return ``self``."""
        for name in self.FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for k, v in other.kernel_cycles.items():
            self.kernel_cycles[k] = self.kernel_cycles.get(k, 0.0) + v
        return self


class TraceSimulator(SampledTraceBase):
    """Prices a kernel's instruction trace on one machine design point."""

    def __init__(self, machine: MachineConfig):
        super().__init__()
        self.machine = machine
        self.hierarchy = MemoryHierarchy(machine)
        self.address_space = AddressSpace()
        self.stats = SimStats()
        # Hot-path locals.
        self._vpu = machine.vpu
        self._core = machine.core
        self._ooo_hide = machine.core.ooo_hide
        self._stall_scale = (1.0 - machine.core.ooo_hide) / machine.vpu.mlp
        self._l1_line = machine.l1.line_bytes
        self._l1_lat = machine.l1.latency
        self._scalar_cpi = machine.core.scalar_cpi
        # Pre-resolved hierarchy access paths (see MemoryHierarchy):
        # skips one delegating call per memory event.
        self._scalar_access = self.hierarchy.scalar_path
        self._vec_access = self.hierarchy.vector_path
        self._strided_access = self.hierarchy.strided_vector_path
        # varith_cycles is pure in (n_elems, n_instr, ew) for a fixed VPU;
        # GEMM micro-kernels call it millions of times with a handful of
        # distinct shapes, so memoize per simulator.
        self._varith_memo = {}
        # The cycle arithmetic in _vmem is likewise pure in what the
        # hierarchy returned plus the access shape; traces revisit the
        # same few hundred combinations millions of times.
        self._vmem_memo = {}

    # ------------------------------------------------------------------
    # Allocation & attribution
    # ------------------------------------------------------------------
    def alloc(self, name: str, nbytes: int) -> Buffer:
        """Allocate a simulated buffer (line-aligned, never aliasing)."""
        return self.address_space.alloc(name, nbytes)

    def _add_cycles(self, c: float) -> None:
        wc = self._w * c
        self.stats.cycles += wc
        label = self._kernel_stack[-1]
        kc = self.stats.kernel_cycles
        kc[label] = kc.get(label, 0.0) + wc

    # ------------------------------------------------------------------
    # Scalar events
    # ------------------------------------------------------------------
    def scalar(self, n: int = 1) -> None:
        """*n* scalar ALU / bookkeeping instructions."""
        w = self._w
        s = self.stats
        s.scalar_instrs += w * n
        wc = w * (n * self._scalar_cpi)
        s.cycles += wc
        kc = s.kernel_cycles
        label = self._kernel_stack[-1]
        kc[label] = kc.get(label, 0.0) + wc

    def scalar_load(self, addr: int, nbytes: int = 4) -> None:
        """A scalar load (naive kernels, packing bookkeeping)."""
        lat, occ, st = self._scalar_access(addr, nbytes, False)
        w = self._w
        s = self.stats
        s.scalar_instrs += w
        s.bytes_loaded += w * nbytes
        s.l1_hits += w * st[0]
        # Zero stat terms are skipped: the counters are non-negative
        # floats, so += 0.0 is a bitwise no-op (same for the stall/occ
        # terms below — an L1 hit has lat == l1_lat and zero occupancy).
        if st[1]:
            s.l1_misses += w * st[1]
            s.l2_hits += w * st[2]
            s.l2_misses += w * st[3]
            s.dram_fills += w * st[4]
        d = lat - self._l1_lat
        if d > 0:
            stall = max(0.0, d) / _SCALAR_MLP
            stall *= 1.0 - self._ooo_hide
            wc = w * (self._scalar_cpi + stall + occ[0] + occ[1])
        else:
            wc = w * self._scalar_cpi
        s.cycles += wc
        kc = s.kernel_cycles
        label = self._kernel_stack[-1]
        kc[label] = kc.get(label, 0.0) + wc

    def scalar_store(self, addr: int, nbytes: int = 4) -> None:
        """A scalar store."""
        lat, occ, st = self._scalar_access(addr, nbytes, True)
        w = self._w
        s = self.stats
        s.scalar_instrs += w
        s.bytes_stored += w * nbytes
        s.l1_hits += w * st[0]
        if st[1]:  # see scalar_load for the zero-skip argument
            s.l1_misses += w * st[1]
            s.l2_hits += w * st[2]
            s.l2_misses += w * st[3]
            s.dram_fills += w * st[4]
        d = lat - self._l1_lat
        if d > 0:
            stall = max(0.0, d) / _SCALAR_MLP
            stall *= _STORE_STALL_FACTOR * (1.0 - self._ooo_hide)
            wc = w * (self._scalar_cpi + stall + occ[0] + occ[1])
        else:
            wc = w * self._scalar_cpi
        s.cycles += wc
        kc = s.kernel_cycles
        label = self._kernel_stack[-1]
        kc[label] = kc.get(label, 0.0) + wc

    # ------------------------------------------------------------------
    # Vector events
    # ------------------------------------------------------------------
    def _account_mem(self, st) -> None:
        w = self._w
        s = self.stats
        s.l1_hits += w * st[0]
        s.l1_misses += w * st[1]
        s.l2_hits += w * st[2]
        s.l2_misses += w * st[3]
        s.dram_fills += w * st[4]
        s.vc_hits += w * st[5]

    def vload(self, addr: int, n_elems: int, ew: int = 4, stride: int = 0) -> None:
        """Vector load of *n_elems* elements of width *ew* from *addr*.

        ``stride`` is the byte distance between consecutive elements
        (0 or ``ew`` means unit stride).  Strided/gathered loads touch one
        line per element once the stride exceeds the line size.
        """
        self._vmem(addr, n_elems, ew, stride, write=False)

    def vstore(self, addr: int, n_elems: int, ew: int = 4, stride: int = 0) -> None:
        """Vector store; see :meth:`vload` for the addressing model."""
        self._vmem(addr, n_elems, ew, stride, write=True)

    def _vmem(self, addr: int, n_elems: int, ew: int, stride: int, write: bool) -> None:
        if n_elems <= 0:
            return
        nbytes = n_elems * ew
        if stride in (0, ew):
            unit_stride = True
            lat, (occ1, occ2), st = self._vec_access(addr, nbytes, write)
            l1_line = self._l1_line
            n_lines = (addr + nbytes - 1) // l1_line - addr // l1_line + 1
        else:
            # Strided access: each element touches its own line(s); the
            # hierarchy walks them in one pass (numerically identical to
            # the per-element loop — see docs/TIMING_MODEL.md).
            unit_stride = False
            lat, (occ1, occ2), st = self._strided_access(
                addr, n_elems, ew, stride, write
            )
            n_lines = n_elems
        # The cycle count below is a pure function of this key for a
        # fixed machine config; traces revisit few distinct combinations.
        memo = self._vmem_memo
        key = (lat, occ1, occ2, nbytes, n_lines, write, unit_stride)
        cycles = memo.get(key)
        if cycles is None:
            cycles = memo[key] = vmem_event_cycles(
                self._vpu, self._l1_lat, self._ooo_hide,
                lat, occ1, occ2, nbytes, n_lines, write, unit_stride,
            )
        w = self._w
        s = self.stats
        s.vec_instrs += w
        s.vec_mem_instrs += w
        s.vec_elems += w * n_elems
        if write:
            s.bytes_stored += w * nbytes
        else:
            s.bytes_loaded += w * nbytes
        # Zero stat terms skipped (bitwise no-op adds, see scalar_load):
        # the RVV path never touches the L1, the SVE path never the VC.
        if st[0]:
            s.l1_hits += w * st[0]
        if st[1]:
            s.l1_misses += w * st[1]
        if st[2]:
            s.l2_hits += w * st[2]
        if st[3]:
            s.l2_misses += w * st[3]
        if st[4]:
            s.dram_fills += w * st[4]
        if st[5]:
            s.vc_hits += w * st[5]
        wc = w * cycles
        s.cycles += wc
        kc = s.kernel_cycles
        label = self._kernel_stack[-1]
        kc[label] = kc.get(label, 0.0) + wc

    def vgather(self, addr: int, n_elems: int, span_bytes: int, ew: int = 4) -> None:
        """Gather load of *n_elems* elements spread over *span_bytes*.

        Models index-vector gathers (used by the RVV Winograd fallback,
        Section VII) as evenly spread element accesses over the span.
        """
        if n_elems <= 0:
            return
        stride = max(ew, span_bytes // max(1, n_elems))
        self._vmem(addr, n_elems, ew, stride, write=False)

    def vscatter(self, addr: int, n_elems: int, span_bytes: int, ew: int = 4) -> None:
        """Scatter store counterpart of :meth:`vgather`."""
        if n_elems <= 0:
            return
        stride = max(ew, span_bytes // max(1, n_elems))
        self._vmem(addr, n_elems, ew, stride, write=True)

    def varith(
        self, n_elems: int, n_instr: int = 1, flops_per_elem: float = 2.0, ew: int = 4
    ) -> None:
        """*n_instr* vector arithmetic instructions of *n_elems* lanes each.

        ``flops_per_elem`` defaults to 2 (an FMA counts multiply + add).
        """
        if n_elems <= 0 or n_instr <= 0:
            return
        memo = self._varith_memo
        key = (n_elems, n_instr, ew)
        cycles = memo.get(key)
        if cycles is None:
            cycles = memo[key] = varith_cycles(self._vpu, n_elems, n_instr, ew)
        w = self._w
        s = self.stats
        s.vec_instrs += w * n_instr
        s.vec_elems += w * n_instr * n_elems
        s.flops += w * n_instr * n_elems * flops_per_elem
        wc = w * cycles
        s.cycles += wc
        kc = s.kernel_cycles
        label = self._kernel_stack[-1]
        kc[label] = kc.get(label, 0.0) + wc

    def vbroadcast(self, n: int = 1) -> None:
        """*n* scalar-to-vector broadcast instructions."""
        self.stats.vec_instrs += self._w * n
        self._add_cycles(n * vbroadcast_cycles(self._vpu))

    def sw_prefetch(self, addr: int, nbytes: int, level: str = "L1") -> None:
        """Software prefetch hint (paper Fig. 3, lines 11-17).

        Honoured only on machines with ``honors_sw_prefetch`` (A64FX);
        on gem5-SVE it costs an issue slot as a no-op; on RVV the compiler
        removed it, so it costs nothing.
        """
        m = self.machine
        if m.honors_sw_prefetch:
            self.hierarchy.sw_prefetch(addr, nbytes, level)
            self.stats.sw_prefetches += self._w
            self._add_cycles(self._core.scalar_cpi)
        elif m.sw_prefetch_is_noop_instr:
            self.stats.scalar_instrs += self._w
            self._add_cycles(self._core.scalar_cpi)
        # else: dropped at compile time — free.

    def count_flops(self, n: float) -> None:
        """Record *n* (weighted) flops without issuing an instruction.

        Used by scalar kernels whose arithmetic is already priced through
        :meth:`scalar`, so sustained-GFLOPs reporting stays correct.
        """
        self.stats.flops += self._w * n

    def spill(self, n_registers: int = 1) -> None:
        """Register spill traffic: store + reload of full vector registers.

        Charged by kernels whose unroll factor exceeds the architectural
        register budget (Section VI-A: unroll 32 loses ~15 % to spills).
        Beyond the memory traffic, each reload serializes the dependent
        FMA chain — the store/load pair cannot be hidden by chaining —
        so a fixed dependency penalty is charged per spilled register.
        """
        vlen_bytes = self.machine.vlen_bits // 8
        stack = 0  # spills go to the stack: low, reused addresses
        for _ in range(n_registers):
            self.vstore(stack, vlen_bytes // 4, 4)
            self.vload(stack, vlen_bytes // 4, 4)
        self._add_cycles(n_registers * _SPILL_SERIALIZE_CYCLES)
        self.stats.spills += self._w * n_registers

    # ------------------------------------------------------------------
    def seconds(self) -> float:
        """Simulated wall-clock seconds at the configured frequency."""
        return self.stats.cycles / (self.machine.core.freq_ghz * 1e9)
