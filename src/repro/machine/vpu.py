"""Vector-unit timing formulas.

The timing of a vector instruction on an in-order machine with ``lanes``
parallel 64-bit datapaths follows the classic vector-processor model:

    cycles = lane_fill + ceil(active_elements / elements_per_cycle)

``lane_fill`` is the start-up overhead of filling the lane pipelines —
Section V of the paper: "adding more pipelines increases the start-up
overhead, which can potentially degrade the performance with short
vector lengths".  With chaining, back-to-back independent operations of
the unrolled GEMM micro-kernel overlap their start-up, which is why the
fill term is charged per instruction rather than per dependence chain
but kept small (``lanes / 4``).
"""

from __future__ import annotations

from .config import VPUParams

__all__ = ["varith_cycles", "vmem_transfer_cycles", "vbroadcast_cycles"]


def varith_cycles(
    vpu: VPUParams, n_elems: int, n_instr: int = 1, ew_bytes: int = 4
) -> int:
    """Cycles for a *group* of ``n_instr`` independent vector arithmetic
    instructions of ``n_elems`` lanes each.

    Back-to-back independent operations (the unrolled FMAs of the GEMM
    micro-kernel) chain through the lanes, so the lane-fill start-up is
    paid once per group, the per-instruction cost is the single-pipe
    execution time, and multiple pipes (A64FX's 2 SIMD units) divide the
    group's throughput.
    """
    if n_elems <= 0 or n_instr <= 0:
        return 0
    epc_pipe = vpu.exec_elems_per_cycle(ew_bytes)  # elements/cycle, one pipe
    per_instr = -(-n_elems // epc_pipe)
    exec_cycles = -(-(n_instr * per_instr) // vpu.pipes)
    dispatch = n_instr * vpu.issue_overhead
    # Dispatch and execution overlap once the VPU is saturated: the
    # group costs whichever stream is longer, plus the lane fill.
    return vpu.lane_fill_cycles + max(exec_cycles, dispatch)


def vmem_transfer_cycles(vpu: VPUParams, nbytes: int) -> int:
    """Data-transfer cycles for a vector memory instruction.

    Pure occupancy of the memory port; latency/stall is computed by the
    simulator from the hierarchy's per-line outcome.
    """
    if nbytes <= 0:
        return 0
    return -(-nbytes // vpu.port_bytes_per_cycle)


def vbroadcast_cycles(vpu: VPUParams) -> int:
    """Cycles for a scalar-to-vector broadcast (``vfmv``/``svdup``).

    The paper notes the compiler folds the broadcast into vector-scalar
    FMA forms where possible; one cycle models the register move.
    """
    return 1
