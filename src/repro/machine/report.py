"""gem5-style statistics dump.

The paper's methodology reads gem5's ``stats.txt``; this module renders
a :class:`~repro.machine.simulator.SimStats` in the same
``name  value  # description`` format so results can be diffed,
grepped and post-processed with existing gem5 tooling habits.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..core.resilience import atomic_replace
from ..testing import faults
from .config import MachineConfig
from .simulator import SimStats

__all__ = ["format_gem5_stats", "dump_gem5_stats"]

_DESCRIPTIONS = [
    ("sim_cycles", "cycles", "Simulated execution cycles"),
    ("system.cpu.numInsts.scalar", "scalar_instrs", "Scalar instructions retired"),
    ("system.cpu.numInsts.vector", "vec_instrs", "Vector instructions retired"),
    ("system.cpu.vpu.memInsts", "vec_mem_instrs", "Vector memory instructions"),
    ("system.cpu.vpu.elemsProcessed", "vec_elems", "Vector elements processed"),
    ("system.cpu.vpu.flops", "flops", "Floating-point operations"),
    ("system.cpu.dcache.bytesRead", "bytes_loaded", "Bytes loaded"),
    ("system.cpu.dcache.bytesWritten", "bytes_stored", "Bytes stored"),
    ("system.l1.hits", "l1_hits", "L1 demand hits"),
    ("system.l1.misses", "l1_misses", "L1 demand misses"),
    ("system.l2.hits", "l2_hits", "L2 demand hits"),
    ("system.l2.misses", "l2_misses", "L2 demand misses"),
    ("system.mem.fills", "dram_fills", "DRAM line fills"),
    ("system.cpu.vpu.vcHits", "vc_hits", "VectorCache hits"),
    ("system.cpu.swPrefetches", "sw_prefetches", "Software prefetches issued"),
    ("system.cpu.regSpills", "spills", "Vector register spills"),
]


def format_gem5_stats(
    stats: SimStats, machine: Optional[MachineConfig] = None
) -> str:
    """Render *stats* in gem5 ``stats.txt`` style."""
    lines = ["---------- Begin Simulation Statistics ----------"]
    if machine is not None:
        lines.append(f"# machine: {machine.describe()}")
        seconds = stats.cycles / (machine.core.freq_ghz * 1e9)
        lines.append(f"{'sim_seconds':44s} {seconds:<18.6f} # Simulated seconds")
    for name, attr, desc in _DESCRIPTIONS:
        lines.append(f"{name:44s} {getattr(stats, attr):<18.0f} # {desc}")
    lines.append(
        f"{'system.l2.missRate':44s} {stats.l2_miss_rate:<18.4f} "
        "# L2 demand miss rate"
    )
    lines.append(
        f"{'system.cpu.vpu.avgVlenBits':44s} {stats.avg_vlen_bits:<18.1f} "
        "# Average consumed vector length (bits)"
    )
    for kernel, cycles in sorted(stats.kernel_cycles.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"{'kernel.' + kernel + '.cycles':44s} {cycles:<18.0f} "
            f"# Cycles attributed to {kernel}"
        )
    lines.append("---------- End Simulation Statistics   ----------")
    return "\n".join(lines)


def dump_gem5_stats(
    stats: SimStats, path: str, machine: Optional[MachineConfig] = None
) -> None:
    """Write :func:`format_gem5_stats` output to *path* atomically.

    A crash (or injected fault) mid-dump leaves either the previous
    file or the complete new one — never a torn stats report.
    """
    text = format_gem5_stats(stats, machine) + "\n"

    def write(tmp: str) -> None:
        Path(tmp).write_text(text, encoding="utf-8")
        faults.maybe_fault("report.write", path=tmp)

    atomic_replace(path, write)
