"""Scalar-core cost helpers.

The scalar pipeline matters in two places in the paper's study: the
*naive* Darknet GEMM baseline (pure scalar code, Sections VI-A/VI-C) and
the loop/bookkeeping overhead that long vectors amortize away (Fig. 6).
The cost model is intentionally simple — an in-order MinorCPU-like core
retiring ``1/scalar_cpi`` instructions per cycle — because the paper's
conclusions hinge on vector-unit and memory behaviour, not scalar IPC.
"""

from __future__ import annotations

from .config import CoreParams

__all__ = [
    "scalar_block_cycles",
    "LOOP_OVERHEAD_INSTRS",
    "NAIVE_GEMM_INNER_INSTRS",
]

#: Scalar instructions per loop-nest iteration for bookkeeping after -O3
#: strength reduction (pointer bump, compare-and-branch).
LOOP_OVERHEAD_INSTRS = 2

#: Scalar instructions in the naive GEMM inner loop body beyond its
#: two loads / one store: the scalar FMA and address arithmetic.
NAIVE_GEMM_INNER_INSTRS = 3


def scalar_block_cycles(core: CoreParams, n_instrs: int) -> float:
    """Cycles to retire *n_instrs* scalar instructions."""
    if n_instrs < 0:
        raise ValueError("instruction count must be non-negative")
    return n_instrs * core.scalar_cpi
