"""Command-line interface for the reproduction toolkit.

Usage (``python -m repro <command> ...``):

* ``simulate`` — trace-simulate a zoo network on a machine preset;
* ``sweep``    — one-axis design-space sweep (vlen / cache / lanes);
* ``roofline`` — regenerate Table IV;
* ``profile``  — per-kernel cycle breakdown (Section II-B);
* ``select``   — per-layer convolution-algorithm selection;
* ``analyze``  — static trace verifier, working-set and roofline-bound
  report (exit code 1 on any finding; see docs/ANALYSIS.md);
* ``predict``  — static cost model: predict a network's cycles without
  simulating, optionally drift-gated against a replay (``--oracle``);
* ``autotune`` — GEMM block-size search, exhaustive or model-guided
  (``--prune K`` simulates only the model's top-K candidates);
* ``trace-cache`` — inspect, verify or garbage-collect the spilled
  trace files under ``.simcache/traces/`` (see docs/TRACE_REPLAY.md);
* ``check-code`` — AST/call-graph invariant analyzer over the repro
  sources themselves: determinism, atomic persistence, fork-safety and
  knob-hygiene contracts (exit code 1 on any finding);
* ``knobs``    — list every declared ``REPRO_*`` environment knob with
  its type, default, and current value;
* ``submit`` / ``status`` / ``results`` / ``cancel`` / ``jobs`` — the
  durable job layer (docs/SERVICE.md): run sweeps as crash-safe,
  addressable, content-deduplicated jobs with lease-based adoption,
  sealed results records, and cross-run garbage collection.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from .core import (
    format_series,
    format_table,
    measured_choice,
    paper_rule,
    roofline_table,
    summarize_stats,
    sweep_cache_sizes,
    sweep_lanes,
    sweep_vector_lengths,
)
from .machine import a64fx, rvv_gem5, sve_gem5
from .nets import KernelPolicy, profile_network, vgg16, yolov3, yolov3_tiny
from .workloads import discrete_conv_specs

__all__ = ["main", "build_parser"]

_NETS = {"yolov3": yolov3, "yolov3-tiny": yolov3_tiny, "vgg16": vgg16}


def _machine(args) -> object:
    if args.machine == "rvv":
        return rvv_gem5(vlen_bits=args.vlen, lanes=args.lanes, l2_mb=args.l2_mb)
    if args.machine == "sve":
        return sve_gem5(vlen_bits=min(args.vlen, 2048), l2_mb=args.l2_mb)
    return a64fx()


def _policy(args) -> KernelPolicy:
    return KernelPolicy(gemm=args.gemm, winograd=args.winograd)


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--net", choices=sorted(_NETS), default="yolov3")
    p.add_argument("--machine", choices=["rvv", "sve", "a64fx"], default="rvv")
    p.add_argument("--vlen", type=int, default=512, help="vector length in bits")
    p.add_argument("--lanes", type=int, default=8)
    p.add_argument("--l2-mb", type=int, default=1, dest="l2_mb")
    p.add_argument("--gemm", choices=["naive", "3loop", "6loop"], default="3loop")
    p.add_argument(
        "--winograd", choices=["off", "stride1", "all3x3"], default="off"
    )
    p.add_argument("--layers", type=int, default=None, help="simulate first N layers")


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    """Tri-state trace toggle: absent -> REPRO_TRACE / per-command default
    (on for sweeps, off for single simulations)."""
    g = p.add_mutually_exclusive_group()
    g.add_argument(
        "--trace", action="store_true", default=None, dest="trace",
        help="capture the kernel event stream once and replay it for "
             "every point sharing it (default for sweeps)",
    )
    g.add_argument(
        "--no-trace", action="store_false", dest="trace",
        help="always re-run kernels at every design point",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CNN inference on long-vector architectures (IPDPS'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="trace-simulate a network")
    _add_common(p)
    _add_trace_flags(p)

    p = sub.add_parser("sweep", help="one-axis design-space sweep")
    _add_common(p)
    _add_trace_flags(p)
    p.add_argument(
        "--axis", choices=["vlen", "cache", "lanes"], default="vlen"
    )
    p.add_argument(
        "--values", type=int, nargs="+", default=None,
        help="axis values (bits / MB / lanes)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel workers for design points (default: $REPRO_JOBS "
             "or serial; 0 = all cores)",
    )
    p.add_argument(
        "--simcache", action="store_true", default=None,
        help="memoize results on disk under .simcache/ "
             "(also enabled by REPRO_SIMCACHE=1)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="journal completed points under .simcache/journal/ and "
             "restore them on the next --resume run of the same sweep",
    )
    p.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="print the point grid, journal/cache/quarantine state and "
             "estimated work, without simulating anything",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="per-point retry budget on failure (default: $REPRO_RETRIES "
             "or 2), with exponential backoff",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point timeout in parallel mode (default: "
             "$REPRO_POINT_TIMEOUT or none); timed-out points retry",
    )
    p.add_argument(
        "--max-failures", type=int, default=None, dest="max_failures",
        metavar="N",
        help="tolerate up to N permanently failed points (reported as "
             "source 'failed') before aborting; default 0 = fail fast",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the sweep result as JSON (exact float round-trip) "
             "instead of tables",
    )
    p.add_argument(
        "--prune", type=int, default=None, metavar="K",
        help="model-guided sweep: rank all points with the static cost "
             "model and simulate only the top K; the rest carry "
             "predicted cycles (source 'pruned-by-model')",
    )

    p = sub.add_parser("roofline", help="Table IV roofline analysis")
    p.add_argument("--gemm", choices=["3loop", "6loop"], default="6loop")

    p = sub.add_parser("profile", help="per-kernel cycle breakdown")
    _add_common(p)

    p = sub.add_parser("select", help="per-layer algorithm selection")
    _add_common(p)
    p.add_argument("--measured", action="store_true",
                   help="simulate both algorithms instead of the static rule")
    p.add_argument("--tuned", action="store_true",
                   help="like --measured, but model-guided-tune the GEMM "
                        "blocking first (reports the chosen blocking)")

    p = sub.add_parser(
        "predict",
        help="predict a network's cycles with the static cost model "
             "(no simulation)",
    )
    _add_common(p)
    p.add_argument(
        "--oracle", action="store_true",
        help="also replay the trace and drift-gate the prediction "
             "against the simulated cycles (predict/* rules)",
    )
    p.add_argument(
        "--band", type=float, default=None, metavar="FACTOR",
        help="drift band for --oracle: fail when prediction is outside "
             "[sim/FACTOR, sim*FACTOR] (default: analysis.DRIFT_BAND)",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the prediction as JSON instead of text",
    )

    p = sub.add_parser(
        "autotune",
        help="grid-search GEMM block sizes, exhaustively or model-guided",
    )
    p.add_argument("--machine", choices=["rvv", "sve", "a64fx"], default="rvv")
    p.add_argument("--vlen", type=int, default=512, help="vector length in bits")
    p.add_argument("--lanes", type=int, default=8)
    p.add_argument("--l2-mb", type=int, default=1, dest="l2_mb")
    p.add_argument("-M", type=int, default=64, dest="gemm_m",
                   help="GEMM rows (default: YOLOv3 416x416 layer-2 shape)")
    p.add_argument("-N", type=int, default=23104, dest="gemm_n")
    p.add_argument("-K", type=int, default=288, dest="gemm_k")
    p.add_argument(
        "--prune", type=int, default=None, metavar="K",
        help="simulate only the static model's top-K candidates; the "
             "rest are returned with predicted cycles "
             "(source 'pruned-by-model')",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the ranking as JSON instead of a table",
    )

    p = sub.add_parser(
        "analyze",
        help="statically verify a network's kernel trace and report "
             "working sets and cycle bounds",
    )
    _add_common(p)
    p.add_argument(
        "--oracle", action="store_true",
        help="also replay the trace and assert the static cycle bound "
             "against the simulated cycles",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of text",
    )
    p.add_argument(
        "--rules", default=None, metavar="PREFIX[,PREFIX...]",
        help="only report findings whose rule id starts with one of "
             "these comma-separated prefixes (e.g. 'dataflow,trace')",
    )
    p.add_argument(
        "--ignore", default=None, metavar="PREFIX[,PREFIX...]",
        help="drop findings whose rule id starts with one of these "
             "comma-separated prefixes",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table (id, severity, pass, description) "
             "and exit",
    )
    p.add_argument(
        "--max-examples", type=int, default=3, metavar="N",
        help="example events attached to each aggregated finding "
             "(surfaced in the JSON report; default 3)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="diff the canonical report against a committed baseline "
             "JSON; a non-empty diff fails the run",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="write the canonical report to --baseline instead of "
             "diffing against it",
    )

    p = sub.add_parser(
        "trace-cache",
        help="inspect/verify/garbage-collect spilled kernel traces",
    )
    p.add_argument(
        "action", choices=["list", "verify", "gc"],
        help="list: sizes, event counts, codec versions and compiled-pass "
             "counts from the container headers (.rtz traces plus their "
             ".rpp/.rvp compiled passes); verify: full decode + digest "
             "check per file; gc: delete stale-format spills and compiled "
             "passes orphaned by a pruned or re-captured trace, and "
             "quarantine corrupt files (PR-5 semantics: never served "
             "twice)",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON document instead of a table",
    )

    p = sub.add_parser(
        "check-code",
        help="statically check the repro sources against the "
             "determinism/atomicity/fork-safety contracts "
             "(docs/ANALYSIS.md, 'Code invariants')",
    )
    p.add_argument(
        "--root", default=None, metavar="DIR",
        help="package directory to analyze (default: the installed "
             "repro package itself)",
    )
    p.add_argument(
        "--package", default="repro", metavar="NAME",
        help="dotted package name the directory corresponds to",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the findings as one JSON document",
    )
    p.add_argument(
        "--rules", default=None, metavar="PREFIX[,PREFIX...]",
        help="only report findings whose rule id starts with one of "
             "these comma-separated prefixes (e.g. 'det,mp/shm-leak')",
    )
    p.add_argument(
        "--ignore", default=None, metavar="PREFIX[,PREFIX...]",
        help="drop findings whose rule id starts with one of these "
             "comma-separated prefixes",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the code-invariant rule table and exit",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="diff the findings document against a committed baseline "
             "JSON; a non-empty diff fails the run",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="write the findings document to --baseline instead of "
             "diffing against it",
    )

    p = sub.add_parser(
        "knobs",
        help="list every declared REPRO_* environment knob "
             "(type, default, current value)",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the knob table as JSON instead of text",
    )

    p = sub.add_parser(
        "submit",
        help="submit a sweep as a durable job (crash-safe, addressable, "
             "deduplicated by grid content; see docs/SERVICE.md)",
    )
    _add_common(p)
    p.add_argument("--axis", choices=["vlen", "cache", "lanes"], default="vlen")
    p.add_argument(
        "--values", type=int, nargs="+", default=None,
        help="axis values (bits / MB / lanes)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel workers for design points (default: $REPRO_JOBS "
             "or serial; 0 = all cores)",
    )
    p.add_argument(
        "--no-wait", action="store_false", dest="wait",
        help="register (or attach to) the job and return immediately "
             "instead of driving it to a terminal state",
    )
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="per-point retry budget on failure (default: $REPRO_RETRIES)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point timeout in parallel mode",
    )
    p.add_argument(
        "--max-failures", type=int, default=None, dest="max_failures",
        metavar="N", help="tolerate up to N permanently failed points",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the job outcome (and results, if terminal) as JSON",
    )

    p = sub.add_parser(
        "status", help="show one durable job's state, lease and progress"
    )
    p.add_argument(
        "job", nargs="?", default=None,
        help="job id (or unique prefix); omit to summarize every job",
    )
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser(
        "results",
        help="print a finished (or partially journaled) job's results "
             "without simulating anything",
    )
    p.add_argument("job", help="job id (or unique prefix)")
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the results as JSON (exact float round-trip, same "
             "point shape as 'repro sweep --json')",
    )

    p = sub.add_parser(
        "cancel",
        help="cancel a durable job: queued jobs stop now, running owners "
             "observe the durable marker at their next heartbeat",
    )
    p.add_argument("job", help="job id (or unique prefix)")
    p.add_argument("--json", action="store_true", dest="as_json")

    p = sub.add_parser(
        "jobs", help="job-store maintenance: list jobs, garbage-collect"
    )
    p.add_argument(
        "action", choices=["list", "gc"],
        help="list: one row per job with lease and seal state; gc: prune "
             "journals superseded by verified sealed records, expired "
             "leases, stale cancel markers and orphaned quarantine "
             "sidecars (job records and sealed results are kept)",
    )
    p.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="report what gc would remove without deleting anything",
    )
    p.add_argument("--json", action="store_true", dest="as_json")
    return parser


def cmd_simulate(args) -> int:
    """``repro simulate``: trace-simulate one network on one machine."""
    net = _NETS[args.net]()
    machine = _machine(args)
    stats = net.simulate(
        machine, _policy(args), n_layers=args.layers, use_trace=args.trace
    )
    print(machine.describe())
    print(format_table([summarize_stats(stats, machine.core.freq_ghz)]))
    return 0


def _sweep_spec(args):
    """Resolve the CLI axis into ``(axis_name, values, factory, runner)``.

    ``axis_name`` matches what the ``sweep_*`` helper passes to
    :func:`repro.core.codesign.sweep` — ``--dry-run`` relies on that to
    compute the same journal key as a real run.
    """
    if args.axis == "vlen":
        values = args.values or [512, 1024, 2048, 4096, 8192, 16384]
        if args.machine == "sve":
            values = [v for v in values if v <= 2048]
        factory = (
            (lambda v: sve_gem5(vlen_bits=v, l2_mb=args.l2_mb))
            if args.machine == "sve"
            else (lambda v: rvv_gem5(vlen_bits=v, lanes=args.lanes, l2_mb=args.l2_mb))
        )
        return "vlen_bits", values, factory, sweep_vector_lengths
    if args.axis == "cache":
        values = args.values or [1, 8, 64, 256]
        factory = (
            (lambda mb: sve_gem5(vlen_bits=min(args.vlen, 2048), l2_mb=mb))
            if args.machine == "sve"
            else (lambda mb: rvv_gem5(vlen_bits=args.vlen, lanes=args.lanes, l2_mb=mb))
        )
        return "l2_mb", values, factory, sweep_cache_sizes
    values = args.values or [2, 4, 8]
    factory = lambda l: rvv_gem5(  # noqa: E731
        vlen_bits=args.vlen, lanes=l, l2_mb=args.l2_mb
    )
    return "lanes", values, factory, sweep_lanes


def _sweep_retry(args):
    """CLI retry policy: env defaults, overridden by --retries/--timeout."""
    from .core.resilience import RetryPolicy

    retry = RetryPolicy.from_env()
    overrides = {}
    if args.retries is not None:
        overrides["max_retries"] = max(0, args.retries)
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout if args.timeout > 0 else None
    return dataclasses.replace(retry, **overrides) if overrides else retry


def _sweep_dry_run(args, net, policy, axis_name, values, factory) -> int:
    """``repro sweep --dry-run``: report planned work without simulating.

    Classifies every design point as sealed, journal-complete,
    simcache-hit or pending, groups pending points by trace key (the
    kernels run once per multi-point group), and lists quarantined
    cache entries plus the grid's job-store state — the job record,
    its lease (a stale lease means the job is adoptable), and whether
    a sealed results record already answers the whole grid — all from
    on-disk state; nothing is written.
    """
    from .core import simcache, tracecache
    from .core.resilience import (
        Journal,
        list_quarantined,
        load_sealed,
        sweep_key,
    )
    from .service import jobs as jobstore

    machines = [factory(v) for v in values]
    n = len(machines)
    skey = sweep_key(net, axis_name, values, machines, policy, args.layers)
    sealed = load_sealed(skey, n)
    if sealed is not None:
        summary = {
            "net": net.name, "axis": axis_name, "points": n,
            "sealed": True, "pending": 0, "estimated_kernel_runs": 0,
            "job": jobstore.job_id_for(skey),
        }
        if args.as_json:
            rows = [{axis_name: v, "state": "sealed"} for v in values]
            print(json.dumps({"summary": summary, "points": rows},
                             sort_keys=True))
        else:
            print(f"dry run: {net.name} {axis_name} sweep — all {n} "
                  "point(s) sealed; a resume run answers with zero "
                  "simulations (see 'repro results "
                  f"{summary['job']}')")
        return 0
    journal = Journal.status(skey, n)
    cache_on = simcache.cache_enabled(args.simcache)
    trace_on = tracecache.trace_enabled(args.trace, default=True)
    rows, pending, groups = [], [], {}
    for i, (value, machine) in enumerate(zip(values, machines)):
        if i in journal.completed:
            state = "journal"
        elif cache_on and simcache.load(
            simcache.cache_key(net, machine, policy, args.layers, True)
        ) is not None:
            state = "cached"
        else:
            state = "pending"
            pending.append(i)
            if trace_on:
                key = tracecache.trace_key(net, machine, policy, args.layers, True)
                groups.setdefault(key, []).append(i)
        rows.append({axis_name: value, "state": state})
    shared = [idxs for idxs in groups.values() if len(idxs) > 1]
    kernel_runs = len(shared) + sum(
        1 for idxs in groups.values() if len(idxs) == 1
    ) if trace_on else len(pending)
    quarantined = list_quarantined()
    job_id = jobstore.job_id_for(skey)
    record = jobstore.load(job_id)
    lease, _doc = jobstore.lease_state(job_id)
    summary = {
        "net": net.name,
        "axis": axis_name,
        "points": n,
        "journal": len(journal.completed),
        "journal_failed": len(journal.failed),
        "journal_done": journal.done,
        "cached": sum(1 for r in rows if r["state"] == "cached"),
        "pending": len(pending),
        "trace_groups": len(shared),
        "estimated_kernel_runs": kernel_runs,
        "quarantined": len(quarantined),
        "sealed": False,
        "job": job_id if record is not None else "",
        "job_state": record.state if record is not None else "",
        "lease": lease,
    }
    if args.as_json:
        print(json.dumps({"summary": summary, "points": rows}, sort_keys=True))
        return 0
    print(format_table(rows, title=f"dry run: {net.name} {axis_name} sweep"))
    print()
    for key, label in (
        ("journal", "journal-complete"), ("cached", "simcache hits"),
        ("pending", "pending"),
    ):
        print(f"  {label}: {summary[key]}/{n}")
    if summary["journal_failed"]:
        print(f"  journal failures (will retry): {summary['journal_failed']}")
    print(
        f"  estimated kernel runs: {kernel_runs} "
        f"({len(shared)} shared trace group(s))"
    )
    if quarantined:
        print(f"  quarantined cache entries: {len(quarantined)} "
              f"(see 'repro analyze --rules cache')")
    if record is not None:
        line = f"  job {job_id}: {record.state}"
        if lease == "live":
            line += " (live lease: another owner is running it)"
        elif lease == "stale":
            line += " (stale lease: orphaned, adoptable by 'repro submit')"
        print(line)
    return 0


def cmd_sweep(args) -> int:
    """``repro sweep``: one-axis design-space sweep (vlen/cache/lanes)."""
    net = _NETS[args.net]()
    policy = _policy(args)
    axis_name, values, factory, runner = _sweep_spec(args)
    if args.dry_run:
        return _sweep_dry_run(args, net, policy, axis_name, values, factory)
    res = runner(
        net, values, factory, policy, args.layers, args.jobs,
        args.simcache, args.trace, resume=args.resume,
        retry=_sweep_retry(args), max_failures=args.max_failures,
        prune=args.prune,
    )
    if args.as_json:
        from .core.resilience import stats_payload

        doc = {
            "axis_name": res.axis_name,
            "axis": res.axis,
            "points": [
                {
                    "source": res.source_of(i),
                    **(
                        {"failure": {"error": s.error, "exc_type": s.exc_type,
                                     "attempts": s.attempts}}
                        if res.source_of(i) == "failed"
                        else {"stats": stats_payload(s)}
                    ),
                }
                for i, s in enumerate(res.stats)
            ],
        }
        print(json.dumps(doc, sort_keys=True))
    else:
        print(format_table(res.as_rows()))
        print()
        print(format_series(
            "speedup", res.axis, res.speedups(), res.axis_name, "speedup"
        ))
        for failure in res.failures():
            print(
                f"point {failure.index} failed after {failure.attempts} "
                f"attempt(s): {failure.exc_type}: {failure.error}",
                file=sys.stderr,
            )
    return 0 if res.ok else 1


def cmd_roofline(args) -> int:
    """``repro roofline``: regenerate Table IV."""
    rows = roofline_table(gemm=args.gemm)
    print(
        format_table(
            [
                {
                    "layer": r.layer, "M": r.M, "N": r.N, "K": r.K,
                    "AI": r.ai, "AI paper": r.ai_paper,
                    "%peak": r.pct_peak, "%peak paper": r.pct_peak_paper,
                }
                for r in rows
            ]
        )
    )
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: Section II-B per-kernel breakdown."""
    net = _NETS[args.net]()
    prof = profile_network(net, _machine(args), _policy(args), n_layers=args.layers)
    print(prof.format_table())
    return 0


def cmd_select(args) -> int:
    """``repro select``: per-layer algorithm choice (rule or measured)."""
    net = _NETS[args.net]()
    machine = _machine(args)
    rows = []
    for spec in discrete_conv_specs(net):
        if args.tuned:
            from .core import tuned_choice

            choice = tuned_choice(spec, machine)
        elif args.measured:
            choice = measured_choice(spec, machine)
        else:
            choice = paper_rule(spec)
        rows.append(
            {
                "layer": f"k{spec.ksize}s{spec.stride} "
                f"{spec.in_channels}->{spec.out_channels}@{spec.in_h}",
                "algorithm": choice.algorithm,
                "reason": choice.reason,
            }
        )
    print(format_table(rows))
    return 0


def _split_prefixes(spec):
    if not spec:
        return None
    return [p.strip() for p in spec.split(",") if p.strip()]


def cmd_analyze(args) -> int:
    """``repro analyze``: static trace verification + estimator report.

    Exit code 0 means the lint/verifier/dataflow/oracle passes found
    nothing (and, with ``--baseline``, that the canonical report
    matches the committed reference); any finding or baseline drift
    returns 1, so CI can gate on it.
    """
    from .analysis import canonical_report, diff_documents, rule_rows
    from .analysis.baseline import load_baseline, write_baseline

    if args.list_rules:
        print(format_table(rule_rows(), title="analysis rules"))
        return 0

    from .analysis import filter_findings
    from .analysis.cachestate import cache_state_findings

    net = _NETS[args.net]()
    machine = _machine(args)
    report = net.analyze(
        machine, _policy(args), n_layers=args.layers, oracle=args.oracle,
        max_examples=args.max_examples,
        rules=_split_prefixes(args.rules),
        ignore=_split_prefixes(args.ignore),
    )
    report.findings.extend(
        filter_findings(
            cache_state_findings(),
            rules=_split_prefixes(args.rules),
            ignore=_split_prefixes(args.ignore),
        )
    )
    if args.as_json:
        print(report.to_json() if args.baseline is None
              else json.dumps(canonical_report(report), sort_keys=True))
    else:
        print(machine.describe())
        print()
        print(report.to_text())

    status = 0 if report.ok else 1
    if args.baseline is not None:
        doc = canonical_report(report)
        if args.update_baseline:
            write_baseline(args.baseline, doc)
            print(f"baseline written: {args.baseline}", file=sys.stderr)
        else:
            drift = diff_documents(load_baseline(args.baseline), doc)
            if drift:
                print(
                    f"report drifted from baseline {args.baseline} "
                    f"({len(drift)} differences):",
                    file=sys.stderr,
                )
                for line in drift[:200]:
                    print(f"  {line}", file=sys.stderr)
                status = status or 1
            else:
                print(f"baseline match: {args.baseline}", file=sys.stderr)
    return status


def cmd_check_code(args) -> int:
    """``repro check-code``: source-level invariant gate.

    Exit code 0 means every checked module honors the determinism,
    atomic-persistence, fork-safety, and knob-hygiene contracts (and,
    with ``--baseline``, that the findings document matches the
    committed reference).  Any finding — error or warning — returns 1:
    the gate is zero-findings, with per-line ``# reprolint:
    ignore[rule-id]`` comments as the only sanctioned escape hatch.
    """
    from pathlib import Path

    from .analysis import diff_documents, filter_findings, rule_rows
    from .analysis.baseline import load_baseline, write_baseline
    from .analysis.codecheck import CheckConfig, check_package, default_config

    if args.list_rules:
        rows = [r for r in rule_rows() if r["pass"] == "codecheck"]
        print(format_table(rows, title="code-invariant rules"))
        return 0

    if args.root is None:
        config = default_config()
    else:
        from .core.knobs import KNOBS

        config = CheckConfig(
            package_root=Path(args.root).resolve(),
            package=args.package,
            known_knobs=frozenset(KNOBS),
        )
    findings = filter_findings(
        check_package(config),
        rules=_split_prefixes(args.rules),
        ignore=_split_prefixes(args.ignore),
    )

    doc = {
        "package": config.package,
        "n_findings": len(findings),
        "findings": [f.as_dict() for f in findings],
        "ok": not findings,
    }
    if args.as_json:
        print(json.dumps(doc, sort_keys=True))
    elif findings:
        print(format_table(
            [f.as_row() for f in findings],
            title=f"code invariants: {len(findings)} finding(s)",
        ))
    else:
        print(f"code invariants: clean ({config.package})")

    status = 0 if not findings else 1
    if args.baseline is not None:
        if args.update_baseline:
            write_baseline(args.baseline, doc)
            print(f"baseline written: {args.baseline}", file=sys.stderr)
        else:
            drift = diff_documents(load_baseline(args.baseline), doc)
            if drift:
                print(
                    f"findings drifted from baseline {args.baseline} "
                    f"({len(drift)} differences):",
                    file=sys.stderr,
                )
                for line in drift[:200]:
                    print(f"  {line}", file=sys.stderr)
                status = status or 1
            else:
                print(f"baseline match: {args.baseline}", file=sys.stderr)
    return status


def cmd_knobs(args) -> int:
    """``repro knobs``: the declared environment-knob registry.

    Every ``REPRO_*`` variable the toolkit reads is declared in
    :mod:`repro.core.knobs`; ``check-code`` (``api/env-knob``,
    ``api/knob-undeclared``) keeps it that way.
    """
    from .core.knobs import knob_rows

    rows = knob_rows()
    if args.as_json:
        print(json.dumps(rows, sort_keys=True))
    else:
        print(format_table(rows, title="environment knobs"))
    return 0


def cmd_predict(args) -> int:
    """``repro predict``: static cost model over a captured trace.

    No simulation unless ``--oracle`` is given, in which case the trace
    is also replayed and the prediction drift-gated against the
    simulated cycles (``predict/cycles-drift`` / ``predict/below-floor``
    findings fail the run with exit code 1).
    """
    from .analysis import (
        DRIFT_BAND,
        check_predict_against_sim,
        predict_cycles,
        summarize_trace,
    )
    from .core import tracecache
    from .core.reporting import format_kv

    net = _NETS[args.net]()
    machine = _machine(args)
    trace, was_cached = tracecache.get_or_capture(
        net, machine, _policy(args), args.layers
    )
    pred = predict_cycles(summarize_trace(trace, machine), machine)

    band = args.band if args.band is not None else DRIFT_BAND
    findings, oracle_info = [], None
    if args.oracle:
        from .machine.replay import replay

        stats = replay(trace, machine)
        findings = check_predict_against_sim(
            pred, stats.cycles, where=net.name, band=band
        )
        oracle_info = {
            "simulated_mcycles": stats.cycles / 1e6,
            "predicted_mcycles": pred.cycles / 1e6,
            "predict_ratio": pred.cycles / stats.cycles if stats.cycles else 0.0,
            "band": band,
        }

    if args.as_json:
        print(json.dumps(
            {
                "net": net.name,
                "machine": machine.name,
                "trace_cached": was_cached,
                "predict": pred.as_dict(),
                "oracle": oracle_info,
                "findings": [f.as_dict() for f in findings],
                "ok": not findings,
            },
            sort_keys=True,
        ))
    else:
        print(machine.describe())
        print()
        head = {
            k: f"{v / 1e6:.3f}M" if k.endswith("cycles") or k == "flops"
            else f"{v:.4f}"
            for k, v in pred.as_dict().items()
            if k != "buffers" and isinstance(v, (int, float))
        }
        print(format_kv(f"static cost model: {net.name}", head))
        if pred.buffer_rows:
            print()
            print(format_table(
                pred.buffer_rows, title="predicted per-buffer traffic"
            ))
        if oracle_info is not None:
            print()
            print(format_kv("oracle (replayed simulation)", oracle_info))
        for f in findings:
            print(f"{f.rule}: {f.message}", file=sys.stderr)
    return 1 if findings else 0


def cmd_autotune(args) -> int:
    """``repro autotune``: block-size search for one GEMM shape."""
    from .core import autotune_blocks

    machine = _machine(args)
    best, ranking = autotune_blocks(
        machine, args.gemm_m, args.gemm_n, args.gemm_k, prune=args.prune
    )
    rows = [
        {
            "blocking": f"{r.blocks.m}x{r.blocks.n}x{r.blocks.k}",
            "mcycles": round(r.cycles / 1e6, 4),
            "predicted_mcycles": (
                round(r.predicted_cycles / 1e6, 4)
                if r.predicted_cycles is not None else ""
            ),
            "source": r.source,
        }
        for r in ranking
    ]
    if args.as_json:
        print(json.dumps(
            {
                "machine": machine.name,
                "gemm": {"M": args.gemm_m, "N": args.gemm_n, "K": args.gemm_k},
                "best": {"m": best.m, "n": best.n, "k": best.k},
                "prune": args.prune,
                "simulated": sum(1 for r in ranking if r.source == "simulated"),
                "ranking": rows,
            },
            sort_keys=True,
        ))
    else:
        n_sim = sum(1 for r in ranking if r.source == "simulated")
        print(format_table(
            rows,
            title=f"autotune {args.gemm_m}x{args.gemm_n}x{args.gemm_k} on "
                  f"{machine.name}: best {best.m}x{best.n}x{best.k} "
                  f"({n_sim}/{len(ranking)} simulated)",
        ))
    return 0


def cmd_trace_cache(args) -> int:
    """``repro trace-cache``: report on (and clean up) cache artifacts.

    Covers all three cache families: spilled traces (``.rtz``), shared
    passes (``.rpp``), and compiled point-pass tiers (``.rvp``).
    ``list`` is header-only and cheap; ``verify`` fully decodes every
    container, recomputing the sha256 payload digest; ``gc`` deletes
    stale-format files and compiled passes orphaned by a pruned or
    re-captured trace (all regenerable by any sweep) and *quarantines*
    corrupt ones — the same never-served-twice semantics the loader
    applies (see repro.core.resilience).  Exit code 1 when any file is
    corrupt.
    """
    from pathlib import Path

    from .core import tracecache
    from .core.resilience import quarantine
    from .machine.trace import TRACE_FORMAT_VERSION

    #: Decoded columnar bytes per event (op+w+kid+i0..i3+f0) — the
    #: denominator-free way to report a compression ratio from headers.
    row_bytes = 53
    directory = Path(tracecache.spill_dir())
    try:
        children = sorted(directory.iterdir())
    except OSError:
        children = []
    entries = []
    trace_digest: dict = {}  # live trace key -> content sha256
    n_passes: dict = {}  # trace key -> compiled artifacts bound to it
    for child in children:
        if not child.is_file():
            continue
        name, path = child.name, str(child)
        info = tracecache.split_cache_filename(name)
        entries.append((name, path, info))
        if info is None:
            continue
        if info["kind"] == "trace":
            try:
                hdr = tracecache.read_header(path)
            except Exception:
                hdr = {}
            trace_digest[info["key"]] = hdr.get("sha256")
        else:
            n_passes[info["key"]] = n_passes.get(info["key"], 0) + 1
    rows, n_corrupt, freed = [], 0, 0
    for name, path, info in entries:
        size = Path(path).stat().st_size
        kind = info["kind"] if info is not None else "foreign"
        row = {"file": name, "kind": kind, "kb": round(size / 1024.0, 1)}
        header, status = None, "ok"
        if info is None:
            status = "stale"  # pre-v4 spill (.npz) or foreign leftover
        elif kind == "trace":
            try:
                header = tracecache.read_header(path)
                row["v"] = header.get("format")
                if header.get("format") != TRACE_FORMAT_VERSION:
                    status = "stale"
            except Exception:
                status = "corrupt"
            if header is not None:
                n = int(header.get("n_events", 0))
                row["events"] = n
                row["ratio"] = round(n * row_bytes / size, 1) if size else 0.0
                row["digest"] = "yes" if header.get("sha256") else "missing"
                row["passes"] = n_passes.get(info["key"], 0)
        else:
            try:
                header = tracecache.read_pass_header(path)
                row["v"] = header.get("format")
                if header.get("format") != tracecache.PASS_FORMAT_VERSION:
                    status = "stale"
            except Exception:
                status = "corrupt"
            if status == "ok":
                live = trace_digest.get(info["key"])
                if live is None:
                    # The trace this pass derives from is gone (pruned,
                    # quarantined, or never spilled here): regenerable
                    # dead weight.
                    status = "orphan"
                elif header.get("trace_sha256") != live:
                    status = "stale"  # derivative of a re-captured trace
        if args.action in ("verify", "gc") and status == "ok":
            # Full decode recomputes the payload digest — header-only
            # parsing cannot see a bit-flip inside a column block.
            try:
                if kind == "trace":
                    tracecache.load_compressed(path)
                else:
                    blob = Path(path).read_bytes()
                    if kind == "pass":
                        tracecache.decode_pass(blob)
                    else:
                        tracecache.decode_vecprog(blob)
                row["digest"] = "verified"
            except Exception:
                status = "corrupt"
        if args.action == "gc" and status != "ok":
            if status == "corrupt":
                quarantine(path, "trace-cache gc: unreadable container")
                status = "quarantined"
            else:
                try:
                    Path(path).unlink()
                except OSError:
                    pass
                status = "removed"
            freed += size
        if status == "corrupt":
            n_corrupt += 1
        row["status"] = status
        rows.append(row)
    summary = {
        "dir": str(directory),
        "files": len(rows),
        "total_kb": round(sum(r["kb"] for r in rows), 1),
        "corrupt": n_corrupt,
    }
    if args.action == "gc":
        summary["freed_kb"] = round(freed / 1024.0, 1)
    if args.as_json:
        print(json.dumps({"summary": summary, "files": rows}, sort_keys=True))
    else:
        if rows:
            print(format_table(rows, title=f"trace cache: {directory}"))
        else:
            print(f"trace cache empty: {directory}")
        parts = [f"{summary['files']} file(s)", f"{summary['total_kb']} KB"]
        if args.action == "gc":
            parts.append(f"freed {summary['freed_kb']} KB")
        if n_corrupt:
            parts.append(f"{n_corrupt} corrupt")
        print("  " + ", ".join(parts))
    return 1 if n_corrupt else 0


def _points_doc(stats_list, sources) -> List[dict]:
    """The ``points`` JSON array shared by ``sweep --json``, ``submit
    --json`` and ``results --json`` — one shape, so chaos tests can
    diff results bitwise across commands."""
    from .core.resilience import PointFailure, stats_payload

    out = []
    for s, src in zip(stats_list, sources):
        if isinstance(s, PointFailure) or src == "failed":
            out.append({
                "source": "failed",
                "failure": {"error": s.error, "exc_type": s.exc_type,
                            "attempts": s.attempts},
            })
        else:
            out.append({"source": src, "stats": stats_payload(s)})
    return out


def _resolve_job(token: str) -> Optional[str]:
    from .service import jobs as jobstore

    job_id = jobstore.resolve(token)
    if job_id is None:
        print(f"no unique job matches {token!r} (see 'repro jobs list')",
              file=sys.stderr)
    return job_id


def _job_row(record) -> dict:
    """One display row per job: record state + lease + seal."""
    from .core.resilience import load_sealed
    from .service import jobs as jobstore

    row = record.as_row()
    row["lease"] = jobstore.lease_state(record.job_id)[0]
    row["sealed"] = load_sealed(record.sweep_key, record.n_points) is not None
    row["cancel"] = jobstore.cancel_requested(record.job_id)
    return row


def cmd_submit(args) -> int:
    """``repro submit``: run a sweep as a durable, deduplicated job."""
    from .service import scheduler

    spec = scheduler.spec_from_args(args)
    outcome = scheduler.submit_and_run(
        spec, wait=args.wait, jobs=args.jobs, retry=_sweep_retry(args),
        max_failures=args.max_failures,
    )
    doc = {
        "job": outcome.job_id,
        "state": outcome.state,
        "attached": outcome.attached,
        "adopted": outcome.adopted,
        "sealed": outcome.sealed,
    }
    if outcome.error:
        doc["error"] = outcome.error
    if outcome.result is not None:
        doc["axis_name"] = outcome.result.axis_name
        doc["axis"] = outcome.result.axis
        doc["points"] = _points_doc(outcome.result.stats, outcome.result.sources)
    if args.as_json:
        print(json.dumps(doc, sort_keys=True))
    else:
        flags = [k for k in ("attached", "adopted", "sealed") if doc[k]]
        print(f"job {outcome.job_id}: {outcome.state}"
              + (f" ({', '.join(flags)})" if flags else ""))
        if outcome.error:
            print(f"  {outcome.error}", file=sys.stderr)
        if outcome.result is not None:
            print(format_table(outcome.result.as_rows()))
    return 0 if outcome.state in ("done", "queued", "running") else 1


def cmd_status(args) -> int:
    """``repro status``: job state, lease, progress — no simulation."""
    from .core.resilience import Journal
    from .service import jobs as jobstore

    if args.job is None:
        rows = [_job_row(r) for r in jobstore.list_jobs()]
        if args.as_json:
            print(json.dumps({"jobs": rows}, sort_keys=True))
        elif rows:
            print(format_table(rows, title="durable jobs"))
        else:
            print(f"job store empty: {jobstore.jobs_dir()}")
        return 0
    job_id = _resolve_job(args.job)
    if job_id is None:
        return 2
    record = jobstore.load(job_id)
    journal = Journal.status(record.sweep_key, record.n_points)
    doc = _job_row(record)
    doc["journal"] = len(journal.completed)
    doc["journal_failed"] = len(journal.failed)
    doc["owner"] = record.owner
    if record.error:
        doc["error"] = record.error
    if args.as_json:
        print(json.dumps(doc, sort_keys=True))
    else:
        print(format_table([doc], title=f"job {job_id}"))
    return 0


def cmd_results(args) -> int:
    """``repro results``: a job's answers from durable state only.

    Served from the sealed record when the grid is compacted, else
    from the live journal (possibly partial).  Never simulates; exit
    code 1 when any point is still missing or failed.
    """
    from .core.resilience import (
        Journal,
        load_sealed,
        stats_from_payload,
    )
    from .service import jobs as jobstore

    job_id = _resolve_job(args.job)
    if job_id is None:
        return 2
    record = jobstore.load(job_id)
    n = record.n_points
    sealed = load_sealed(record.sweep_key, n)
    if sealed is not None:
        stats_list = [stats_from_payload(p) for p in sealed["points"]]
        sources = ["sealed"] * n
        missing: List[int] = []
    else:
        journal = Journal.status(record.sweep_key, n)
        stats_list, sources, missing = [], [], []
        for i in range(n):
            if i in journal.completed:
                s, src = journal.completed[i]
                stats_list.append(s)
                sources.append(src if src == "failed" else "journal")
            else:
                missing.append(i)
    doc = {
        "job": job_id,
        "state": record.state,
        "sealed": sealed is not None,
        "points_total": n,
        "points_available": n - len(missing),
        "points": _points_doc(stats_list, sources),
    }
    complete = not missing and "failed" not in sources
    if args.as_json:
        print(json.dumps(doc, sort_keys=True))
    else:
        axis = record.spec.get("axis", "value")
        values = record.spec.get("values") or list(range(n))
        rows = [
            {axis: values[i] if i < len(values) else i, "cycles": s.cycles,
             "source": src}
            for i, (s, src) in enumerate(zip(stats_list, sources))
            if src != "failed"
        ]
        if rows:
            print(format_table(rows, title=f"job {job_id} ({record.state})"))
        print(f"  {doc['points_available']}/{n} point(s) available"
              + (" [sealed]" if doc["sealed"] else ""))
    return 0 if complete else 1


def cmd_cancel(args) -> int:
    """``repro cancel``: durable cancellation intent for one job."""
    from .service import jobs as jobstore

    job_id = _resolve_job(args.job)
    if job_id is None:
        return 2
    state = jobstore.request_cancel(job_id)
    if args.as_json:
        print(json.dumps({"job": job_id, "state": state}, sort_keys=True))
    else:
        print(f"job {job_id}: {state}")
    return 0


def cmd_jobs(args) -> int:
    """``repro jobs``: store-wide listing and garbage collection."""
    from .service import jobs as jobstore

    if args.action == "list":
        rows = [_job_row(r) for r in jobstore.list_jobs()]
        if args.as_json:
            print(json.dumps({"jobs": rows}, sort_keys=True))
        elif rows:
            print(format_table(rows, title=f"job store: {jobstore.jobs_dir()}"))
        else:
            print(f"job store empty: {jobstore.jobs_dir()}")
        return 0
    actions = jobstore.gc_state(dry_run=args.dry_run)
    freed = sum(a["bytes"] for a in actions)
    summary = {
        "actions": len(actions),
        "freed_kb": round(freed / 1024.0, 1),
        "dry_run": args.dry_run,
    }
    if args.as_json:
        print(json.dumps({"summary": summary, "actions": actions},
                         sort_keys=True))
    else:
        if actions:
            print(format_table(
                [{k: a[k] for k in ("kind", "action", "reason", "path")}
                 for a in actions],
                title="job-store gc",
            ))
        verb = "would free" if args.dry_run else "freed"
        print(f"  {len(actions)} action(s), {verb} {summary['freed_kb']} KB")
    return 0


_COMMANDS = {
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "roofline": cmd_roofline,
    "profile": cmd_profile,
    "select": cmd_select,
    "analyze": cmd_analyze,
    "predict": cmd_predict,
    "autotune": cmd_autotune,
    "trace-cache": cmd_trace_cache,
    "check-code": cmd_check_code,
    "knobs": cmd_knobs,
    "submit": cmd_submit,
    "status": cmd_status,
    "results": cmd_results,
    "cancel": cmd_cancel,
    "jobs": cmd_jobs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
