"""Layer-shape constants from the paper's evaluation.

Table IV lists the 14 *discrete* convolutional-layer GEMM shapes of
YOLOv3 at the evaluation resolution (each shape may repeat many times in
the network); the "first 20 layers" subset (15 convolutional) drives the
hardware-tuning sweeps of Figs. 6-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..kernels import ConvSpec
from ..nets.network import Network

__all__ = ["Table4Row", "TABLE4_LAYERS", "first_n_conv_specs", "discrete_conv_specs"]


@dataclass(frozen=True)
class Table4Row:
    """One row of Table IV: layer id, GEMM dims, paper-reported AI and
    sustained fraction of peak on A64FX."""

    layer: str
    M: int
    N: int
    K: int
    ai_paper: float
    pct_peak_paper: float


#: Table IV of the paper, verbatim.
TABLE4_LAYERS: Tuple[Table4Row, ...] = (
    Table4Row("L1", 32, 369664, 27, 7.32, 46),
    Table4Row("L2", 64, 92416, 288, 26, 72),
    Table4Row("L3", 32, 92416, 64, 11, 50),
    Table4Row("L5", 128, 23104, 576, 52, 77),
    Table4Row("L6", 64, 23104, 128, 21, 70),
    Table4Row("L10", 256, 5776, 1152, 101, 81),
    Table4Row("L11", 128, 5776, 256, 42, 75),
    Table4Row("L38", 256, 1444, 512, 76, 82),
    Table4Row("L44", 1024, 361, 4608, 126, 83),
    Table4Row("L45", 512, 361, 1024, 88, 78),
    Table4Row("L59", 255, 361, 1024, 65, 75),
    Table4Row("L61", 256, 1444, 768, 85, 91),
    Table4Row("L62", 512, 1444, 2304, 162, 83),
    Table4Row("L75", 255, 5776, 256, 63, 75),
)


def first_n_conv_specs(net: Network, n_layers: int) -> List[ConvSpec]:
    """ConvSpecs of the convolutional layers among the first *n_layers*.

    For YOLOv3 and ``n_layers=20`` this returns 15 specs, matching the
    paper's "first 20 layers ... out of which 15 are the convolutional
    layers" (Section VI-B).
    """
    return [
        layer.spec(net.in_shape_of(idx))
        for idx, layer in net.conv_layers()
        if idx < n_layers
    ]


def discrete_conv_specs(net: Network) -> List[ConvSpec]:
    """Unique convolutional shapes of *net*, in first-appearance order
    (YOLOv3 at 608x608 yields the 14 discrete shapes of Table IV plus
    a handful of head variations)."""
    seen = set()
    out: List[ConvSpec] = []
    for idx, layer in net.conv_layers():
        spec = layer.spec(net.in_shape_of(idx))
        key = (spec.M, spec.N, spec.K)
        if key not in seen:
            seen.add(key)
            out.append(spec)
    return out
