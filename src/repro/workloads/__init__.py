"""Evaluation workloads: synthetic inputs and the paper's layer tables."""

from .images import letterbox, synthetic_image
from .layer_specs import (
    TABLE4_LAYERS,
    Table4Row,
    discrete_conv_specs,
    first_n_conv_specs,
)

__all__ = [
    "letterbox",
    "synthetic_image",
    "TABLE4_LAYERS",
    "Table4Row",
    "discrete_conv_specs",
    "first_n_conv_specs",
]
