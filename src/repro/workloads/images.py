"""Synthetic input images for the evaluation workloads.

The paper runs YOLOv3 on a 768x576-pixel photograph, which Darknet
letterboxes to the network resolution.  Inference *performance* is
input-value independent, so a deterministic synthetic image preserves
all measured behaviour; the generator below also letterboxes like
Darknet so the functional pipeline is exercised end-to-end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["synthetic_image", "letterbox"]


def synthetic_image(
    height: int = 576, width: int = 768, channels: int = 3, seed: int = 0
) -> np.ndarray:
    """A deterministic test image in [0, 1], shape ``(C, H, W)``.

    Smooth gradients plus structured noise — exercises padding and
    activation paths without denormals or extreme values.
    """
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0, 1, height), np.linspace(0, 1, width), indexing="ij"
    )
    base = np.stack(
        [
            0.5 + 0.4 * np.sin(6.0 * xx + 2.0 * c) * np.cos(4.0 * yy - c)
            for c in range(channels)
        ]
    )
    noise = 0.05 * rng.standard_normal((channels, height, width))
    return np.clip(base + noise, 0.0, 1.0).astype(np.float32)


def letterbox(image: np.ndarray, net_h: int, net_w: int) -> np.ndarray:
    """Darknet-style letterbox resize to ``(C, net_h, net_w)``.

    Preserves aspect ratio with nearest-neighbour resampling (sufficient
    for a synthetic input) and pads with the 0.5 grey Darknet uses.
    """
    c, h, w = image.shape
    scale = min(net_w / w, net_h / h)
    new_w, new_h = max(1, int(w * scale)), max(1, int(h * scale))
    ys = np.clip((np.arange(new_h) / scale).astype(int), 0, h - 1)
    xs = np.clip((np.arange(new_w) / scale).astype(int), 0, w - 1)
    resized = image[:, ys][:, :, xs]
    out = np.full((c, net_h, net_w), 0.5, dtype=np.float32)
    top = (net_h - new_h) // 2
    left = (net_w - new_w) // 2
    out[:, top : top + new_h, left : left + new_w] = resized
    return out
