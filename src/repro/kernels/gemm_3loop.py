"""Optimized 3-loop GEMM (paper Fig. 2).

The paper's first optimized GEMM: manual vectorization with intrinsics,
contiguous vector loads/stores, loop reorder (j outermost, strip-mined by
the granted vector length) and loop unrolling over rows of C (unroll
factor 16, tuned in Section VI-A to avoid register spilling).

``C += alpha * A @ B`` with A: MxK, B: KxN, C: MxN, all float32.
"""

from __future__ import annotations

import numpy as np

from ..isa import F32, RegisterFile, VectorISA
from ..isa.intrinsics import vfmacc, vle, vse
from ..machine.simulator import TraceSimulator

__all__ = ["DEFAULT_UNROLL", "gemm_3loop", "trace_gemm_3loop"]

#: Section VI-A: no gain beyond 16 registers; 32 spills (~15 % drop).
DEFAULT_UNROLL = 16


def gemm_3loop(
    isa: VectorISA,
    alpha: float,
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    unroll: int = DEFAULT_UNROLL,
    regfile: RegisterFile = None,
) -> np.ndarray:
    """Functional 3-loop GEMM, loop-for-loop after Fig. 2.

    Strip-mines the j (column) loop by the granted vector length, keeps
    ``unroll`` accumulator registers of C live across the k loop, and
    uses vector-scalar FMA.  Updates *C* in place and returns it.

    Pass a :class:`~repro.isa.RegisterFile` to record register pressure
    (an unroll of 32 overflows the 32 architectural registers).
    """
    M, K = A.shape
    K2, N = B.shape
    if K2 != K or C.shape != (M, N):
        raise ValueError(f"shape mismatch: A{A.shape} B{B.shape} C{C.shape}")
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    alpha = np.float32(alpha)
    Bf = B.reshape(-1)
    Cf = C.reshape(-1)
    rf = regfile
    mvl = isa.max_elems(F32)  # grant ceiling, asserted by every intrinsic

    j = 0
    while j < N:
        gvl = isa.grant_vl(N - j, F32)  # vsetvl (Fig. 2 line 4)
        i = 0
        while i < M:
            u = min(unroll, M - i)
            if rf is not None:
                for r in range(u):
                    rf.alloc(f"vc{r}")
                rf.alloc("vb")
                rf.alloc("vaalpha")
                rf.alloc("vtmp")
            # Load C rows into accumulator registers (Fig. 2 line 6).
            acc = [vle(Cf, (i + r) * N + j, gvl, mvl) for r in range(u)]
            for k in range(K):
                vb = vle(Bf, k * N + j, gvl, mvl)  # line 8
                for r in range(u):
                    a_alpha = alpha * A[i + r, k]  # line 9 (skipped if 1)
                    vfmacc(acc[r], a_alpha, vb, gvl, mvl)  # line 11
            for r in range(u):
                vse(acc[r], Cf, (i + r) * N + j, gvl, mvl)  # line 13
            if rf is not None:
                rf.free_all()
            i += u
        j += gvl
    return C


def trace_gemm_3loop(
    sim: TraceSimulator,
    M: int,
    N: int,
    K: int,
    a_base: int,
    b_base: int,
    c_base: int,
    unroll: int = DEFAULT_UNROLL,
    alpha_is_one: bool = True,
    jb_sample: int = 6,
    ig_sample: int = 4,
) -> None:
    """Replay the 3-loop GEMM's instruction stream on the simulator.

    Addressing is exact: the inner loop streams row segments
    ``B[k, j:j+gvl]`` whose starts are ``4*N`` bytes apart — the scattered
    row-stream pattern that (a) inflates L2 pressure as the vector length
    grows (Table III) and (b) defeats the A64FX stream prefetcher,
    motivating the 6-loop packing (Section VI-C).

    The j and i loops are sampled (periodic, disjoint panels); the k loop
    runs in full so cache capacity pressure is real.
    """
    vl = sim.machine.vlen_f32
    line_elems = sim.machine.l1.line_bytes // 4
    spilled = max(0, unroll + 3 - 32)  # accumulators + vb/vaalpha/tmp
    n_jblocks = -(-N // vl)
    n_igroups = -(-M // unroll)
    with sim.kernel("gemm"):
        # The weight matrix is re-streamed every j-block; re-reads hit
        # iff it fits in the L2 (capacity, not line, question).
        sim.hierarchy.note_resident_range(a_base, M * K * 4)
        for jb in sim.loop(n_jblocks, warmup=2, sample=jb_sample):
            j = jb * vl
            gvl = min(vl, N - j)
            sim.scalar(4)  # vsetvl + j-loop bookkeeping
            for ig in sim.loop(n_igroups, warmup=1, sample=ig_sample):
                i = ig * unroll
                u = min(unroll, M - i)
                sim.scalar(3)
                for r in range(u):  # load C accumulators
                    sim.vload(c_base + ((i + r) * N + j) * 4, gvl)
                for k in range(K):
                    sim.vload(b_base + (k * N + j) * 4, gvl)
                    if k % line_elems == 0:
                        # Scalar A operands stream at 4-byte stride: one
                        # new line per row every line_elems iterations.
                        for r in range(u):
                            sim.scalar_load(a_base + ((i + r) * K + k) * 4)
                    # u vector-scalar FMAs (broadcast folded, Fig. 2).
                    sim.varith(gvl, u)
                    sim.scalar(2 if alpha_is_one else 3)
                    if spilled:
                        sim.spill(spilled)
                for r in range(u):  # store C accumulators
                    sim.vstore(c_base + ((i + r) * N + j) * 4, gvl)
