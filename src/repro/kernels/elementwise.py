"""Elementwise kernels of the Darknet convolutional layer.

Section II-B: a convolutional layer in Darknet is built from GEMM,
im2col, ``fill_cpu``, ``copy_cpu``, ``normalize_cpu``, ``add_bias``,
``scale_bias`` and ``activate_array``.  The paper vectorizes *all* of
them (Section IV-A: "we begin by vectorizing all kernels of the
convolutional layer"); the compiler fails on normalization/activation,
which are vectorized manually (Section VI-C).

Each kernel has a functional NumPy path (exact Darknet semantics) and a
``trace_*`` path replaying its streaming memory behaviour.
"""

from __future__ import annotations

import numpy as np

from ..machine.simulator import TraceSimulator

__all__ = [
    "fill_cpu",
    "copy_cpu",
    "add_bias",
    "scale_bias",
    "normalize_cpu",
    "activate_array",
    "trace_stream_kernel",
]


def fill_cpu(x: np.ndarray, value: float) -> np.ndarray:
    """``fill_cpu``: set every element to *value* (in place)."""
    x[...] = value
    return x


def copy_cpu(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """``copy_cpu``: elementwise copy into *dst* (in place)."""
    if src.shape != dst.shape:
        raise ValueError(f"shape mismatch {src.shape} vs {dst.shape}")
    dst[...] = src
    return dst


def add_bias(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """``add_bias``: per-channel bias over a ``(C, ...)`` activation."""
    if bias.shape[0] != x.shape[0]:
        raise ValueError("bias length must equal the channel count")
    x += bias.reshape((-1,) + (1,) * (x.ndim - 1))
    return x


def scale_bias(x: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """``scale_bias``: per-channel scale (batch-norm gamma)."""
    if scales.shape[0] != x.shape[0]:
        raise ValueError("scales length must equal the channel count")
    x *= scales.reshape((-1,) + (1,) * (x.ndim - 1))
    return x


def normalize_cpu(
    x: np.ndarray, mean: np.ndarray, variance: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """``normalize_cpu``: per-channel batch-norm normalization.

    Darknet: ``x = (x - mean) / sqrt(variance + eps)`` with ``.000001f``.
    """
    shape = (-1,) + (1,) * (x.ndim - 1)
    x -= mean.reshape(shape)
    x /= np.sqrt(variance.reshape(shape) + np.float32(eps))
    return x


def activate_array(x: np.ndarray, activation: str = "leaky") -> np.ndarray:
    """``activate_array``: elementwise activation (in place).

    Supports the activations of the paper's networks: ``leaky`` (YOLOv3
    convs), ``relu`` (VGG16), ``linear`` and ``logistic`` (YOLO heads).
    """
    if activation == "linear":
        return x
    if activation == "leaky":
        np.multiply(x, np.float32(0.1), out=x, where=x < 0)
        return x
    if activation == "relu":
        np.maximum(x, 0, out=x)
        return x
    if activation == "logistic":
        np.negative(x, out=x)
        # Large negative inputs overflow exp to inf; 1/(1+inf) = 0 is the
        # correct saturated value, so the warning is suppressed.
        with np.errstate(over="ignore"):
            np.exp(x, out=x)
        x += np.float32(1)
        np.reciprocal(x, out=x)
        return x
    raise ValueError(f"unknown activation {activation!r}")


# ----------------------------------------------------------------------
# Timing traces
# ----------------------------------------------------------------------

def trace_stream_kernel(
    sim: TraceSimulator,
    label: str,
    n_elems: int,
    base_in: int,
    base_out: int = -1,
    reads: int = 1,
    writes: int = 1,
    arith_per_elem: float = 1.0,
) -> None:
    """Replay a streaming elementwise kernel.

    All the elementwise kernels above share one memory shape: read
    ``reads`` streams, write ``writes`` streams, a few vector arithmetic
    ops per element.  ``base_out < 0`` means in-place on ``base_in``.
    """
    if n_elems <= 0:
        return
    vl = sim.machine.vlen_f32
    out = base_in if base_out < 0 else base_out
    n_chunks = -(-n_elems // vl)
    with sim.kernel(label):
        for jc in sim.loop(n_chunks, warmup=1, sample=4):
            j = jc * vl
            gvl = min(vl, n_elems - j)
            sim.scalar(3)
            for _ in range(reads):
                sim.vload(base_in + j * 4, gvl)
            if arith_per_elem > 0:
                sim.varith(gvl, max(1, round(arith_per_elem)), flops_per_elem=1.0)
            for _ in range(writes):
                sim.vstore(out + j * 4, gvl)
    # The full buffers just streamed through the cache; whether later
    # kernels re-hit them is a pure capacity question (see
    # MemoryHierarchy.note_resident_range).
    if reads:
        sim.hierarchy.note_resident_range(base_in, n_elems * 4)
    if writes:
        sim.hierarchy.note_resident_range(out, n_elems * 4)
