"""FFT-based convolution.

Section II-B(c) of the paper surveys the convolution-algorithm
landscape: "Winograd works best with convolutional layers with 3x3 or
5x5 kernel sizes, FFT works best with layers with large kernel sizes,
while the Direct algorithm is better for 1x1 kernel sizes."  The paper
optimizes im2col+GEMM and Winograd; this module completes the landscape
with the FFT algorithm, so the algorithm-selection study can cover all
three (an extension bench compares them across kernel sizes).

Functional path: per-channel 2-D real FFTs, pointwise complex
multiply-accumulate across input channels, inverse FFT — mathematically
exact circular convolution on zero-padded planes, cropped to the valid
window.  Trace path: the FFT butterflies and the pointwise stage
replayed as vector work.
"""

from __future__ import annotations

import math

import numpy as np

from ..machine.simulator import TraceSimulator
from .convspec import ConvSpec

__all__ = ["fft_conv2d", "trace_fft_conv", "fft_plan_size"]


def fft_plan_size(spec: ConvSpec) -> int:
    """FFT plane size: input+pad rounded up to the next power of two.

    Linear convolution via circular convolution needs at least
    ``in + k - 1`` points per axis.
    """
    need = max(spec.in_h, spec.in_w) + 2 * spec.pad + spec.ksize - 1
    return 1 << (need - 1).bit_length()


def fft_conv2d(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """FFT convolution of ``x (C,H,W)`` with ``weights (F,C,k,k)``.

    Numerically equivalent to direct cross-correlation (within fp
    rounding of the transforms), any kernel size, any stride.
    """
    c, h, w = x.shape
    f = weights.shape[0]
    if (c, h, w) != (spec.in_channels, spec.in_h, spec.in_w) or f != spec.out_channels:
        raise ValueError("input/weights do not match spec")
    if weights.shape[2] != spec.ksize or weights.shape[3] != spec.ksize:
        raise ValueError("weights do not match spec kernel size")

    n = fft_plan_size(spec)
    p, k = spec.pad, spec.ksize

    xp = np.zeros((c, n, n), dtype=np.float64)
    xp[:, p : p + h, p : p + w] = x
    # Cross-correlation = convolution with the flipped kernel; flipping
    # here lets us use plain FFT products.
    wf = np.zeros((f, c, n, n), dtype=np.float64)
    wf[:, :, :k, :k] = weights[:, :, ::-1, ::-1]

    fx = np.fft.rfft2(xp)  # (C, n, n//2+1)
    fw = np.fft.rfft2(wf)  # (F, C, n, n//2+1)
    fy = np.einsum("fcij,cij->fij", fw, fx, optimize=True)
    y = np.fft.irfft2(fy, s=(n, n))  # (F, n, n)
    # Valid cross-correlation outputs start at offset k-1 after flip.
    out = y[:, k - 1 : k - 1 + spec.out_h * spec.stride : spec.stride,
            k - 1 : k - 1 + spec.out_w * spec.stride : spec.stride]
    return np.ascontiguousarray(out).astype(np.float32)


def trace_fft_conv(
    sim: TraceSimulator,
    spec: ConvSpec,
    include_weight_fft: bool = False,
) -> None:
    """Replay the FFT convolution on the timing simulator.

    Work model: a 2-D FFT of an ``n x n`` plane is ``2n`` length-``n``
    1-D FFTs of ``5 n log2 n`` flops each, vectorized across rows (the
    standard vector-machine formulation: each butterfly stage processes
    whole columns with unit-stride vector ops).  The pointwise stage is
    a complex multiply-accumulate over channels per frequency bin.
    Weight FFTs are offline for inference unless *include_weight_fft*.
    """
    n = fft_plan_size(spec)
    c, f = spec.in_channels, spec.out_channels
    vl = sim.machine.vlen_f32
    bins = n * (n // 2 + 1)  # rfft2 output bins per plane
    stages = max(1, int(math.log2(n)))

    xbuf = sim.alloc("fft_x", c * n * n * 8)
    wbuf = sim.alloc("fft_w", f * c * bins * 8)
    ybuf = sim.alloc("fft_y", f * bins * 8)
    out = sim.alloc("fft_out", f * spec.out_h * spec.out_w * 4)

    def _plane_fft(base: int, label: str, n_planes: int) -> None:
        """One batch of 2-D FFTs: 2*n vector passes per plane per axis."""
        with sim.kernel(label):
            for _plane in sim.loop(n_planes, warmup=1, sample=3):
                for _axis in range(2):
                    for _stage in sim.loop(stages, warmup=1, sample=3):
                        # Each stage streams the whole plane: n rows of n
                        # complex elements, with ~10 flops per point.
                        n_chunks = -(-n // vl)
                        for row in sim.loop(n, warmup=1, sample=3):
                            addr = base + (row * n) * 8
                            for ch in range(min(n_chunks, 4)):
                                gvl = min(vl, n - ch * vl)
                                sim.vload(addr + ch * vl * 8, gvl, ew=8)
                                sim.varith(gvl, 3, flops_per_elem=10 / 3)
                                sim.vstore(addr + ch * vl * 8, gvl, ew=8)

    _plane_fft(xbuf.base, "fft_forward", c)
    if include_weight_fft:
        _plane_fft(wbuf.base, "fft_weights", f * c)
    with sim.kernel("fft_pointwise"):
        # Complex MAC over channels per (f, bin): 8 flops per bin.
        sim.hierarchy.note_resident_range(wbuf.base, wbuf.nbytes)
        n_chunks = -(-bins // vl)
        for fi in sim.loop(f, warmup=1, sample=4):
            for ci in sim.loop(c, warmup=1, sample=4):
                w_base = wbuf.base + ((fi * c + ci) * bins) * 8
                x_base = xbuf.base + (ci * bins) * 8
                y_base = ybuf.base + (fi * bins) * 8
                for ch in sim.loop(n_chunks, warmup=1, sample=4):
                    gvl = min(vl, bins - ch * vl)
                    sim.vload(w_base + ch * vl * 8, gvl, ew=8)
                    sim.vload(x_base + ch * vl * 8, gvl, ew=8)
                    sim.vload(y_base + ch * vl * 8, gvl, ew=8)
                    sim.varith(gvl, 4)
                    sim.vstore(y_base + ch * vl * 8, gvl, ew=8)
    _plane_fft(ybuf.base, "fft_inverse", f)
    with sim.kernel("fft_crop"):
        n_out = f * spec.out_h * spec.out_w
        for ch in sim.loop(-(-n_out // vl), warmup=1, sample=4):
            gvl = min(vl, n_out - ch * vl)
            if spec.stride == 1:
                sim.vload(ybuf.base + ch * vl * 8, gvl, ew=8)
            else:
                sim.vgather(ybuf.base, gvl, span_bytes=gvl * spec.stride * 8, ew=8)
            sim.vstore(out.base + ch * vl * 4, gvl)
