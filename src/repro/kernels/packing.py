"""Matrix packing for the BLIS-like 6-loop GEMM (paper Fig. 3, lines 5/7).

Packing copies the current blocks of A and B into contiguous,
panel-major buffers so the micro-kernel walks memory strictly
sequentially — "to facilitate contiguous cache access in the inner-most
loop and facilitate prefetching" (Section IV-A).  Panel layouts follow
BLIS: B is packed in column panels as wide as a vector register, A in
row panels as tall as the unroll factor.
"""

from __future__ import annotations

import numpy as np

from ..machine.simulator import TraceSimulator

__all__ = ["pack_b_panels", "pack_a_panels", "trace_pack_b", "trace_pack_a"]


def pack_b_panels(
    B: np.ndarray, k1: int, bk: int, j1: int, bn: int, panel_w: int
) -> np.ndarray:
    """Pack block ``B[k1:k1+bk, j1:j1+bn]`` into ``(n_panels, bk, panel_w)``.

    ``out[p, k, jj] = B[k1+k, j1 + p*panel_w + jj]``, zero-padded past the
    block edge so micro-kernel loads are uniform full-width vectors.
    """
    if bk <= 0 or bn <= 0 or panel_w <= 0:
        raise ValueError("block dimensions must be positive")
    n_panels = -(-bn // panel_w)
    out = np.zeros((n_panels, bk, panel_w), dtype=B.dtype)
    block = B[k1 : k1 + bk, j1 : j1 + bn]
    for p in range(n_panels):
        j0 = p * panel_w
        width = min(panel_w, bn - j0)
        out[p, :, :width] = block[:, j0 : j0 + width]
    return out


def pack_a_panels(
    A: np.ndarray, i1: int, bm: int, k1: int, bk: int, panel_h: int
) -> np.ndarray:
    """Pack block ``A[i1:i1+bm, k1:k1+bk]`` into ``(n_panels, bk, panel_h)``.

    ``out[q, k, r] = A[i1 + q*panel_h + r, k1+k]`` (note the transpose:
    the micro-kernel consumes A column-by-column), zero-padded.
    """
    if bm <= 0 or bk <= 0 or panel_h <= 0:
        raise ValueError("block dimensions must be positive")
    n_panels = -(-bm // panel_h)
    out = np.zeros((n_panels, bk, panel_h), dtype=A.dtype)
    block = A[i1 : i1 + bm, k1 : k1 + bk]
    for q in range(n_panels):
        i0 = q * panel_h
        height = min(panel_h, bm - i0)
        out[q, :, :height] = block[i0 : i0 + height, :].T
    return out


# ----------------------------------------------------------------------
# Timing traces — packing is itself vectorized (Section IV-A: "matrix
# packing operations are also vectorized using the intrinsic
# instructions").
# ----------------------------------------------------------------------

def trace_pack_b(
    sim: TraceSimulator,
    b_base: int,
    pack_base: int,
    N: int,
    k1: int,
    bk: int,
    j1: int,
    bn: int,
    panel_w: int,
) -> None:
    """Replay packing of a B block: strided row reads, sequential writes."""
    n_panels = -(-bn // panel_w)
    for p in sim.loop(n_panels, warmup=1, sample=3):
        width = min(panel_w, bn - p * panel_w)
        for k in sim.loop(bk, warmup=1, sample=4):
            src = b_base + ((k1 + k) * N + j1 + p * panel_w) * 4
            dst = pack_base + ((p * bk + k) * panel_w) * 4
            sim.scalar(3)
            sim.vload(src, width)
            sim.vstore(dst, width)


def trace_pack_a(
    sim: TraceSimulator,
    a_base: int,
    pack_base: int,
    K: int,
    i1: int,
    bm: int,
    k1: int,
    bk: int,
    panel_h: int,
) -> None:
    """Replay packing of an A block.

    The transpose gathers ``panel_h`` values with a row stride of ``4*K``
    bytes per packed column — strided loads, sequential stores.
    """
    n_panels = -(-bm // panel_h)
    for q in sim.loop(n_panels, warmup=1, sample=2):
        height = min(panel_h, bm - q * panel_h)
        for k in sim.loop(bk, warmup=1, sample=4):
            src = a_base + ((i1 + q * panel_h) * K + k1 + k) * 4
            dst = pack_base + ((q * bk + k) * panel_h) * 4
            sim.scalar(3)
            sim.vload(src, height, stride=4 * K)
            sim.vstore(dst, height)
