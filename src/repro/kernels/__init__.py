"""Convolutional-layer kernels (functional + timing traces).

Every kernel the paper's convolutional layer uses (Section II-B):
im2col, the three GEMM variants (naive / optimized 3-loop / BLIS-like
6-loop), the elementwise kernels, the Winograd algorithm, and the direct
convolution oracle.  Each kernel exposes a functional NumPy path (tested
against oracles) and a ``trace_*`` path replaying its instruction stream
on :class:`repro.machine.TraceSimulator`.
"""

from .convspec import ConvSpec
from .direct import direct_conv2d
from .fft_conv import fft_conv2d, fft_plan_size, trace_fft_conv
from .elementwise import (
    activate_array,
    add_bias,
    copy_cpu,
    fill_cpu,
    normalize_cpu,
    scale_bias,
    trace_stream_kernel,
)
from .gemm_3loop import DEFAULT_UNROLL, gemm_3loop, trace_gemm_3loop
from .gemm_6loop import PAPER_BLOCK_SIZES, BlockSizes, gemm_6loop, trace_gemm_6loop
from .gemm_naive import gemm_naive, trace_gemm_naive
from .im2col import col2im, im2col, trace_im2col
from .packing import pack_a_panels, pack_b_panels, trace_pack_a, trace_pack_b

__all__ = [
    "ConvSpec",
    "fft_conv2d",
    "fft_plan_size",
    "trace_fft_conv",
    "direct_conv2d",
    "activate_array",
    "add_bias",
    "copy_cpu",
    "fill_cpu",
    "normalize_cpu",
    "scale_bias",
    "trace_stream_kernel",
    "DEFAULT_UNROLL",
    "gemm_3loop",
    "trace_gemm_3loop",
    "PAPER_BLOCK_SIZES",
    "BlockSizes",
    "gemm_6loop",
    "trace_gemm_6loop",
    "gemm_naive",
    "trace_gemm_naive",
    "col2im",
    "im2col",
    "trace_im2col",
    "pack_a_panels",
    "pack_b_panels",
    "trace_pack_a",
    "trace_pack_b",
]
