"""Direct convolution — the correctness oracle.

A straightforward (but NumPy-vectorized) implementation of 2-D
cross-correlation with zero padding, used to validate im2col+GEMM and
Winograd.  Mentioned in Section II-B(c) of the paper as the algorithm of
choice for 1x1 kernels; here it primarily anchors numerical tests.
"""

from __future__ import annotations

import numpy as np

from .convspec import ConvSpec

__all__ = ["direct_conv2d"]


def direct_conv2d(x: np.ndarray, weights: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Direct convolution of ``x (C,H,W)`` with ``weights (F,C,k,k)``.

    Returns the ``(F, out_h, out_w)`` activation in float32, computing in
    float64 internally for a tight oracle.
    """
    c, h, w = x.shape
    f, cw, kh, kw = weights.shape
    if (c, h, w) != (spec.in_channels, spec.in_h, spec.in_w):
        raise ValueError("input does not match spec")
    if cw != c or kh != spec.ksize or kw != spec.ksize or f != spec.out_channels:
        raise ValueError("weights do not match spec")

    k, s, p = spec.ksize, spec.stride, spec.pad
    xp = np.zeros((c, h + 2 * p, w + 2 * p), dtype=np.float64)
    xp[:, p : p + h, p : p + w] = x
    out = np.zeros((f, spec.out_h, spec.out_w), dtype=np.float64)
    w64 = weights.astype(np.float64)
    for ky in range(k):
        for kx in range(k):
            patch = xp[:, ky : ky + s * spec.out_h : s, kx : kx + s * spec.out_w : s]
            # (F,C) x (C, oh*ow) accumulated per tap.
            out += np.tensordot(w64[:, :, ky, kx], patch, axes=(1, 0))
    return out.astype(np.float32)
