"""Winograd/Cook-Toom transform-matrix generation (exact arithmetic).

The paper's Winograd kernel (from NNPACK) uses F(6x6, 3x3) on 8x8 tiles.
Rather than hard-coding the constants, we generate the transform
matrices for any F(m, r) from first principles, in exact rational
arithmetic, and verify the bilinear identity in the test suite.

Construction
------------
For ``alpha = m + r - 1`` and interpolation points
``a_0 .. a_{alpha-2}`` plus the point at infinity:

* linear convolution of length-m and length-r sequences is
  evaluation-interpolation: ``s = C [(E_m u) o (E_r v)]`` where ``E_n``
  evaluates a degree-(n-1) polynomial at the points (the infinity row
  picks the leading coefficient) and ``C`` interpolates the degree
  ``alpha-1`` product;
* by the transposition principle, the *correlation* ``y_i = sum_j
  d_{i+j} g_j`` (what convolution layers compute) is the transpose in
  (d, y):  ``y = A^T [(G g) o (B^T d)]`` with ``A = E_m``, ``G = E_r``
  and ``B^T = C^T = (W^T)^{-1}`` for the full evaluation matrix ``W``.

The 2-D form used on tiles is ``Y = A^T [ (G g G^T) o (B^T d B) ] A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["WinogradTransform", "winograd_matrices", "DEFAULT_POINTS"]

#: Well-conditioned interpolation points for the common tile algorithms.
#: F(6,3) uses the NNPACK/Lavin point set {0, +-1, +-2, +-1/2}.
DEFAULT_POINTS = {
    (2, 3): (Fraction(0), Fraction(1), Fraction(-1)),
    (4, 3): (Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2)),
    (6, 3): (
        Fraction(0),
        Fraction(1),
        Fraction(-1),
        Fraction(2),
        Fraction(-2),
        Fraction(1, 2),
        Fraction(-1, 2),
    ),
}


def _invert(matrix: List[List[Fraction]]) -> List[List[Fraction]]:
    """Exact Gauss-Jordan inverse of a square Fraction matrix."""
    n = len(matrix)
    aug = [row[:] + [Fraction(int(i == j)) for j in range(n)] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot is None:
            raise ValueError("evaluation matrix is singular: duplicate points?")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = Fraction(1) / aug[col][col]
        aug[col] = [x * inv_p for x in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [x - factor * y for x, y in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


def _evaluation_matrix(points: Sequence[Fraction], n_cols: int) -> List[List[Fraction]]:
    """Rows ``[1, a, a^2, ...]`` per finite point, then the infinity row
    ``e_{n_cols-1}`` (leading-coefficient pick)."""
    rows = [[a**j for j in range(n_cols)] for a in points]
    rows.append([Fraction(int(j == n_cols - 1)) for j in range(n_cols)])
    return rows


@dataclass(frozen=True)
class WinogradTransform:
    """The F(m, r) transform triple.

    Attributes
    ----------
    m, r, alpha:
        Output tile size, filter size, and ``alpha = m + r - 1`` (the
        input tile size, 8 for the paper's kernels).
    A:
        Output transform, shape ``(alpha, m)`` — applied as ``A^T M A``.
    G:
        Weight transform, shape ``(alpha, r)`` — ``G g G^T``.
    Bt:
        Input transform ``B^T``, shape ``(alpha, alpha)`` — ``B^T d B``.
    """

    m: int
    r: int
    alpha: int
    A: np.ndarray
    G: np.ndarray
    Bt: np.ndarray

    # -- 1-D building blocks (used by tests and the inter-tile kernels) --
    def transform_input(self, d: np.ndarray) -> np.ndarray:
        """2-D input transform ``B^T d B`` of an ``alpha x alpha`` tile."""
        return self.Bt @ d @ self.Bt.T

    def transform_weight(self, g: np.ndarray) -> np.ndarray:
        """2-D weight transform ``G g G^T`` of an ``r x r`` filter."""
        return self.G @ g @ self.G.T

    def transform_output(self, m_tile: np.ndarray) -> np.ndarray:
        """2-D output transform ``A^T M A`` -> ``m x m`` outputs."""
        return self.A.T @ m_tile @ self.A

    @property
    def mul_reduction_2d(self) -> float:
        """Multiplication reduction vs direct conv for one 2-D tile:
        ``(m*r)^2 / alpha^2`` — about 5.06x for F(6x6, 3x3)."""
        return (self.m * self.r) ** 2 / self.alpha**2


def winograd_matrices(
    m: int, r: int, points: Optional[Sequence[Fraction]] = None
) -> WinogradTransform:
    """Generate exact F(m, r) matrices (returned as float64 arrays).

    Parameters
    ----------
    m:
        Outputs per 1-D tile (6 for the paper's 8x8 tiles).
    r:
        Filter taps (3 for the 3x3 convolutions Winograd targets).
    points:
        ``m + r - 2`` distinct finite interpolation points (the point at
        infinity is implicit).  Defaults to :data:`DEFAULT_POINTS`.
    """
    if m < 1 or r < 1:
        raise ValueError("m and r must be >= 1")
    alpha = m + r - 1
    if points is None:
        try:
            points = DEFAULT_POINTS[(m, r)]
        except KeyError:
            # Fallback point schedule: 0, +-1, +-2, ... +-1/2, +-1/4 ...
            pts: List[Fraction] = [Fraction(0)]
            k = 1
            while len(pts) < alpha - 1:
                for candidate in (Fraction(k), Fraction(-k),
                                  Fraction(1, k + 1), Fraction(-1, k + 1)):
                    if candidate not in pts and len(pts) < alpha - 1:
                        pts.append(candidate)
                k += 1
            points = pts
    points = tuple(Fraction(p) for p in points)
    if len(points) != alpha - 1:
        raise ValueError(f"need {alpha - 1} finite points, got {len(points)}")
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")

    A_exact = _evaluation_matrix(points, m)  # (alpha, m)
    G_exact = _evaluation_matrix(points, r)  # (alpha, r)
    W = _evaluation_matrix(points, alpha)  # (alpha, alpha), full evaluation
    # B^T = (W^T)^{-1}: transpose of the interpolation matrix.
    Wt = [[W[j][i] for j in range(alpha)] for i in range(alpha)]
    Bt_exact = _invert(Wt)

    def to_np(rows: List[List[Fraction]]) -> np.ndarray:
        return np.array([[float(x) for x in row] for row in rows], dtype=np.float64)

    return WinogradTransform(
        m=m, r=r, alpha=alpha, A=to_np(A_exact), G=to_np(G_exact), Bt=to_np(Bt_exact)
    )


def _selftest_identity(m: int = 6, r: int = 3, seed: int = 0) -> Tuple[float, float]:
    """Max abs error of the 1-D bilinear identity on random data.

    Exposed for debugging; the real checks live in the test suite.
    """
    t = winograd_matrices(m, r)
    rng = np.random.default_rng(seed)
    d = rng.standard_normal(t.alpha)
    g = rng.standard_normal(r)
    y = t.A.T @ ((t.G @ g) * (t.Bt @ d))
    ref = np.array([np.dot(d[i : i + r], g) for i in range(m)])
    return float(np.abs(y - ref).max()), float(np.abs(ref).max())
