"""Winograd convolution (paper Sections IV-B and VII).

F(6x6, 3x3) on 8x8 tiles with the paper's inter-tile channel
parallelization for VLA vectorization of the transforms, and a
tuple-multiplication kernel vectorized across the 64 tuple positions.
"""

from .conv import f6x3, trace_winograd_conv, winograd_conv2d, winograd_tile_count
from .intertile import (
    ELEMENTS,
    interchannel_count,
    pack_rows,
    row_combine,
    tile_transform_intertile,
    unpack_rows,
)
from .matrices import DEFAULT_POINTS, WinogradTransform, winograd_matrices
from .stride2 import (
    decomposition_mul_count,
    stride2_decomposed_conv,
    trace_stride2_decomposed,
)
from .transforms import (
    extract_tiles,
    input_transform_batched,
    output_transform_batched,
    scatter_tiles,
    tile_grid,
    weight_transform_batched,
)

__all__ = [
    "f6x3",
    "trace_winograd_conv",
    "winograd_conv2d",
    "winograd_tile_count",
    "ELEMENTS",
    "interchannel_count",
    "pack_rows",
    "row_combine",
    "tile_transform_intertile",
    "unpack_rows",
    "DEFAULT_POINTS",
    "decomposition_mul_count",
    "stride2_decomposed_conv",
    "trace_stride2_decomposed",
    "WinogradTransform",
    "winograd_matrices",
    "extract_tiles",
    "input_transform_batched",
    "output_transform_batched",
    "scatter_tiles",
    "tile_grid",
    "weight_transform_batched",
]
