"""Stride-2 Winograd via input/kernel parity decomposition (extension).

Section VII-A finds the NNPACK-style stride-2 fallback (compute the full
stride-1 grid, subsample) 1.4x *slower* than im2col+GEMM and concludes
that "different algorithmic optimizations are required to achieve high
performance for layers with stride 2".  This module implements the
known remedy, as the paper's future-work item:

decompose by parity.  With ``d_pq[i,j] = d[2i+p, 2j+q]`` and
``g_pq[a,b] = g[2a+p, 2b+q]`` (p, q in {0,1}),

    y[i,j] = sum_{p,q} sum_{a,b} d_pq[i+a, j+b] * g_pq[a,b]

— four *stride-1* correlations with sub-kernels of sizes 2x2, 2x1, 1x2
and 1x1, summed.  Each sub-correlation vectorizes cleanly; the 2-tap
axes use Winograd F(6,2) tiles.  Per 6x6 output tile the decomposition
costs 49 + 42 + 42 + 36 = 169 multiplies versus 4 x 64 = 256 for the
subsampling fallback (and 324 for direct stride-2 convolution), with a
quarter of the fallback's transform traffic.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ...machine.simulator import TraceSimulator
from ..convspec import ConvSpec
from .conv import _trace_transform_pass, _trace_tuple_mult
from .matrices import WinogradTransform, winograd_matrices
from .transforms import tile_grid

__all__ = [
    "stride2_decomposed_conv",
    "trace_stride2_decomposed",
    "decomposition_mul_count",
]


@lru_cache(maxsize=None)
def f6x2() -> WinogradTransform:
    """F(6,2): the 1-D tile algorithm for the decomposition's 2-tap axes."""
    return winograd_matrices(6, 2)


def decomposition_mul_count(m: int = 6) -> dict:
    """Multiplies per ``m x m`` output tile: decomposition vs fallback.

    >>> decomposition_mul_count()["decomposed"]
    169
    """
    alpha2 = m + 2 - 1  # F(m,2) tile size
    return {
        "decomposed": alpha2 * alpha2 + 2 * alpha2 * m + m * m,
        "fallback": 4 * (m + 3 - 1) ** 2,
        "direct": 9 * m * m,
    }


def stride2_decomposed_conv(
    x: np.ndarray, weights: np.ndarray, spec: ConvSpec
) -> np.ndarray:
    """Stride-2 3x3 convolution via the parity decomposition.

    Numerically exact (computed in float64, like the oracles); the
    sub-correlations here use direct evaluation — the *algorithmic
    structure* (which drives the timing trace) is what the decomposition
    changes, not the arithmetic result.
    """
    if spec.ksize != 3 or spec.stride != 2:
        raise ValueError("decomposition targets 3x3 stride-2 layers")
    c, h, w = x.shape
    f = weights.shape[0]
    if (c, h, w) != (spec.in_channels, spec.in_h, spec.in_w) or f != spec.out_channels:
        raise ValueError("input/weights do not match spec")

    p = spec.pad
    oh, ow = spec.out_h, spec.out_w
    # Pad generously so every phase plane covers index out_dim + 1.
    hp = np.zeros((c, h + 2 * p + 2, w + 2 * p + 2), dtype=np.float64)
    hp[:, p : p + h, p : p + w] = x
    w64 = weights.astype(np.float64)

    out = np.zeros((f, oh, ow), dtype=np.float64)
    for pp in (0, 1):
        for qq in (0, 1):
            phase = hp[:, pp::2, qq::2]  # d_pq
            taps_a = range(2 if pp == 0 else 1)  # u = 2a+p <= 2
            taps_b = range(2 if qq == 0 else 1)
            for a in taps_a:
                for b in taps_b:
                    g = w64[:, :, 2 * a + pp, 2 * b + qq]  # (F, C)
                    window = phase[:, a : a + oh, b : b + ow]
                    out += np.tensordot(g, window, axes=(1, 0))
    return out.astype(np.float32)


def trace_stride2_decomposed(sim: TraceSimulator, spec: ConvSpec) -> None:
    """Replay the decomposed stride-2 convolution on the simulator.

    Four stride-1 sub-convolutions on half-resolution phase planes:
    phase extraction (strided loads, like a stride-2 im2col), F(6,2)
    input transforms where an axis has 2 taps, register-blocked tuple
    multiplication per sub-kernel, and a shared output transform /
    accumulation.
    """
    if spec.ksize != 3 or spec.stride != 2:
        raise ValueError("decomposition targets 3x3 stride-2 layers")
    t = f6x2()
    isa = sim.machine.make_isa()
    vl = sim.machine.vlen_f32
    c, f = spec.in_channels, spec.out_channels
    th, tw = tile_grid(spec.out_h, spec.out_w, t.m)
    n_tiles = th * tw
    ph, pw = spec.out_h + 2, spec.out_w + 2  # phase-plane extent

    src = sim.alloc("s2_phases", 4 * c * ph * pw * 4)
    vbuf = sim.alloc("s2_V", n_tiles * c * t.alpha * t.alpha * 4)
    ubuf = sim.alloc("s2_U", f * c * t.alpha * t.alpha * 4)
    mbuf = sim.alloc("s2_M", n_tiles * f * t.alpha * t.alpha * 4)
    out = sim.alloc("s2_out", f * spec.out_h * spec.out_w * 4)

    # Tuple-position counts per sub-kernel parity: (2,2)->a^2, (2,1) and
    # (1,2) -> a*m, (1,1) -> m^2.
    sub_positions = [
        t.alpha * t.alpha,
        t.alpha * t.m,
        t.m * t.alpha,
        t.m * t.m,
    ]

    with sim.kernel("winograd"):
        sim.hierarchy.note_resident_range(ubuf.base, ubuf.nbytes)
        with sim.kernel("s2_phase_extract"):
            # Strided reads of the 4 phase planes (one pass over the input).
            n_elems = c * ph * pw
            for ch in sim.loop(-(-n_elems // vl), warmup=1, sample=4):
                gvl = min(vl, n_elems - ch * vl)
                for _phase in range(4):
                    sim.vload(src.base + ch * vl * 8, gvl, stride=8)
                    sim.vstore(src.base + ch * vl * 4, gvl)
        with sim.kernel("wino_input_transform"):
            # F(6,2) transforms of the 2-tap phases (3 of 4 phases need
            # at least one transformed axis).
            _trace_transform_pass(
                sim, isa, 3 * n_tiles * c, src.base, vbuf.base,
                t.alpha, t.alpha, src_row_stride=pw * 4, coeffs_nonzero=3,
            )
        with sim.kernel("wino_tuple_mult"):
            for sub in sim.loop(4, warmup=4, sample=0):
                _trace_tuple_mult(
                    sim, n_tiles, f, c, sub_positions[sub],
                    ubuf.base, vbuf.base, mbuf.base, vl,
                )
        with sim.kernel("wino_output_transform"):
            _trace_transform_pass(
                sim, isa, n_tiles * f, mbuf.base, out.base,
                t.alpha, t.m, src_row_stride=t.alpha * 4, coeffs_nonzero=3,
            )
        with sim.kernel("s2_accumulate"):
            n_out = f * spec.out_h * spec.out_w
            for ch in sim.loop(-(-n_out // vl), warmup=1, sample=4):
                gvl = min(vl, n_out - ch * vl)
                sim.vload(out.base + ch * vl * 4, gvl)
                sim.varith(gvl, 3)
                sim.vstore(out.base + ch * vl * 4, gvl)
