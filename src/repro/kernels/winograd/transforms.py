"""Tile transforms for Winograd convolution (NNPACK-style 8x8 tiles).

Batched NumPy implementations of the input, weight and output
transforms, plus the tile-extraction/scatter geometry.  The inter-tile
VLA vectorization of these transforms (the paper's novel contribution,
Fig. 4/5) lives in :mod:`repro.kernels.winograd.intertile`; this module
is the plain reference those kernels are tested against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .matrices import WinogradTransform

__all__ = [
    "tile_grid",
    "extract_tiles",
    "input_transform_batched",
    "weight_transform_batched",
    "output_transform_batched",
    "scatter_tiles",
]


def tile_grid(out_h: int, out_w: int, m: int) -> Tuple[int, int]:
    """Number of tile rows/cols covering an ``out_h x out_w`` output."""
    if out_h <= 0 or out_w <= 0:
        raise ValueError("output dimensions must be positive")
    return -(-out_h // m), -(-out_w // m)


def extract_tiles(x_pad: np.ndarray, th: int, tw: int, m: int, alpha: int) -> np.ndarray:
    """Extract overlapping ``alpha x alpha`` input tiles.

    ``x_pad`` is the zero-padded input plane stack ``(C, Hp, Wp)``; tiles
    start every ``m`` pixels and overlap by ``alpha - m`` (2 for the 8x8
    tiles).  Returns ``(C, th*tw, alpha, alpha)``.  ``x_pad`` must be
    large enough; callers pad with :func:`np.pad` beforehand.
    """
    c, hp, wp = x_pad.shape
    need_h, need_w = (th - 1) * m + alpha, (tw - 1) * m + alpha
    if hp < need_h or wp < need_w:
        raise ValueError(
            f"padded input {hp}x{wp} too small for {th}x{tw} tiles "
            f"(need {need_h}x{need_w})"
        )
    # Strided-view extraction: no data copy until the final reshape.
    sC, sH, sW = x_pad.strides
    view = np.lib.stride_tricks.as_strided(
        x_pad,
        shape=(c, th, tw, alpha, alpha),
        strides=(sC, sH * m, sW * m, sH, sW),
        writeable=False,
    )
    return view.reshape(c, th * tw, alpha, alpha).copy()


def input_transform_batched(t: WinogradTransform, tiles: np.ndarray) -> np.ndarray:
    """``B^T d B`` over a batch of tiles ``(..., alpha, alpha)``."""
    return np.einsum("ij,...jk,lk->...il", t.Bt, tiles, t.Bt, optimize=True)


def weight_transform_batched(t: WinogradTransform, weights: np.ndarray) -> np.ndarray:
    """``G g G^T`` over filters ``(F, C, r, r)`` -> ``(F, C, alpha, alpha)``.

    Performed offline for inference — Section VII-A: "the weight
    transformation is a major bottleneck, but it can be performed offline".
    """
    return np.einsum("ij,fcjk,lk->fcil", t.G, weights, t.G, optimize=True)


def output_transform_batched(t: WinogradTransform, m_tiles: np.ndarray) -> np.ndarray:
    """``A^T M A`` over a batch ``(..., alpha, alpha)`` -> ``(..., m, m)``."""
    return np.einsum("ji,...jk,kl->...il", t.A, m_tiles, t.A, optimize=True)


def scatter_tiles(
    y_tiles: np.ndarray, th: int, tw: int, m: int, out_h: int, out_w: int
) -> np.ndarray:
    """Place ``(F, th*tw, m, m)`` output tiles into ``(F, out_h, out_w)``.

    Edge tiles are cropped (the tile grid rounds the output up).
    """
    f = y_tiles.shape[0]
    full = y_tiles.reshape(f, th, tw, m, m).transpose(0, 1, 3, 2, 4)
    full = full.reshape(f, th * m, tw * m)
    return np.ascontiguousarray(full[:, :out_h, :out_w])
