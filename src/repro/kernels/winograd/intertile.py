"""Inter-tile parallelization of the Winograd transforms (paper Fig. 4/5).

The paper's novel scheme: rather than enlarging the tile (which hurts
numerical accuracy), keep 8x8 tiles but vectorize the transforms *across
channels* — ``interchannels = VL / elements`` tiles (one per channel) are
packed row-wise into buffers so every vector instruction transforms all
of them simultaneously.  With 512-bit vectors that is 4 channels (one
tile row from each channel filling two vector registers, Fig. 5); 2048
bits take 16 channels.

The transform of a tile ``d`` is ``B^T d B``, computed as two passes of
the 1-D row combination with a transpose between them.  On SVE the
transpose uses in-register tuple create/transpose intrinsics; on RVV
those do not exist and the kernel bounces through a temporary buffer
with scatter/gather (Section VII — the reason the paper's RVV Winograd
numbers are excluded).
"""

from __future__ import annotations

import numpy as np

from ...isa import F32, VectorISA
from ...isa.intrinsics import vbroadcast, vfmacc, vgather, vle, vscatter, vse

__all__ = [
    "ELEMENTS",
    "interchannel_count",
    "pack_rows",
    "unpack_rows",
    "row_combine",
    "tile_transform_intertile",
]

#: Fig. 4 line 2: the row-segment granularity (4 f32 = 128 bits).
ELEMENTS = 4


def interchannel_count(isa: VectorISA) -> int:
    """Fig. 4 lines 3-4: ``interchannels = VL / elements``.

    4 for 512-bit vectors, 16 for 2048-bit.
    """
    return max(1, isa.max_elems(F32) // ELEMENTS)


def pack_rows(tiles: np.ndarray) -> np.ndarray:
    """Pack a channel group's tiles row-wise into transform buffers.

    ``tiles`` is ``(g, rows, w)`` — one tile per channel.  Returns
    ``(rows, g*w)`` where buffer row ``i`` holds row ``i`` of every tile
    back-to-back (Fig. 4 lines 8-16 build exactly this, split into the
    0-4 and 4-8 element halves ``buff1``/``buff2``; here the halves are
    consecutive vector-length chunks of one buffer).
    """
    g, rows, w = tiles.shape
    return np.ascontiguousarray(tiles.transpose(1, 0, 2).reshape(rows, g * w))


def unpack_rows(buf: np.ndarray, g: int, w: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(rows, g*w)`` -> ``(g, rows, w)``."""
    rows = buf.shape[0]
    return np.ascontiguousarray(buf.reshape(rows, g, w).transpose(1, 0, 2))


def row_combine(isa: VectorISA, coeffs: np.ndarray, buf: np.ndarray) -> np.ndarray:
    """Apply the 1-D transform to packed buffers with vector intrinsics.

    ``out[i, :] = sum_k coeffs[i, k] * buf[k, :]`` computed gvl elements
    at a time with broadcast + vector FMA — each vector instruction
    advances the transform of ``interchannels`` tiles at once.
    """
    n_out, n_in = coeffs.shape
    if buf.shape[0] != n_in:
        raise ValueError(f"buffer has {buf.shape[0]} rows, coeffs need {n_in}")
    width = buf.shape[1]
    out = np.zeros((n_out, width), dtype=buf.dtype)
    mvl = isa.max_elems(F32)
    j = 0
    while j < width:
        gvl = isa.grant_vl(width - j, F32)
        for i in range(n_out):
            acc = vbroadcast(0.0, gvl, dtype=buf.dtype, max_elems=mvl)
            for k in range(n_in):
                ck = coeffs[i, k]
                if ck != 0.0:
                    vfmacc(acc, ck, vle(buf[k], j, gvl, mvl), gvl, mvl)
            vse(acc, out[i], j, gvl, mvl)
        j += gvl
    return out


def _transpose_tiles(isa: VectorISA, buf: np.ndarray, g: int, w: int) -> np.ndarray:
    """Transpose each tile inside the packed buffer.

    SVE: models the tuple create/transpose intrinsics (in-register).
    RVV: models the memory round-trip — scatter rows to a scratch buffer
    in transposed order, gather them back (Section VII).
    Both paths produce identical values; they differ only in cost, which
    the timing trace accounts for separately.
    """
    rows = buf.shape[0]
    tiles = unpack_rows(buf, g, w)  # (g, rows, w)
    if isa.has_register_transpose:
        swapped = tiles.transpose(0, 2, 1)  # in-register transpose
    else:
        # Scatter/gather through a scratch buffer, tile by tile.
        swapped = np.empty((g, w, rows), dtype=buf.dtype)
        scratch = np.empty(rows * w, dtype=buf.dtype)
        for t in range(g):
            flat = tiles[t].reshape(-1)  # row-major (rows, w)
            idx = (np.arange(rows * w) % w) * rows + np.arange(rows * w) // w
            vscatter(flat, scratch, idx.astype(np.int64))
            swapped[t] = vgather(scratch, np.arange(rows * w).astype(np.int64)).reshape(
                w, rows
            )
    return pack_rows(swapped)


def tile_transform_intertile(
    isa: VectorISA, mat: np.ndarray, tiles: np.ndarray
) -> np.ndarray:
    """2-D tile transform ``M d M^T`` for a batch of tiles, inter-tile style.

    ``mat`` is ``(n_out, n_in)`` (``B^T``: 8x8, ``G``: 8x3, ``A^T``: 6x8),
    ``tiles`` is ``(nc, n_in, n_in)``.  Channels are processed in groups
    of ``interchannels``; the remainder group is smaller (Fig. 4's
    ``count < 4`` fallback runs the same kernel on fewer lanes).

    Returns ``(nc, n_out, n_out)``, numerically equal to
    ``mat @ d @ mat.T`` per tile.
    """
    nc, n_in, n_in2 = tiles.shape
    if n_in2 != n_in or mat.shape[1] != n_in:
        raise ValueError("tile/transform shape mismatch")
    n_out = mat.shape[0]
    group = interchannel_count(isa)
    out = np.empty((nc, n_out, n_out), dtype=tiles.dtype)
    for c0 in range(0, nc, group):
        g = min(group, nc - c0)
        buf = pack_rows(tiles[c0 : c0 + g])  # (n_in, g*n_in)
        half = row_combine(isa, mat, buf)  # rows transformed: (n_out, g*n_in)
        half_t = _transpose_tiles(isa, half, g, n_in)  # (n_in, g*n_out)
        full = row_combine(isa, mat, half_t)  # (n_out, g*n_out)
        out[c0 : c0 + g] = unpack_rows(full, g, n_out).transpose(0, 2, 1)
    return out
