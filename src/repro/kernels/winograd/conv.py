"""Winograd convolution: full layer (functional + timing trace).

Implements the paper's Section IV-B / VII pipeline on 8x8 tiles
(F(6x6, 3x3)): input transform with inter-tile channel parallelism,
offline weight transform, VLA-vectorized tuple multiplication across the
64 tuple positions ("16 blocks with 4 elements in each block ... 64
elements to utilize the maximum 2048-bit vector lengths"), and the
output transform.

Stride-2 layers: the paper applies Winograd to stride-2 3x3 layers and
finds it 1.4x *slower* than im2col+GEMM (Section VII-A).  We reproduce
that behaviour with the NNPACK-style fallback: compute the stride-1 tile
grid and subsample — functionally exact, but ~4x wasted work, which the
trace charges.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ...isa import F32, VectorISA
from ...machine.simulator import TraceSimulator
from ..convspec import ConvSpec
from .intertile import ELEMENTS, interchannel_count, tile_transform_intertile
from .matrices import WinogradTransform, winograd_matrices
from .transforms import (
    extract_tiles,
    input_transform_batched,
    output_transform_batched,
    scatter_tiles,
    tile_grid,
    weight_transform_batched,
)

__all__ = ["f6x3", "winograd_conv2d", "trace_winograd_conv", "winograd_tile_count"]


@lru_cache(maxsize=None)
def f6x3() -> WinogradTransform:
    """The paper's tile algorithm: F(6x6, 3x3) on 8x8 tiles."""
    return winograd_matrices(6, 3)


def _stride1_geometry(spec: ConvSpec, m: int, alpha: int):
    """Tile geometry for the stride-1 grid underlying *spec*.

    For stride 2 the kernel computes the full stride-1 output and
    subsamples, so the grid always covers the stride-1 output.
    """
    s1_out_h = spec.in_h + 2 * spec.pad - spec.ksize + 1
    s1_out_w = spec.in_w + 2 * spec.pad - spec.ksize + 1
    th, tw = tile_grid(s1_out_h, s1_out_w, m)
    pad_h = (th - 1) * m + alpha
    pad_w = (tw - 1) * m + alpha
    return s1_out_h, s1_out_w, th, tw, pad_h, pad_w


def winograd_tile_count(spec: ConvSpec, m: int = 6) -> int:
    """Number of 8x8 tiles the layer processes (stride-1 grid)."""
    t = f6x3() if m == 6 else winograd_matrices(m, 3)
    _, _, th, tw, _, _ = _stride1_geometry(spec, t.m, t.alpha)
    return th * tw


def winograd_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    spec: ConvSpec,
    transform: WinogradTransform = None,
    isa: VectorISA = None,
    transformed_weights: np.ndarray = None,
) -> np.ndarray:
    """Winograd convolution of ``x (C,H,W)`` with ``weights (F,C,3,3)``.

    Numerically equivalent to direct convolution (to f32/f64 rounding of
    the transform arithmetic).  Pass *isa* to route the input transform
    through the inter-tile VLA kernel of Fig. 4 (bit-equal to the batched
    reference); otherwise the batched NumPy path runs.  Pass
    *transformed_weights* (from :func:`weight_transform_batched`) to model
    the offline weight transform of Section VII-A.
    """
    t = transform or f6x3()
    if spec.ksize != t.r:
        raise ValueError(f"Winograd F({t.m},{t.r}) needs {t.r}x{t.r} kernels")
    if spec.stride not in (1, 2):
        raise ValueError("Winograd path supports stride 1 and 2 only")
    c, h, w = x.shape
    f = weights.shape[0]
    if (c, h, w) != (spec.in_channels, spec.in_h, spec.in_w) or f != spec.out_channels:
        raise ValueError("input/weights do not match spec")

    s1_out_h, s1_out_w, th, tw, pad_h, pad_w = _stride1_geometry(spec, t.m, t.alpha)
    p = spec.pad
    x_pad = np.zeros((c, pad_h, pad_w), dtype=np.float64)
    x_pad[:, p : p + h, p : p + w] = x

    tiles = extract_tiles(x_pad, th, tw, t.m, t.alpha)  # (C, P, a, a)
    n_tiles = th * tw
    if isa is not None:
        # Inter-tile VLA input transform across channels (Fig. 4): group
        # the (C, P) tile axis and vectorize over interchannels tiles.
        flat = tiles.reshape(c * n_tiles, t.alpha, t.alpha)
        v = tile_transform_intertile(isa, t.Bt, flat).reshape(
            c, n_tiles, t.alpha, t.alpha
        )
    else:
        v = input_transform_batched(t, tiles)

    u = (
        weight_transform_batched(t, weights.astype(np.float64))
        if transformed_weights is None
        else transformed_weights
    )
    # Tuple multiplication: per tuple position (i,j), M = U @ V over
    # channels — vectorized here across all 64 positions at once, the
    # way the VLA kernel consumes them.
    m_tiles = np.einsum("fcij,cpij->fpij", u, v, optimize=True)
    y_tiles = output_transform_batched(t, m_tiles)  # (F, P, m, m)
    out = scatter_tiles(y_tiles, th, tw, t.m, s1_out_h, s1_out_w)
    if spec.stride == 2:
        out = np.ascontiguousarray(out[:, ::2, ::2])
    if out.shape[1:] != (spec.out_h, spec.out_w):
        raise AssertionError("winograd geometry bug")
    return out.astype(np.float32)


# ----------------------------------------------------------------------
# Timing trace
# ----------------------------------------------------------------------

def _trace_transform_pass(
    sim: TraceSimulator,
    isa: VectorISA,
    n_tiles: int,
    src_base: int,
    dst_base: int,
    n_in: int,
    n_out: int,
    src_row_stride: int,
    coeffs_nonzero: int,
) -> None:
    """Trace one inter-tile transform over *n_tiles* tiles.

    Per channel group: pack the group's tile rows into buffers (strided
    loads + sequential stores), two row-combination passes with a
    transpose between them, and the store-back.  The transpose is free
    in-register on SVE; on RVV it costs a scatter/gather round trip per
    tile (Section VII).
    """
    vl = isa.max_elems(F32)
    group = interchannel_count(isa)
    n_groups = -(-n_tiles // group)
    chunks_in = -(-group * n_in * ELEMENTS // (ELEMENTS * vl)) if n_in >= ELEMENTS else 1
    width_in = group * n_in
    width_out = group * n_out
    for _gidx in sim.loop(n_groups, warmup=1, sample=4):
        # Pack: n_in rows, each gathered from `group` tiles (Fig. 4 l.8-16).
        for row in range(n_in):
            sim.vgather(
                src_base + row * src_row_stride,
                min(width_in, vl),
                span_bytes=group * src_row_stride,
            )
            sim.vstore(dst_base, min(width_in, vl))
            if width_in > vl:
                sim.vload(src_base + row * src_row_stride + vl * 4, width_in - vl)
                sim.vstore(dst_base + vl * 4, width_in - vl)
        # Pass 1: n_out output rows, ~coeffs_nonzero FMAs each, per chunk.
        n_chunks = -(-width_in // vl)
        sim.varith(min(width_in, vl), n_out * coeffs_nonzero * n_chunks)
        sim.scalar(3 * n_out)
        # Transpose between passes.
        if isa.has_register_transpose:
            sim.varith(min(width_in, vl), n_in // 2, flops_per_elem=0.0)
        else:
            # RVV: scatter to scratch + gather back, per tile.
            for _tile in range(group):
                sim.vscatter(dst_base, n_in * n_out, span_bytes=n_in * n_out * 4)
                sim.vgather(dst_base, n_in * n_out, span_bytes=n_in * n_out * 4)
        # Pass 2 on transposed rows.
        n_chunks2 = -(-width_out // vl)
        sim.varith(min(width_out, vl), n_out * coeffs_nonzero * n_chunks2)
        # Store back transposed (Fig. 4 l.18).
        for _row in range(n_out):
            sim.vstore(dst_base, min(width_out, vl))
    _ = chunks_in  # geometry hint retained for readability




def _trace_tuple_mult(
    sim: TraceSimulator,
    n_tiles: int,
    f: int,
    c: int,
    alpha2: int,
    u_base: int,
    v_base: int,
    m_base: int,
    vl: int,
) -> None:
    """Register-blocked tuple multiplication (the paper's "16 blocks with
    4 elements in each block"): hold a BF x BP block of M accumulators in
    registers across the channel loop, so each loaded U/V tile feeds BP
    (resp. BF) vector FMAs.

    The accumulator block must fit the 32 vector registers: a tuple tile
    of ``alpha2`` elements occupies ``ceil(alpha2/VL)`` registers, so
    short vectors force smaller blocks (fewer FMAs per loaded tile) — one
    more way longer vectors win (Figs. 9/10).
    """
    tile_instrs = -(-alpha2 // vl)  # registers (and instrs) per tuple tile
    acc_budget = max(1, 24 // tile_instrs)
    bf = max(1, int(acc_budget**0.5))
    bp = max(1, acc_budget // bf)
    n_pblocks = -(-n_tiles // bp)
    n_fblocks = -(-f // bf)
    for pb in sim.loop(n_pblocks, warmup=2, sample=5):
        p0 = pb * bp
        np_ = min(bp, n_tiles - p0)
        for fb in sim.loop(n_fblocks, warmup=1, sample=4):
            f0 = fb * bf
            nf = min(bf, f - f0)
            # Zero the M accumulator block (registers).
            sim.varith(min(vl, alpha2), nf * np_ * tile_instrs, flops_per_elem=0.0)
            for ci in range(c):
                sim.scalar(3)
                for r in range(nf):
                    sim.vload(u_base + (((f0 + r) * c + ci) * alpha2) * 4, alpha2)
                for q in range(np_):
                    sim.vload(v_base + (((p0 + q) * c + ci) * alpha2) * 4, alpha2)
                # nf*np_ vector-vector FMAs over the tuple positions.
                sim.varith(min(vl, alpha2), nf * np_ * tile_instrs)
            for r in range(nf):
                for q in range(np_):
                    sim.vstore(
                        m_base + (((p0 + q) * f + f0 + r) * alpha2) * 4, alpha2
                    )


def trace_winograd_conv(
    sim: TraceSimulator,
    spec: ConvSpec,
    include_weight_transform: bool = False,
) -> None:
    """Replay a Winograd convolutional layer on the timing simulator.

    Buffers: transformed input tiles ``V`` laid out ``(P, C, 64)`` and
    accumulators ``M (P, F, 64)`` so the tuple-multiplication inner loop
    streams sequentially; transformed weights ``U (F, C, 64)`` are reused
    across tiles — the layer's main cache working set (the reason
    Winograd saturates at moderate L2 sizes, Figs. 9/10).

    Stride-2 layers run the full stride-1 grid (4x the useful work) and
    subsample, matching the NNPACK-style fallback.
    """
    t = f6x3()
    isa = sim.machine.make_isa()
    vl = sim.machine.vlen_f32
    alpha2 = t.alpha * t.alpha  # 64 tuple positions
    c, f = spec.in_channels, spec.out_channels
    _, _, th, tw, pad_h, pad_w = _stride1_geometry(spec, t.m, t.alpha)
    n_tiles = th * tw

    src = sim.alloc("wino_input", c * pad_h * pad_w * 4)
    vbuf = sim.alloc("wino_V", n_tiles * c * alpha2 * 4)
    ubuf = sim.alloc("wino_U", f * c * alpha2 * 4)
    mbuf = sim.alloc("wino_M", n_tiles * f * alpha2 * 4)
    out = sim.alloc("wino_out", f * spec.out_h * spec.out_w * 4)

    with sim.kernel("winograd"):
        # Transformed weights are produced offline and re-streamed every
        # tile iteration: they stay resident iff F*C*64*4 bytes fit the
        # L2 — the capacity knee of Figs. 9/10.
        sim.hierarchy.note_resident_range(ubuf.base, ubuf.nbytes)
        with sim.kernel("wino_input_transform"):
            _trace_transform_pass(
                sim,
                isa,
                n_tiles * c,
                src.base,
                vbuf.base,
                t.alpha,
                t.alpha,
                src_row_stride=pad_w * 4,
                coeffs_nonzero=5,
            )
        if include_weight_transform:
            with sim.kernel("wino_weight_transform"):
                _trace_transform_pass(
                    sim, isa, f * c, ubuf.base, ubuf.base, t.r, t.alpha,
                    src_row_stride=t.r * 4, coeffs_nonzero=3,
                )
        sim.hierarchy.note_resident_range(vbuf.base, vbuf.nbytes)
        with sim.kernel("wino_tuple_mult"):
            _trace_tuple_mult(
                sim, n_tiles, f, c, alpha2, ubuf.base, vbuf.base, mbuf.base, vl
            )
        sim.hierarchy.note_resident_range(mbuf.base, mbuf.nbytes)
        with sim.kernel("wino_output_transform"):
            _trace_transform_pass(
                sim,
                isa,
                n_tiles * f,
                mbuf.base,
                out.base,
                t.alpha,
                t.m,
                src_row_stride=t.alpha * 4,
                coeffs_nonzero=4,
            )
