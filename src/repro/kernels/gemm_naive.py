"""Naive GEMM — the Darknet baseline (paper Fig. 1).

``C += alpha * A @ B`` with the i-k-j loop order of Darknet's
``gemm_nn``, compiled scalar (the paper's baseline uses
``-fno-vectorize``).  The functional path keeps the exact loop structure
(the j loop is data-parallel, so NumPy evaluation of it is bit-identical
to the scalar loop); the trace path prices the scalar instruction stream.
"""

from __future__ import annotations

import numpy as np

from ..machine.core import LOOP_OVERHEAD_INSTRS, NAIVE_GEMM_INNER_INSTRS
from ..machine.simulator import TraceSimulator

__all__ = ["gemm_naive", "trace_gemm_naive"]


def gemm_naive(
    alpha: float, A: np.ndarray, B: np.ndarray, C: np.ndarray
) -> np.ndarray:
    """Fig. 1: ``for i: for k: A_alpha = alpha*A[i,k]; for j: C += A_alpha*B[k,j]``.

    Updates *C* in place and returns it.
    """
    M, K = A.shape
    K2, N = B.shape
    if K2 != K or C.shape != (M, N):
        raise ValueError(f"shape mismatch: A{A.shape} B{B.shape} C{C.shape}")
    alpha = np.float32(alpha)
    for i in range(M):
        for k in range(K):
            a_alpha = alpha * A[i, k]
            # The j loop of Fig. 1; iterations are independent, so the
            # NumPy expression computes the identical result.
            C[i, :] += a_alpha * B[k, :]
    return C


def trace_gemm_naive(
    sim: TraceSimulator,
    M: int,
    N: int,
    K: int,
    a_base: int,
    b_base: int,
    c_base: int,
) -> None:
    """Replay the scalar naive GEMM on the timing simulator.

    Per inner-loop iteration: load ``B[k,j]`` and ``C[i,j]``, one FMA's
    worth of scalar arithmetic, store ``C[i,j]`` — all through the L1
    (scalar side), with the loop bookkeeping of an ``-O3`` scalar build.

    The j loop is sampled in *line-sized bursts* so the cache model sees
    the true spatial locality (consecutive j share a line) at a fraction
    of the cost.
    """
    line = sim.machine.l1.line_bytes
    burst = max(1, line // 4)  # elements per cache line
    n_bursts = -(-N // burst)
    with sim.kernel("gemm"):
        for i in sim.loop(M, warmup=1, sample=3):
            for k in sim.loop(K, warmup=2, sample=6):
                sim.scalar(3)  # a_alpha = alpha * A[i,k] (+ its load below)
                sim.scalar_load(a_base + (i * K + k) * 4)
                b_row = b_base + k * N * 4
                c_row = c_base + i * N * 4
                for jb in sim.loop(n_bursts, warmup=1, sample=4):
                    j0 = jb * burst
                    j_hi = min(N, j0 + burst)
                    for j in range(j0, j_hi):
                        sim.scalar_load(b_row + j * 4)
                        sim.scalar_load(c_row + j * 4)
                        sim.scalar(NAIVE_GEMM_INNER_INSTRS + LOOP_OVERHEAD_INSTRS)
                        sim.scalar_store(c_row + j * 4)
                        # 2 flops (mul+add) per iteration, scalar.
                        sim.count_flops(2)
