"""Convolutional-layer shape specification.

Shared vocabulary between the functional kernels, the timing traces, the
network framework and the roofline analysis.  Follows Section IV-A of the
paper: a convolutional layer with an ``k x k`` kernel over an input of
``c`` channels and spatial size ``h x w`` with ``n`` filters maps to a
GEMM with ``M = n``, ``K = k*k*c`` and ``N = out_h * out_w``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConvSpec"]


@dataclass(frozen=True)
class ConvSpec:
    """Shape and hyper-parameters of one convolutional layer."""

    in_channels: int
    in_h: int
    in_w: int
    out_channels: int
    ksize: int = 3
    stride: int = 1
    pad: int = 1

    def __post_init__(self):
        for f in ("in_channels", "in_h", "in_w", "out_channels", "ksize", "stride"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")
        if self.pad < 0:
            raise ValueError("pad must be non-negative")

    # -- output geometry ------------------------------------------------
    @property
    def out_h(self) -> int:
        """Output height (Darknet convention: floor division)."""
        return (self.in_h + 2 * self.pad - self.ksize) // self.stride + 1

    @property
    def out_w(self) -> int:
        """Output width."""
        return (self.in_w + 2 * self.pad - self.ksize) // self.stride + 1

    # -- GEMM view (paper Section IV-A) ---------------------------------
    @property
    def M(self) -> int:
        """GEMM M: number of filters."""
        return self.out_channels

    @property
    def K(self) -> int:
        """GEMM K: ``ksize * ksize * in_channels``."""
        return self.ksize * self.ksize * self.in_channels

    @property
    def N(self) -> int:
        """GEMM N: output pixels ``out_h * out_w``."""
        return self.out_h * self.out_w

    # -- work/footprint metrics -----------------------------------------
    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the layer (= M*N*K)."""
        return self.M * self.N * self.K

    @property
    def flops(self) -> int:
        """Floating-point operations (2 per MAC)."""
        return 2 * self.macs

    def arithmetic_intensity(self) -> float:
        """AI of the GEMM as defined in Section VI-C(a) of the paper:

        ``AI = 2*M*N*K / (4 * (M*N + K*N + M*K))`` — flops over the bytes
        of the three f32 matrices.
        """
        m, n, k = self.M, self.N, self.K
        return (2.0 * m * n * k) / (4.0 * (m * n + k * n + m * k))

    @property
    def winograd_eligible(self) -> bool:
        """Whether the paper's Winograd path applies (3x3 kernels;
        Section VII uses it for stride 1 and 2)."""
        return self.ksize == 3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"conv {self.in_channels}x{self.in_h}x{self.in_w} -> "
            f"{self.out_channels}x{self.out_h}x{self.out_w} "
            f"k{self.ksize}s{self.stride}p{self.pad} "
            f"[M={self.M} N={self.N} K={self.K}]"
        )
