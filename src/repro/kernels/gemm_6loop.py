"""Optimized 6-loop BLIS-like GEMM (paper Fig. 3).

On top of the 3-loop optimizations this adds (i) tiling into
``blockM x blockN x blockK`` blocks tuned to the cache sizes, (ii) panel
packing of A and B, and (iii) software prefetching of the C block (into
L1) and the packed panels (L2, then L1 ahead of the micro-kernel).

Whether these BLIS-like optimizations pay off is the paper's first
co-design finding: they do on A64FX (2x, thanks to the L1-fed VPU and
hardware+software prefetch), barely on gem5-SVE (15 %), and *not at all*
on RVV, whose VPU reads via the L2 and ignores prefetch (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..isa import F32, VectorISA
from ..isa.intrinsics import vfmacc, vle, vse
from ..machine.simulator import TraceSimulator
from .gemm_3loop import DEFAULT_UNROLL
from .packing import pack_a_panels, pack_b_panels, trace_pack_a, trace_pack_b

__all__ = ["BlockSizes", "PAPER_BLOCK_SIZES", "gemm_6loop", "trace_gemm_6loop"]


@dataclass(frozen=True)
class BlockSizes:
    """The ``blockM, blockN, blockK`` tile of Fig. 3."""

    m: int = 16
    n: int = 512
    k: int = 128

    def __post_init__(self):
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("block sizes must be positive")

    def footprint_bytes(self) -> int:
        """Packed working set: A panel + B panel + C block (f32)."""
        return 4 * (self.m * self.k + self.k * self.n + self.m * self.n)


#: The block-size candidates evaluated in Table II of the paper.
PAPER_BLOCK_SIZES = (
    BlockSizes(128, 1024, 256),
    BlockSizes(16, 1024, 128),
    BlockSizes(16, 512, 128),  # optimal on RVV @ gem5 (0.98)
    BlockSizes(16, 512, 256),
    BlockSizes(32, 512, 128),
    BlockSizes(64, 1024, 128),
)


def gemm_6loop(
    isa: VectorISA,
    alpha: float,
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    blocks: Optional[BlockSizes] = None,
    unroll: int = DEFAULT_UNROLL,
) -> np.ndarray:
    """Functional 6-loop GEMM, loop-for-loop after Fig. 3.

    Updates ``C += alpha * A @ B`` in place and returns it.  Numerically
    identical to :func:`~repro.kernels.gemm_3loop.gemm_3loop` up to f32
    summation-order effects within each K block.
    """
    if blocks is None:
        blocks = BlockSizes()
    M, K = A.shape
    K2, N = B.shape
    if K2 != K or C.shape != (M, N):
        raise ValueError(f"shape mismatch: A{A.shape} B{B.shape} C{C.shape}")
    alpha = np.float32(alpha)
    vlmax = isa.max_elems(F32)
    Cf = C.reshape(-1)
    u_max = min(unroll, blocks.m)

    for j1 in range(0, N, blocks.n):  # Fig. 3 line 3
        bn = min(blocks.n, N - j1)
        for k1 in range(0, K, blocks.k):  # line 4
            bk = min(blocks.k, K - k1)
            pB = pack_b_panels(B, k1, bk, j1, bn, vlmax)  # line 5
            for i1 in range(0, M, blocks.m):  # line 6
                bm = min(blocks.m, M - i1)
                pA = pack_a_panels(A, i1, bm, k1, bk, u_max)  # line 7
                j = 0
                while j < bn:  # line 8
                    gvl = isa.grant_vl(bn - j, F32)  # line 9
                    p = j // vlmax
                    panelB = pB[p].reshape(-1)
                    i = 0
                    while i < bm:  # line 10
                        u = min(u_max, bm - i)
                        q = i // u_max
                        panelA = pA[q]
                        acc = [
                            vle(Cf, (i1 + i + r) * N + j1 + j, gvl, vlmax)
                            for r in range(u)
                        ]  # line 14
                        for k in range(bk):  # line 15
                            vb = vle(panelB, k * vlmax, gvl, vlmax)  # line 18
                            arow = panelA[k]
                            for r in range(u):
                                vfmacc(acc[r], alpha * arow[r], vb, gvl, vlmax)  # line 21
                        for r in range(u):
                            vse(acc[r], Cf, (i1 + i + r) * N + j1 + j, gvl, vlmax)  # line 23
                        i += u
                    j += gvl
    return C


def trace_gemm_6loop(
    sim: TraceSimulator,
    M: int,
    N: int,
    K: int,
    a_base: int,
    b_base: int,
    c_base: int,
    blocks: Optional[BlockSizes] = None,
    unroll: int = DEFAULT_UNROLL,
    alpha_is_one: bool = True,
) -> None:
    """Replay the 6-loop GEMM's instruction stream.

    The pack buffers are allocated once and reused across blocks (as in
    BLIS); the micro-kernel walks them strictly sequentially, which is
    what lets the A64FX stream prefetcher lock on.  Software prefetch
    events follow Fig. 3: C block into L1 (line 11), packed panels into
    L2 (lines 12-13) and the next k-slices into L1 (lines 16-17).
    """
    if blocks is None:
        blocks = BlockSizes()
    vl = sim.machine.vlen_f32
    u_max = min(unroll, blocks.m)
    line = sim.machine.l1.line_bytes
    packA = sim.alloc("packA", blocks.m * blocks.k * 4)
    packB = sim.alloc("packB", blocks.k * blocks.n * 4)
    spilled = max(0, unroll + 3 - 32)

    n_j1 = -(-N // blocks.n)
    n_k1 = -(-K // blocks.k)
    n_i1 = -(-M // blocks.m)
    with sim.kernel("gemm"):
        sim.hierarchy.note_resident_range(a_base, M * K * 4)
        for j1b in sim.loop(n_j1, warmup=1, sample=4):
            j1 = j1b * blocks.n
            bn = min(blocks.n, N - j1)
            for k1b in sim.loop(n_k1, warmup=1, sample=3):
                k1 = k1b * blocks.k
                bk = min(blocks.k, K - k1)
                trace_pack_b(sim, b_base, packB.base, N, k1, bk, j1, bn, vl)
                for i1b in sim.loop(n_i1, warmup=1, sample=3):
                    i1 = i1b * blocks.m
                    bm = min(blocks.m, M - i1)
                    trace_pack_a(sim, a_base, packA.base, K, i1, bm, k1, bk, u_max)
                    # Fig. 3 lines 12-13: prefetch packed panels into L2.
                    sim.sw_prefetch(packB.base, bk * vl * 4, "L2")
                    sim.sw_prefetch(packA.base, bk * u_max * 4, "L2")
                    n_jc = -(-bn // vl)
                    for jc in sim.loop(n_jc, warmup=1, sample=3):
                        j = jc * vl
                        gvl = min(vl, bn - j)
                        sim.scalar(4)  # vsetvl + bookkeeping (line 9)
                        panelB = packB.base + (jc * bk * vl) * 4
                        for ig in sim.loop(-(-bm // u_max), warmup=1, sample=2):
                            i = ig * u_max
                            u = min(u_max, bm - i)
                            panelA = packA.base + (ig * bk * u_max) * 4
                            # Line 11: prefetch the C block into L1.
                            sim.sw_prefetch(
                                c_base + ((i1 + i) * N + j1 + j) * 4, u * gvl * 4, "L1"
                            )
                            for r in range(u):  # line 14
                                sim.vload(c_base + ((i1 + i + r) * N + j1 + j) * 4, gvl)
                            for k in range(bk):  # line 15
                                baddr = panelB + (k * vl) * 4
                                # Lines 16-17: prefetch next k slices to L1.
                                sim.sw_prefetch(baddr + vl * 4, line, "L1")
                                if k % 8 == 0:
                                    sim.sw_prefetch(
                                        panelA + (k * u_max) * 4 + line, line, "L1"
                                    )
                                sim.vload(baddr, gvl)  # line 18
                                if (k * u_max) % (line // 4) == 0:
                                    sim.scalar_load(panelA + (k * u_max) * 4)
                                sim.varith(gvl, u)  # line 21
                                sim.scalar(2 if alpha_is_one else 3)
                                if spilled:
                                    sim.spill(spilled)
                            for r in range(u):  # line 23
                                sim.vstore(
                                    c_base + ((i1 + i + r) * N + j1 + j) * 4, gvl
                                )
