"""The ``im2col`` kernel (Darknet's ``im2col_cpu``).

Unrolls convolution windows into the columns of a ``K x N`` matrix so
that convolution becomes a single GEMM (Section IV-A).  The functional
path matches Darknet's semantics bit-for-bit (zero padding, row-major
``CHW`` input, ``K = c*k*k`` rows ordered channel-major); the trace path
replays the kernel's memory behaviour for the timing simulator.
"""

from __future__ import annotations

import numpy as np

from ..machine.simulator import TraceSimulator
from .convspec import ConvSpec

__all__ = ["im2col", "col2im", "trace_im2col"]


def im2col(x: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Expand input *x* of shape ``(C, H, W)`` into a ``(K, N)`` matrix.

    Column ``p`` holds the ``c*k*k`` input values under the convolution
    window of output pixel ``p``; out-of-bounds taps read zero (Darknet's
    implicit zero padding).

    Vectorized with a single fancy-index gather instead of Python loops
    (the ``K x N`` result can reach hundreds of MB for YOLOv3 layers).
    """
    c, h, w = x.shape
    if (c, h, w) != (spec.in_channels, spec.in_h, spec.in_w):
        raise ValueError(
            f"input shape {(c, h, w)} does not match spec "
            f"{(spec.in_channels, spec.in_h, spec.in_w)}"
        )
    k, s, p = spec.ksize, spec.stride, spec.pad
    oh, ow = spec.out_h, spec.out_w

    # Row index r of the K dimension decomposes as (channel, ky, kx).
    chan = np.repeat(np.arange(c), k * k)
    ky = np.tile(np.repeat(np.arange(k), k), c)
    kx = np.tile(np.arange(k), c * k)
    # Column index decomposes as (oy, ox).
    oy = np.repeat(np.arange(oh), ow)
    ox = np.tile(np.arange(ow), oh)

    iy = ky[:, None] + s * oy[None, :] - p  # (K, N)
    ix = kx[:, None] + s * ox[None, :] - p
    valid = (iy >= 0) & (iy < h) & (ix >= 0) & (ix < w)
    out = np.zeros((spec.K, spec.N), dtype=x.dtype)
    cc = np.broadcast_to(chan[:, None], iy.shape)
    out[valid] = x[cc[valid], np.clip(iy, 0, h - 1)[valid], np.clip(ix, 0, w - 1)[valid]]
    return out


def col2im(cols: np.ndarray, spec: ConvSpec) -> np.ndarray:
    """Inverse scatter-add of :func:`im2col` (used by tests as an adjoint
    property check; Darknet uses it in training only)."""
    if cols.shape != (spec.K, spec.N):
        raise ValueError(f"cols shape {cols.shape} != {(spec.K, spec.N)}")
    c, h, w = spec.in_channels, spec.in_h, spec.in_w
    k, s, p = spec.ksize, spec.stride, spec.pad
    oh, ow = spec.out_h, spec.out_w

    chan = np.repeat(np.arange(c), k * k)
    ky = np.tile(np.repeat(np.arange(k), k), c)
    kx = np.tile(np.arange(k), c * k)
    oy = np.repeat(np.arange(oh), ow)
    ox = np.tile(np.arange(ow), oh)
    iy = ky[:, None] + s * oy[None, :] - p
    ix = kx[:, None] + s * ox[None, :] - p
    valid = (iy >= 0) & (iy < h) & (ix >= 0) & (ix < w)
    cc = np.broadcast_to(chan[:, None], iy.shape)

    out = np.zeros((c, h, w), dtype=cols.dtype)
    np.add.at(
        out,
        (cc[valid], np.clip(iy, 0, h - 1)[valid], np.clip(ix, 0, w - 1)[valid]),
        cols[valid],
    )
    return out


def trace_im2col(sim: TraceSimulator, spec: ConvSpec, src_base: int, dst_base: int) -> None:
    """Replay im2col's memory behaviour on the timing simulator.

    The vectorized im2col streams each of the K rows of the output: for
    row (channel, ky, kx) it reads the input plane at stride ``stride``
    elements and writes ``N`` contiguous elements.  The paper vectorizes
    im2col with unit-stride stores and (for stride > 1) strided loads.
    """
    vl = sim.machine.vlen_f32
    n = spec.N
    plane = spec.in_h * spec.in_w
    with sim.kernel("im2col"):
        # Sample the K rows; each row's behaviour is homogeneous.
        for r in sim.loop(spec.K, warmup=1, sample=4):
            chan = r // (spec.ksize * spec.ksize)
            src_row = src_base + (chan * plane) * 4
            dst_row = dst_base + (r * n) * 4
            n_chunks = -(-n // vl)
            for jc in sim.loop(n_chunks, warmup=1, sample=3):
                j = jc * vl
                gvl = min(vl, n - j)
                sim.scalar(4)  # index arithmetic, bounds handling
                if spec.stride == 1:
                    sim.vload(src_row + j * 4, gvl)
                else:
                    sim.vload(src_row + j * spec.stride * 4, gvl, stride=spec.stride * 4)
                sim.vstore(dst_row + j * 4, gvl)
        # The produced K x N matrix just streamed through the cache; the
        # GEMM's re-reads hit iff it still fits (capacity question).
        sim.hierarchy.note_resident_range(dst_base, spec.K * spec.N * 4)
