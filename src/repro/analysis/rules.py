"""Registry of every analysis rule: id, severity, pass, description.

One row per rule the pipeline can emit (the same table documented in
docs/ANALYSIS.md).  ``repro analyze --list-rules`` prints it, and
``--rules``/``--ignore`` prefix filters are validated against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["RULES", "filter_findings", "rule_rows"]

#: rule id -> (severity, pass, one-line description).
RULES: Dict[str, Tuple[str, str, str]] = {
    # -- config lint ----------------------------------------------------
    "config/vlen-illegal": ("error", "lint", "vector length unconstructible for the ISA"),
    "config/line-not-pow2": ("error", "lint", "cache line size is not a power of two"),
    "config/line-inclusion": ("error", "lint", "L2 line smaller than / not a multiple of the L1 line"),
    "config/l2-smaller-than-l1": ("error", "lint", "inverted capacity hierarchy"),
    "config/pack-block-vl": ("error", "lint", "6-loop blocks.n smaller than / not a multiple of VL"),
    "config/pack-block-unroll": ("error", "lint", "6-loop blocks.m not divisible by the unroll"),
    "config/winograd-vl": ("error", "lint", "Winograd policy but LMUL-8 group cannot hold an 8x8 tile"),
    "config/unroll-spill": ("warning", "lint", "unroll factor exceeds the 32-register budget"),
    # -- trace verifier ---------------------------------------------------
    "trace/oob-unallocated": ("error", "verifier", "memory event outside every allocated buffer"),
    "trace/oob-overrun": ("error", "verifier", "access starts in a buffer but runs past its end"),
    "trace/buffer-overlap": ("error", "verifier", "allocation table entries alias each other"),
    "trace/vl-exceeds-grant": ("error", "verifier", "vector op exceeds its ISA VL / LMUL-8 grant"),
    "trace/bad-stride": ("error", "verifier", "negative stride or stride below the element width"),
    "trace/bad-elem-width": ("error", "verifier", "element width outside {1,2,4,8,16}"),
    "trace/bad-weight": ("error", "verifier", "sampling weight negative or non-finite"),
    "trace/bad-opcode": ("error", "verifier", "unknown opcode or unlabeled kernel id"),
    "trace/prefetch-level": ("error", "verifier", "software-prefetch level other than L1/L2"),
    "trace/vlen-illegal": ("error", "verifier", "recorded vlen_bits unconstructible for the ISA"),
    "trace/machine-mismatch": ("error", "verifier", "trace captured for a different ISA/VL/line"),
    # -- def-use dataflow -------------------------------------------------
    "dataflow/read-before-write": ("error", "defuse", "scratch consumed before its producer kernel wrote it"),
    "dataflow/write-after-read-overlap": ("error", "defuse", "write lands on bytes an earlier read consumed while undefined"),
    "dataflow/dead-store": ("warning", "defuse", "scratch written repeatedly but never read by any kernel"),
    # -- oracle -----------------------------------------------------------
    "oracle/bound-exceeds-sim": ("error", "bounds", "static cycle floor exceeds the simulated cycles"),
    # -- static cost model (predict vs. oracle drift gate) ----------------
    "predict/cycles-drift": ("error", "predict", "cost-model cycles outside the drift band around the simulated cycles"),
    "predict/below-floor": ("error", "predict", "cost-model cycles below the sound static lower bound"),
    # -- cache state (environmental; excluded from baselines) -------------
    "cache/corrupt-entry": ("warning", "cachestate", "cache file quarantined after failing its integrity check"),
    "sweep/orphaned-journal": ("warning", "cachestate", "interrupted sweep checkpoint nobody resumed"),
    "sweep/stale-lease": ("warning", "cachestate", "job orphaned by a dead owner; adoptable via 'repro submit'"),
    # -- code invariants (repro check-code; source-level contracts) --------
    "det/wall-clock": ("error", "codecheck", "time/datetime call inside the sim-core zone"),
    "det/unseeded-random": ("error", "codecheck", "global-state or unseeded randomness inside sim-core"),
    "det/float-cycles": ("error", "codecheck", "float32/float16 narrowing inside sim-core accumulation"),
    "det/unsorted-iteration": ("warning", "codecheck", "iterating a directory listing or set without sorted()"),
    "io/bare-write": ("error", "codecheck", "non-atomic write in a durable-io or emitter module"),
    "io/digest-gap": ("warning", "codecheck", "durable atomic_replace with no sha256/digest within 3 calls"),
    "io/json-unsorted": ("error", "codecheck", "json.dump(s) without sort_keys=True in a durable/emitter module"),
    "mp/fork-unsafe": ("error", "codecheck", "lambda/closure/bound-method submitted to a worker pool"),
    "mp/global-mutation": ("error", "codecheck", "worker task rebinds module globals"),
    "mp/shm-leak": ("error", "codecheck", "publish_shm without release_shm in a finally"),
    "api/env-knob": ("error", "codecheck", "os.environ/os.getenv read outside the knob registry"),
    "api/knob-undeclared": ("error", "codecheck", "REPRO_* literal with no declaration in core.knobs"),
    "exc/silent-swallow": ("warning", "codecheck", "broad except silently dropping errors in durable-io"),
}


def rule_rows() -> List[Dict]:
    """Rows for ``repro analyze --list-rules``."""
    return [
        {"rule": rule, "severity": sev, "pass": pas, "description": desc}
        for rule, (sev, pas, desc) in sorted(RULES.items())
    ]


def filter_findings(findings, rules: Optional[Iterable[str]] = None,
                    ignore: Optional[Iterable[str]] = None):
    """Keep findings matching any *rules* prefix, minus *ignore* prefixes.

    Prefix semantics: ``dataflow`` selects the whole family,
    ``dataflow/dead-store`` exactly one rule.  ``rules=None`` keeps
    everything.
    """
    rules = tuple(rules) if rules else None
    ignore = tuple(ignore) if ignore else ()

    def keep(f):
        if rules is not None and not f.rule.startswith(rules):
            return False
        return not (ignore and f.rule.startswith(ignore))

    return [f for f in findings if keep(f)]
