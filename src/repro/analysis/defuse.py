"""Def-use verification over buffer byte-ranges of a recorded trace.

Writes are *defs*, reads are *uses*.  The pass partitions demand
accesses per allocated buffer, splits each buffer's access sequence
into maximal same-kind *runs* (a pack kernel's store burst, a consume
kernel's load burst), and checks producer/consumer ordering between
kernels on the interval algebra of run hulls:

* ``dataflow/read-before-write`` — a read that lands entirely outside
  everything written so far, on bytes that a *different* kernel label
  defines **later**: the classic consume-before-pack ordering bug.
* ``dataflow/write-after-read-overlap`` — a write from a different
  kernel landing on bytes that an earlier read already consumed while
  they were still (partially) undefined: aliasable scratch reuse where
  the producer arrived after its consumer.
* ``dataflow/dead-store`` — a scratch buffer that is written more than
  once (overlapping stores) yet **never read anywhere** in the trace:
  packing work whose result no kernel consumes.  Buffer-granular by
  design (see below).

Why hulls and labels, not exact bytes
-------------------------------------
Sampled loops (``SampledTraceBase.loop``) record only warmup + sampled
+ tail iterations, so the exact byte union of a pack kernel's stores is
full of holes that the real kernel fills; and the Winograd transform
traces fold their destination writes onto the panel base (they model
traffic, not exact addresses).  Byte-exact def-use chains over such
streams would drown in false positives.  Run *hulls* (the address span
of a maximal same-kind burst) are sampling-invariant, and requiring
**positive evidence** — a later def from a different kernel label —
means purely-folded or genuinely-unknowable patterns are skipped
rather than guessed at.  In-place transforms and read-modify-write
accumulators (same label reads+writes) are therefore exempt by
construction.

Buffer classification
---------------------
* **external** — models pre-initialized data: name starts with one of
  ``EXTERNAL_PREFIXES`` (the network-level ping-pong activations and
  the weight arrays), or the buffer's very first recorded access is a
  read (the padded-input stand-ins ``wino_input``/``fft_x``/ offline
  weight tiles ``wino_U``, and in-place FFT planes).  Skipped entirely.
* **sink** — names ending in ``_out`` are layer outputs: live-out by
  convention, exempt from ``dead-store`` only.
* everything else is **scratch** and gets all three rules.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..machine.trace import (
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_VLOAD,
    OP_VSTORE,
)
from .findings import Finding

__all__ = ["defuse_trace", "EXTERNAL_PREFIXES", "SINK_SUFFIXES"]

#: Buffers modelling externally-initialized, network-lifetime data.
EXTERNAL_PREFIXES = ("activations", "weights")

#: Buffers that are a layer's final output: live-out past the trace.
SINK_SUFFIXES = ("_out",)

#: Dead-store noise floor: the never-read fraction of multiply-written
#: bytes must exceed this before the rule fires (pack kernels may
#: legally leave a partial trailing line unconsumed per panel).
_DEAD_FRACTION = 0.25


def _merge(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of half-open intervals, sorted and coalesced."""
    if not intervals:
        return []
    ivs = sorted(intervals)
    out = [list(ivs[0])]
    for lo, hi in ivs[1:]:
        if lo <= out[-1][1]:
            out[-1][1] = max(out[-1][1], hi)
        else:
            out.append([lo, hi])
    return [(lo, hi) for lo, hi in out]


def _overlap_any(starts: np.ndarray, ends: np.ndarray,
                 ivs: List[Tuple[int, int]]) -> np.ndarray:
    """Per-event mask: does [start, end) intersect any interval?"""
    if not ivs:
        return np.zeros(starts.size, dtype=bool)
    lo = np.array([iv[0] for iv in ivs], dtype=np.int64)
    hi = np.array([iv[1] for iv in ivs], dtype=np.int64)
    # Candidate: last interval starting before the event's end.
    j = np.searchsorted(lo, ends, side="left") - 1
    jc = np.clip(j, 0, lo.size - 1)
    return (j >= 0) & (hi[jc] > starts)


def _contained(starts: np.ndarray, ends: np.ndarray,
               ivs: List[Tuple[int, int]]) -> np.ndarray:
    """Per-event mask: is [start, end) fully inside one interval?"""
    if not ivs:
        return np.zeros(starts.size, dtype=bool)
    lo = np.array([iv[0] for iv in ivs], dtype=np.int64)
    hi = np.array([iv[1] for iv in ivs], dtype=np.int64)
    j = np.searchsorted(lo, starts, side="right") - 1
    jc = np.clip(j, 0, lo.size - 1)
    return (j >= 0) & (ends <= hi[jc])


def _subtract(ivs: List[Tuple[int, int]],
              cut: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Interval-set difference ``ivs - cut`` (both merged)."""
    out = []
    for lo, hi in ivs:
        cur = lo
        for clo, chi in cut:
            if chi <= cur or clo >= hi:
                continue
            if clo > cur:
                out.append((cur, clo))
            cur = max(cur, chi)
            if cur >= hi:
                break
        if cur < hi:
            out.append((cur, hi))
    return out


def _length(ivs: List[Tuple[int, int]]) -> int:
    return sum(hi - lo for lo, hi in ivs)


class _BufferStream:
    """One buffer's demand accesses in trace order."""

    def __init__(self, name, starts, ends, is_write, kid, eidx):
        self.name = name
        self.starts = starts
        self.ends = ends
        self.is_write = is_write
        self.kid = kid
        self.eidx = eidx  # original event indices (finding examples)

    def runs(self):
        """Yield (kind, slice) for maximal same-kind runs."""
        if self.starts.size == 0:
            return
        change = np.flatnonzero(self.is_write[1:] != self.is_write[:-1]) + 1
        bounds = np.concatenate(([0], change, [self.is_write.size]))
        for a, b in zip(bounds[:-1], bounds[1:]):
            yield bool(self.is_write[a]), slice(int(a), int(b))


def _classify(name: str, first_is_read: bool) -> str:
    # Deduplicated captures suffix repeated allocations with "#<n>"
    # ("wino_out#2"); classification is on the base name.
    base = name.split("#", 1)[0]
    if base.startswith(EXTERNAL_PREFIXES) or first_is_read:
        return "external"
    if base.endswith(SINK_SUFFIXES):
        return "sink"
    return "scratch"


def _finding(view, rule, severity, buf_name, label, message, sel,
             max_examples, **detail) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        where=f"{label} @ {buf_name}",
        message=message,
        count=int(len(sel)),
        detail={
            "examples": [view.example(int(i)) for i in sel[:max_examples]],
            **detail,
        },
    )


def defuse_trace(trace, machine=None, max_examples: int = 3) -> List[Finding]:
    """Check producer/consumer ordering on every scratch buffer."""
    from .verifier import _TraceView  # shared columnar view / examples

    view = _TraceView(trace)
    op = view.op
    is_read = (op == OP_VLOAD) | (op == OP_SCALAR_LOAD)
    is_write = (op == OP_VSTORE) | (op == OP_SCALAR_STORE)
    mem = is_read | is_write
    idx = np.flatnonzero(mem)
    findings: List[Finding] = []
    if idx.size == 0 or not trace.buffers:
        return findings

    addr = view.i0[idx]
    n, ew, stride = view.i1[idx], view.i2[idx], view.i3[idx]
    is_v = (op[idx] == OP_VLOAD) | (op[idx] == OP_VSTORE)
    unit = (stride == 0) | (stride == ew)
    v_ext = np.where(unit, n * ew, (np.maximum(n, 1) - 1) * np.abs(stride) + ew)
    ext = np.where(is_v, v_ext, n)  # scalar: i1 = nbytes
    ends = addr + np.maximum(ext, 1)

    bufs = sorted(trace.buffers, key=lambda b: b[1])
    bases = np.array([b[1] for b in bufs], dtype=np.int64)
    tops = np.array([b[1] + b[2] for b in bufs], dtype=np.int64)
    pos = np.searchsorted(bases, addr, side="right") - 1
    safe = np.clip(pos, 0, len(bufs) - 1)
    inside = (pos >= 0) & (addr < tops[safe]) & (ends <= tops[safe])
    # Accesses outside any buffer belong to the bounds rules, not here.
    if not inside.any():
        return findings

    line = int(machine.l2.line_bytes) if machine is not None else 64
    order = np.argsort(pos[inside], kind="stable")
    sel = idx[inside][order]
    b_of = pos[inside][order]
    starts_s = addr[inside][order]
    ends_s = ends[inside][order]
    write_s = is_write[sel]
    kid_s = view.kid[sel]
    cuts = np.searchsorted(b_of, np.arange(len(bufs) + 1))

    for bi, (bname, _base, _nbytes) in enumerate(bufs):
        lo, hi = cuts[bi], cuts[bi + 1]
        if lo == hi:
            continue
        stream = _BufferStream(
            bname, starts_s[lo:hi], ends_s[lo:hi],
            write_s[lo:hi], kid_s[lo:hi], sel[lo:hi],
        )
        kind = _classify(bname, first_is_read=not bool(stream.is_write[0]))
        if kind == "external":
            continue
        _check_buffer(view, stream, kind, line, max_examples, findings)
    return findings


def _check_buffer(view, stream, kind, line, max_examples, findings):
    runs = list(stream.runs())
    # Per-run metadata: (is_write, hull, dominant label).
    meta = []
    for w, sl in runs:
        labels = np.unique(stream.kid[sl])
        meta.append({
            "write": w,
            "hull": (int(stream.starts[sl].min()), int(stream.ends[sl].max())),
            "labels": {int(x) for x in labels},
            "slice": sl,
        })

    # ---- dead-store: multiply-written, never-read scratch ------------
    if kind == "scratch" and not any(not m["write"] for m in meta):
        w_starts = stream.starts
        w_ends = stream.ends
        o = np.argsort(w_starts, kind="stable")
        run_max = np.maximum.accumulate(w_ends[o])
        overlapped = w_starts[o][1:] < run_max[:-1]
        if overlapped.any():
            multi = _length(_merge([
                (int(a), int(b))
                for a, b in zip(w_starts[o][1:][overlapped],
                                np.minimum(w_ends[o][1:], run_max[:-1])[overlapped])
            ]))
            total = _length(_merge(
                [(int(a), int(b)) for a, b in zip(w_starts, w_ends)]
            ))
            if multi >= max(line, _DEAD_FRACTION * total):
                hot = np.flatnonzero(stream.is_write)
                labels = np.unique(stream.kid)
                label = view.label_of(int(labels[0]))
                findings.append(_finding(
                    view, "dataflow/dead-store", "warning", stream.name,
                    label,
                    f"buffer {stream.name!r} is written repeatedly "
                    f"({multi} overlapping bytes) but never read",
                    stream.eidx[hot], max_examples,
                    overlapping_bytes=int(multi),
                ))
        return

    # ---- ordered def-use walk ----------------------------------------
    defined: List[Tuple[int, int]] = []   # union of write-run hulls so far
    stale: List[Tuple[int, Tuple[int, int]]] = []  # (reader label, interval)
    for ri, m in enumerate(meta):
        sl = m["slice"]
        starts = stream.starts[sl]
        ends = stream.ends[sl]
        if not m["write"]:
            # Uses.  Fully-undefined reads are read-before-write
            # *candidates*; they fire only with positive evidence — a
            # later write run from a different kernel covering them.
            outside = ~_overlap_any(starts, ends, defined)
            if outside.any():
                later = _merge([
                    mm["hull"] for mm in meta[ri + 1:]
                    if mm["write"] and not (mm["labels"] & m["labels"])
                ])
                guilty = outside & _overlap_any(starts, ends, later)
                if guilty.any():
                    bad = np.flatnonzero(guilty)
                    label = view.label_of(int(stream.kid[sl][bad[0]]))
                    findings.append(_finding(
                        view, "dataflow/read-before-write", "error",
                        stream.name, label,
                        f"read of {stream.name!r} before the bytes are "
                        "written (producer kernel runs later)",
                        stream.eidx[sl][bad], max_examples,
                    ))
            # Partially-defined reads contribute their undefined bytes
            # to the stale set (write-after-read evidence).
            partial = ~outside & ~_contained(starts, ends, defined)
            for i in np.flatnonzero(partial):
                for iv in _subtract(
                    [(int(starts[i]), int(ends[i]))], defined
                ):
                    stale.append((int(stream.kid[sl][i]), iv))
        else:
            if stale:
                hostile = _merge([
                    iv for lab, iv in stale if lab not in m["labels"]
                ])
                guilty = _overlap_any(starts, ends, hostile)
                if guilty.any():
                    bad = np.flatnonzero(guilty)
                    label = view.label_of(int(stream.kid[sl][bad[0]]))
                    findings.append(_finding(
                        view, "dataflow/write-after-read-overlap", "error",
                        stream.name, label,
                        f"write to {stream.name!r} lands on bytes an "
                        "earlier read already consumed while undefined",
                        stream.eidx[sl][bad], max_examples,
                    ))
            hull = m["hull"]
            defined = _merge(defined + [hull])
            stale = [
                (lab, iv) for lab, ivs in
                ((lab, _subtract([iv], [hull])) for lab, iv in stale)
                for iv in ivs
            ]
