"""Cache-state pass: surface quarantined entries and orphaned journals.

The resilience layer (:mod:`repro.core.resilience`) never *fails* on a
corrupt cache file — it quarantines the file and recomputes, so a sweep
survives.  But silent self-healing hides an operational signal: a
growing quarantine directory means something keeps corrupting the
cache (disk errors, version skew, a crashing writer), and a journal
without a ``done`` record means a sweep was interrupted and nobody
resumed it.  This pass turns that on-disk state into ordinary
``warning`` findings so ``repro analyze`` (and the CI lint gate's
``--rules``/``--ignore`` filters) can report it.

With the durable job layer (:mod:`repro.service.jobs`) an interrupted
journal is not necessarily dead: if its grid has a job record whose
lease went stale, the journal is *adoptable* — the next ``repro
submit`` of the same grid takes the lease over and resumes it.  Those
journals get the ``sweep/stale-lease`` rule (remedy: resubmit), while
``sweep/orphaned-journal`` is reserved for journals no job addresses
(remedy: ``repro sweep --resume`` or deletion).

All rules here are *environmental*: they describe the local
``.simcache/`` directory, not the network under analysis.  They are
therefore stripped from the canonical baseline document (see
:mod:`repro.analysis.baseline`) — committed baselines must not drift
with the state of whoever's scratch cache.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..core.resilience import list_journals, list_quarantined
from .findings import Finding

__all__ = ["cache_state_findings"]

#: Journals younger than this are likely a sweep still running in
#: another process, not an orphan.
_ORPHAN_MIN_AGE_S = 60.0


def cache_state_findings(min_age_s: float = _ORPHAN_MIN_AGE_S) -> List[Finding]:
    """Findings for quarantined cache files and unfinished journals.

    Read-only: nothing is deleted, resumed, or adopted here.  Remedies
    are in the finding messages — ``repro submit`` adopts a
    stale-leased job, ``repro sweep --resume`` finishes an unaddressed
    journal, deleting the quarantine directory acknowledges corrupt
    entries.
    """
    from ..service import jobs as jobstore

    findings: List[Finding] = []
    for entry in list_quarantined():
        findings.append(
            Finding(
                rule="cache/corrupt-entry",
                severity="warning",
                where=Path(entry["file"]).name,
                message=entry["reason"] or "quarantined cache file",
                detail={"file": entry["file"], "when": entry["when"]},
            )
        )
    # sweep key -> job record, to tell adoptable journals from dead ones.
    jobs_by_key = {r.sweep_key: r for r in jobstore.list_jobs() if r.sweep_key}
    for journal in list_journals():
        if journal["done"] or journal["age_s"] < min_age_s:
            continue
        progress = (
            f"{journal['n_ok']}/{journal['n_points']} points done"
            + (f", {journal['n_failed']} failed" if journal["n_failed"] else "")
        )
        record = jobs_by_key.get(journal["sweep_key"])
        lease = (
            jobstore.lease_state(record.job_id)[0] if record is not None else "none"
        )
        if record is not None and lease != "live":
            findings.append(
                Finding(
                    rule="sweep/stale-lease",
                    severity="warning",
                    where=Path(journal["path"]).name,
                    message=(
                        f"job {record.job_id} orphaned mid-run ({progress})"
                        " — adoptable: resubmit the same grid with "
                        "'repro submit' to finish it"
                    ),
                    detail={
                        "path": journal["path"],
                        "sweep_key": journal["sweep_key"],
                        "job": record.job_id,
                        "job_state": record.state,
                        "lease": lease,
                        "n_points": journal["n_points"],
                        "n_ok": journal["n_ok"],
                        "n_failed": journal["n_failed"],
                        "age_s": journal["age_s"],
                    },
                )
            )
            continue
        if record is not None and lease == "live":
            continue  # someone is running it right now: not a finding
        findings.append(
            Finding(
                rule="sweep/orphaned-journal",
                severity="warning",
                where=Path(journal["path"]).name,
                message=(
                    f"interrupted sweep checkpoint: {progress}"
                    " — finish it with 'repro sweep --resume' or delete it"
                ),
                detail={
                    "path": journal["path"],
                    "sweep_key": journal["sweep_key"],
                    "n_points": journal["n_points"],
                    "n_ok": journal["n_ok"],
                    "n_failed": journal["n_failed"],
                    "age_s": journal["age_s"],
                },
            )
        )
    return findings
