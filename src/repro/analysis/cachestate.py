"""Cache-state pass: surface quarantined entries and orphaned journals.

The resilience layer (:mod:`repro.core.resilience`) never *fails* on a
corrupt cache file — it quarantines the file and recomputes, so a sweep
survives.  But silent self-healing hides an operational signal: a
growing quarantine directory means something keeps corrupting the
cache (disk errors, version skew, a crashing writer), and a journal
without a ``done`` record means a sweep was interrupted and nobody
resumed it.  This pass turns that on-disk state into ordinary
``warning`` findings so ``repro analyze`` (and the CI lint gate's
``--rules``/``--ignore`` filters) can report it.

Both rules are *environmental*: they describe the local ``.simcache/``
directory, not the network under analysis.  They are therefore stripped
from the canonical baseline document (see
:mod:`repro.analysis.baseline`) — committed baselines must not drift
with the state of whoever's scratch cache.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from ..core.resilience import list_journals, list_quarantined
from .findings import Finding

__all__ = ["cache_state_findings"]

#: Journals younger than this are likely a sweep still running in
#: another process, not an orphan.
_ORPHAN_MIN_AGE_S = 60.0


def cache_state_findings(min_age_s: float = _ORPHAN_MIN_AGE_S) -> List[Finding]:
    """Findings for quarantined cache files and unfinished journals.

    Read-only: nothing is deleted or resumed here.  Remedies are in the
    finding messages — ``repro sweep --resume`` finishes an orphaned
    journal, deleting the quarantine directory acknowledges corrupt
    entries.
    """
    findings: List[Finding] = []
    for entry in list_quarantined():
        findings.append(
            Finding(
                rule="cache/corrupt-entry",
                severity="warning",
                where=Path(entry["file"]).name,
                message=entry["reason"] or "quarantined cache file",
                detail={"file": entry["file"], "when": entry["when"]},
            )
        )
    for journal in list_journals():
        if journal["done"] or journal["age_s"] < min_age_s:
            continue
        findings.append(
            Finding(
                rule="sweep/orphaned-journal",
                severity="warning",
                where=Path(journal["path"]).name,
                message=(
                    f"interrupted sweep checkpoint: "
                    f"{journal['n_ok']}/{journal['n_points']} points done"
                    + (f", {journal['n_failed']} failed" if journal["n_failed"] else "")
                    + " — finish it with 'repro sweep --resume' or delete it"
                ),
                detail={
                    "path": journal["path"],
                    "sweep_key": journal["sweep_key"],
                    "n_points": journal["n_points"],
                    "n_ok": journal["n_ok"],
                    "n_failed": journal["n_failed"],
                    "age_s": journal["age_s"],
                },
            )
        )
    return findings
