"""Temporal reuse-distance analysis over recorded kernel traces.

The working-set estimator (:mod:`repro.analysis.workingset`) is
*spatial*: it knows what each kernel touches, but not *when* a line is
touched again.  The paper's co-design argument — the L2 capacity sweep
of Table III / Fig. 5, the im2col-vs-Winograd stream comparison — is a
statement about **reuse distances**: a capacity ``C`` converts exactly
those re-references whose LRU stack distance is below ``C`` from misses
into hits.  This pass computes line-granular reuse-distance histograms
per kernel label directly from the macro-event address columns, fully
vectorized (no Python loop over events or line touches).

Method
------
1. **Expansion** — every demand access (vector or scalar, prefetches
   excluded) is expanded to the set of cache lines it touches with a
   ``repeat`` + ramp construction: unit-stride events cover a dense
   line range, strided events one line per element.
2. **Virtual time** — each line touch carries its event's sampling
   weight (see ``SampledTraceBase.loop``), and the clock is the running
   *weighted* touch count.  A sampled iteration standing for ``w`` real
   iterations advances the clock by ``w``, so reuse intervals measured
   on the sampled stream approximate the real stream's intervals: the
   sum of weights across a skipped span equals the span's real access
   count, which is exactly what an LRU stack distance integrates over.
3. **Reuse times** — per line, the weighted-time gap to the previous
   touch of the same line (stable argsort by line id, diff within
   groups).  First touches are *cold*.
4. **Stack distance** — the StatStack conversion (Eklov & Hagersten,
   ISPASS 2010): the expected number of distinct lines inside a reuse
   window of length ``T`` is ``sd(T) = integral_0^T P(rt > tau) dtau``,
   with ``P(rt > tau)`` the weighted tail of the reuse-time
   distribution (cold touches stay in the tail forever).  The tail is
   piecewise constant between sorted reuse times, so the integral is an
   exact piecewise-linear function evaluated per touch with one
   ``searchsorted`` — no per-event loop, and on a cyclic re-streaming
   pattern (the dominant GEMM/Winograd behaviour) it reproduces the
   exact stack distance.

The result supports a predicted miss-ratio curve ``miss(C)`` for
arbitrary capacity and a predicted L2 knee, validated against a real
``sweep_cache_sizes`` run in ``tests/test_temporal.py`` (tolerance
band documented in docs/ANALYSIS.md).

Two refinements feed the static cost model (:mod:`repro.analysis
.predict`):

* **Set-associativity correction** — the pure StatStack curve models a
  fully-associative LRU cache, which under-predicts misses on the
  8-way L2 the paper sweeps.  A reuse at global stack distance ``D``
  in an ``A``-way cache with ``S`` sets conflicts only with the
  intervening distinct lines that hash to its own set — approximately
  ``Binomial(D, 1/S)`` of them — and misses when at least ``A`` do.
  ``miss_ratio(..., assoc=A)`` applies the Poisson limit of that tail
  per histogram bucket, smoothing the fully-associative step into the
  gradual roll-off a real set-indexed cache shows.
* **Per-buffer temporal profiles** — ``reuse_distances(..,
  by="buffer")`` bins the same global stack distances by *allocation*
  (the trace's buffer table, ``#N`` dedup suffixes stripped) instead
  of by kernel label, so the cost model can ask "does the im2col
  workspace still fit?" per buffer rather than per kernel.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..machine.trace import (
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_VLOAD,
    OP_VSTORE,
)

__all__ = ["ReuseReport", "reuse_distances", "assoc_miss_probs"]

#: Number of log2 stack-distance buckets: bucket ``b`` holds reuses with
#: stack distance in ``[2^b, 2^(b+1))`` lines.  42 buckets cover any
#: address space this repo can allocate.
N_BUCKETS = 42

#: Standard capacities (bytes) at which the report tabulates the
#: predicted miss-ratio curve: 64 KB .. 256 MB in powers of two.
CURVE_CAPACITIES = tuple(1 << k for k in range(16, 29))

#: Expanding a trace to line touches multiplies the event count by the
#: mean lines-per-event; beyond this many touches, events are
#: systematically subsampled (weights rescaled) to bound memory.
MAX_LINE_TOUCHES = 32_000_000

#: Dedup suffix appended by the trace allocator when two buffers share a
#: name (``im2col#1``); stripped so per-buffer profiles merge them.
_DEDUP_SUFFIX = re.compile(r"#\d+$")


def _poisson_sf(lam: np.ndarray, k: int) -> np.ndarray:
    """``P[Poisson(lam) >= k]`` for integer ``k >= 1``, vectorized.

    Computed as ``1 - cdf(k-1)`` by direct pmf summation — ``k`` is a
    cache associativity (<= a few dozen ways), so the sum is short and
    needs nothing beyond numpy.  For large ``lam`` the pmf terms
    underflow to zero and the tail correctly saturates at 1.
    """
    lam = np.asarray(lam, dtype=np.float64)
    term = np.exp(-lam)
    cdf = term.copy()
    for i in range(1, int(k)):
        term = term * lam / i
        cdf = cdf + term
    return np.clip(1.0 - cdf, 0.0, 1.0)


def assoc_miss_probs(capacity_lines: float, assoc: int) -> np.ndarray:
    """Per-bucket miss probability of an ``assoc``-way set-indexed cache.

    The StatStack curve models a fully-associative LRU cache: a reuse at
    stack distance ``D`` (distinct intervening lines) hits iff
    ``D < capacity/line``.  A real cache with ``S = capacity_lines /
    assoc`` sets evicts the line only when at least ``assoc`` of those
    ``D`` distinct lines land in its own set; with uniform set hashing
    that count is ``Binomial(D, 1/S) -> Poisson(D/S)``, so the miss
    probability is the Poisson tail ``P[X >= assoc]`` evaluated at each
    bucket's log2 midpoint.  At ``D = capacity_lines`` the mean conflict
    count equals ``assoc`` and the correction yields ~50% misses — the
    fully-associative step becomes the gradual roll-off (and the extra
    misses *below* capacity) a set-indexed cache actually shows.
    """
    assoc = max(1, int(assoc))
    n_sets = max(1.0, float(capacity_lines) / assoc)
    mids = 2.0 ** (np.arange(N_BUCKETS, dtype=np.float64) + 0.5)
    return _poisson_sf(mids / n_sets, assoc)


@dataclass
class ReuseReport:
    """Per-kernel-label reuse-distance histograms and derived curves.

    ``hist[i, b]`` is the weighted line-touch mass of label ``i`` whose
    stack distance falls in bucket ``b`` (``[2^b, 2^(b+1))`` lines);
    ``cold[i]`` the weighted first-touch mass; ``total[i]`` the whole
    weighted touch mass of the label.  Distances are in units of
    ``line_bytes``-sized cache lines.
    """

    labels: List[str] = field(default_factory=list)
    hist: np.ndarray = field(default_factory=lambda: np.zeros((0, N_BUCKETS)))
    cold: np.ndarray = field(default_factory=lambda: np.zeros(0))
    total: np.ndarray = field(default_factory=lambda: np.zeros(0))
    line_bytes: int = 64
    n_lines: int = 0
    n_touches: int = 0
    #: Distinct lines touched per label (unweighted) — the per-group
    #: working-set footprint, in lines.  Zeros for legacy constructions.
    footprint_lines: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    # -- curves --------------------------------------------------------
    def _group(self, label: Optional[str]):
        if label is None:
            return self.hist.sum(axis=0), float(self.cold.sum()), float(self.total.sum())
        i = self.labels.index(label)
        return self.hist[i], float(self.cold[i]), float(self.total[i])

    def miss_ratio(
        self,
        capacity_bytes: int,
        label: Optional[str] = None,
        assoc: Optional[int] = None,
    ) -> float:
        """Predicted miss ratio of an LRU cache of *capacity_bytes*.

        With ``assoc=None`` (default) the cache is fully associative: a
        reuse whose stack distance (in lines) is at least
        ``capacity/line_bytes`` misses, cold touches always miss, and
        within a log2 bucket the mass is interpolated linearly in
        log2(distance).  With ``assoc=A`` the set-conflict correction of
        :func:`assoc_miss_probs` replaces the sharp capacity step.
        """
        hist, cold, total = self._group(label)
        if total <= 0:
            return 0.0
        cap_lines = max(1.0, capacity_bytes / self.line_bytes)
        if assoc is not None:
            tail = float(hist @ assoc_miss_probs(cap_lines, assoc))
            return min(1.0, (tail + cold) / total)
        b = np.log2(cap_lines)
        whole = int(np.floor(b))
        tail = float(hist[min(whole + 1, N_BUCKETS):].sum()) if whole + 1 < N_BUCKETS else 0.0
        if 0 <= whole < N_BUCKETS:
            tail += float(hist[whole]) * (1.0 - (b - whole))
        elif whole < 0:
            tail = float(hist.sum())
        return (tail + cold) / total

    def miss_curve(
        self,
        capacities=CURVE_CAPACITIES,
        label: Optional[str] = None,
        assoc: Optional[int] = None,
    ) -> Dict[str, float]:
        """``miss(C)`` tabulated at *capacities* (JSON-stable str keys)."""
        return {str(int(c)): self.miss_ratio(int(c), label, assoc=assoc) for c in capacities}

    def predicted_knee_bytes(
        self, coverage: float = 0.95, assoc: Optional[int] = None
    ) -> int:
        """Smallest power-of-two capacity capturing *coverage* of reuse.

        The knee of the capacity sweep: beyond it, growing the cache
        only chips at the residual (cold misses are unavoidable).  With
        ``assoc=A`` the residual is measured through the set-conflict
        correction, so low-way caches typically need a larger capacity
        to reach the same coverage.
        """
        hist = self.hist.sum(axis=0)
        reuse_mass = float(hist.sum())
        if reuse_mass <= 0:
            return self.line_bytes
        allowed = (1.0 - coverage) * reuse_mass
        if assoc is not None:
            for b in range(N_BUCKETS + 1):
                cap_lines = float(1 << b)
                if float(hist @ assoc_miss_probs(cap_lines, assoc)) <= allowed:
                    return (1 << b) * self.line_bytes
            return (1 << N_BUCKETS) * self.line_bytes
        residual = np.cumsum(hist[::-1])[::-1]  # mass with sd >= 2^b
        for b in range(N_BUCKETS):
            above = float(residual[b + 1]) if b + 1 < N_BUCKETS else 0.0
            if above <= allowed:
                # Capacity 2^(b+1) lines covers every reuse in bucket b.
                return (1 << (b + 1)) * self.line_bytes
        return (1 << N_BUCKETS) * self.line_bytes

    # -- tabulation ----------------------------------------------------
    def _label_quantile(self, i: int, q: float) -> float:
        """Approximate stack-distance quantile (lines) of one label."""
        hist = self.hist[i]
        mass = float(hist.sum())
        if mass <= 0:
            return 0.0
        cum = np.cumsum(hist)
        b = int(np.searchsorted(cum, q * mass))
        return float(2 ** min(b + 1, N_BUCKETS))

    def rows(self) -> List[Dict]:
        """Per-label rows for the report table."""
        out = []
        order = np.argsort(-self.total)
        for i in order:
            total = float(self.total[i])
            if total <= 0:
                continue
            out.append({
                "kernel": self.labels[i],
                "touches_m": total / 1e6,
                "cold_pct": 100.0 * float(self.cold[i]) / total,
                "sd_p50_kb": self._label_quantile(i, 0.5) * self.line_bytes / 1024,
                "sd_p90_kb": self._label_quantile(i, 0.9) * self.line_bytes / 1024,
                "miss_1mb_pct": 100.0 * self.miss_ratio(1 << 20, self.labels[i]),
            })
        return out

    def as_dict(self) -> Dict:
        """JSON-ready summary (histograms included, per label)."""
        return {
            "line_bytes": self.line_bytes,
            "n_lines": self.n_lines,
            "n_touches": self.n_touches,
            "knee_bytes": self.predicted_knee_bytes(),
            "miss_curve": self.miss_curve(),
            "labels": {
                self.labels[i]: {
                    "total": float(self.total[i]),
                    "cold": float(self.cold[i]),
                    "hist": [float(x) for x in self.hist[i]],
                }
                for i in range(len(self.labels))
                if self.total[i] > 0
            },
        }


def _expand_lines(trace, line: int, max_touches: int):
    """Expand demand accesses to (line_id, weight, kid) touch streams."""
    op = np.asarray(trace.op)
    mem = (op == OP_VLOAD) | (op == OP_VSTORE) | \
          (op == OP_SCALAR_LOAD) | (op == OP_SCALAR_STORE)
    idx = np.flatnonzero(mem)
    if idx.size == 0:
        return (np.zeros(0, np.int64), np.zeros(0), np.zeros(0, np.int64))

    addr = np.asarray(trace.i0)[idx]
    n = np.asarray(trace.i1)[idx]
    ew = np.asarray(trace.i2)[idx]
    stride = np.asarray(trace.i3)[idx]
    w = np.asarray(trace.w)[idx]
    kid = np.asarray(trace.kid)[idx].astype(np.int64)

    is_v = (op[idx] == OP_VLOAD) | (op[idx] == OP_VSTORE)
    # Scalar events: i1 = nbytes, dense.  Vector unit-stride: dense
    # extent n*ew.  Vector strided: one touch per element.
    ext = np.where(is_v, n * np.maximum(ew, 1), np.maximum(n, 1))
    unit = ~is_v | (stride == 0) | (stride == ew)
    first_line = addr // line
    last_line = np.where(unit, (addr + np.maximum(ext, 1) - 1) // line, 0)
    counts = np.where(unit, last_line - first_line + 1, np.maximum(n, 1))
    counts = np.maximum(counts, 1).astype(np.int64)

    total = int(counts.sum())
    if total > max_touches:
        # Systematic event subsampling with weight rescaling keeps the
        # weighted mass (and therefore the curves) asymptotically
        # unchanged while bounding memory.
        step = -(-total // max_touches)
        keep = np.arange(0, idx.size, step)
        addr, stride, w, kid = addr[keep], stride[keep], w[keep] * step, kid[keep]
        unit, first_line, counts = unit[keep], first_line[keep], counts[keep]

    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    m = int(counts.sum())
    eidx = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    ramp = np.arange(m, dtype=np.int64) - offsets[eidx]
    lines = np.where(
        unit[eidx],
        first_line[eidx] + ramp,
        (addr[eidx] + ramp * stride[eidx]) // line,
    )
    return lines, w[eidx], kid[eidx]


def _buffer_groups(trace, lines: np.ndarray, line: int):
    """Map line touches to merged buffer names (``#N`` suffix stripped).

    Returns ``(names, gid)`` where ``gid[t]`` indexes *names* for each
    touch; touches outside every recorded buffer map to ``"?"``.
    """
    buffers = list(getattr(trace, "buffers", ()) or ())
    names: List[str] = []
    name_ix: Dict[str, int] = {}
    buf_group = np.zeros(len(buffers), dtype=np.int64)
    for i, (name, _base, _nbytes) in enumerate(buffers):
        merged = _DEDUP_SUFFIX.sub("", str(name))
        if merged not in name_ix:
            name_ix[merged] = len(names)
            names.append(merged)
        buf_group[i] = name_ix[merged]
    unmapped = len(names)
    names.append("?")
    if not buffers:
        return names, np.full(lines.size, unmapped, dtype=np.int64)

    order = np.argsort([b[1] for b in buffers], kind="stable")
    bases = np.asarray([buffers[i][1] for i in order], dtype=np.int64)
    ends = np.asarray([buffers[i][1] + buffers[i][2] for i in order], dtype=np.int64)
    addr = lines * np.int64(line)  # first byte of the touched line
    j = np.searchsorted(bases, addr, side="right") - 1
    jc = np.maximum(j, 0)
    ok = (j >= 0) & (addr < ends[jc])
    gid = np.where(ok, buf_group[order[jc]], unmapped)
    return names, gid.astype(np.int64)


def reuse_distances(
    trace, machine=None, max_touches: int = MAX_LINE_TOUCHES, by: str = "label",
    clock: str = "stream",
) -> ReuseReport:
    """Compute grouped reuse-distance histograms for *trace*.

    Line granularity comes from the machine's L2 line (the capacity
    sweep this pass predicts is an L2 sweep); 64 bytes when *machine*
    is ``None``.  Grouping (``by``) is ``"label"`` — per kernel label,
    the default — or ``"buffer"`` — per trace allocation, ``#N`` dedup
    suffixes merged, with a ``"?"`` bucket for unmapped touches.  The
    stack distances themselves are always *global* (computed on the
    full interleaved stream); only the binning changes, so per-buffer
    curves answer "how often does this buffer miss in a cache of C
    bytes shared by everything else".

    ``clock`` selects the virtual time the distances are measured in:

    * ``"stream"`` (default) — the weighted clock.  A sampled loop
      iteration standing for ``w`` real iterations advances time by
      ``w``, so distances estimate the *real* execution's working sets
      (what a physical cache would see; used by the capacity-knee
      prediction).
    * ``"trace"`` — the unweighted traced-touch clock.  Distances are
      the distinct lines of the *sampled* stream itself — exactly what
      the trace simulator's cache model experiences — while histogram
      masses stay weighted.  This is the right clock when the consumer
      is predicting the simulator (``analysis.predict``), whose sampled
      loops compress per-iteration footprints.
    """
    if by not in ("label", "buffer"):
        raise ValueError(f"unknown grouping {by!r}: expected 'label' or 'buffer'")
    if clock not in ("stream", "trace"):
        raise ValueError(f"unknown clock {clock!r}: expected 'stream' or 'trace'")
    line = int(machine.l2.line_bytes) if machine is not None else 64
    lines, w, kid = _expand_lines(trace, line, max_touches)
    if by == "buffer":
        labels, gid = _buffer_groups(trace, lines, line)
    else:
        labels = list(trace.labels)
        gid = np.clip(kid, 0, len(labels) - 1) if lines.size else kid
    nlab = len(labels)
    report = ReuseReport(
        labels=labels,
        hist=np.zeros((nlab, N_BUCKETS)),
        cold=np.zeros(nlab),
        total=np.zeros(nlab),
        line_bytes=line,
        footprint_lines=np.zeros(nlab, np.int64),
    )
    if lines.size == 0:
        return report
    kid = gid
    report.n_touches = int(lines.size)
    report.total = np.bincount(kid, weights=w, minlength=nlab)

    # Virtual clock: the time *after* each touch.  The stream clock is
    # weight-advanced; the trace clock ticks once per traced touch.
    cw_clock = w if clock == "stream" else np.ones_like(w)
    vt = np.cumsum(cw_clock)

    # Previous-touch gap per line: stable sort by line id keeps time
    # order inside each line's group.
    order = np.argsort(lines, kind="stable")
    sl = lines[order]
    first = np.empty(sl.size, dtype=bool)
    first[0] = True
    np.not_equal(sl[1:], sl[:-1], out=first[1:])
    report.n_lines = int(first.sum())

    svt = vt[order]
    rt = np.empty(sl.size)
    rt[0] = 0.0
    rt[1:] = svt[1:] - svt[:-1]  # gap to previous touch in the group
    sw = w[order]
    skid = kid[order]

    report.cold = np.bincount(skid[first], weights=sw[first], minlength=nlab)
    report.footprint_lines = np.bincount(skid[first], minlength=nlab).astype(np.int64)

    reuse = ~first
    if not reuse.any():
        return report
    r = rt[reuse]
    rw = sw[reuse]
    rcw = cw_clock[order][reuse]  # clock-mass of each reuse event
    rkid = skid[reuse]

    # StatStack tail integral: P(rt > tau) is piecewise constant
    # between sorted reuse times; sd(T) = integral of the tail to T.
    # The tail is measured in clock mass so sd stays "expected distinct
    # lines" in whichever stream the clock models.
    total_mass = float(cw_clock.sum())
    ro = np.argsort(r, kind="stable")
    rs = r[ro]
    cw = np.cumsum(rcw[ro])
    # Collapse duplicates so breakpoints are strictly increasing.
    uniq = np.empty(rs.size, dtype=bool)
    uniq[-1] = True
    np.not_equal(rs[1:], rs[:-1], out=uniq[:-1])
    us = rs[uniq]          # unique reuse times, ascending
    ucw = cw[uniq]         # weighted mass with rt <= us
    tail = total_mass - np.concatenate(([0.0], ucw[:-1]))  # mass with rt >= us
    # Prefix integral of the tail: integ[k] = integral from 0 to us[k]
    # (tail is constant at tail[k] over the segment ending at us[k]).
    seg = np.concatenate(([us[0]], np.diff(us))) * tail
    integ = np.cumsum(seg)
    tail_after = total_mass - ucw  # mass with rt > us (tail beyond us[k])

    j = np.searchsorted(us, r, side="right") - 1
    base = np.where(j >= 0, integ[np.maximum(j, 0)], 0.0)
    lo = np.where(j >= 0, us[np.maximum(j, 0)], 0.0)
    t_at = np.where(j >= 0, tail_after[np.maximum(j, 0)], total_mass)
    # sd(T) = integral_0^T P(rt > tau) dtau; counts the reused line
    # itself, so a cyclic stream over R lines yields exactly sd = R.
    sd = (base + t_at * (r - lo)) / total_mass  # expected distinct lines

    bucket = np.clip(
        np.floor(np.log2(np.maximum(sd, 1.0))).astype(np.int64), 0, N_BUCKETS - 1
    )
    flat = np.bincount(
        rkid * N_BUCKETS + bucket, weights=rw, minlength=nlab * N_BUCKETS
    )
    report.hist = flat.reshape(nlab, N_BUCKETS)
    return report
