"""Package loader for the code-invariant analyzer.

Walks a package directory, parses every ``.py`` file into an AST, and
wraps each in a :class:`Module` carrying the dotted module name, the
source text, and the per-line list the suppression scanner needs.
Parsing is syntax-only — the analyzed package is never imported, so
``repro check-code`` can lint a tree that does not even import cleanly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

__all__ = ["Module", "load_package"]


@dataclass
class Module:
    """One parsed source file of the analyzed package."""

    name: str  # dotted module name, e.g. "repro.core.simcache"
    path: Path
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    is_package: bool = False  # True for __init__.py

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]

    def resolve_relative(self, level: int, target: str) -> str:
        """Absolute module name for ``from <dots><target> import ...``."""
        if level <= 0:
            return target
        parts = self.package.split(".")
        if level > 1:
            parts = parts[: len(parts) - (level - 1)]
        base = ".".join(parts)
        if not target:
            return base
        return f"{base}.{target}" if base else target


def load_package(root: Path, package: str) -> Dict[str, Module]:
    """Parse ``root`` (the directory of *package*) into Module objects.

    Returns ``{dotted_name: Module}`` sorted by name so every consumer
    iterates deterministically.  Files with syntax errors raise — a
    tree that does not parse cannot be certified.
    """
    root = Path(root)
    modules: Dict[str, Module] = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = list(rel.parts)
        is_package = parts[-1] == "__init__.py"
        if is_package:
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        name = ".".join([package, *parts]) if parts else package
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        modules[name] = Module(
            name=name,
            path=path,
            tree=tree,
            source=source,
            lines=source.splitlines(),
            is_package=is_package,
        )
    return modules
