"""Driver for ``repro check-code``.

Wires the loader, call graph, zone classifier, and checkers together
and converts surviving :class:`RawFinding` rows into the pipeline's
:class:`~repro.analysis.findings.Finding` type so the CLI can reuse the
analyze plumbing (text/JSON rendering, ``--rules``/``--ignore``
prefixes, baseline diffing).

Suppressions: a finding is dropped when its source line carries a
``# reprolint: ignore[rule-id]`` comment naming the rule (several ids
may be listed, comma-separated).  Suppressions are per-line and
per-rule — there is no file-level or wildcard escape hatch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple

from ..findings import Finding
from .callgraph import build_callgraph
from .checks import Context, RawFinding, run_checks
from .loader import load_package
from .zones import Zones, classify

__all__ = ["CheckConfig", "check_package", "default_config"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*ignore\[([^\]]+)\]")

#: entry points of the timing model; ``Class.*`` selects every method.
DEFAULT_SIM_ROOTS = (
    "repro.machine.simulator:TraceSimulator.*",
    "repro.machine.replay:replay",
    "repro.machine.replay:replay_sweep",
    "repro.analysis.predict:predict_cycles",
    "repro.nets.network:Network.simulate",
)

#: infrastructure the sim-core traversal never enters (wall-clock and
#: retry logic is their job, not a determinism leak).
DEFAULT_BARRIERS = (
    "repro.core.simcache",
    "repro.core.tracecache",
    "repro.core.resilience",
    "repro.core.parallel",
    "repro.core.knobs",
    "repro.testing.faults",
    "repro.service.jobs",
    "repro.service.scheduler",
)

#: modules owning crash-safe persistent artifacts.
DEFAULT_DURABLE = (
    "repro.core.simcache",
    "repro.core.tracecache",
    "repro.core.resilience",
    "repro.service.jobs",
    "repro.service.scheduler",
)

#: modules writing user-facing report artifacts.
DEFAULT_EMITTERS = (
    "repro.machine.report",
    "repro.analysis.baseline",
    "repro.core.export",
)


@dataclass(frozen=True)
class CheckConfig:
    """What to analyze and which module plays which role."""

    package_root: Path
    package: str = "repro"
    sim_roots: Tuple[str, ...] = DEFAULT_SIM_ROOTS
    barrier_modules: Tuple[str, ...] = DEFAULT_BARRIERS
    durable_modules: Tuple[str, ...] = DEFAULT_DURABLE
    emitter_modules: Tuple[str, ...] = DEFAULT_EMITTERS
    knobs_module: str = "repro.core.knobs"
    known_knobs: frozenset = field(default_factory=frozenset)


def default_config() -> CheckConfig:
    """Config for the repro package itself (the self-check gate)."""
    import repro

    from ...core.knobs import KNOBS

    return CheckConfig(
        package_root=Path(repro.__file__).resolve().parent,
        known_knobs=frozenset(KNOBS),
    )


def _severity(rule: str) -> str:
    from ..rules import RULES

    entry = RULES.get(rule)
    return entry[0] if entry is not None else "error"


def _suppressed(raw: RawFinding, ctx: Context) -> bool:
    mod = ctx.modules.get(raw.module)
    if mod is None or not (1 <= raw.lineno <= len(mod.lines)):
        return False
    match = _SUPPRESS_RE.search(mod.lines[raw.lineno - 1])
    if match is None:
        return False
    ids = {part.strip() for part in match.group(1).split(",")}
    return raw.rule in ids


def check_package(config: CheckConfig) -> List[Finding]:
    """Run every checker over *config.package_root*; return findings.

    The result is deterministic: modules load in sorted order, checkers
    run in a fixed order, and findings sort by (module, line, rule).
    """
    modules = load_package(config.package_root, config.package)
    functions, scopes = build_callgraph(modules)
    zones = classify(
        modules, functions, scopes,
        sim_roots=config.sim_roots,
        barrier_modules=config.barrier_modules,
        durable_modules=config.durable_modules,
        emitter_modules=config.emitter_modules,
    )
    ctx = Context(
        modules=modules,
        functions=functions,
        scopes=scopes,
        zones=zones,
        knobs_module=config.knobs_module,
        known_knobs=config.known_knobs,
    )
    anchor = config.package_root.parent
    findings: List[Finding] = []
    for raw in run_checks(ctx):
        if _suppressed(raw, ctx):
            continue
        mod = ctx.modules[raw.module]
        try:
            where = str(mod.path.relative_to(anchor))
        except ValueError:
            where = str(mod.path)
        detail = dict(raw.detail)
        detail["zone"] = _zone_label(raw, zones)
        findings.append(Finding(
            rule=raw.rule,
            severity=_severity(raw.rule),
            where=f"{where}:{raw.lineno}",
            message=raw.message,
            detail=detail,
        ))
    return findings


def _zone_label(raw: RawFinding, zones: Zones) -> str:
    qual = raw.detail.get("function")
    if isinstance(qual, str) and qual in zones.sim_core:
        return "sim-core"
    if isinstance(qual, str) and qual in zones.worker:
        return "worker"
    if raw.module in zones.durable_modules:
        return "durable-io"
    if raw.module in zones.emitter_modules:
        return "emitter"
    return "general"
