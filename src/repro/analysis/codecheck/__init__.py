"""``repro check-code``: AST/call-graph invariant analyzer.

Parses the package into ASTs (never importing it), builds a module
level call graph, classifies functions into zones (sim-core, worker,
durable-io, emitter), and checks 13 zone-aware rule families covering
determinism, atomic persistence, fork safety, and knob hygiene.  The
rule catalog lives in :mod:`repro.analysis.rules` under the
``codecheck`` pass; docs/ANALYSIS.md has the prose contracts.
"""

from __future__ import annotations

from .callgraph import FunctionInfo, build_callgraph, reachable
from .checks import CHECKERS, Context, RawFinding, run_checks
from .engine import CheckConfig, check_package, default_config
from .loader import Module, load_package
from .zones import Zones, classify

__all__ = [
    "CHECKERS",
    "CheckConfig",
    "Context",
    "FunctionInfo",
    "Module",
    "RawFinding",
    "Zones",
    "build_callgraph",
    "check_package",
    "classify",
    "default_config",
    "load_package",
    "reachable",
    "run_checks",
]
