"""Zone classification: which contract applies to which function.

The analyzer's rules are *zone-aware* — a ``time.time()`` call is fine
in a retry loop and fatal in the cycle-accounting path.  Zones:

* **sim-core** — everything reachable from the simulation roots
  (``TraceSimulator`` methods, trace replay, the static cost model,
  ``Network.simulate``) without crossing a *barrier* module.  Barrier
  modules (the caches, the resilience layer, the parallel engine, the
  fault harness) are infrastructure around the timing model; wall-clock
  and retry logic is their job, so traversal never enters them.
* **durable-io** — modules owning crash-safe persistent artifacts
  (simcache entries, trace spills, journals, quarantine).  Writes here
  must be atomic, digest-carried, and canonically ordered.
* **emitter** — modules writing user-facing artifacts (gem5 stats
  dumps, analysis baselines, CSV exports).  Atomicity and canonical
  JSON apply; content digests are not required.
* **worker** — functions shipped to pool workers (submission-site
  arguments).  They must be fork-safe: module-level, closure-free, and
  free of ``global`` mutation.  Functions passed via ``initializer=``
  are exempt from the mutation rule — per-process setup is their job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from .callgraph import FunctionInfo, ModuleScope, reachable, resolve_callable
from .loader import Module

__all__ = ["Zones", "classify", "SUBMIT_METHODS"]

#: Pool-submission attribute names whose first positional argument is a
#: callable shipped to another process.
SUBMIT_METHODS = ("apply_async", "apply", "submit", "map_async",
                  "imap", "imap_unordered", "starmap", "starmap_async")


@dataclass
class Zones:
    sim_core: Set[str] = field(default_factory=set)
    worker: Set[str] = field(default_factory=set)
    initializers: Set[str] = field(default_factory=set)
    durable_modules: Set[str] = field(default_factory=set)
    emitter_modules: Set[str] = field(default_factory=set)
    #: raw submission sites: (module, Call node, submitted expr or None)
    submit_sites: list = field(default_factory=list)

    def zone_of(self, qual: str) -> str:
        if qual in self.sim_core:
            return "sim-core"
        if qual in self.worker:
            return "worker"
        return "general"


def expand_roots(
    roots: Iterable[str], functions: Dict[str, FunctionInfo]
) -> Set[str]:
    """Expand root specs; ``"mod:Class.*"`` selects every method."""
    out: Set[str] = set()
    for spec in roots:
        if spec.endswith(".*"):
            prefix = spec[:-1]  # keep the trailing dot
            out.update(q for q in functions if q.startswith(prefix))
        elif spec in functions:
            out.add(spec)
    return out


def _submitted_exprs(call: ast.Call) -> Tuple[list, list]:
    """Split a submission call into (task exprs, initializer exprs)."""
    tasks: list = []
    inits: list = []
    func = call.func
    is_process = (
        isinstance(func, ast.Name) and func.id == "Process"
    ) or (isinstance(func, ast.Attribute) and func.attr == "Process")
    if is_process:
        for kw in call.keywords:
            if kw.arg == "target":
                tasks.append(kw.value)
        return tasks, inits
    if isinstance(func, ast.Attribute) and func.attr in SUBMIT_METHODS:
        if call.args:
            tasks.append(call.args[0])
        for kw in call.keywords:
            if kw.arg in ("func", "target"):
                tasks.append(kw.value)
    # Pool construction: initializer= names a per-process setup hook.
    for kw in call.keywords:
        if kw.arg == "initializer":
            inits.append(kw.value)
    return tasks, inits


def collect_workers(
    modules: Dict[str, Module],
    functions: Dict[str, FunctionInfo],
    scopes: Dict[str, ModuleScope],
) -> Tuple[Set[str], Set[str], list]:
    """Find worker/initializer functions at every submission site."""
    workers: Set[str] = set()
    initializers: Set[str] = set()
    sites: list = []
    for name, mod in modules.items():
        scope = scopes[name]
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            tasks, inits = _submitted_exprs(node)
            for expr in tasks:
                sites.append((name, node, expr))
                qual = resolve_callable(expr, scope, modules, functions)
                if qual is not None:
                    workers.add(qual)
            for expr in inits:
                qual = resolve_callable(expr, scope, modules, functions)
                if qual is not None:
                    initializers.add(qual)
    # Everything a worker calls runs in the worker process too — but
    # only within non-barrier modules' own code; the checkers that use
    # the worker zone (``mp/global-mutation``) care about the directly
    # submitted functions, so no closure is taken here.
    return workers, initializers, sites


def classify(
    modules: Dict[str, Module],
    functions: Dict[str, FunctionInfo],
    scopes: Dict[str, ModuleScope],
    sim_roots: Iterable[str],
    barrier_modules: Iterable[str],
    durable_modules: Iterable[str],
    emitter_modules: Iterable[str],
) -> Zones:
    roots = expand_roots(sim_roots, functions)
    workers, initializers, sites = collect_workers(modules, functions, scopes)
    return Zones(
        sim_core=reachable(functions, roots, barrier_modules),
        worker=workers,
        initializers=initializers,
        durable_modules=set(durable_modules),
        emitter_modules=set(emitter_modules),
        submit_sites=sites,
    )
