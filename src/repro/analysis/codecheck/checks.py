"""The rule checkers of ``repro check-code``.

Every checker takes a :class:`Context` (parsed modules, call graph,
zones, configuration) and yields :class:`RawFinding` tuples; the engine
applies suppression comments and converts survivors to the pipeline's
:class:`~repro.analysis.findings.Finding` type.  Checkers are
deliberately conservative pattern matchers over the AST: a construct
they cannot prove problematic is not flagged (the call graph resolves
the package's own idioms, not arbitrary Python).

Rule catalog (13 families) — see docs/ANALYSIS.md "Code invariants"
for the prose version:

====================== ===============================================
``det/wall-clock``      ``time.*`` / ``datetime.*`` in sim-core
``det/unseeded-random`` stdlib ``random``, global NumPy randomness, or
                        argument-less ``default_rng()`` in sim-core
``det/float-cycles``    float32/float16 narrowing in sim-core (the
                        bitwise contract is exact float64 round-trip)
``det/unsorted-iteration`` iterating directory listings or sets
                        without ``sorted()`` (anywhere)
``io/bare-write``       non-atomic ``open(.., "w")`` / ``Path.write_*``
                        in durable-io or emitter modules
``io/digest-gap``       ``atomic_replace`` in durable-io with no
                        sha256/digest within 3 call-graph hops
``io/json-unsorted``    ``json.dump(s)`` without ``sort_keys=True`` in
                        durable-io or emitter modules
``mp/fork-unsafe``      lambda/closure/bound-method at a pool
                        submission site (anywhere)
``mp/global-mutation``  ``global`` rebinding inside a submitted task
                        (``initializer=`` hooks exempt)
``mp/shm-leak``         ``publish_shm`` without ``release_shm`` in a
                        ``finally`` of the same function
``api/env-knob``        ``os.environ``/``os.getenv`` outside the knob
                        registry module
``api/knob-undeclared`` ``REPRO_*`` literal naming no declared knob
``exc/silent-swallow``  bare/broad except (or ``suppress(Exception)``)
                        that drops the error in durable-io modules
====================== ===============================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Set

from .callgraph import FunctionInfo, ModuleScope, resolve_callable
from .loader import Module
from .zones import Zones

__all__ = ["Context", "RawFinding", "CHECKERS", "run_checks"]

_KNOB_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: numpy.random functions that touch hidden global state.
_NP_GLOBAL_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "bytes",
    "uniform", "normal", "standard_normal", "poisson", "exponential",
})

_NARROW_FLOATS = frozenset({"float32", "float16", "half", "single"})


class RawFinding(NamedTuple):
    rule: str
    module: str  # dotted module name
    lineno: int
    message: str
    detail: Dict


@dataclass
class Context:
    modules: Dict[str, Module]
    functions: Dict[str, FunctionInfo]
    scopes: Dict[str, ModuleScope]
    zones: Zones
    knobs_module: str
    known_knobs: frozenset


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def _root_name(expr: ast.AST) -> Optional[str]:
    """Leftmost ``Name`` of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _module_of_root(name: str, scope: ModuleScope) -> Optional[str]:
    """Absolute module a bare name refers to, if it is a module alias."""
    if name in scope.module_aliases:
        return scope.module_aliases[name]
    if name in scope.from_imports:
        base, attr = scope.from_imports[name]
        return f"{base}.{attr}"
    return None


def _numpy_alias(scope: ModuleScope) -> Set[str]:
    return {
        local for local, target in scope.module_aliases.items()
        if target in ("numpy", "np")
    }


def _sim_core_functions(ctx: Context) -> Iterator[FunctionInfo]:
    for qual in sorted(ctx.zones.sim_core):
        yield ctx.functions[qual]


def _mode_of_open(call: ast.Call, is_method: bool) -> Optional[str]:
    """Literal mode string of an ``open``-style call, if statically known.

    For builtin ``open`` the mode is the second positional argument;
    for ``Path.open`` it is the first.  Returns ``None`` when absent or
    dynamic (absent means ``"r"`` — never a write).
    """
    pos = 0 if is_method else 1
    mode_expr: Optional[ast.AST] = None
    if len(call.args) > pos:
        mode_expr = call.args[pos]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if isinstance(mode_expr, ast.Constant) and isinstance(mode_expr.value, str):
        return mode_expr.value
    return None


def _mentions_tmp(expr: ast.AST) -> bool:
    """Whether any identifier in *expr* names a temp path (``tmp``...)."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and "tmp" in sub.id:
            return True
        if isinstance(sub, ast.Attribute) and "tmp" in sub.attr:
            return True
    return False


def _is_exception_name(expr: ast.AST) -> bool:
    name = expr.attr if isinstance(expr, ast.Attribute) else (
        expr.id if isinstance(expr, ast.Name) else None
    )
    return name in ("Exception", "BaseException")


def _enclosing_function(
    ctx: Context, module: str, node: ast.AST
) -> Optional[FunctionInfo]:
    for info in ctx.functions.values():
        if info.module != module:
            continue
        for sub in ast.walk(info.node):
            if sub is node:
                return info
    return None


# ----------------------------------------------------------------------
# det/* — determinism in the sim-core zone
# ----------------------------------------------------------------------

def check_wall_clock(ctx: Context) -> List[RawFinding]:
    out = []
    for info in _sim_core_functions(ctx):
        scope = ctx.scopes[info.module]
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            root = _root_name(func) if isinstance(func, ast.Attribute) else None
            if root is not None and _module_of_root(root, scope) in (
                "time", "datetime"
            ):
                out.append(RawFinding(
                    "det/wall-clock", info.module, node.lineno,
                    f"{ast.unparse(func)}() in sim-core function "
                    f"{info.qual.split(':')[1]} breaks bitwise determinism",
                    {"function": info.qual},
                ))
            elif isinstance(func, ast.Name) and func.id in scope.from_imports:
                base, _ = scope.from_imports[func.id]
                if base in ("time", "datetime"):
                    out.append(RawFinding(
                        "det/wall-clock", info.module, node.lineno,
                        f"{func.id}() (from {base}) in sim-core function "
                        f"{info.qual.split(':')[1]}",
                        {"function": info.qual},
                    ))
    return out


def check_unseeded_random(ctx: Context) -> List[RawFinding]:
    out = []
    for info in _sim_core_functions(ctx):
        scope = ctx.scopes[info.module]
        np_names = _numpy_alias(scope)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # stdlib random module (always hidden global state)
            root = _root_name(func) if isinstance(func, ast.Attribute) else None
            if root is not None and _module_of_root(root, scope) == "random":
                out.append(RawFinding(
                    "det/unseeded-random", info.module, node.lineno,
                    f"stdlib random ({ast.unparse(func)}) in sim-core "
                    f"function {info.qual.split(':')[1]}",
                    {"function": info.qual},
                ))
                continue
            # np.random.<global-state fn>
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _NP_GLOBAL_RANDOM
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in np_names
            ):
                out.append(RawFinding(
                    "det/unseeded-random", info.module, node.lineno,
                    f"global-state numpy randomness "
                    f"({ast.unparse(func)}) in sim-core",
                    {"function": info.qual},
                ))
                continue
            # default_rng() with no seed argument
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr == "default_rng" and not node.args and not node.keywords:
                out.append(RawFinding(
                    "det/unseeded-random", info.module, node.lineno,
                    "default_rng() without a seed in sim-core",
                    {"function": info.qual},
                ))
    return out


def check_float_cycles(ctx: Context) -> List[RawFinding]:
    def narrow_token(expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Constant) and expr.value in _NARROW_FLOATS:
            return str(expr.value)
        if isinstance(expr, ast.Attribute) and expr.attr in _NARROW_FLOATS:
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in _NARROW_FLOATS:
            return expr.id
        return None

    out = []
    for info in _sim_core_functions(ctx):
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            hit = narrow_token(func)
            if hit is None and isinstance(func, ast.Attribute) and (
                func.attr == "astype" and node.args
            ):
                hit = narrow_token(node.args[0])
            if hit is None:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        hit = narrow_token(kw.value)
            if hit is not None:
                out.append(RawFinding(
                    "det/float-cycles", info.module, node.lineno,
                    f"{hit} narrowing in sim-core function "
                    f"{info.qual.split(':')[1]}: stats accumulate in exact "
                    "float64 (JSON round-trip contract)",
                    {"function": info.qual, "dtype": hit},
                ))
    return out


def _iter_targets(tree: ast.Module) -> Iterator[ast.AST]:
    """Every expression that is directly iterated by a loop."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


def check_unsorted_iteration(ctx: Context) -> List[RawFinding]:
    out = []
    for name, mod in ctx.modules.items():
        scope = ctx.scopes[name]
        for it in _iter_targets(mod.tree):
            label = None
            if isinstance(it, ast.Set):
                label = "set literal"
            elif isinstance(it, ast.Call):
                func = it.func
                if isinstance(func, ast.Name) and func.id == "set":
                    label = "set()"
                elif isinstance(func, ast.Attribute):
                    root = _root_name(func)
                    if func.attr == "listdir" and root is not None and \
                            _module_of_root(root, scope) == "os":
                        label = "os.listdir()"
                    elif func.attr in ("iterdir", "glob", "rglob") and not (
                        root is not None
                        and _module_of_root(root, scope) == "glob"
                    ):
                        label = f".{func.attr}()"
                    elif func.attr == "glob" and root is not None and \
                            _module_of_root(root, scope) == "glob":
                        label = "glob.glob()"
                elif isinstance(func, ast.Name) and func.id in (
                    "listdir", "iglob"
                ):
                    label = f"{func.id}()"
            if label is not None:
                out.append(RawFinding(
                    "det/unsorted-iteration", name, it.lineno,
                    f"iterating {label} without sorted(): filesystem/set "
                    "order is nondeterministic",
                    {},
                ))
    return out


# ----------------------------------------------------------------------
# io/* — durable artifacts
# ----------------------------------------------------------------------

def _io_modules(ctx: Context) -> Set[str]:
    return ctx.zones.durable_modules | ctx.zones.emitter_modules


def check_bare_write(ctx: Context) -> List[RawFinding]:
    out = []
    for name in sorted(_io_modules(ctx)):
        mod = ctx.modules.get(name)
        if mod is None:
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged = None
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _mode_of_open(node, is_method=False)
                if mode is not None and any(c in mode for c in "wx+"):
                    flagged = f'open(..., "{mode}")'
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                mode = _mode_of_open(node, is_method=True)
                if mode is not None and any(c in mode for c in "wx+"):
                    flagged = f'.open("{mode}")'
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text", "write_bytes"
            ):
                flagged = f".{func.attr}()"
            if flagged is None:
                continue
            if _mentions_tmp(node):
                continue  # atomic_replace callback writing its temp file
            out.append(RawFinding(
                "io/bare-write", name, node.lineno,
                f"{flagged} bypasses atomic_replace: a crash mid-write "
                "leaves a torn durable file",
                {},
            ))
    return out


def check_digest_gap(ctx: Context) -> List[RawFinding]:
    out = []
    for name in sorted(ctx.zones.durable_modules):
        mod = ctx.modules.get(name)
        if mod is None:
            continue
        for info in ctx.functions.values():
            if info.module != name:
                continue
            calls_atomic = any(
                isinstance(node, ast.Call) and (
                    (isinstance(node.func, ast.Name)
                     and node.func.id == "atomic_replace")
                    or (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "atomic_replace")
                )
                for node in ast.walk(info.node)
            )
            if not calls_atomic or info.name == "atomic_replace":
                continue
            # BFS <= 3 hops looking for digest vocabulary.
            frontier = {info.qual}
            seen: Set[str] = set()
            mentions = False
            for _ in range(4):  # hop 0 (self) + 3
                nxt: Set[str] = set()
                for qual in frontier:
                    if qual in seen or qual not in ctx.functions:
                        continue
                    seen.add(qual)
                    fn = ctx.functions[qual]
                    if any(
                        "sha256" in t.lower() or "digest" in t.lower()
                        for t in fn.tokens
                    ):
                        mentions = True
                        break
                    nxt.update(fn.calls)
                if mentions:
                    break
                frontier = nxt
            if not mentions:
                out.append(RawFinding(
                    "io/digest-gap", name, info.lineno,
                    f"{info.name} writes a durable artifact via "
                    "atomic_replace but nothing within 3 calls computes a "
                    "sha256/digest for it",
                    {"function": info.qual},
                ))
    return out


def check_json_unsorted(ctx: Context) -> List[RawFinding]:
    out = []
    for name in sorted(_io_modules(ctx)):
        mod = ctx.modules.get(name)
        if mod is None:
            continue
        scope = ctx.scopes[name]
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_json_dump = False
            if isinstance(func, ast.Attribute) and func.attr in (
                "dump", "dumps"
            ):
                root = _root_name(func)
                if root is not None and _module_of_root(root, scope) == "json":
                    is_json_dump = True
            elif isinstance(func, ast.Name) and func.id in scope.from_imports:
                base, attr = scope.from_imports[func.id]
                if base == "json" and attr in ("dump", "dumps"):
                    is_json_dump = True
            if not is_json_dump:
                continue
            sorted_kw = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if not sorted_kw:
                out.append(RawFinding(
                    "io/json-unsorted", name, node.lineno,
                    "json.dump(s) without sort_keys=True: durable JSON "
                    "must be canonically ordered for diffing and digests",
                    {},
                ))
    return out


# ----------------------------------------------------------------------
# mp/* — fork and shared-memory safety
# ----------------------------------------------------------------------

def check_fork_unsafe(ctx: Context) -> List[RawFinding]:
    out = []
    for module, call, expr in ctx.zones.submit_sites:
        scope = ctx.scopes[module]
        problem = None
        if isinstance(expr, ast.Lambda):
            problem = "lambda (unpicklable; dies in the worker)"
        elif isinstance(expr, ast.Attribute):
            root = _root_name(expr)
            if root is None or _module_of_root(root, scope) is None:
                problem = (
                    f"bound method {ast.unparse(expr)} (pickles the whole "
                    "instance into every worker)"
                )
        elif isinstance(expr, ast.Name):
            qual = resolve_callable(expr, scope, ctx.modules, ctx.functions)
            if qual is None:
                enclosing = _enclosing_function(ctx, module, call)
                if enclosing is not None and any(
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub.name == expr.id
                    and sub is not enclosing.node
                    for sub in ast.walk(enclosing.node)
                ):
                    problem = (
                        f"nested function {expr.id} (closures cannot be "
                        "pickled to a worker process)"
                    )
        if problem is not None:
            out.append(RawFinding(
                "mp/fork-unsafe", module, expr.lineno,
                f"pool submission of {problem}",
                {},
            ))
    return out


def check_global_mutation(ctx: Context) -> List[RawFinding]:
    out = []
    for qual in sorted(ctx.zones.worker - ctx.zones.initializers):
        info = ctx.functions[qual]
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                out.append(RawFinding(
                    "mp/global-mutation", info.module, node.lineno,
                    f"worker task {info.name} rebinds global(s) "
                    f"{', '.join(node.names)}: invisible to the parent and "
                    "order-dependent across workers",
                    {"function": qual},
                ))
    return out


def check_shm_leak(ctx: Context) -> List[RawFinding]:
    def calls_named(node: ast.AST, names) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                attr = sub.func.attr if isinstance(sub.func, ast.Attribute) \
                    else (sub.func.id if isinstance(sub.func, ast.Name) else None)
                if attr in names:
                    return True
        return False

    out = []
    for qual, info in sorted(ctx.functions.items()):
        if info.name in ("publish_shm", "publish_pass_shm"):
            continue  # the publishers themselves
        if not calls_named(info.node, ("publish_shm", "publish_pass_shm")):
            continue
        released = any(
            isinstance(node, ast.Try)
            and any(calls_named(f, ("release_shm",)) for f in node.finalbody)
            for node in ast.walk(info.node)
        )
        if not released:
            out.append(RawFinding(
                "mp/shm-leak", info.module, info.lineno,
                f"{info.name} publishes shared memory but has no "
                "release_shm in a finally: segments leak past process exit",
                {"function": qual},
            ))
    return out


# ----------------------------------------------------------------------
# api/* — environment knobs
# ----------------------------------------------------------------------

def check_env_knob(ctx: Context) -> List[RawFinding]:
    out = []
    for name, mod in ctx.modules.items():
        if name == ctx.knobs_module:
            continue
        scope = ctx.scopes[name]
        for node in ast.walk(mod.tree):
            hit = None
            if isinstance(node, ast.Attribute) and node.attr in (
                "environ", "getenv"
            ):
                root = _root_name(node)
                if root is not None and _module_of_root(root, scope) == "os":
                    hit = f"os.{node.attr}"
            elif isinstance(node, ast.Name) and node.id in scope.from_imports:
                base, attr = scope.from_imports[node.id]
                if base == "os" and attr in ("environ", "getenv"):
                    hit = f"os.{attr}"
            if hit is not None:
                out.append(RawFinding(
                    "api/env-knob", name, node.lineno,
                    f"{hit} read outside the knob registry: declare the "
                    f"knob in {ctx.knobs_module} and use its accessors",
                    {},
                ))
    return out


def check_knob_undeclared(ctx: Context) -> List[RawFinding]:
    out = []
    for name, mod in ctx.modules.items():
        if name == ctx.knobs_module:
            continue
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _KNOB_RE.match(node.value)
                and node.value not in ctx.known_knobs
            ):
                out.append(RawFinding(
                    "api/knob-undeclared", name, node.lineno,
                    f"{node.value} is not declared in {ctx.knobs_module}: "
                    "undeclared knobs are undiscoverable and unlintable",
                    {"knob": node.value},
                ))
    return out


# ----------------------------------------------------------------------
# exc/* — error handling in resilience paths
# ----------------------------------------------------------------------

def check_silent_swallow(ctx: Context) -> List[RawFinding]:
    out = []
    for name in sorted(ctx.zones.durable_modules):
        mod = ctx.modules.get(name)
        if mod is None:
            continue
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler):
                broad = node.type is None or _is_exception_name(node.type) or (
                    isinstance(node.type, ast.Tuple)
                    and any(_is_exception_name(e) for e in node.type.elts)
                )
                silent = all(
                    isinstance(stmt, (ast.Pass, ast.Continue))
                    for stmt in node.body
                )
                if node.type is None or (broad and silent):
                    out.append(RawFinding(
                        "exc/silent-swallow", name, node.lineno,
                        "broad except silently drops the error in a "
                        "durable-io path: narrow it or record a reason",
                        {},
                    ))
            elif isinstance(node, ast.Call):
                attr = node.func.attr if isinstance(node.func, ast.Attribute) \
                    else (node.func.id if isinstance(node.func, ast.Name)
                          else None)
                if attr == "suppress" and any(
                    _is_exception_name(a) for a in node.args
                ):
                    out.append(RawFinding(
                        "exc/silent-swallow", name, node.lineno,
                        "suppress(Exception) in a durable-io path hides "
                        "corruption instead of quarantining it",
                        {},
                    ))
    return out


#: rule id -> checker, in report order.
CHECKERS = {
    "det/wall-clock": check_wall_clock,
    "det/unseeded-random": check_unseeded_random,
    "det/float-cycles": check_float_cycles,
    "det/unsorted-iteration": check_unsorted_iteration,
    "io/bare-write": check_bare_write,
    "io/digest-gap": check_digest_gap,
    "io/json-unsorted": check_json_unsorted,
    "mp/fork-unsafe": check_fork_unsafe,
    "mp/global-mutation": check_global_mutation,
    "mp/shm-leak": check_shm_leak,
    "api/env-knob": check_env_knob,
    "api/knob-undeclared": check_knob_undeclared,
    "exc/silent-swallow": check_silent_swallow,
}


def run_checks(ctx: Context) -> List[RawFinding]:
    out: List[RawFinding] = []
    for checker in CHECKERS.values():
        out.extend(checker(ctx))
    out.sort(key=lambda r: (r.module, r.lineno, r.rule))
    return out
