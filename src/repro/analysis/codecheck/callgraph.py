"""Module-level call graph over a parsed package.

Every top-level function and every class method becomes a
:class:`FunctionInfo` keyed by qualname (``"pkg.mod:fn"`` or
``"pkg.mod:Class.method"``).  Call edges are resolved best-effort and
*conservatively*: a call we cannot attribute to a package function is
simply not an edge (it can still be flagged by the pattern checkers,
which work on raw AST nodes).  Resolution covers the shapes this
codebase actually uses:

* plain names — local functions, ``from x import f`` imports;
* ``module.attr`` — where ``module`` is an imported package module;
* ``self.method`` / ``cls.method`` — within the defining class.

:func:`reachable` runs the BFS that underlies zone classification;
*barrier_modules* are never traversed **into** (their functions do not
join the reachable set, and nothing is explored through them), which is
how the sim-core zone stays clear of the durable-IO layer it invokes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .loader import Module

__all__ = ["FunctionInfo", "build_callgraph", "reachable"]


@dataclass
class FunctionInfo:
    """One function (or method) of the analyzed package."""

    qual: str  # "pkg.mod:fn" or "pkg.mod:Class.method"
    module: str
    name: str
    class_name: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    calls: Set[str] = field(default_factory=set)  # resolved qualnames
    tokens: Set[str] = field(default_factory=set)  # identifiers + str literals

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleScope:
    """Name-resolution context for one module."""

    module: Module
    #: local alias -> absolute module name (``import x.y as z``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (absolute module, attr) for ``from m import attr``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: names of functions/classes defined at module top level
    top_functions: Set[str] = field(default_factory=set)
    top_classes: Set[str] = field(default_factory=set)


def _scan_imports(scope: ModuleScope) -> None:
    mod = scope.module
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                scope.module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = mod.resolve_relative(node.level, node.module or "")
            for alias in node.names:
                local = alias.asname or alias.name
                scope.from_imports[local] = (base, alias.name)


def _function_nodes(mod: Module):
    """Yield ``(class_name, def_node)`` for top-level defs and methods."""
    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, sub


def _collect_tokens(node: ast.AST) -> Set[str]:
    tokens: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if len(sub.value) < 80:
                tokens.add(sub.value)
    return tokens


def resolve_callable(
    expr: ast.AST,
    scope: ModuleScope,
    modules: Dict[str, Module],
    functions: Dict[str, FunctionInfo],
    class_name: Optional[str] = None,
) -> Optional[str]:
    """Best-effort qualname for a callable expression; None if unknown."""
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in scope.top_functions:
            return f"{scope.module.name}:{name}"
        if name in scope.from_imports:
            target_mod, attr = scope.from_imports[name]
            qual = f"{target_mod}:{attr}"
            if qual in functions:
                return qual
            # ``from pkg import mod`` — the name is a module, not a fn.
            sub = f"{target_mod}.{attr}"
            if sub in modules:
                return None
        return None
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and class_name is not None:
                qual = f"{scope.module.name}:{class_name}.{expr.attr}"
                if qual in functions:
                    return qual
                return None
            target_mod = None
            if base.id in scope.module_aliases:
                target_mod = scope.module_aliases[base.id]
            elif base.id in scope.from_imports:
                m, attr = scope.from_imports[base.id]
                cand = f"{m}.{attr}"
                if cand in modules:
                    target_mod = cand
                else:
                    # ``from m import Cls`` then ``Cls.method(...)``
                    qual = f"{m}:{attr}.{expr.attr}"
                    if qual in functions:
                        return qual
            if target_mod is not None:
                qual = f"{target_mod}:{expr.attr}"
                if qual in functions:
                    return qual
            # ``Cls.method`` on a locally defined class
            if base.id in scope.top_classes:
                qual = f"{scope.module.name}:{base.id}.{expr.attr}"
                if qual in functions:
                    return qual
    return None


def build_callgraph(
    modules: Dict[str, Module],
) -> Tuple[Dict[str, FunctionInfo], Dict[str, ModuleScope]]:
    """Build the function table and call edges for *modules*."""
    scopes: Dict[str, ModuleScope] = {}
    functions: Dict[str, FunctionInfo] = {}
    for name, mod in modules.items():
        scope = ModuleScope(module=mod)
        _scan_imports(scope)
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.top_functions.add(node.name)
            elif isinstance(node, ast.ClassDef):
                scope.top_classes.add(node.name)
        scopes[name] = scope
        for class_name, fn_node in _function_nodes(mod):
            qual = (
                f"{name}:{class_name}.{fn_node.name}"
                if class_name
                else f"{name}:{fn_node.name}"
            )
            functions[qual] = FunctionInfo(
                qual=qual,
                module=name,
                name=fn_node.name,
                class_name=class_name,
                node=fn_node,
                tokens=_collect_tokens(fn_node),
            )
    # Second pass: resolve call edges (needs the full function table).
    for info in functions.values():
        scope = scopes[info.module]
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Call):
                qual = resolve_callable(
                    sub.func, scope, modules, functions, info.class_name
                )
                if qual is not None:
                    info.calls.add(qual)
    return functions, scopes


def reachable(
    functions: Dict[str, FunctionInfo],
    roots: Iterable[str],
    barrier_modules: Iterable[str] = (),
) -> Set[str]:
    """Qualnames reachable from *roots* without entering a barrier module."""
    barriers = set(barrier_modules)
    seen: Set[str] = set()
    stack: List[str] = [
        q for q in roots if q in functions and functions[q].module not in barriers
    ]
    while stack:
        qual = stack.pop()
        if qual in seen:
            continue
        seen.add(qual)
        for callee in functions[qual].calls:
            info = functions.get(callee)
            if info is None or callee in seen or info.module in barriers:
                continue
            stack.append(callee)
    return seen
