"""Static working-set and reuse estimation over a recorded trace.

The paper's co-design argument (Sections VI-C and VIII) hinges on how
each kernel's working set compares to the L2: the 3-loop GEMM re-streams
the whole weight matrix per j-block, so its miss curve knees exactly
where the L2 stops holding that matrix (Table III), while the 6-loop
kernel packs panels sized to stay resident.  This pass derives those
quantities *without simulating*:

* **footprint** — distinct cache lines each kernel label touches, via an
  exact line-aligned interval union over all its demand accesses;
* **compulsory floor** — the cold-miss lower bound implied by the
  footprint (every distinct line must be fetched at least once,
  regardless of cache size);
* **traffic** — total weighted bytes moved, whose ratio to the footprint
  is the static reuse factor;
* **L2 knee** — the smallest L2 capacity at which the largest
  streamed-through range (declared via ``note_resident_range``, the same
  declarations the hierarchy model prices) becomes resident.  Above the
  knee, re-streams hit; below, they miss — the capacity sweep's miss
  curve (Fig. 5) knees there.

Everything is vectorized over the trace's columnar arrays.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..machine.trace import (
    OP_NOTE_RANGE,
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_VLOAD,
    OP_VSTORE,
)

__all__ = ["working_sets", "predict_l2_knee"]


def _distinct_line_bytes(starts: np.ndarray, ends: np.ndarray, line: int) -> int:
    """Exact union size (in bytes) of line-aligned [start, end) intervals.

    Sort by start, take the running maximum of ends, and a new disjoint
    run begins wherever a start exceeds every previous end; summing the
    per-run extents via ``reduceat`` gives the union without
    materializing per-line sets (a YOLOv3 GEMM touches millions of
    lines).
    """
    if starts.size == 0:
        return 0
    starts = (starts // line) * line
    ends = ((ends + line - 1) // line) * line
    order = np.argsort(starts, kind="stable")
    s = starts[order]
    e = np.maximum.accumulate(ends[order])
    new_run = np.ones(s.size, dtype=bool)
    new_run[1:] = s[1:] > e[:-1]
    run_idx = np.flatnonzero(new_run)
    run_end = np.maximum.reduceat(e, run_idx)
    return int((run_end - s[run_idx]).sum())


def working_sets(trace, machine) -> List[Dict]:
    """Per-kernel-label static working-set rows.

    Columns: ``kernel``, ``accesses`` (weighted demand accesses),
    ``traffic_mb`` (weighted bytes moved), ``resident_kb`` (distinct L2
    lines touched, i.e. the static footprint), ``reuse`` (traffic /
    footprint — 1.0 means pure streaming, large means cache-friendly),
    ``cold_miss_floor`` (compulsory misses: footprint / line).
    """
    line = machine.l2.line_bytes
    op = np.asarray(trace.op)
    w = np.asarray(trace.w)
    kid = np.asarray(trace.kid)
    i0 = np.asarray(trace.i0)
    i1 = np.asarray(trace.i1)
    i2 = np.asarray(trace.i2)
    i3 = np.asarray(trace.i3)

    is_vmem = (op == OP_VLOAD) | (op == OP_VSTORE)
    is_smem = (op == OP_SCALAR_LOAD) | (op == OP_SCALAR_STORE)
    mem = is_vmem | is_smem

    # Byte extent of each access (same per-opcode shapes as the
    # verifier's bounds rule).
    unit = (i3 == 0) | (i3 == i2)
    v_ext = np.where(unit, i1 * i2, (np.maximum(i1, 1) - 1) * np.abs(i3) + i2)
    ext = np.where(is_vmem, v_ext, np.where(is_smem, i1, 0))

    # Restrict to memory events once, then group by kernel label — one
    # stable sort instead of one full-trace mask per label.
    sel = np.flatnonzero(mem)
    kid_m = kid[sel]
    starts_m = i0[sel].astype(np.int64)
    ext_m = np.maximum(ext[sel], 0).astype(np.int64)
    w_m = w[sel]
    order = np.argsort(kid_m, kind="stable")
    kid_s = kid_m[order]
    group_starts = np.searchsorted(kid_s, np.arange(len(trace.labels) + 1))

    rows: List[Dict] = []
    for k, label in enumerate(trace.labels):
        lo, hi = group_starts[k], group_starts[k + 1]
        if lo == hi:
            continue
        g = order[lo:hi]
        starts = starts_m[g]
        ends = starts + ext_m[g]
        footprint = _distinct_line_bytes(starts, ends, line)
        traffic = float((w_m[g] * ext_m[g]).sum())
        rows.append(
            {
                "kernel": label,
                "accesses": float(w_m[g].sum()),
                "traffic_mb": traffic / (1 << 20),
                "resident_kb": footprint / 1024,
                "reuse": traffic / footprint if footprint else 0.0,
                "cold_miss_floor": footprint // line if line else 0,
            }
        )
    rows.sort(key=lambda r: -r["traffic_mb"])
    return rows


def predict_l2_knee(trace, machine) -> int:
    """Predict the L2 capacity (bytes) where the miss curve knees.

    The kernels declare every range they re-stream through the L2 with
    ``note_resident_range`` — exactly the ranges the hierarchy model
    prices as resident when they fit (see
    :meth:`MemoryHierarchy.note_resident_range`).  The largest declared
    range is therefore the static knee: an L2 at least that big converts
    the dominant kernel's re-streams from misses to hits; any smaller
    L2 leaves them missing.  For the 3-loop GEMM this is the largest
    layer's weight-matrix footprint (``M*K*4`` bytes), reproducing the
    capacity cliff of Table III / Fig. 5.

    Returns 0 when the trace declares no ranges (nothing re-streams, no
    knee — e.g. a pure elementwise network).
    """
    op = np.asarray(trace.op)
    sel = op == OP_NOTE_RANGE
    if not sel.any():
        return 0
    line = machine.l2.line_bytes
    nbytes = np.asarray(trace.i1)[sel]
    # Ranges are priced at line granularity; round up like the hierarchy.
    largest = int(nbytes.max())
    return -(-largest // line) * line if line else largest
