"""Static cost model: predicted cycles with no simulation or replay.

The analysis passes already compute the three ingredients of a cycle
count — reuse-distance miss curves (:mod:`repro.analysis.reusedist`),
per-buffer working sets, and roofline compute floors
(:mod:`repro.analysis.bounds`) — but as *diagnostics*.  This pass
composes them into a **predictor**: :func:`predict_cycles` prices a
:class:`TraceSummary` on any candidate :class:`MachineConfig` in
microseconds, which is what lets the model-guided tuner
(:mod:`repro.core.autotune`) and the ``prune=`` hook of
:func:`repro.core.codesign.sweep` rank a whole co-design grid statically
and simulate only the top-K survivors.

Model structure (mirrors ``simulator.vmem_event_cycles`` term by term):

* **Compute** — exact ``varith_cycles``/``vbroadcast`` masses per
  distinct instruction shape, plus scalar bookkeeping at ``scalar_cpi``.
* **Memory base** — per-event issue overheads and port-transfer cycles,
  exact (they do not depend on cache state).
* **Stall and fill occupancy** — the only stochastic part.  Each
  buffer's reuse-distance histogram is converted to per-line-touch miss
  probabilities at every cache level (set-associativity-corrected via
  :func:`repro.analysis.reusedist.assoc_miss_probs`, VectorCache hits
  from the small-distance mass, ``note_resident_range`` residency
  capping DRAM exposure), then multiplied by the simulator's per-line
  penalties and divided by the same effective-MLP overlap rule
  ``vmem_event_cycles`` applies.

The model is *approximate by construction* (expected-value pricing of a
stateful hierarchy), so it is gated: :func:`check_predict_against_sim`
raises ``predict/*`` findings whenever prediction drifts outside a
documented band around a real simulation — the same oracle pattern as
``bounds.check_bounds_against_sim``.  The contract is relative fidelity
(ranking candidates), not absolute accuracy; docs/ANALYSIS.md states the
band.

:func:`gemm_summary` builds the same :class:`TraceSummary` *analytically*
from ``(M, N, K, blocks, unroll)`` — exact event counts from the 6-loop
structure (:mod:`repro.kernels.gemm_6loop`) and closed-form per-buffer
reuse classes — so ranking a blocking candidate needs no trace capture
at all (capturing costs as much as simulating, which would erase the
pruning win).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.simulator import (
    _SCALAR_MLP,
    _SPILL_SERIALIZE_CYCLES,
    _STORE_STALL_FACTOR,
)
from ..machine.trace import (
    OP_NOTE_RANGE,
    OP_SCALAR,
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_SPILL,
    OP_SW_PREFETCH,
    OP_VARITH,
    OP_VBROADCAST,
    OP_VLOAD,
    OP_VSTORE,
)
from ..machine.vpu import varith_cycles, vbroadcast_cycles, vmem_transfer_cycles
from .findings import Finding
from .reusedist import N_BUCKETS, assoc_miss_probs, reuse_distances

__all__ = [
    "TraceSummary",
    "PredictedCycles",
    "summarize_trace",
    "gemm_summary",
    "predict_cycles",
    "predicted_stats",
    "check_predict_against_sim",
    "DRIFT_BAND",
]

#: Predicted cycles must stay within ``[sim / DRIFT_BAND, sim *
#: DRIFT_BAND]`` of a real simulation or ``predict/cycles-drift`` fires.
#: The static model prices a stateful hierarchy in expectation, so the
#: contract is a factor band, not a percentage: wide enough to tolerate
#: expected-value smoothing, tight enough to catch a broken term (every
#: individual term that drifts 2x moves total cycles well past this).
DRIFT_BAND = 2.0

#: VectorCache latency, kept in lock-step with ``hierarchy._VC_HIT_LATENCY``.
_VC_HIT_LATENCY = 2


# ----------------------------------------------------------------------
# Summary structure
# ----------------------------------------------------------------------

@dataclass
class TraceSummary:
    """Everything :func:`predict_cycles` needs, per candidate-invariant
    workload: per-buffer temporal profiles plus exact event-class masses.

    Event classes are keyed on the tuple the simulator's pricing is a
    pure function of: ``vmem[(buf, nbytes, n_lines, write, unit)]`` and
    ``smem[(buf, write)]`` map to weighted event mass.  ``hist`` /
    ``cold`` / ``total`` are weighted *line-touch* masses per buffer
    (same construction as :class:`~repro.analysis.reusedist.ReuseReport`
    with ``by="buffer"``), used only as per-buffer ratios.
    """

    buffers: List[str] = field(default_factory=list)
    hist: np.ndarray = field(default_factory=lambda: np.zeros((0, N_BUCKETS)))
    cold: np.ndarray = field(default_factory=lambda: np.zeros(0))
    total: np.ndarray = field(default_factory=lambda: np.zeros(0))
    footprint_bytes: np.ndarray = field(default_factory=lambda: np.zeros(0))
    line_bytes: int = 64
    l1_line_bytes: int = 64
    vmem: Dict[Tuple[int, int, int, bool, bool], float] = field(default_factory=dict)
    smem: Dict[Tuple[int, bool], float] = field(default_factory=dict)
    varith: Dict[Tuple[int, int, int], float] = field(default_factory=dict)
    vbroadcast_mass: float = 0.0
    scalar_mass: float = 0.0       # weighted plain-scalar instruction count
    prefetch_mass: float = 0.0     # weighted sw_prefetch event count
    spill_regs: float = 0.0        # weighted spilled-register count
    flops: float = 0.0
    n_events: int = 0
    #: ``note_resident_range`` registrations: buffer index -> max bytes.
    resident: Dict[int, int] = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)

    def buffer_index(self, name: str) -> int:
        return self.buffers.index(name)


@dataclass
class PredictedCycles:
    """Cycle prediction with its term decomposition and per-buffer rows."""

    cycles: float = 0.0
    compute_cycles: float = 0.0    # varith + vbroadcast
    scalar_cycles: float = 0.0     # scalar bookkeeping + priced prefetches
    memory_cycles: float = 0.0     # issue overheads + port transfer
    stall_cycles: float = 0.0      # exposed (MLP-divided) miss latency
    occupancy_cycles: float = 0.0  # fill-bandwidth occupancy
    l1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    flops: float = 0.0
    buffer_rows: List[Dict] = field(default_factory=list)
    meta: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "cycles": self.cycles,
            "compute_cycles": self.compute_cycles,
            "scalar_cycles": self.scalar_cycles,
            "memory_cycles": self.memory_cycles,
            "stall_cycles": self.stall_cycles,
            "occupancy_cycles": self.occupancy_cycles,
            "l1_miss_rate": self.l1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "flops": self.flops,
            "buffers": self.buffer_rows,
        }


# ----------------------------------------------------------------------
# Trace -> summary
# ----------------------------------------------------------------------

def summarize_trace(trace, machine) -> TraceSummary:
    """Distill a recorded trace into a machine-portable cost summary.

    ``machine`` supplies only the *line geometries* (the reuse profile's
    granularity and the unit-stride line-span arithmetic); everything
    that depends on VPU/cache/DRAM parameters is resolved later by
    :func:`predict_cycles`, so one summary prices many candidates as
    long as they share line sizes — the same constraint trace replay
    imposes on pricing-axis sweeps.
    """
    # Trace clock: the oracle is the sampled-trace simulator, so the
    # distances must be those its cache actually experiences.
    prof = reuse_distances(trace, machine, by="buffer", clock="trace")
    l1_line = int(machine.l1.line_bytes)
    s = TraceSummary(
        buffers=list(prof.labels),
        hist=prof.hist,
        cold=prof.cold,
        total=prof.total,
        footprint_bytes=prof.footprint_lines.astype(np.float64) * prof.line_bytes,
        line_bytes=prof.line_bytes,
        l1_line_bytes=l1_line,
        n_events=int(trace.n_events),
        meta={"trace_key": getattr(trace, "key", None)},
    )

    op = np.asarray(trace.op)
    w = np.asarray(trace.w, dtype=np.float64)
    i0 = np.asarray(trace.i0)
    i1 = np.asarray(trace.i1)
    i2 = np.asarray(trace.i2)
    i3 = np.asarray(trace.i3)
    f0 = np.asarray(trace.f0, dtype=np.float64)

    # Buffer lookup table for event base addresses.
    buffers = list(getattr(trace, "buffers", ()) or ())
    unmapped = len(s.buffers) - 1 if s.buffers and s.buffers[-1] == "?" else 0
    if buffers:
        order = sorted(range(len(buffers)), key=lambda i: buffers[i][1])
        bases = np.asarray([buffers[i][1] for i in order], dtype=np.int64)
        ends = np.asarray([buffers[i][1] + buffers[i][2] for i in order], dtype=np.int64)
        merged = [re.sub(r"#\d+$", "", str(buffers[i][0])) for i in order]
        gid_of = np.asarray([s.buffers.index(n) for n in merged], dtype=np.int64)

        def to_buf(addr):
            j = np.searchsorted(bases, addr, side="right") - 1
            jc = np.maximum(j, 0)
            ok = (j >= 0) & (addr < ends[jc])
            return np.where(ok, gid_of[jc], unmapped)
    else:
        def to_buf(addr):
            return np.full(np.asarray(addr).shape, unmapped, dtype=np.int64)

    # Vector memory: class = (buffer, nbytes, n_lines, write, unit).
    vm = (op == OP_VLOAD) | (op == OP_VSTORE)
    if vm.any():
        idx = np.flatnonzero(vm)
        addr, n, ew, stride = i0[idx], i1[idx], i2[idx], i3[idx]
        nbytes = n * ew
        unit = (stride == 0) | (stride == ew)
        n_lines = np.where(
            unit, (addr + nbytes - 1) // l1_line - addr // l1_line + 1, n
        )
        write = op[idx] == OP_VSTORE
        buf = to_buf(addr)
        keys = np.stack(
            [buf, nbytes, n_lines, write.astype(np.int64), unit.astype(np.int64)],
            axis=1,
        )
        uniq, inv = np.unique(keys, axis=0, return_inverse=True)
        mass = np.bincount(inv, weights=w[idx], minlength=len(uniq))
        for row, m in zip(uniq, mass):
            s.vmem[(int(row[0]), int(row[1]), int(row[2]), bool(row[3]), bool(row[4]))] = \
                float(m)

    # Scalar memory: class = (buffer, write).
    sm = (op == OP_SCALAR_LOAD) | (op == OP_SCALAR_STORE)
    if sm.any():
        idx = np.flatnonzero(sm)
        buf = to_buf(i0[idx])
        write = (op[idx] == OP_SCALAR_STORE).astype(np.int64)
        keys = buf * 2 + write
        for k in np.unique(keys):
            s.smem[(int(k // 2), bool(k % 2))] = float(w[idx][keys == k].sum())

    # Vector arithmetic: class = (n_elems, n_instr, ew).
    va = op == OP_VARITH
    if va.any():
        idx = np.flatnonzero(va)
        keys = np.stack([i0[idx], i1[idx], i2[idx]], axis=1)
        uniq, inv = np.unique(keys, axis=0, return_inverse=True)
        mass = np.bincount(inv, weights=w[idx], minlength=len(uniq))
        for row, m in zip(uniq, mass):
            s.varith[(int(row[0]), int(row[1]), int(row[2]))] = float(m)
        s.flops += float((w[idx] * i0[idx] * i1[idx] * f0[idx]).sum())

    s.vbroadcast_mass = float((w[op == OP_VBROADCAST] * i0[op == OP_VBROADCAST]).sum())
    s.scalar_mass = float((w[op == OP_SCALAR] * i0[op == OP_SCALAR]).sum())
    s.prefetch_mass = float(w[op == OP_SW_PREFETCH].sum())
    s.spill_regs = float((w[op == OP_SPILL] * i0[op == OP_SPILL]).sum())

    nr = op == OP_NOTE_RANGE
    if nr.any():
        idx = np.flatnonzero(nr)
        buf = to_buf(i0[idx])
        for b, nb in zip(buf, i1[idx]):
            s.resident[int(b)] = max(s.resident.get(int(b), 0), int(nb))
    return s


# ----------------------------------------------------------------------
# Analytic GEMM summary (no trace at all)
# ----------------------------------------------------------------------

def _edges(total: int, block: int) -> List[Tuple[int, int]]:
    """Distinct (block_edge_size, multiplicity) pairs along one dim."""
    n = -(-total // block)
    rem = total - (n - 1) * block
    if rem == block:
        return [(block, n)]
    out = [(block, n - 1)] if n > 1 else []
    out.append((rem, 1))
    return out


def _panels(extent: int, width: int) -> List[Tuple[int, int]]:
    """Distinct (panel_width, count) pairs of tiling *extent* by *width*."""
    return _edges(extent, width)


def gemm_summary(M: int, N: int, K: int, machine, blocks, unroll: int = 16
                 ) -> TraceSummary:
    """Analytic :class:`TraceSummary` of the 6-loop GEMM.

    Event-class masses replicate ``trace_gemm_6loop`` +
    ``trace_pack_a/b`` loop structure exactly (full counts, enumerated
    over the <= 8 distinct block-edge combinations per dimension).  The
    per-buffer reuse profile is closed-form: each access class is
    assigned the stack distance of the loop level whose working set
    separates it from its previous touch (B-source reads are cold; a
    packed-B panel is re-read across the ``ig`` loop at the micro-kernel
    working set, across ``i1`` at the block working set; C tiles return
    once per ``k1``; A re-streams once per ``j1`` pass).  Distances use
    the full-size blocks — edge blocks shift a touch one bucket at most,
    invisible next to the pow2 bucketing.
    """
    if min(M, N, K) <= 0:
        raise ValueError("matrix dimensions must be positive")
    vl = machine.vlen_f32
    l1_line = int(machine.l1.line_bytes)
    lr = int(machine.l2.line_bytes)
    u_max = min(unroll, blocks.m)
    spilled = max(0, unroll + 3 - 32)
    line4 = max(1, l1_line // 4)
    period = max(1, line4 // math.gcd(u_max, line4))

    names = ["A", "B", "C", "packA", "packB", "?"]
    A, B, C, PA, PB, UN = range(6)
    s = TraceSummary(
        buffers=names,
        hist=np.zeros((6, N_BUCKETS)),
        cold=np.zeros(6),
        total=np.zeros(6),
        footprint_bytes=np.asarray(
            [M * K * 4, K * N * 4, M * N * 4,
             blocks.m * blocks.k * 4, blocks.k * blocks.n * 4, 0],
            dtype=np.float64,
        ),
        line_bytes=lr,
        l1_line_bytes=l1_line,
        meta={"gemm": (M, N, K), "blocks": (blocks.m, blocks.n, blocks.k),
              "unroll": unroll},
    )
    s.resident[A] = M * K * 4  # trace_gemm_6loop's note_resident_range

    def span(nbytes: int) -> int:
        return -(-nbytes // l1_line)

    def lines(nbytes: float) -> float:
        return max(1.0, nbytes / lr)

    def add_vmem(buf, nbytes, n_lines, write, unit, mass):
        if mass <= 0 or nbytes <= 0:
            return
        key = (buf, int(nbytes), int(n_lines), write, unit)
        s.vmem[key] = s.vmem.get(key, 0.0) + mass

    def add_reuse(buf, sd_lines, mass):
        if mass <= 0:
            return
        b = min(N_BUCKETS - 1, max(0, int(math.floor(math.log2(max(sd_lines, 1.0))))))
        s.hist[buf, b] += mass
        s.total[buf] += mass

    def add_cold(buf, mass):
        if mass <= 0:
            return
        s.cold[buf] += mass
        s.total[buf] += mass

    n_j1 = -(-N // blocks.n)
    n_k1 = -(-K // blocks.k)
    n_i1 = -(-M // blocks.m)

    # Closed-form working sets (lines) separating each reuse class.
    #
    # The oracle this model is gated against is the *trace simulator*,
    # whose loops are sampled (``SampledTraceBase.loop``: warmup +
    # ``sample`` interior iterations + tail).  The cache therefore sees
    # the traced footprints — a loop over 64 panels touches at most
    # warmup+sample+1 of them — which is why measured sweep cycles are
    # nearly flat in the block sizes once sampling saturates.  Distances
    # below use the traced trip counts; weighted event *masses* (above)
    # stay exact, as in the simulator.
    def t(n: int, warmup: int, sample: int) -> int:
        return n if n <= warmup + sample + 1 else warmup + sample + 1

    # Effective (clamped) block sizes — a nominal block larger than the
    # matrix collapses to one edge block of the matrix dimension.
    bn_f, bk_f, bm_f = min(blocks.n, N), min(blocks.k, K), min(blocks.m, M)
    n_jc_f = max(1, -(-bn_f // vl))
    n_ig_f = max(1, -(-bm_f // u_max))
    t_k1 = t(n_k1, 1, 3)
    t_i1 = t(n_i1, 1, 3)
    t_jc = t(n_jc_f, 1, 3)
    t_ig = t(n_ig_f, 1, 2)
    t_pbp, t_pbk = t(n_jc_f, 1, 3), t(bk_f, 1, 4)
    t_paq, t_pak = t(n_ig_f, 1, 2), t(bk_f, 1, 4)

    pb_slice = lines(bk_f * vl * 4)          # one packed-B jc panel
    pa_slice = lines(bk_f * u_max * 4)       # one packed-A ig panel
    c_slice = u_max * lines(vl * 4)          # one C micro-tile
    d_kloop = pb_slice + pa_slice            # load->store distance in C
    d_ig = d_kloop + c_slice                 # between ig sweeps of a panel
    d_jc = pb_slice + t_ig * (pa_slice + c_slice)      # one jc pass
    d_i1 = (t_jc * pb_slice + t_ig * pa_slice          # one i1 iteration
            + t_jc * t_ig * c_slice + t_paq * t_pak * (u_max + 1))
    d_k1 = 2 * t_pbp * t_pbk + t_i1 * d_i1   # one k1 iteration (+ pack_b)
    d_j1 = t_k1 * d_k1                       # one j1 pass

    for bn, c_j1 in _edges(N, blocks.n):
        for bk, c_k1 in _edges(K, blocks.k):
            m_jk = c_j1 * c_k1  # multiplicity of this (j1, k1) combo

            # ---- pack_b: per panel p, per k: scalar(3) + vload(B) +
            # vstore(packB), both unit-stride of the panel width.
            for wp, c_p in _panels(bn, vl):
                cnt = m_jk * c_p * bk
                s.scalar_mass += 3 * cnt
                sp = span(wp * 4)
                add_vmem(B, wp * 4, sp, False, True, cnt)
                add_vmem(PB, wp * 4, sp, True, True, cnt)
                add_cold(B, cnt * sp)                      # B is read exactly once
                # packB rewrite: first (j1,k1) cold; afterwards the store
                # trails the panel's last micro read by one i1 working set.
                add_cold(PB, cnt * sp / (n_j1 * n_k1))
                add_reuse(PB, d_i1, cnt * sp * (1 - 1 / (n_j1 * n_k1)))

            for bm, c_i1 in _edges(M, blocks.m):
                m_jki = m_jk * c_i1

                # ---- pack_a: per panel q, per k: scalar(3) + strided
                # vload(A, h) + unit vstore(packA, h).
                for h, c_q in _panels(bm, u_max):
                    cnt = m_jki * c_q * bk
                    s.scalar_mass += 3 * cnt
                    add_vmem(A, h * 4, h, False, False, cnt)   # strided: line/elem
                    sp = span(h * 4)
                    add_vmem(PA, h * 4, sp, True, True, cnt)
                    # packA rewrite: globally cold once, then trailing the
                    # last scalar read of the previous i1 by one jc pass.
                    add_cold(PA, cnt * sp / (n_j1 * n_k1 * n_i1))
                    add_reuse(PA, d_jc, cnt * sp * (1 - 1 / (n_j1 * n_k1 * n_i1)))
                # A reads: in the sampled pack loop the traced k columns are
                # spaced ~bk/4 apart, so line touches don't repeat within a
                # block visit — every touch returns after a whole j1 sweep
                # (cold on the first; later sweeps are range-resident hits).
                a_total = bm * bk
                add_cold(A, m_jki * a_total / n_j1)
                add_reuse(A, d_j1, m_jki * a_total * (1 - 1 / n_j1))

                s.prefetch_mass += 2 * m_jki  # panel prefetches into L2

                # ---- micro-kernel.
                for gvl, c_jc in _panels(bn, vl):
                    m4 = m_jki * c_jc
                    s.scalar_mass += 4 * m4
                    for u, c_ig in _panels(bm, u_max):
                        m5 = m4 * c_ig
                        s.prefetch_mass += m5              # C-block prefetch
                        spc = span(gvl * 4)
                        # C loads (line 14) and stores (line 23).
                        add_vmem(C, gvl * 4, spc, False, True, m5 * u)
                        add_vmem(C, gvl * 4, spc, True, True, m5 * u)
                        c_touch = m5 * u * spc
                        add_cold(C, c_touch / n_k1)        # first k1 pass
                        add_reuse(C, d_k1, c_touch * (1 - 1 / n_k1))
                        add_reuse(C, d_kloop, c_touch)     # store-after-load
                        # k loop (line 15).
                        s.prefetch_mass += m5 * (bk + -(-bk // 8))
                        add_vmem(PB, gvl * 4, spc, False, True, m5 * bk)
                        pb_touch = m5 * bk * spc
                        # One sweep per (i1, jc) is the panel's first read
                        # since the previous k1 (i1 == 0; the sampled pack
                        # only rewrote a few rows) or the previous i1; the
                        # other (n_ig - 1) sweeps re-read at the ig set.
                        n_ig = max(1, -(-bm // u_max))
                        first_sweep = pb_touch / n_ig
                        add_reuse(PB, d_k1, first_sweep / max(1, n_i1))
                        add_reuse(PB, d_i1, first_sweep * (1 - 1 / max(1, n_i1)))
                        add_reuse(PB, d_ig, pb_touch - first_sweep)
                        # packA scalar reloads (line 19's operand feed):
                        # the first jc pass returns after one i1 iteration
                        # (the sampled pack rewrote only a few of its lines),
                        # later passes after one jc working set.
                        n_sl = m5 * (-(-bk // period))
                        key = (PA, False)
                        s.smem[key] = s.smem.get(key, 0.0) + n_sl
                        n_jc = max(1, -(-bn // vl))
                        add_reuse(PA, d_i1, n_sl / n_jc)
                        add_reuse(PA, d_jc, n_sl * (1 - 1 / n_jc))
                        # FMAs + loop bookkeeping.
                        key = (gvl, u, 4)
                        s.varith[key] = s.varith.get(key, 0.0) + m5 * bk
                        s.flops += m5 * bk * gvl * u * 2.0
                        s.scalar_mass += 2 * m5 * bk
                        if spilled:
                            s.spill_regs += spilled * m5 * bk

    return s


# ----------------------------------------------------------------------
# Summary -> cycles
# ----------------------------------------------------------------------

def _fa_tail(capacity_lines: float) -> np.ndarray:
    """Fully-associative per-bucket miss probability (sharp LRU step,
    log2-interpolated within the capacity's bucket) — used for the
    VectorCache, which *is* fully associative."""
    p = np.zeros(N_BUCKETS)
    b = math.log2(max(capacity_lines, 1.0))
    whole = int(math.floor(b))
    if whole < N_BUCKETS:
        p[min(whole + 1, N_BUCKETS):] = 1.0
        if whole >= 0:
            p[whole] = 1.0 - (b - whole)
        else:
            p[:] = 1.0
    return p


def predict_cycles(summary: TraceSummary, machine) -> PredictedCycles:
    """Price *summary* on *machine* analytically (microseconds, no sim).

    See the module docstring for the model; every term cites the
    simulator expression it mirrors.
    """
    vpu = machine.vpu
    core = machine.core
    lr = summary.line_bytes
    l1_lat = machine.l1.latency
    l2_lat = machine.l2.latency
    dram_lat = machine.dram_latency
    fill_l1 = machine.l1.line_bytes / machine.l2_to_l1_bytes_per_cycle
    fill_l2 = machine.l2.line_bytes / machine.dram_bytes_per_cycle
    ooo = core.ooo_hide
    l1_fed = vpu.mem_port == "L1"

    nb = len(summary.buffers)
    hist, cold, total = summary.hist, summary.cold, summary.total
    tot = np.maximum(total, 1e-12)

    # Per-buffer per-touch miss probabilities at each level, under two
    # placement models.  Dense unit-stride sweeps stripe *uniformly*
    # across the sets of the simulator's set-associative caches, so they
    # behave fully-associatively (sharp LRU step at capacity); strided
    # walks revisit a subset of sets and see binomial conflict misses —
    # that is what the StatStack set-associativity correction models.
    # Each access class below picks the tail matching its stride.
    def _tails(size_bytes: float, assoc: int):
        cap = size_bytes / lr
        fa = (hist @ _fa_tail(cap) + cold) / tot
        corr = (hist @ assoc_miss_probs(cap, assoc) + cold) / tot
        return fa, corr

    p1_fa, p1_as = _tails(machine.l1.size_bytes, machine.l1.assoc)
    p2_fa, p2_as = _tails(machine.l2.size_bytes, machine.l2.assoc)
    if l1_fed:
        p2_fa = np.minimum(p2_fa, p1_fa)
        p2_as = np.minimum(p2_as, p1_as)
    vc_bytes = vpu.vector_cache_bytes if not l1_fed else 0
    if vc_bytes:
        p_vc = (hist @ _fa_tail(vc_bytes / lr) + cold) / tot
        p_vc_fa, p_vc_as = np.maximum(p_vc, p2_fa), np.maximum(p_vc, p2_as)
    else:
        p_vc_fa = p_vc_as = np.ones(nb)

    # note_resident_range residency: demand L2 misses inside a registered
    # range are priced as L2 hits (hierarchy._range_hit); only the part
    # of the range that fits the budget survives.
    res_frac = np.zeros(nb)
    for b, nbytes in summary.resident.items():
        if nbytes > 0:
            res_frac[b] = min(1.0, machine.l2.size_bytes / nbytes)

    # Expected per-line-touch latency / fill occupancy per buffer, for
    # each placement model.
    def _per_line(p1, p2, p_vc):
        p_dram = p2 * (1.0 - res_frac)
        if l1_fed:
            # Net of the streamed-hit baseline vmem_event_cycles subtracts.
            lat = p1 * l2_lat + p_dram * dram_lat
            occ1 = p1 * fill_l1
        else:
            vc_hit = np.maximum(0.0, 1.0 - p_vc)
            lat = vc_hit * _VC_HIT_LATENCY + p_vc * l2_lat + p_dram * dram_lat
            occ1 = np.zeros(nb)
        return lat, occ1, p_dram * fill_l2, p_dram

    unit_tbl = _per_line(p1_fa, p2_fa, p_vc_fa)
    strided_tbl = _per_line(p1_as, p2_as, p_vc_as)
    p1, p2 = p1_fa, p2_fa            # unit-stride view, used for rates
    p_dram = unit_tbl[3]

    out = PredictedCycles(flops=summary.flops, meta=dict(summary.meta))

    # -- compute -------------------------------------------------------
    for (n, k, ew), mass in summary.varith.items():
        out.compute_cycles += mass * varith_cycles(vpu, n, k, ew)
    out.compute_cycles += summary.vbroadcast_mass * vbroadcast_cycles(vpu)
    out.scalar_cycles += summary.scalar_mass * core.scalar_cpi
    if machine.honors_sw_prefetch or machine.sw_prefetch_is_noop_instr:
        out.scalar_cycles += summary.prefetch_mass * core.scalar_cpi

    # -- vector memory -------------------------------------------------
    stall_by_buf = np.zeros(nb)
    for (buf, nbytes, n_lines, write, unit), mass in summary.vmem.items():
        lat_line, occ1_line, occ2_line, _ = unit_tbl if unit else strided_tbl
        lat = n_lines * lat_line[buf]
        if not unit:
            overlap = n_lines if n_lines < 4 else 4
        elif n_lines == 1:
            overlap = 1
        elif l1_fed:
            overlap = 2 * n_lines
        else:
            overlap = n_lines
        overlap = min(overlap, vpu.max_outstanding)
        mlp_eff = max(vpu.mlp, overlap)
        stall = lat * (1.0 - ooo) / mlp_eff
        if write:
            stall *= _STORE_STALL_FACTOR
        transfer = vmem_transfer_cycles(vpu, nbytes)
        occ = max(0.0, n_lines * occ1_line[buf] - transfer) + n_lines * occ2_line[buf]
        out.memory_cycles += mass * (vpu.mem_issue_overhead + vpu.issue_overhead
                                     + transfer)
        out.stall_cycles += mass * stall
        out.occupancy_cycles += mass * occ
        stall_by_buf[buf] += mass * (stall + occ)

    # -- scalar memory (always the L1 path) ----------------------------
    for (buf, write), mass in summary.smem.items():
        net = (p1[buf] - p2[buf]) * l2_lat + p2[buf] * l2_lat + p_dram[buf] * dram_lat
        stall = net / _SCALAR_MLP * (1.0 - ooo)
        if write:
            stall *= _STORE_STALL_FACTOR
        occ = p1[buf] * fill_l1 + p_dram[buf] * fill_l2
        out.scalar_cycles += mass * core.scalar_cpi
        out.stall_cycles += mass * stall
        out.occupancy_cycles += mass * occ
        stall_by_buf[buf] += mass * (stall + occ)

    # -- spills (hot stack: fastest-level hits, plus the serialization
    # penalty simulator.spill charges per register) --------------------
    if summary.spill_regs:
        vlen_bytes = machine.vlen_bits // 8
        n_lines = max(1, -(-vlen_bytes // summary.l1_line_bytes))
        transfer = vmem_transfer_cycles(vpu, vlen_bytes)
        per_access = vpu.mem_issue_overhead + vpu.issue_overhead + transfer
        hit_lat = 0.0 if l1_fed else n_lines * _VC_HIT_LATENCY
        stall = hit_lat * (1.0 - ooo) / max(vpu.mlp, min(n_lines, vpu.max_outstanding))
        out.memory_cycles += summary.spill_regs * 2 * per_access
        out.stall_cycles += summary.spill_regs * (stall * 1.25 + _SPILL_SERIALIZE_CYCLES)

    # -- totals and rates ----------------------------------------------
    out.cycles = (out.compute_cycles + out.scalar_cycles + out.memory_cycles
                  + out.stall_cycles + out.occupancy_cycles)
    t = float(total.sum())
    if t > 0:
        l2_acc = total * (p1 if l1_fed else p_vc_fa)
        acc = float(l2_acc.sum())
        out.l2_miss_rate = float((total * p_dram).sum()) / acc if acc > 0 else 0.0
        out.l1_miss_rate = float((total * p1).sum()) / t
    order = np.argsort(-stall_by_buf)
    for i in order:
        if total[i] <= 0:
            continue
        out.buffer_rows.append({
            "buffer": summary.buffers[i],
            "footprint_kb": float(summary.footprint_bytes[i]) / 1024.0,
            "touches_m": float(total[i]) / 1e6,
            "l2_miss_pct": 100.0 * float(p_dram[i]),
            "stall_mcycles": float(stall_by_buf[i]) / 1e6,
        })
    return out


def predicted_stats(pred: PredictedCycles):
    """Materialize a prediction as a :class:`SimStats` shell.

    Used for pruned sweep points (``source == "pruned-by-model"``): the
    cycles/flops are the model's estimate and the hit/miss counters are
    unit-mass encodings of the predicted rates, so ``l2_miss_rate`` /
    ``l1_miss_rate`` consumers keep working.  It is NOT a simulation —
    provenance must travel with it.
    """
    from ..machine.simulator import SimStats

    st = SimStats()
    st.cycles = pred.cycles
    st.flops = pred.flops
    st.l2_misses = pred.l2_miss_rate
    st.l2_hits = 1.0 - pred.l2_miss_rate
    st.l1_misses = pred.l1_miss_rate
    st.l1_hits = 1.0 - pred.l1_miss_rate
    return st


# ----------------------------------------------------------------------
# Drift gate (predict-vs-oracle contract)
# ----------------------------------------------------------------------

def check_predict_against_sim(
    pred: PredictedCycles,
    sim_cycles: float,
    bound_cycles: Optional[float] = None,
    where: str = "trace",
    band: float = DRIFT_BAND,
) -> List[Finding]:
    """Gate the static model against a real simulation (the oracle).

    Mirrors ``bounds.check_bounds_against_sim``: run only when a
    simulation of the same trace/machine is available (``repro predict
    --oracle``, CI), and emit error findings the CI gate fails on.

    * ``predict/cycles-drift`` — prediction outside ``[sim/band,
      sim*band]``.  The static model's contract is *ranking* fidelity;
      this bounds its absolute error so it cannot silently rot.
    * ``predict/below-floor`` — prediction below the proven static
      lower bound, which a sane cost model can never be (it prices the
      same floors plus stall terms).
    """
    findings: List[Finding] = []
    if sim_cycles > 0:
        ratio = pred.cycles / sim_cycles
        if not (1.0 / band <= ratio <= band):
            findings.append(Finding(
                rule="predict/cycles-drift",
                severity="error",
                where=where,
                message=(
                    f"predicted {pred.cycles / 1e6:.2f} Mcycles vs simulated "
                    f"{sim_cycles / 1e6:.2f} (ratio {ratio:.2f}, band "
                    f"[{1 / band:.2f}, {band:.2f}])"
                ),
                detail={"predicted": pred.cycles, "simulated": sim_cycles,
                        "ratio": ratio, "band": band},
            ))
    if bound_cycles is not None and pred.cycles < bound_cycles * (1.0 - 1e-6):
        findings.append(Finding(
            rule="predict/below-floor",
            severity="error",
            where=where,
            message=(
                f"predicted {pred.cycles / 1e6:.2f} Mcycles below the static "
                f"floor {bound_cycles / 1e6:.2f}"
            ),
            detail={"predicted": pred.cycles, "bound": bound_cycles},
        ))
    return findings
