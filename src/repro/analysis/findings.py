"""Findings and the aggregate report of the static-analysis pipeline.

A :class:`Finding` is one rule violation: a machine/policy configuration
the kernels cannot legally run on (``config/*`` rules, see
:mod:`repro.analysis.lint`), a recorded macro-event that provably does
something the kernel contract forbids (``trace/*`` rules, see
:mod:`repro.analysis.verifier`), or a simulated result that contradicts
a static bound (``oracle/*`` rules).  Rule identifiers are stable
strings so suppression lists and tests can match on them.

:class:`AnalysisReport` aggregates everything one
:func:`repro.analysis.analyze_network` run produced: the findings, the
per-kernel working-set rows, the per-kernel static cycle bounds, and
(optionally) the oracle cross-check against a real simulation.  It
renders to text (via :mod:`repro.core.reporting`) and to JSON for the
CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.reporting import format_kv, format_table

__all__ = ["Finding", "AnalysisReport"]

#: Finding severities, most severe first.  ``error`` findings mean the
#: trace/config is provably wrong; ``warning`` findings flag legal but
#: self-defeating configurations (e.g. an unroll factor that spills).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation discovered by a static-analysis pass.

    Attributes
    ----------
    rule:
        Stable identifier, namespaced by pass: ``config/...``,
        ``trace/...`` or ``oracle/...``.
    severity:
        ``"error"`` or ``"warning"``.
    where:
        Locus of the violation — a kernel label for trace rules, a
        config field for lint rules.
    message:
        Human-readable one-liner.
    count:
        Number of events collapsed into this finding (trace rules
        aggregate per (rule, kernel) so a corrupted trace produces a
        handful of findings, not millions).
    detail:
        Rule-specific context (example event operands, limits, ...).
    """

    rule: str
    severity: str
    where: str
    message: str
    count: int = 1
    detail: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def as_row(self) -> Dict:
        """Row dict for :func:`repro.core.reporting.format_table`."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "where": self.where,
            "count": self.count,
            "message": self.message,
        }

    def as_dict(self) -> Dict:
        """JSON-ready representation (detail included)."""
        row = self.as_row()
        row["detail"] = self.detail
        return row


@dataclass
class AnalysisReport:
    """Everything one analysis run produced.

    ``working_set`` and ``bounds`` hold one row dict per kernel label
    (see :mod:`repro.analysis.workingset` / :mod:`repro.analysis.bounds`
    for the column meanings); ``oracle`` is ``None`` unless the run
    cross-checked the static bounds against a real simulation.
    """

    net: str
    machine: str
    policy: str
    trace_key: Optional[str] = None
    trace_cached: bool = False
    n_events: int = 0
    n_buffers: int = 0
    findings: List[Finding] = field(default_factory=list)
    working_set: List[Dict] = field(default_factory=list)
    bounds: List[Dict] = field(default_factory=list)
    l2_knee_bytes: int = 0
    reuse: List[Dict] = field(default_factory=list)
    reuse_knee_bytes: int = 0
    reuse_curve: Dict = field(default_factory=dict)
    predict: Optional[Dict] = None
    max_examples: int = 3
    oracle: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        """True when no rule fired (the CI gate's pass condition)."""
        return not self.findings

    @property
    def n_errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    def findings_for(self, rule: str) -> List[Finding]:
        """All findings with the given rule id (test helper)."""
        return [f for f in self.findings if f.rule == rule]

    # -- rendering -----------------------------------------------------
    def to_text(self) -> str:
        """Multi-section plain-text report."""
        head = {
            "net": self.net,
            "machine": self.machine,
            "policy": self.policy,
            "events": self.n_events,
            "buffers": self.n_buffers,
            "trace": (self.trace_key or "")[:12]
            + (" (cached)" if self.trace_cached else " (captured)"),
        }
        parts = [format_kv("analyze", head)]
        if self.findings:
            parts.append(
                format_table(
                    [f.as_row() for f in self.findings],
                    title=f"findings ({self.n_errors} errors, "
                    f"{len(self.findings) - self.n_errors} warnings)",
                )
            )
        else:
            parts.append("findings: none")
        if self.working_set:
            ws = self.working_set + [
                {"kernel": "* predicted L2 knee", "resident_kb": self.l2_knee_bytes / 1024}
            ]
            parts.append(format_table(ws, title="working sets (static)"))
        if self.bounds:
            parts.append(format_table(self.bounds, title="static cycle bounds"))
        if self.reuse:
            parts.append(format_table(
                self.reuse,
                title=f"temporal reuse (predicted L2 knee "
                f"{self.reuse_knee_bytes / 2**20:.0f}MB)",
            ))
        if self.predict is not None:
            head = {
                k: f"{v / 1e6:.3f}M" if k.endswith("cycles") or k == "flops"
                else f"{v:.4f}"
                for k, v in self.predict.items()
                if k != "buffers" and isinstance(v, (int, float))
            }
            parts.append(format_kv("static cost model (predicted)", head))
            if self.predict.get("buffers"):
                parts.append(format_table(
                    self.predict["buffers"], title="predicted per-buffer traffic"
                ))
        if self.oracle is not None:
            parts.append(format_kv("oracle (replayed simulation)", self.oracle))
        return "\n\n".join(parts)

    def to_json(self) -> str:
        """JSON document with the same content as :meth:`to_text`."""
        return json.dumps(
            {
                "net": self.net,
                "machine": self.machine,
                "policy": self.policy,
                "trace_key": self.trace_key,
                "trace_cached": self.trace_cached,
                "n_events": self.n_events,
                "n_buffers": self.n_buffers,
                "ok": self.ok,
                "findings": [f.as_dict() for f in self.findings],
                "working_set": self.working_set,
                "bounds": self.bounds,
                "l2_knee_bytes": self.l2_knee_bytes,
                "reuse": self.reuse,
                "reuse_knee_bytes": self.reuse_knee_bytes,
                "reuse_curve": self.reuse_curve,
                "predict": self.predict,
                "max_examples": self.max_examples,
                "oracle": self.oracle,
            },
            sort_keys=True,
        )
