"""Differential report gate: diff a live analysis report vs a baseline.

Zero-findings gating (PR 3) only notices when a rule *fires*; it is
blind to silent drift — a footprint that doubles, a static bound that
collapses, a reuse histogram that shifts a bucket.  This module
canonicalizes an :class:`~repro.analysis.findings.AnalysisReport` into
a stable JSON document, committed under ``tests/data/analysis/``, and
diffs live reports against it with a readable dotted-path output.

Canonical form
--------------
* volatile fields dropped (``trace_key``, ``trace_cached`` — they
  change whenever unrelated capture plumbing changes);
* every float rounded to 6 significant digits (cross-platform libm
  noise stays out of the diff);
* ``json.dumps(sort_keys=True)`` ordering, lists kept in report order
  (finding and row order is deterministic: trace order).

Workflow (see docs/ANALYSIS.md): when an intentional change shifts a
report, re-generate with ``repro analyze --net ... --baseline <path>
--update-baseline`` and commit the new file *in the same PR*, with the
diff pasted into the PR description.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from ..core.resilience import atomic_replace
from ..testing import faults

__all__ = [
    "canonical_report",
    "diff_documents",
    "load_baseline",
    "write_baseline",
]

#: Fields that change without the analysis result changing.
_VOLATILE = ("trace_key", "trace_cached")

#: Finding families that describe the local ``.simcache/`` state
#: (quarantined entries, orphaned journals — see
#: :mod:`repro.analysis.cachestate`), not the network under analysis.
#: They vary per machine and per run, so committed baselines exclude
#: them.
_ENV_RULE_PREFIXES = ("cache/", "sweep/")


def _round_floats(obj):
    if isinstance(obj, float):
        return float(f"{obj:.6g}")
    if isinstance(obj, dict):
        return {k: _round_floats(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_round_floats(v) for v in obj]
    return obj


def canonical_report(report) -> Dict:
    """Stable JSON-ready document for *report* (volatile fields out)."""
    doc = json.loads(report.to_json())
    for key in _VOLATILE:
        doc.pop(key, None)
    findings = [
        f for f in doc.get("findings", [])
        if not str(f.get("rule", "")).startswith(_ENV_RULE_PREFIXES)
    ]
    if len(findings) != len(doc.get("findings", [])):
        doc["findings"] = findings
        doc["ok"] = not findings  # keep 'ok' consistent with the kept set
    return _round_floats(doc)


def diff_documents(baseline, live, path: str = "") -> List[str]:
    """Readable recursive diff: one ``path: baseline -> live`` per leaf."""
    out: List[str] = []
    if isinstance(baseline, dict) and isinstance(live, dict):
        for key in sorted(set(baseline) | set(live)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in baseline:
                out.append(f"{sub}: (absent in baseline) -> {_short(live[key])}")
            elif key not in live:
                out.append(f"{sub}: {_short(baseline[key])} -> (absent in live)")
            else:
                out += diff_documents(baseline[key], live[key], sub)
        return out
    if isinstance(baseline, list) and isinstance(live, list):
        if len(baseline) != len(live):
            out.append(f"{path}: length {len(baseline)} -> {len(live)}")
        for i, (b, v) in enumerate(zip(baseline, live)):
            out += diff_documents(b, v, f"{path}[{i}]")
        return out
    if baseline != live:
        out.append(f"{path}: {_short(baseline)} -> {_short(live)}")
    return out


def _short(value, limit: int = 120) -> str:
    s = json.dumps(value, sort_keys=True, default=str)
    return s if len(s) <= limit else s[: limit - 3] + "..."


def load_baseline(path: str) -> Dict:
    with Path(path).open(encoding="utf-8") as fh:
        return json.load(fh)


def write_baseline(path: str, doc: Dict) -> None:
    """Atomically (re)write a committed baseline document."""

    def write(tmp: str) -> None:
        with Path(tmp).open("w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        faults.maybe_fault("baseline.write", path=tmp)

    atomic_replace(path, write)
