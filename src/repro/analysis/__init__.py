"""Static analysis over recorded kernel traces and machine configs.

The pass pipeline of ``repro analyze`` (see docs/ANALYSIS.md):

1. :func:`~repro.analysis.lint.lint_config` — machine/policy linter
   (illegal vector lengths, broken cache geometry, pack-buffer
   overflows);
2. :func:`~repro.analysis.verifier.verify_trace` — proves every
   recorded memory event lands in an allocated buffer, no buffers
   alias, and no event exceeds its ISA vector-length grant;
3. :func:`~repro.analysis.workingset.working_sets` /
   :func:`~repro.analysis.workingset.predict_l2_knee` — static
   per-kernel footprints, compulsory-miss floors, and the L2 capacity
   where the miss curve knees (Table III / Fig. 5 without simulating);
4. :func:`~repro.analysis.bounds.static_bounds` — per-kernel
   compute/memory cycle floors, a sound lower bound on simulated
   cycles, optionally asserted against a real replay (*oracle* mode);
5. :func:`~repro.analysis.predict.predict_cycles` — the static cost
   model: reuse-distance miss curves composed with the simulator's
   pricing rules into an absolute cycle estimate, used to rank
   co-design candidates before any simulation (``repro predict``,
   ``autotune --prune``, ``sweep(prune=)``).

Everything runs on the cached :class:`~repro.machine.trace
.RecordedTrace` — analysis of an already-captured network re-traces
nothing.
"""

from __future__ import annotations

from .baseline import canonical_report, diff_documents
from .bounds import check_bounds_against_sim, static_bounds
from .cachestate import cache_state_findings
from .codecheck import CheckConfig, check_package, default_config
from .defuse import defuse_trace
from .findings import AnalysisReport, Finding
from .lint import lint_config
from .predict import (
    DRIFT_BAND,
    PredictedCycles,
    TraceSummary,
    check_predict_against_sim,
    gemm_summary,
    predict_cycles,
    predicted_stats,
    summarize_trace,
)
from .reusedist import ReuseReport, reuse_distances
from .rules import RULES, filter_findings, rule_rows
from .verifier import verify_trace
from .workingset import predict_l2_knee, working_sets

__all__ = [
    "AnalysisReport",
    "CheckConfig",
    "DRIFT_BAND",
    "Finding",
    "PredictedCycles",
    "RULES",
    "ReuseReport",
    "TraceSummary",
    "analyze_network",
    "analyze_trace",
    "cache_state_findings",
    "canonical_report",
    "check_bounds_against_sim",
    "check_package",
    "check_predict_against_sim",
    "default_config",
    "defuse_trace",
    "diff_documents",
    "filter_findings",
    "gemm_summary",
    "lint_config",
    "predict_cycles",
    "predict_l2_knee",
    "predicted_stats",
    "reuse_distances",
    "rule_rows",
    "static_bounds",
    "summarize_trace",
    "verify_trace",
    "working_sets",
]


def _policy_name(policy) -> str:
    if policy is None:
        return "default"
    return (
        f"gemm={getattr(policy, 'gemm', '?')} "
        f"winograd={getattr(policy, 'winograd', '?')} "
        f"unroll={getattr(policy, 'unroll', '?')}"
    )


def analyze_trace(trace, machine, policy=None, oracle: bool = False,
                  net_name: str = "?", max_examples: int = 3,
                  rules=None, ignore=None,
                  reuse: bool = True, predict: bool = True) -> AnalysisReport:
    """Run the full pass pipeline over an already-captured trace.

    *max_examples* caps the example events attached to each aggregated
    finding (and is surfaced in the JSON report so committed baselines
    stay stable when counts change).  *rules* / *ignore* are iterables
    of rule-id prefixes (``"dataflow"``, ``"trace/oob-overrun"``, ...)
    selecting which findings the report keeps — estimator sections are
    always produced.  *reuse* toggles the temporal reuse-distance pass
    (:mod:`repro.analysis.reusedist`); *predict* the static cost model
    (:mod:`repro.analysis.predict`), which under *oracle* is also
    drift-gated against the replayed cycles (``predict/*`` rules).
    """
    findings = lint_config(machine, policy) if policy is not None else []
    findings += verify_trace(trace, machine, max_examples=max_examples)

    ws = working_sets(trace, machine)
    knee = predict_l2_knee(trace, machine)
    brows = static_bounds(trace, machine)

    reuse_rows, reuse_knee, reuse_curve = [], 0, {}
    if reuse:
        rr = reuse_distances(trace, machine)
        reuse_rows = rr.rows()
        reuse_knee = rr.predicted_knee_bytes()
        reuse_curve = rr.miss_curve()

    pred = None
    if predict:
        pred = predict_cycles(summarize_trace(trace, machine), machine)

    oracle_info = None
    if oracle:
        from ..machine.replay import replay

        stats = replay(trace, machine)
        findings += check_bounds_against_sim(brows, stats)

        bound = brows[-1]["bound_mcycles"] * 1e6  # the "* total" row
        oracle_info = {
            "simulated_mcycles": stats.cycles / 1e6,
            "bound_mcycles": bound / 1e6,
            "bound_tightness": bound / stats.cycles if stats.cycles else 0.0,
            "l2_miss_rate": stats.l2_miss_rate,
        }
        if pred is not None:
            findings += check_predict_against_sim(
                pred, stats.cycles, bound_cycles=bound, where=net_name
            )
            oracle_info["predicted_mcycles"] = pred.cycles / 1e6
            oracle_info["predict_ratio"] = (
                pred.cycles / stats.cycles if stats.cycles else 0.0
            )

    findings = filter_findings(findings, rules=rules, ignore=ignore)

    return AnalysisReport(
        net=net_name,
        machine=machine.name,
        policy=_policy_name(policy),
        trace_key=trace.key,
        n_events=trace.n_events,
        n_buffers=len(trace.buffers),
        findings=findings,
        working_set=ws,
        bounds=brows,
        l2_knee_bytes=knee,
        reuse=reuse_rows,
        reuse_knee_bytes=reuse_knee,
        reuse_curve=reuse_curve,
        predict=pred.as_dict() if pred is not None else None,
        max_examples=max_examples,
        oracle=oracle_info,
    )


def analyze_network(
    net,
    machine,
    policy=None,
    n_layers=None,
    deduplicate: bool = True,
    oracle: bool = False,
    max_examples: int = 3,
    rules=None,
    ignore=None,
    reuse: bool = True,
    predict: bool = True,
) -> AnalysisReport:
    """Analyze *net* on *machine*: lint, verify, estimate, bound.

    The trace comes from the capture-once registry
    (:func:`repro.core.tracecache.get_or_capture`), so a network that
    was already simulated with ``use_trace`` is analyzed without
    re-tracing.  With ``oracle=True`` the trace is additionally
    replayed and the static bounds asserted against the simulated
    cycles (consistency oracle for model drift).
    """
    if policy is None:
        from ..nets.layers import KernelPolicy

        policy = KernelPolicy()
    from ..core import tracecache

    trace, was_cached = tracecache.get_or_capture(
        net, machine, policy, n_layers, deduplicate
    )
    report = analyze_trace(
        trace, machine, policy=policy, oracle=oracle, net_name=net.name,
        max_examples=max_examples, rules=rules, ignore=ignore, reuse=reuse,
        predict=predict,
    )
    report.trace_cached = was_cached
    return report
