"""Static analysis over recorded kernel traces and machine configs.

The pass pipeline of ``repro analyze`` (see docs/ANALYSIS.md):

1. :func:`~repro.analysis.lint.lint_config` — machine/policy linter
   (illegal vector lengths, broken cache geometry, pack-buffer
   overflows);
2. :func:`~repro.analysis.verifier.verify_trace` — proves every
   recorded memory event lands in an allocated buffer, no buffers
   alias, and no event exceeds its ISA vector-length grant;
3. :func:`~repro.analysis.workingset.working_sets` /
   :func:`~repro.analysis.workingset.predict_l2_knee` — static
   per-kernel footprints, compulsory-miss floors, and the L2 capacity
   where the miss curve knees (Table III / Fig. 5 without simulating);
4. :func:`~repro.analysis.bounds.static_bounds` — per-kernel
   compute/memory cycle floors, a sound lower bound on simulated
   cycles, optionally asserted against a real replay (*oracle* mode).

Everything runs on the cached :class:`~repro.machine.trace
.RecordedTrace` — analysis of an already-captured network re-traces
nothing.
"""

from __future__ import annotations

from .bounds import check_bounds_against_sim, static_bounds
from .findings import AnalysisReport, Finding
from .lint import lint_config
from .verifier import verify_trace
from .workingset import predict_l2_knee, working_sets

__all__ = [
    "AnalysisReport",
    "Finding",
    "analyze_network",
    "analyze_trace",
    "check_bounds_against_sim",
    "lint_config",
    "predict_l2_knee",
    "static_bounds",
    "verify_trace",
    "working_sets",
]


def _policy_name(policy) -> str:
    if policy is None:
        return "default"
    return (
        f"gemm={getattr(policy, 'gemm', '?')} "
        f"winograd={getattr(policy, 'winograd', '?')} "
        f"unroll={getattr(policy, 'unroll', '?')}"
    )


def analyze_trace(trace, machine, policy=None, oracle: bool = False,
                  net_name: str = "?") -> AnalysisReport:
    """Run the full pass pipeline over an already-captured trace."""
    findings = lint_config(machine, policy) if policy is not None else []
    findings += verify_trace(trace, machine)

    ws = working_sets(trace, machine)
    knee = predict_l2_knee(trace, machine)
    brows = static_bounds(trace, machine)

    oracle_info = None
    if oracle:
        from ..machine.replay import replay

        stats = replay(trace, machine)
        findings += check_bounds_against_sim(brows, stats)
        bound = brows[-1]["bound_mcycles"] * 1e6  # the "* total" row
        oracle_info = {
            "simulated_mcycles": stats.cycles / 1e6,
            "bound_mcycles": bound / 1e6,
            "bound_tightness": bound / stats.cycles if stats.cycles else 0.0,
            "l2_miss_rate": stats.l2_miss_rate,
        }

    return AnalysisReport(
        net=net_name,
        machine=machine.name,
        policy=_policy_name(policy),
        trace_key=trace.key,
        n_events=trace.n_events,
        n_buffers=len(trace.buffers),
        findings=findings,
        working_set=ws,
        bounds=brows,
        l2_knee_bytes=knee,
        oracle=oracle_info,
    )


def analyze_network(
    net,
    machine,
    policy=None,
    n_layers=None,
    deduplicate: bool = True,
    oracle: bool = False,
) -> AnalysisReport:
    """Analyze *net* on *machine*: lint, verify, estimate, bound.

    The trace comes from the capture-once registry
    (:func:`repro.core.tracecache.get_or_capture`), so a network that
    was already simulated with ``use_trace`` is analyzed without
    re-tracing.  With ``oracle=True`` the trace is additionally
    replayed and the static bounds asserted against the simulated
    cycles (consistency oracle for model drift).
    """
    if policy is None:
        from ..nets.layers import KernelPolicy

        policy = KernelPolicy()
    from ..core import tracecache

    trace, was_cached = tracecache.get_or_capture(
        net, machine, policy, n_layers, deduplicate
    )
    report = analyze_trace(
        trace, machine, policy=policy, oracle=oracle, net_name=net.name
    )
    report.trace_cached = was_cached
    return report
