"""Machine/policy config linter.

Catches design points that the simulator would happily price but that
no real machine or kernel build could execute: vector lengths outside
the ISA's architectural envelope, cache geometries that break line
inclusion, and kernel blocking parameters that overflow the pack
buffers the 6-loop GEMM allocates (paper Fig. 3: the packed B panel is
``bk x bn`` and the micro-kernel streams it in whole-VL rows, so ``bn``
must be a positive multiple of the vector length).

Every rule returns a :class:`~repro.analysis.findings.Finding`;
severities follow the contract in :mod:`repro.analysis.findings`
(``error`` = cannot execute, ``warning`` = legal but self-defeating,
e.g. an unroll factor the register file cannot hold — Section VI-A
measures ~15 % lost to spills at unroll 32).
"""

from __future__ import annotations

from typing import List

from ..isa import is_power_of_two
from .findings import Finding

__all__ = ["lint_config"]


def _lint_cache(level: str, cache, findings: List[Finding]) -> None:
    if cache.line_bytes <= 0 or not is_power_of_two(cache.line_bytes):
        findings.append(
            Finding(
                rule="config/line-not-pow2",
                severity="error",
                where=level,
                message=(
                    f"{level} line size {cache.line_bytes} B is not a "
                    f"power of two; line-address arithmetic would be wrong"
                ),
            )
        )


def lint_config(machine, policy=None) -> List[Finding]:
    """Lint one machine design point and (optionally) a kernel policy."""
    findings: List[Finding] = []

    # config/vlen-illegal: the ISA model enforces the architectural
    # envelope (RVV: power-of-two in [64, 16384]; SVE: multiple of 128
    # in [128, 2048] — paper Section II-A).
    isa = None
    try:
        isa = machine.make_isa()
    except ValueError as e:
        findings.append(
            Finding(
                rule="config/vlen-illegal",
                severity="error",
                where="vlen_bits",
                message=f"vlen {machine.vlen_bits} illegal for "
                f"{machine.isa_name}: {e}",
            )
        )

    _lint_cache("l1", machine.l1, findings)
    _lint_cache("l2", machine.l2, findings)

    # config/line-inclusion: an inclusive hierarchy refills the L1 from
    # L2 lines, so the L2 line must contain whole L1 lines.
    if machine.l2.line_bytes < machine.l1.line_bytes or (
        machine.l1.line_bytes > 0
        and machine.l2.line_bytes % machine.l1.line_bytes != 0
    ):
        findings.append(
            Finding(
                rule="config/line-inclusion",
                severity="error",
                where="l2",
                message=(
                    f"L2 line ({machine.l2.line_bytes} B) must be a "
                    f"multiple of the L1 line ({machine.l1.line_bytes} B)"
                ),
            )
        )

    # config/l2-smaller-than-l1: a backing level smaller than the level
    # it backs cannot be inclusive and makes miss accounting meaningless.
    if machine.l2.size_bytes < machine.l1.size_bytes:
        findings.append(
            Finding(
                rule="config/l2-smaller-than-l1",
                severity="error",
                where="l2",
                message=(
                    f"L2 ({machine.l2.size_bytes} B) is smaller than the "
                    f"L1 ({machine.l1.size_bytes} B)"
                ),
            )
        )

    if policy is None:
        return findings

    vl = machine.vlen_f32
    blocks = getattr(policy, "blocks", None)
    if getattr(policy, "gemm", None) == "6loop" and blocks is not None:
        # config/pack-block-vl: trace_pack_b rounds the packed panel up
        # to whole vector rows; a bn below (or not a multiple of) the
        # vector length overruns the bk*bn packB allocation (Fig. 3).
        if blocks.n < vl or blocks.n % vl != 0:
            findings.append(
                Finding(
                    rule="config/pack-block-vl",
                    severity="error",
                    where="policy.blocks.n",
                    message=(
                        f"6-loop block n={blocks.n} must be a positive "
                        f"multiple of the f32 vector length ({vl}); the "
                        f"packed B panel would overflow"
                    ),
                )
            )
        # config/pack-block-unroll: the micro-kernel walks packA in
        # unroll-row groups; a bm not divisible by the group height
        # reads past the packed A block on the last group.
        group = min(policy.unroll, blocks.m)
        if group > 0 and blocks.m % group != 0:
            findings.append(
                Finding(
                    rule="config/pack-block-unroll",
                    severity="error",
                    where="policy.blocks.m",
                    message=(
                        f"6-loop block m={blocks.m} is not a multiple of "
                        f"the micro-kernel row group "
                        f"(min(unroll={policy.unroll}, m))"
                    ),
                )
            )

    # config/winograd-vl: the inter-tile Winograd tuple-multiply issues
    # alpha^2 = 64-element f32 macro-events (one 8x8 transformed tile
    # per access, Section VII); below 256-bit vectors that exceeds an
    # LMUL-8 register group and the kernel cannot be compiled.
    if getattr(policy, "winograd", "off") != "off":
        tile_bytes = 64 * 4
        if 8 * (machine.vlen_bits // 8) < tile_bytes:
            findings.append(
                Finding(
                    rule="config/winograd-vl",
                    severity="error",
                    where="policy.winograd",
                    message=(
                        f"inter-tile Winograd needs an 8x8 f32 tile "
                        f"({tile_bytes} B) to fit an LMUL-8 register "
                        f"group; vlen {machine.vlen_bits} bits is too "
                        f"short"
                    ),
                )
            )

    # config/unroll-spill: legal, but the accumulators plus the three
    # working registers exceed the 32 architectural vector registers and
    # every k-iteration pays spill traffic (Section VI-A: ~15 % at 32).
    spilled = policy.unroll + 3 - 32
    if isa is not None and spilled > 0:
        findings.append(
            Finding(
                rule="config/unroll-spill",
                severity="warning",
                where="policy.unroll",
                message=(
                    f"unroll {policy.unroll} needs {policy.unroll + 3} "
                    f"vector registers; {spilled} spill every k-iteration"
                ),
            )
        )

    return findings
