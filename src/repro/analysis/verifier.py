"""Trace verifier: proves a recorded macro-event stream is well-formed.

The capture-once/replay-many engine (docs/TRACE_REPLAY.md) makes the
recorded trace the single source of truth for every sweep result — a
corrupted or mis-generated trace silently poisons hundreds of cached
design points.  This pass statically proves, for every event of a
:class:`~repro.machine.trace.RecordedTrace`:

* **Bounds** — every demand memory access (vector or scalar) and every
  residency-range declaration lands entirely inside one allocated
  :class:`~repro.machine.trace.Buffer` from the trace's allocation
  table.  Software prefetches are exempt: they are non-faulting hints,
  and the 6-loop GEMM's run-ahead prefetch (Fig. 3) legitimately
  reaches one line past the packed panel on the last k-slice.
* **Aliasing** — the allocation table itself contains no overlapping
  buffers (the bump allocator guarantees this; a corrupted spill file
  does not).
* **VL grants** — no vector arithmetic event uses more lanes than the
  ISA grants for its element width (kernels always clamp with
  ``min(vl, ...)``), and no vector memory event moves more bytes than
  an LMUL-8 register group (the widest legal register grouping on RVV;
  the Winograd tuple-multiply legitimately issues multi-register
  macro-events of ``alpha^2 = 64`` elements).
* **Encoding sanity** — strides, element widths, sampling weights,
  opcodes, kernel-label ids and prefetch levels are all within their
  legal domains.

Findings are aggregated per (rule, kernel label) with an event count
and up to :data:`_MAX_EXAMPLES` example events, so a systematically
corrupted trace yields a readable handful of findings rather than one
per event.  All checks are vectorized over the trace's columnar arrays;
verifying a 20-layer YOLOv3 trace (~1.4 M events) takes tens of
milliseconds.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa import make_isa
from ..machine.trace import (
    OP_NOTE_RANGE,
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_SW_PREFETCH,
    OP_VARITH,
    OP_VLOAD,
    OP_VSTORE,
)
from .findings import Finding

__all__ = ["verify_trace"]

#: Example events attached to each aggregated finding.
_MAX_EXAMPLES = 3

#: Highest legal opcode (OP_NOTE_RANGE closes the enum).
_MAX_OPCODE = OP_NOTE_RANGE

#: Legal element widths for vector events, in bytes.
_LEGAL_EW = (1, 2, 4, 8, 16)

#: Widest legal register grouping for one vector memory macro-event:
#: RVV's LMUL=8 (SVE has no grouping, but its kernels never exceed one
#: register per memory event, so the same ceiling is safe there).
_MAX_REGISTER_GROUP = 8


def _op_name(op: int) -> str:
    names = {
        0: "scalar", 1: "scalar_load", 2: "scalar_store", 3: "vload",
        4: "vstore", 5: "varith", 6: "vbroadcast", 7: "sw_prefetch",
        8: "count_flops", 9: "spill", 10: "note_range",
    }
    return names.get(int(op), f"op{int(op)}")


class _TraceView:
    """Columnar view plus the per-event helpers the rules share."""

    def __init__(self, trace, max_examples: int = _MAX_EXAMPLES):
        self.trace = trace
        self.max_examples = max_examples
        self.op = np.asarray(trace.op)
        self.w = np.asarray(trace.w)
        self.kid = np.asarray(trace.kid)
        self.i0 = np.asarray(trace.i0)
        self.i1 = np.asarray(trace.i1)
        self.i2 = np.asarray(trace.i2)
        self.i3 = np.asarray(trace.i3)
        self.labels = trace.labels

    def label_of(self, kid: int) -> str:
        if 0 <= kid < len(self.labels):
            return self.labels[kid]
        return f"?kid{kid}"

    def example(self, idx: int) -> dict:
        """Operand dict for one event (finding detail payload)."""
        return {
            "event": int(idx),
            "op": _op_name(self.op[idx]),
            "i0": int(self.i0[idx]),
            "i1": int(self.i1[idx]),
            "i2": int(self.i2[idx]),
            "i3": int(self.i3[idx]),
            "w": float(self.w[idx]),
        }


def _aggregate(
    view: _TraceView,
    mask: np.ndarray,
    rule: str,
    message: str,
    findings: List[Finding],
    severity: str = "error",
) -> None:
    """Collapse a per-event violation mask into per-kernel findings."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return
    kids = view.kid[idx]
    for kid in np.unique(kids):
        sel = idx[kids == kid]
        findings.append(
            Finding(
                rule=rule,
                severity=severity,
                where=view.label_of(int(kid)),
                message=message,
                count=int(sel.size),
                detail={
                    "examples": [view.example(i) for i in sel[: view.max_examples]]
                },
            )
        )


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------

def _check_buffer_table(trace, findings: List[Finding]) -> None:
    """``trace/buffer-overlap``: allocations must be disjoint."""
    bufs = sorted(trace.buffers, key=lambda b: (b[1], b[1] + b[2]))
    for (n1, b1, s1), (n2, b2, s2) in zip(bufs, bufs[1:]):
        if b1 + s1 > b2 and s1 > 0 and s2 > 0:
            findings.append(
                Finding(
                    rule="trace/buffer-overlap",
                    severity="error",
                    where=f"{n1}+{n2}",
                    message=(
                        f"buffers {n1!r} [{b1}, {b1 + s1}) and {n2!r} "
                        f"[{b2}, {b2 + s2}) overlap"
                    ),
                    detail={"a": [n1, b1, s1], "b": [n2, b2, s2]},
                )
            )


def _check_bounds(view: _TraceView, findings: List[Finding]) -> None:
    """``trace/oob-unallocated`` and ``trace/oob-overrun``.

    Vectorized point-in-interval test: buffer bases are sorted (the bump
    allocator emits them monotonically; a corrupted table is re-sorted,
    overlaps having already been reported), each event's start address is
    located with ``searchsorted`` and its access extent compared against
    the owning buffer's end.
    """
    op = view.op
    # Demand accesses + residency declarations; prefetches are exempt
    # (non-faulting hints, see module docstring).
    is_vmem = (op == OP_VLOAD) | (op == OP_VSTORE)
    is_smem = (op == OP_SCALAR_LOAD) | (op == OP_SCALAR_STORE)
    is_range = op == OP_NOTE_RANGE
    checked = is_vmem | is_smem | is_range
    if not checked.any():
        return

    addr = view.i0
    # Access extent in bytes, per opcode family.
    ext = np.zeros(len(op), dtype=np.int64)
    if is_vmem.any():
        n, ew, stride = view.i1, view.i2, view.i3
        unit = (stride == 0) | (stride == ew)
        v_ext = np.where(
            unit, n * ew, (np.maximum(n, 1) - 1) * np.abs(stride) + ew
        )
        ext = np.where(is_vmem, v_ext, ext)
    ext = np.where(is_smem | is_range, view.i1, ext)

    bufs = sorted(view.trace.buffers, key=lambda b: b[1])
    bases = np.array([b[1] for b in bufs], dtype=np.int64)
    ends = np.array([b[1] + b[2] for b in bufs], dtype=np.int64)
    if bases.size == 0:
        _aggregate(
            view, checked, "trace/oob-unallocated",
            "memory event but trace has an empty allocation table",
            findings,
        )
        return

    pos = np.searchsorted(bases, addr, side="right") - 1
    safe_pos = np.clip(pos, 0, len(bufs) - 1)
    inside = (pos >= 0) & (addr < ends[safe_pos])
    unalloc = checked & ~inside
    overrun = checked & inside & (addr + np.maximum(ext, 0) > ends[safe_pos])
    _aggregate(
        view, unalloc, "trace/oob-unallocated",
        "memory event address outside every allocated buffer",
        findings,
    )
    _aggregate(
        view, overrun, "trace/oob-overrun",
        "memory access starts inside a buffer but runs past its end",
        findings,
    )


def _check_vl(view: _TraceView, vlen_bits: int, findings: List[Finding]) -> None:
    """``trace/vl-exceeds-grant``.

    Arithmetic events are strict: kernels clamp every ``varith`` with
    ``min(vl, ...)``, so more lanes than ``max_elems(ew)`` means the
    vsetvl negotiation was bypassed.  Vector memory events may legally
    be multi-register macro-events (Winograd tuple-multiply moves an
    8x8 tile per vload), so they are held to the LMUL-8 register-group
    ceiling instead.
    """
    op = view.op
    vlen_bytes = vlen_bits // 8
    is_arith = op == OP_VARITH
    # varith operands: i0 = n_elems, i2 = ew.  n_elems * ew_bits > vlen
    arith_bad = is_arith & (view.i0 * np.maximum(view.i2, 1) * 8 > vlen_bits)
    _aggregate(
        view, arith_bad, "trace/vl-exceeds-grant",
        f"vector arithmetic uses more lanes than the ISA grants "
        f"(vlen {vlen_bits} bits)",
        findings,
    )
    is_vmem = (op == OP_VLOAD) | (op == OP_VSTORE)
    vmem_bad = is_vmem & (
        view.i1 * np.maximum(view.i2, 1) > _MAX_REGISTER_GROUP * vlen_bytes
    )
    _aggregate(
        view, vmem_bad, "trace/vl-exceeds-grant",
        f"vector memory event wider than an LMUL-{_MAX_REGISTER_GROUP} "
        f"register group ({_MAX_REGISTER_GROUP * vlen_bytes} bytes)",
        findings,
    )


def _check_encoding(view: _TraceView, findings: List[Finding]) -> None:
    """Domain checks on operands: stride, ew, weight, opcode, level."""
    op = view.op
    is_vmem = (op == OP_VLOAD) | (op == OP_VSTORE)

    # trace/bad-stride: negative, or positive but smaller than the
    # element width (lanes would overlap in memory).  stride == 0 is the
    # unit-stride encoding; gather lowering guarantees stride >= ew.
    stride = view.i3
    bad_stride = is_vmem & ((stride < 0) | ((stride > 0) & (stride < view.i2)))
    _aggregate(
        view, bad_stride, "trace/bad-stride",
        "vector memory stride is negative or overlaps lanes (< ew)",
        findings,
    )

    # trace/bad-elem-width: ew must be a power of two in [1, 16].
    has_ew = is_vmem | (op == OP_VARITH)
    legal = np.isin(view.i2, _LEGAL_EW)
    _aggregate(
        view, has_ew & ~legal, "trace/bad-elem-width",
        f"element width not a power of two in {list(_LEGAL_EW)} bytes",
        findings,
    )

    # trace/bad-weight: sampling weights are finite and non-negative
    # (loop sampling produces weights >= 1; dedup weights >= 1).
    w = view.w
    bad_w = (w < 0) | ~np.isfinite(w)
    _aggregate(
        view, bad_w, "trace/bad-weight",
        "event sampling weight is negative or non-finite",
        findings,
    )

    # trace/bad-opcode: unknown opcode or kernel-label id out of range.
    bad_op = (op > _MAX_OPCODE) | (view.kid >= len(view.labels))
    _aggregate(
        view, bad_op, "trace/bad-opcode",
        "unknown opcode or kernel-label id out of range",
        findings,
    )

    # trace/prefetch-level: level operand must encode L1 (0) or L2 (1).
    is_pf = op == OP_SW_PREFETCH
    bad_level = is_pf & ~((view.i2 == 0) | (view.i2 == 1))
    _aggregate(
        view, bad_level, "trace/prefetch-level",
        "software prefetch level is neither L1 (0) nor L2 (1)",
        findings,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def verify_trace(
    trace,
    machine=None,
    max_examples: int = _MAX_EXAMPLES,
    dataflow: bool = True,
) -> List[Finding]:
    """Run every trace rule; return the (possibly empty) finding list.

    *machine* is optional: when given, the trace's replay-compatibility
    contract (ISA name, vector length, L1 line size — see
    :meth:`RecordedTrace.compatible_with`) is checked as a rule too.
    *max_examples* caps the example events attached to each aggregated
    finding (surfaced in the JSON report so baselines stay stable), and
    *dataflow* additionally runs the def-use pass
    (:func:`repro.analysis.defuse.defuse_trace`) so ``replay(...,
    verify=True)`` and the spill-guard gate on producer/consumer
    ordering too.
    """
    findings: List[Finding] = []

    # Meta: the trace's own vlen must be legal for its ISA, else the
    # grant ceiling is undefined and the trace cannot have been captured
    # by this codebase.
    isa = None
    try:
        isa = make_isa(trace.isa_name, trace.vlen_bits)
    except ValueError as e:
        findings.append(
            Finding(
                rule="trace/vlen-illegal",
                severity="error",
                where=trace.isa_name,
                message=f"trace vlen is illegal for its ISA: {e}",
            )
        )

    if machine is not None and not trace.compatible_with(machine):
        findings.append(
            Finding(
                rule="trace/machine-mismatch",
                severity="error",
                where=machine.name,
                message=(
                    f"trace ({trace.isa_name}/{trace.vlen_bits}b/"
                    f"{trace.l1_line_bytes}B lines) cannot replay on "
                    f"machine {machine.name!r}"
                ),
            )
        )

    _check_buffer_table(trace, findings)

    if trace.n_events:
        view = _TraceView(trace, max_examples=max_examples)
        _check_bounds(view, findings)
        if isa is not None:
            _check_vl(view, trace.vlen_bits, findings)
        _check_encoding(view, findings)
        if dataflow:
            from .defuse import defuse_trace

            findings += defuse_trace(
                trace, machine, max_examples=max_examples
            )

    return findings
