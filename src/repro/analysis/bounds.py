"""Static cycle lower bounds (per-kernel roofline) over a recorded trace.

The timing simulator prices each macro-event as a sum of
state-independent terms (issue, dispatch, data transfer, arithmetic
occupancy) plus state-dependent terms (cache stalls, wasted fill
occupancy) that are provably non-negative — see
:func:`repro.machine.simulator.vmem_event_cycles`: ``stall >= 0`` and
``occ = max(0, occ1 - transfer) + occ2 >= 0``.  Summing only the
state-independent terms therefore yields a *sound lower bound* on the
simulated cycles of every event, every kernel label, and the whole
trace, on any machine the trace can replay on.

This is the trace-level analogue of the paper's roofline argument
(Table IV): per kernel, the bound splits into a **compute** floor
(vector arithmetic + broadcasts + scalar bookkeeping — what a perfect
memory system would cost) and a **memory** floor (issue + mandatory
port occupancy of every load/store — what perfect arithmetic would
cost).  A simulated result *below* the bound is arithmetically
impossible and indicates model drift; the analyzer's oracle mode
asserts the inequality against a real replay.

Per-event floors (weighted by the event's sampling weight):

========================  ==================================================
opcode                    floor
========================  ==================================================
``scalar(n)``             ``n * scalar_cpi``                        (exact)
``scalar_load/store``     ``scalar_cpi``
``vload/vstore``          ``mem_issue + issue + transfer(nbytes)``
``varith(n, k, ew)``      ``varith_cycles(vpu, n, k, ew)``          (exact)
``vbroadcast(n)``         ``n * vbroadcast_cycles(vpu)``            (exact)
``sw_prefetch``           ``scalar_cpi`` if priced, else 0          (exact)
``spill(n)``              ``n * (serialize + 2*(mem_issue + issue
                          + transfer(vlen_bytes)))``
``count_flops/range``     0                                         (exact)
========================  ==================================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..machine.simulator import _SPILL_SERIALIZE_CYCLES
from ..machine.trace import (
    OP_COUNT_FLOPS,
    OP_SCALAR,
    OP_SCALAR_LOAD,
    OP_SCALAR_STORE,
    OP_SPILL,
    OP_SW_PREFETCH,
    OP_VARITH,
    OP_VBROADCAST,
    OP_VLOAD,
    OP_VSTORE,
)
from ..machine.vpu import varith_cycles, vbroadcast_cycles
from .findings import Finding

__all__ = ["static_bounds", "check_bounds_against_sim"]

#: Relative tolerance when asserting bound <= simulated cycles; covers
#: float summation-order noise, nothing more.
_REL_TOL = 1e-6


def _event_floors(trace, machine) -> Tuple[np.ndarray, np.ndarray]:
    """Per-event weighted (compute_floor, memory_floor) cycle arrays."""
    vpu = machine.vpu
    cpi = machine.core.scalar_cpi
    op = np.asarray(trace.op)
    w = np.asarray(trace.w)
    i0 = np.asarray(trace.i0)
    i1 = np.asarray(trace.i1)
    i2 = np.asarray(trace.i2)
    n = len(op)
    compute = np.zeros(n, dtype=np.float64)
    memory = np.zeros(n, dtype=np.float64)

    # Scalar bookkeeping: n * cpi, exact.
    m = op == OP_SCALAR
    compute[m] = i0[m] * cpi

    # Scalar memory: at least the issue cost of the instruction.
    m = (op == OP_SCALAR_LOAD) | (op == OP_SCALAR_STORE)
    memory[m] = cpi

    # Vector memory: fixed issue overheads plus the mandatory port
    # occupancy of moving nbytes; stall and wasted-fill terms are >= 0.
    m = (op == OP_VLOAD) | (op == OP_VSTORE)
    if m.any():
        nbytes = i1[m] * i2[m]
        transfer = -(-nbytes // vpu.port_bytes_per_cycle)
        memory[m] = vpu.mem_issue_overhead + vpu.issue_overhead + transfer

    # Vector arithmetic: the simulator's own (state-independent) formula,
    # evaluated once per distinct (n_elems, n_instr, ew) shape.
    m = op == OP_VARITH
    if m.any():
        shapes = np.stack([i0[m], i1[m], i2[m]], axis=1)
        uniq, inv = np.unique(shapes, axis=0, return_inverse=True)
        per_shape = np.array(
            [varith_cycles(vpu, int(a), int(b), int(c)) for a, b, c in uniq],
            dtype=np.float64,
        )
        compute[m] = per_shape[inv]

    # Broadcasts: n instructions at the fixed register-move cost.
    m = op == OP_VBROADCAST
    compute[m] = i0[m] * vbroadcast_cycles(vpu)

    # Software prefetch: exactly one issue slot if the machine prices it.
    if machine.honors_sw_prefetch or machine.sw_prefetch_is_noop_instr:
        m = op == OP_SW_PREFETCH
        memory[m] = cpi

    # Spills: per register, the serialization penalty plus the floors of
    # the store + reload of one full vector register.
    m = op == OP_SPILL
    if m.any():
        vlen_bytes = machine.vlen_bits // 8
        transfer = -(-vlen_bytes // vpu.port_bytes_per_cycle)
        per_reg = _SPILL_SERIALIZE_CYCLES + 2 * (
            vpu.mem_issue_overhead + vpu.issue_overhead + transfer
        )
        memory[m] = i0[m] * per_reg

    return compute * w, memory * w


def static_bounds(trace, machine) -> List[Dict]:
    """Per-kernel-label static bound rows, most-bounded first.

    Columns: ``kernel``, ``compute_mcycles`` (arithmetic floor),
    ``memory_mcycles`` (data-movement floor), ``bound_mcycles`` (their
    sum — the sound lower bound on simulated cycles), ``gflop``
    (weighted flops), ``bound_gflops`` (the roofline throughput ceiling
    those two numbers imply at the machine's clock).  A ``* total`` row
    closes the table.
    """
    compute, memory = _event_floors(trace, machine)
    kid = np.asarray(trace.kid)
    w = np.asarray(trace.w)
    op = np.asarray(trace.op)
    i0 = np.asarray(trace.i0)
    i1 = np.asarray(trace.i1)
    f0 = np.asarray(trace.f0)
    n_labels = len(trace.labels)
    safe_kid = np.minimum(kid, n_labels - 1) if n_labels else kid

    c_by = np.bincount(safe_kid, weights=compute, minlength=n_labels)
    m_by = np.bincount(safe_kid, weights=memory, minlength=n_labels)
    # Flops: varith contributes n_elems * n_instr * flops_per_elem;
    # count_flops contributes f0 directly.
    flops_ev = np.where(
        op == OP_VARITH, i0 * i1 * f0, np.where(op == OP_COUNT_FLOPS, f0, 0.0)
    )
    f_by = np.bincount(safe_kid, weights=flops_ev * w, minlength=n_labels)

    freq = machine.core.freq_ghz
    rows: List[Dict] = []
    for k, label in enumerate(trace.labels):
        bound = c_by[k] + m_by[k]
        if bound == 0.0 and f_by[k] == 0.0:
            continue
        rows.append(
            {
                "kernel": label,
                "compute_mcycles": c_by[k] / 1e6,
                "memory_mcycles": m_by[k] / 1e6,
                "bound_mcycles": bound / 1e6,
                "gflop": f_by[k] / 1e9,
                "bound_gflops": (f_by[k] / bound * freq) if bound else 0.0,
            }
        )
    rows.sort(key=lambda r: -r["bound_mcycles"])
    total_b = float(c_by.sum() + m_by.sum())
    rows.append(
        {
            "kernel": "* total",
            "compute_mcycles": float(c_by.sum()) / 1e6,
            "memory_mcycles": float(m_by.sum()) / 1e6,
            "bound_mcycles": total_b / 1e6,
            "gflop": float(f_by.sum()) / 1e9,
            "bound_gflops": (float(f_by.sum()) / total_b * freq) if total_b else 0.0,
        }
    )
    return rows


def check_bounds_against_sim(bound_rows, stats) -> List[Finding]:
    """Oracle: assert every static bound is <= the simulated cycles.

    *stats* is the :class:`~repro.machine.simulator.SimStats` of a real
    replay of the same trace on the same machine.  A violated
    inequality means the bound arithmetic and the simulator have
    diverged (model drift) and is reported as ``oracle/bound-exceeds-sim``.
    """
    findings: List[Finding] = []
    for row in bound_rows:
        label = row["kernel"]
        bound = row["bound_mcycles"] * 1e6
        if label == "* total":
            sim = stats.cycles
        else:
            sim = stats.kernel_cycles.get(label)
            if sim is None:
                continue
        if bound > sim * (1.0 + _REL_TOL):
            findings.append(
                Finding(
                    rule="oracle/bound-exceeds-sim",
                    severity="error",
                    where=label,
                    message=(
                        f"static lower bound {bound:.0f} cycles exceeds "
                        f"simulated {sim:.0f} cycles (model drift)"
                    ),
                    detail={"bound": bound, "simulated": sim},
                )
            )
    return findings
