"""Co-design sweep machinery — the paper's primary contribution.

The paper's method is a joint exploration: fix a kernel configuration
(software axis), sweep a micro-architectural parameter (hardware axis),
and observe cycle counts and cache statistics.  This module packages
that loop: :class:`DesignPoint` couples a machine with a kernel policy,
and the ``sweep_*`` helpers reproduce the paper's parameter axes
(vector length, L2 size, vector lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy
from ..nets.network import Network
from ..testing import faults
from .parallel import resolve_jobs, simulate_points
from .resilience import (
    FailureBudget,
    Journal,
    PointFailure,
    RetryPolicy,
    call_with_retries,
    load_sealed,
    stats_from_payload,
    sweep_key,
)

__all__ = [
    "DesignPoint",
    "SweepResult",
    "run_design_point",
    "sweep",
    "sweep_vector_lengths",
    "sweep_cache_sizes",
    "sweep_lanes",
]


@dataclass(frozen=True)
class DesignPoint:
    """One (hardware, software) point in the co-design space."""

    machine: MachineConfig
    policy: KernelPolicy = field(default_factory=KernelPolicy)
    label: str = ""

    def name(self) -> str:
        """Display label (explicit, or machine/kernel derived)."""
        return self.label or f"{self.machine.name}/{self.policy.gemm}"


@dataclass
class SweepResult:
    """Outcome of a one-axis sweep.

    ``axis`` holds the swept parameter values, ``stats`` the simulation
    statistics per value, in the same order.  ``sources`` records each
    point's provenance: ``"direct"`` (fully simulated), ``"captured"``
    (simulated while recording the shared trace), ``"replayed"`` (priced
    from a recorded trace without re-running kernels), ``"cached"``
    (persistent result cache hit), ``"journal"`` (restored from a
    resumed sweep's checkpoint), ``"sealed"`` (the whole grid answered
    from a compacted, digest-chained results record — see
    :func:`repro.core.resilience.seal_journal`) or ``"failed"`` (the
    entry in ``stats``
    is a :class:`~repro.core.resilience.PointFailure`, not a
    :class:`SimStats` — only possible with ``max_failures > 0``).  It
    is empty for results built by hand; consumers should treat a
    missing entry as ``"direct"``.
    """

    axis_name: str
    axis: List = field(default_factory=list)
    stats: List[SimStats] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every point produced real statistics."""
        return not self.failures()

    def failures(self) -> List[PointFailure]:
        """The :class:`PointFailure` records of permanently failed
        points (empty on a fully successful sweep)."""
        return [s for s in self.stats if isinstance(s, PointFailure)]

    def cycles(self) -> List[float]:
        """Execution cycles per swept value."""
        return [s.cycles for s in self.stats]

    def speedups(self, baseline_index: int = 0) -> List[float]:
        """Speedup of each point relative to the point at *baseline_index*
        (the paper normalizes to the shortest vector / smallest cache).

        Degenerate zero-cycle points (e.g. a zero-layer sweep) yield
        1.0 against a zero-cycle baseline and ``inf`` otherwise, rather
        than raising ``ZeroDivisionError``.
        """
        if not self.stats:
            return []
        base = self.stats[baseline_index].cycles
        out = []
        for s in self.stats:
            if s.cycles == 0:
                out.append(1.0 if base == 0 else float("inf"))
            else:
                out.append(base / s.cycles)
        return out

    def miss_rates(self) -> List[float]:
        """L2 demand miss rate per swept value (Table III)."""
        return [s.l2_miss_rate for s in self.stats]

    def source_of(self, index: int) -> str:
        """Provenance of point *index* (``"direct"`` when unrecorded)."""
        return self.sources[index] if index < len(self.sources) else "direct"

    def as_rows(self) -> List[Dict]:
        """Row dicts for reporting: axis value, cycles, speedup, miss,
        and the point's provenance (captured / replayed / cached /
        direct)."""
        speed = self.speedups()
        return [
            {
                self.axis_name: v,
                "cycles": s.cycles,
                "speedup": sp,
                "l2_miss_rate": s.l2_miss_rate,
                "avg_vlen_elems": s.avg_vlen_elems,
                "source": self.source_of(i),
            }
            for i, (v, s, sp) in enumerate(zip(self.axis, self.stats, speed))
        ]


def run_design_point(
    net: Network,
    point: DesignPoint,
    n_layers: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SimStats:
    """Simulate *net* at one design point.

    ``use_cache`` opts into the persistent result cache (see
    :mod:`repro.core.simcache`); ``None`` defers to ``REPRO_SIMCACHE``.
    """
    return net.simulate(
        point.machine, point.policy, n_layers=n_layers, use_cache=use_cache
    )


def _simulate_group(
    net: Network,
    machines: Sequence[MachineConfig],
    policy: KernelPolicy,
    n_layers: Optional[int],
    use_cache: Optional[bool],
    use_trace: Optional[bool],
    indices: Optional[Sequence[int]] = None,
    retry: Optional[RetryPolicy] = None,
    budget: Optional[FailureBudget] = None,
    on_point=None,
    on_failure=None,
):
    """Serially simulate one machine list with capture-once/replay-many.

    Points are first resolved against the persistent result cache, then
    grouped by trace key (:func:`repro.core.tracecache.trace_key`);
    each replayable group (:func:`repro.machine.replay.group_mode` —
    L2/DRAM sweeps and VPU-pricing sweeps like lanes/MLP) runs the
    kernels once — via :func:`repro.machine.replay.capture_sweep`, or
    :func:`~repro.machine.replay.replay_sweep` when the registry already
    holds the trace — and prices every sibling from the shared stream.
    Singleton groups (e.g. each point of a VL sweep, whose event
    streams differ per point) capture a reusable trace and replay from
    it, seeding the registry/spill so later sweeps along *any*
    replayable axis price the figure without re-running kernels.
    Groups varying in a genuinely un-replayable field fall back to
    ordinary per-point simulation — or raise when ``use_trace=True``
    was explicitly requested.

    Returns ``(stats, sources)`` in input order; statistics are bitwise
    identical to per-point simulation regardless of the path taken.

    Supervision (see :mod:`repro.core.resilience`): a failing shared
    pricing pass degrades its whole group to the per-point loop; a
    failing point retries per *retry* and finally degrades to a
    :class:`PointFailure` charged against *budget*.  *on_point* /
    *on_failure* fire as each point settles — the journaling hook for
    resumable sweeps.
    """
    from . import simcache, tracecache
    from ..machine.replay import (
        capture_sweep,
        group_mode,
        nonuniform_fields,
        replay_sweep,
        replay_sweep_cached,
    )

    n = len(machines)
    indices = list(indices) if indices is not None else list(range(n))
    retry = retry if retry is not None else RetryPolicy.from_env()
    budget = budget if budget is not None else FailureBudget(retry.max_failures)
    stats: List[Optional[SimStats]] = [None] * n
    sources = ["direct"] * n
    cache_on = simcache.cache_enabled(use_cache)
    ckeys: List[Optional[str]] = [None] * n
    pending = []
    for i, machine in enumerate(machines):
        if cache_on:
            ckeys[i] = simcache.cache_key(net, machine, policy, n_layers, True)
            hit = simcache.load(ckeys[i])
            if hit is not None:
                stats[i] = hit
                sources[i] = "cached"
                if on_point is not None:
                    on_point(indices[i], hit, "cached")
                continue
        pending.append(i)

    # Tracing defaults ON for sweeps: capture costs ~1/10 of pricing, so
    # it pays for itself from the second point of a group onwards — and
    # singleton groups still capture, seeding the registry/spill so the
    # next sweep sharing the key replays instead of re-simulating.
    if tracecache.trace_enabled(use_trace, default=True) and pending:
        groups: Dict[str, List[int]] = {}
        for i in pending:
            key = tracecache.trace_key(net, machines[i], policy, n_layers, True)
            groups.setdefault(key, []).append(i)
        for key, idxs in groups.items():
            group = [machines[i] for i in idxs]
            if len(idxs) > 1 and group_mode(group) is None:
                if use_trace is True:
                    # The caller explicitly demanded trace replay for an
                    # axis the pricing pass cannot express: fail loudly
                    # instead of silently simulating per point.
                    raise ValueError(
                        "trace replay cannot price this sweep group: "
                        "machines vary in "
                        f"{', '.join(nonuniform_fields(group))} "
                        "(see repro.machine.replay.supports_axis for "
                        "replayable axes); drop use_trace=True to "
                        "simulate per point"
                    )
                continue  # un-replayable group: per-point fallback below
            try:
                for i in idxs:
                    faults.maybe_fault("worker.point", index=indices[i])
                # Warm path first: when the compiled-pass cache holds a
                # digest-matching pass (or tier) for this key, the group
                # prices without ever decoding the trace columns.
                priced = replay_sweep_cached(key, group)
                if priced is not None:
                    labels = ["replayed"] * len(idxs)
                elif (trace := tracecache.get(key)) is not None:
                    priced = replay_sweep(trace, group)
                    labels = ["replayed"] * len(idxs)
                elif len(idxs) == 1:
                    # Singleton (e.g. one VL point): record a reusable
                    # trace and price from it.  Slightly dearer than a
                    # direct simulation once, then every re-run — and
                    # every other axis sharing the key — replays.
                    trace, _ = tracecache.get_or_capture(
                        net, group[0], policy, n_layers
                    )
                    priced = replay_sweep(trace, group)
                    labels = ["captured"]
                else:
                    priced = capture_sweep(
                        lambda sim: net._emit_trace(sim, policy, n_layers, True),
                        group,
                    )
                    labels = ["captured"] + ["replayed"] * (len(idxs) - 1)
            except Exception:
                continue  # degrade the group to the per-point loop below
            if priced is None:
                continue  # non-uniform group: per-point fallback below
            for j, i in enumerate(idxs):
                stats[i] = priced[j]
                sources[i] = labels[j]
                if ckeys[i] is not None:
                    simcache.store(ckeys[i], priced[j])
                if on_point is not None:
                    on_point(indices[i], priced[j], labels[j])

    for i in pending:
        if stats[i] is None:
            gidx = indices[i]

            def run_point(i=i, gidx=gidx):
                faults.maybe_fault("worker.point", index=gidx)
                return net.simulate(
                    machines[i],
                    policy,
                    n_layers=n_layers,
                    use_cache=False,
                    use_trace=False,
                )

            try:
                stats[i], _ = call_with_retries(run_point, retry, f"pt{gidx}")
            except Exception as exc:
                failure = PointFailure(
                    index=gidx,
                    error=str(exc),
                    exc_type=type(exc).__name__,
                    attempts=retry.max_retries + 1,
                )
                stats[i] = failure
                sources[i] = "failed"
                if on_failure is not None:
                    on_failure(failure)
                budget.record(failure, exc)  # raises in fail-fast mode
                continue
            if ckeys[i] is not None:
                simcache.store(ckeys[i], stats[i])
            if on_point is not None:
                on_point(gidx, stats[i], sources[i])
    return stats, sources


def sweep(
    net: Network,
    axis_name: str,
    values: Iterable,
    machine_for: Callable[[object], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
    resume: bool = False,
    retry: Optional[RetryPolicy] = None,
    max_failures: Optional[int] = None,
    prune: Optional[int] = None,
    heartbeat: Optional[Callable[[], None]] = None,
) -> SweepResult:
    """Generic one-axis sweep: build a machine per value and simulate.

    ``jobs`` selects parallel execution over design points: ``None``
    consults the ``REPRO_JOBS`` environment variable (default serial),
    0 or negative means all cores.  Parallel runs return results in the
    same order, with statistics identical to the serial path; if the
    inputs cannot be shipped to workers the sweep silently runs
    serially.  ``use_cache`` opts into the persistent result cache
    (see :mod:`repro.core.simcache`).

    ``use_trace`` controls the capture-once/replay-many engine
    (:mod:`repro.core.tracecache`): points whose kernel event stream is
    identical — e.g. every point of an L2-size or DRAM sweep — run the
    kernels once and are priced from the shared recorded trace, with
    bitwise-identical statistics.  ``None`` (the default) enables it
    for sweeps unless ``REPRO_TRACE`` says otherwise; each point's
    provenance lands in ``SweepResult.sources``.

    Fault tolerance (:mod:`repro.core.resilience`): with ``resume=True``
    every completed point is checkpointed to a journal under
    ``.simcache/journal/``, an interrupted sweep picks up exactly where
    it left off on the next ``resume=True`` call (restored points get
    source ``"journal"``; the re-run is bitwise identical to an
    uninterrupted sweep), and a finished sweep re-runs for free.
    *retry* configures per-point supervision (bounded retries with
    exponential backoff and jitter, per-point timeout, dead-worker
    recovery in parallel mode); *max_failures* overrides the policy's
    failure budget — 0 (default) fails fast like the classic engine,
    ``N > 0`` degrades up to N permanently failing points to
    :class:`PointFailure` cells (source ``"failed"``) before a
    :class:`~repro.core.resilience.SweepError` aborts the sweep.

    Model-guided pruning: ``prune=K`` ranks every point with the static
    cost model (:mod:`repro.analysis.predict` over the point's recorded
    trace) and simulates only the ``K`` most promising ones; the rest
    get the model's predicted statistics with source
    ``"pruned-by-model"`` (their ``stats`` cells are estimates, not
    simulations — check ``SweepResult.sources`` before trusting a
    pruned cell).  Points restored from a resume journal are never
    re-pruned.

    *heartbeat* (used by the durable job scheduler,
    :mod:`repro.service.scheduler`) is a zero-argument callable invoked
    as each point settles — and on every supervisor tick in parallel
    mode — so a job owner can renew its lease and observe cancellation
    while a long sweep runs; an exception it raises aborts the sweep
    after the journal has checkpointed every completed point.

    With ``resume=True``, a grid whose journal was compacted into a
    verified sealed record (:func:`repro.core.resilience.seal_journal`)
    is answered entirely from that record — zero simulations, source
    ``"sealed"``, statistics bitwise-identical to the original run.
    """
    if policy is None:
        policy = KernelPolicy()
    if prune is not None and prune < 1:
        raise ValueError(f"prune must be a positive point count, got {prune}")
    values = list(values)
    machines = [machine_for(v) for v in values]
    retry = retry if retry is not None else RetryPolicy.from_env()
    if max_failures is not None:
        retry = replace(retry, max_failures=max_failures)
    budget = FailureBudget(retry.max_failures)
    n = len(machines)

    journal: Optional[Journal] = None
    stats_list: List[Optional[SimStats]] = [None] * n
    sources = ["direct"] * n
    pending = list(range(n))
    if resume:
        skey = sweep_key(net, axis_name, values, machines, policy, n_layers)
        sealed = load_sealed(skey, n)
        if sealed is not None:
            return SweepResult(
                axis_name=axis_name,
                axis=values,
                stats=[stats_from_payload(p) for p in sealed["points"]],
                sources=["sealed"] * n,
            )
        journal = Journal.open(
            skey, n, meta={"axis_name": axis_name, "net": net.name}
        )
        for i, (stats, _src) in journal.completed.items():
            stats_list[i] = stats
            sources[i] = "journal"
        pending = journal.pending()

    on_point = journal.record_point if journal is not None else None
    on_failure = journal.record_failure if journal is not None else None
    if heartbeat is not None:
        heartbeat()  # observe a pre-existing cancel before any work

        def on_point(i, stats, src, _chain=on_point):
            if _chain is not None:
                _chain(i, stats, src)
            heartbeat()

    try:
        if prune is not None and len(pending) > prune:
            from ..analysis.predict import (
                predict_cycles,
                predicted_stats,
                summarize_trace,
            )
            from . import tracecache

            summaries: Dict = {}  # (trace id, line geometry) -> TraceSummary
            ranked = []
            for i in pending:
                m = machines[i]
                trace, _ = tracecache.get_or_capture(net, m, policy, n_layers)
                skey = (id(trace), m.l2.line_bytes, m.l1.line_bytes)
                if skey not in summaries:
                    summaries[skey] = summarize_trace(trace, m)
                ranked.append((predict_cycles(summaries[skey], m), i))
            ranked.sort(key=lambda pi: pi[0].cycles)
            for pred, i in ranked[prune:]:
                stats_list[i] = predicted_stats(pred)
                sources[i] = "pruned-by-model"
                if on_point is not None:
                    on_point(i, stats_list[i], sources[i])
            pending = sorted(i for _, i in ranked[:prune])

        if pending:
            sub_machines = [machines[i] for i in pending]
            out = None
            n_jobs = resolve_jobs(jobs)
            if n_jobs > 1:
                out = simulate_points(
                    net, sub_machines, policy, n_layers, n_jobs, use_cache,
                    use_trace, indices=pending, retry=retry, budget=budget,
                    on_point=on_point, on_failure=on_failure,
                    on_tick=heartbeat,
                )
            if out is None:
                out = _simulate_group(
                    net, sub_machines, policy, n_layers, use_cache, use_trace,
                    indices=pending, retry=retry, budget=budget,
                    on_point=on_point, on_failure=on_failure,
                )
            sub_stats, sub_sources = out
            for j, i in enumerate(pending):
                stats_list[i] = sub_stats[j]
                sources[i] = sub_sources[j]
        if journal is not None and all(
            not isinstance(s, PointFailure) and s is not None for s in stats_list
        ):
            journal.mark_done()
    finally:
        if journal is not None:
            journal.close()
    return SweepResult(
        axis_name=axis_name, axis=values, stats=stats_list, sources=sources
    )


def sweep_vector_lengths(
    net: Network,
    vlens: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
    resume: bool = False,
    retry=None,
    max_failures: Optional[int] = None,
    prune: Optional[int] = None,
) -> SweepResult:
    """Fig. 6 / Fig. 8 axis: vary the hardware vector length.

    ``base_machine`` maps a vector length in bits to a machine config
    (e.g. ``lambda v: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1)``).

    A VL change alters the event stream itself (kernels tile on it),
    so each point records **one capture per VL** — but that capture
    then serves *every* pricing axis and figure at that VL, and its
    compiled passes persist (``.rpp``/``.rvp``, see
    docs/TRACE_REPLAY.md "Persistent compiled passes"): a warm re-run
    of this sweep replays every point from the compiled-pass cache
    without decoding a single trace column.
    """
    if policy is None:
        policy = KernelPolicy()
    return sweep(
        net, "vlen_bits", vlens, base_machine, policy, n_layers, jobs,
        use_cache, use_trace, resume=resume, retry=retry,
        max_failures=max_failures, prune=prune,
    )


def sweep_cache_sizes(
    net: Network,
    l2_mbs: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
    resume: bool = False,
    retry=None,
    max_failures: Optional[int] = None,
    prune: Optional[int] = None,
) -> SweepResult:
    """Fig. 7 / Figs. 8-10 axis: vary the L2 capacity (1-256 MB).

    The prime beneficiary of trace replay: every point of an L2 sweep
    shares one kernel event stream, so the kernels run exactly once.
    """
    if policy is None:
        policy = KernelPolicy()
    return sweep(
        net, "l2_mb", l2_mbs, base_machine, policy, n_layers, jobs,
        use_cache, use_trace, resume=resume, retry=retry,
        max_failures=max_failures, prune=prune,
    )


def sweep_lanes(
    net: Network,
    lanes: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
    resume: bool = False,
    retry=None,
    max_failures: Optional[int] = None,
    prune: Optional[int] = None,
) -> SweepResult:
    """Section VI-B(c) axis: vary the number of vector lanes (2-8).

    Lane count changes pricing arithmetic, not the event stream, so the
    points share a trace key and form a ``"vpu"``-mode replay group
    (:func:`repro.machine.replay.group_mode`): the kernels run once and
    every lane point is priced from the shared capture with deferred
    VPU pricing classes, bitwise identical to per-point simulation
    (see docs/TRACE_REPLAY.md).
    """
    if policy is None:
        policy = KernelPolicy()
    return sweep(
        net, "lanes", lanes, base_machine, policy, n_layers, jobs,
        use_cache, use_trace, resume=resume, retry=retry,
        max_failures=max_failures, prune=prune,
    )
