"""Co-design sweep machinery — the paper's primary contribution.

The paper's method is a joint exploration: fix a kernel configuration
(software axis), sweep a micro-architectural parameter (hardware axis),
and observe cycle counts and cache statistics.  This module packages
that loop: :class:`DesignPoint` couples a machine with a kernel policy,
and the ``sweep_*`` helpers reproduce the paper's parameter axes
(vector length, L2 size, vector lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy
from ..nets.network import Network
from .parallel import resolve_jobs, simulate_points

__all__ = [
    "DesignPoint",
    "SweepResult",
    "run_design_point",
    "sweep",
    "sweep_vector_lengths",
    "sweep_cache_sizes",
    "sweep_lanes",
]


@dataclass(frozen=True)
class DesignPoint:
    """One (hardware, software) point in the co-design space."""

    machine: MachineConfig
    policy: KernelPolicy = field(default_factory=KernelPolicy)
    label: str = ""

    def name(self) -> str:
        """Display label (explicit, or machine/kernel derived)."""
        return self.label or f"{self.machine.name}/{self.policy.gemm}"


@dataclass
class SweepResult:
    """Outcome of a one-axis sweep.

    ``axis`` holds the swept parameter values, ``stats`` the simulation
    statistics per value, in the same order.  ``sources`` records each
    point's provenance: ``"direct"`` (fully simulated), ``"captured"``
    (simulated while recording the shared trace), ``"replayed"`` (priced
    from a recorded trace without re-running kernels) or ``"cached"``
    (persistent result cache hit).  It is empty for results built by
    hand; consumers should treat a missing entry as ``"direct"``.
    """

    axis_name: str
    axis: List = field(default_factory=list)
    stats: List[SimStats] = field(default_factory=list)
    sources: List[str] = field(default_factory=list)

    def cycles(self) -> List[float]:
        """Execution cycles per swept value."""
        return [s.cycles for s in self.stats]

    def speedups(self, baseline_index: int = 0) -> List[float]:
        """Speedup of each point relative to the point at *baseline_index*
        (the paper normalizes to the shortest vector / smallest cache).

        Degenerate zero-cycle points (e.g. a zero-layer sweep) yield
        1.0 against a zero-cycle baseline and ``inf`` otherwise, rather
        than raising ``ZeroDivisionError``.
        """
        if not self.stats:
            return []
        base = self.stats[baseline_index].cycles
        out = []
        for s in self.stats:
            if s.cycles == 0:
                out.append(1.0 if base == 0 else float("inf"))
            else:
                out.append(base / s.cycles)
        return out

    def miss_rates(self) -> List[float]:
        """L2 demand miss rate per swept value (Table III)."""
        return [s.l2_miss_rate for s in self.stats]

    def source_of(self, index: int) -> str:
        """Provenance of point *index* (``"direct"`` when unrecorded)."""
        return self.sources[index] if index < len(self.sources) else "direct"

    def as_rows(self) -> List[Dict]:
        """Row dicts for reporting: axis value, cycles, speedup, miss,
        and the point's provenance (captured / replayed / cached /
        direct)."""
        speed = self.speedups()
        return [
            {
                self.axis_name: v,
                "cycles": s.cycles,
                "speedup": sp,
                "l2_miss_rate": s.l2_miss_rate,
                "avg_vlen_elems": s.avg_vlen_elems,
                "source": self.source_of(i),
            }
            for i, (v, s, sp) in enumerate(zip(self.axis, self.stats, speed))
        ]


def run_design_point(
    net: Network,
    point: DesignPoint,
    n_layers: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SimStats:
    """Simulate *net* at one design point.

    ``use_cache`` opts into the persistent result cache (see
    :mod:`repro.core.simcache`); ``None`` defers to ``REPRO_SIMCACHE``.
    """
    return net.simulate(
        point.machine, point.policy, n_layers=n_layers, use_cache=use_cache
    )


def _simulate_group(
    net: Network,
    machines: Sequence[MachineConfig],
    policy: KernelPolicy,
    n_layers: Optional[int],
    use_cache: Optional[bool],
    use_trace: Optional[bool],
):
    """Serially simulate one machine list with capture-once/replay-many.

    Points are first resolved against the persistent result cache, then
    grouped by trace key (:func:`repro.core.tracecache.trace_key`);
    each multi-point group with a uniform event stream runs the kernels
    once — via :func:`repro.machine.replay.capture_sweep`, or
    :func:`~repro.machine.replay.replay_sweep` when the registry already
    holds the trace — and prices every sibling from the shared stream.
    Anything left (singleton groups, lane/VL-coupled groups the replay
    engine declines) falls back to ordinary per-point simulation.

    Returns ``(stats, sources)`` in input order; statistics are bitwise
    identical to per-point simulation regardless of the path taken.
    """
    from . import simcache, tracecache
    from ..machine.replay import capture_sweep, replay_sweep

    n = len(machines)
    stats: List[Optional[SimStats]] = [None] * n
    sources = ["direct"] * n
    cache_on = simcache.cache_enabled(use_cache)
    ckeys: List[Optional[str]] = [None] * n
    pending = []
    for i, machine in enumerate(machines):
        if cache_on:
            ckeys[i] = simcache.cache_key(net, machine, policy, n_layers, True)
            hit = simcache.load(ckeys[i])
            if hit is not None:
                stats[i] = hit
                sources[i] = "cached"
                continue
        pending.append(i)

    # Tracing defaults ON for sweeps: capture costs ~1/10 of pricing, so
    # it pays for itself from the second point of a group onwards.
    if tracecache.trace_enabled(use_trace, default=True) and len(pending) > 1:
        groups: Dict[str, List[int]] = {}
        for i in pending:
            key = tracecache.trace_key(net, machines[i], policy, n_layers, True)
            groups.setdefault(key, []).append(i)
        for key, idxs in groups.items():
            if len(idxs) < 2:
                continue  # capturing pays only when replayed
            group = [machines[i] for i in idxs]
            trace = tracecache.get(key)
            if trace is not None:
                priced = replay_sweep(trace, group)
                labels = ["replayed"] * len(idxs)
            else:
                priced = capture_sweep(
                    lambda sim: net._emit_trace(sim, policy, n_layers, True),
                    group,
                )
                labels = ["captured"] + ["replayed"] * (len(idxs) - 1)
            if priced is None:
                continue  # non-uniform group: per-point fallback below
            for j, i in enumerate(idxs):
                stats[i] = priced[j]
                sources[i] = labels[j]
                if ckeys[i] is not None:
                    simcache.store(ckeys[i], priced[j])

    for i in pending:
        if stats[i] is None:
            stats[i] = net.simulate(
                machines[i],
                policy,
                n_layers=n_layers,
                use_cache=False,
                use_trace=False,
            )
            if ckeys[i] is not None:
                simcache.store(ckeys[i], stats[i])
    return stats, sources


def sweep(
    net: Network,
    axis_name: str,
    values: Iterable,
    machine_for: Callable[[object], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
) -> SweepResult:
    """Generic one-axis sweep: build a machine per value and simulate.

    ``jobs`` selects parallel execution over design points: ``None``
    consults the ``REPRO_JOBS`` environment variable (default serial),
    0 or negative means all cores.  Parallel runs return results in the
    same order, with statistics identical to the serial path; if the
    inputs cannot be shipped to workers the sweep silently runs
    serially.  ``use_cache`` opts into the persistent result cache
    (see :mod:`repro.core.simcache`).

    ``use_trace`` controls the capture-once/replay-many engine
    (:mod:`repro.core.tracecache`): points whose kernel event stream is
    identical — e.g. every point of an L2-size or DRAM sweep — run the
    kernels once and are priced from the shared recorded trace, with
    bitwise-identical statistics.  ``None`` (the default) enables it
    for sweeps unless ``REPRO_TRACE`` says otherwise; each point's
    provenance lands in ``SweepResult.sources``.
    """
    if policy is None:
        policy = KernelPolicy()
    values = list(values)
    machines = [machine_for(v) for v in values]
    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1:
        out = simulate_points(
            net, machines, policy, n_layers, n_jobs, use_cache, use_trace
        )
        if out is not None:
            stats_list, sources = out
            return SweepResult(
                axis_name=axis_name, axis=values, stats=stats_list, sources=sources
            )
    stats_list, sources = _simulate_group(
        net, machines, policy, n_layers, use_cache, use_trace
    )
    return SweepResult(
        axis_name=axis_name, axis=values, stats=stats_list, sources=sources
    )


def sweep_vector_lengths(
    net: Network,
    vlens: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
) -> SweepResult:
    """Fig. 6 / Fig. 8 axis: vary the hardware vector length.

    ``base_machine`` maps a vector length in bits to a machine config
    (e.g. ``lambda v: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1)``).
    """
    if policy is None:
        policy = KernelPolicy()
    return sweep(
        net, "vlen_bits", vlens, base_machine, policy, n_layers, jobs,
        use_cache, use_trace,
    )


def sweep_cache_sizes(
    net: Network,
    l2_mbs: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
) -> SweepResult:
    """Fig. 7 / Figs. 8-10 axis: vary the L2 capacity (1-256 MB).

    The prime beneficiary of trace replay: every point of an L2 sweep
    shares one kernel event stream, so the kernels run exactly once.
    """
    if policy is None:
        policy = KernelPolicy()
    return sweep(
        net, "l2_mb", l2_mbs, base_machine, policy, n_layers, jobs,
        use_cache, use_trace,
    )


def sweep_lanes(
    net: Network,
    lanes: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: Optional[KernelPolicy] = None,
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
) -> SweepResult:
    """Section VI-B(c) axis: vary the number of vector lanes (2-8).

    Lane count changes pricing arithmetic, not the event stream, so the
    points share a trace key — but the replay engine's shared pricing
    pass does not split on lanes, so ``replay_sweep`` declines the
    group and each point simulates directly (see docs/TRACE_REPLAY.md).
    """
    if policy is None:
        policy = KernelPolicy()
    return sweep(
        net, "lanes", lanes, base_machine, policy, n_layers, jobs,
        use_cache, use_trace,
    )
