"""Co-design sweep machinery — the paper's primary contribution.

The paper's method is a joint exploration: fix a kernel configuration
(software axis), sweep a micro-architectural parameter (hardware axis),
and observe cycle counts and cache statistics.  This module packages
that loop: :class:`DesignPoint` couples a machine with a kernel policy,
and the ``sweep_*`` helpers reproduce the paper's parameter axes
(vector length, L2 size, vector lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy
from ..nets.network import Network
from .parallel import resolve_jobs, simulate_points

__all__ = [
    "DesignPoint",
    "SweepResult",
    "run_design_point",
    "sweep",
    "sweep_vector_lengths",
    "sweep_cache_sizes",
    "sweep_lanes",
]


@dataclass(frozen=True)
class DesignPoint:
    """One (hardware, software) point in the co-design space."""

    machine: MachineConfig
    policy: KernelPolicy = KernelPolicy()
    label: str = ""

    def name(self) -> str:
        """Display label (explicit, or machine/kernel derived)."""
        return self.label or f"{self.machine.name}/{self.policy.gemm}"


@dataclass
class SweepResult:
    """Outcome of a one-axis sweep.

    ``axis`` holds the swept parameter values, ``stats`` the simulation
    statistics per value, in the same order.
    """

    axis_name: str
    axis: List = field(default_factory=list)
    stats: List[SimStats] = field(default_factory=list)

    def cycles(self) -> List[float]:
        """Execution cycles per swept value."""
        return [s.cycles for s in self.stats]

    def speedups(self, baseline_index: int = 0) -> List[float]:
        """Speedup of each point relative to the point at *baseline_index*
        (the paper normalizes to the shortest vector / smallest cache)."""
        base = self.stats[baseline_index].cycles
        return [base / s.cycles for s in self.stats]

    def miss_rates(self) -> List[float]:
        """L2 demand miss rate per swept value (Table III)."""
        return [s.l2_miss_rate for s in self.stats]

    def as_rows(self) -> List[Dict]:
        """Row dicts for reporting: axis value, cycles, speedup, miss."""
        speed = self.speedups()
        return [
            {
                self.axis_name: v,
                "cycles": s.cycles,
                "speedup": sp,
                "l2_miss_rate": s.l2_miss_rate,
                "avg_vlen_elems": s.avg_vlen_elems,
            }
            for v, s, sp in zip(self.axis, self.stats, speed)
        ]


def run_design_point(
    net: Network,
    point: DesignPoint,
    n_layers: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SimStats:
    """Simulate *net* at one design point.

    ``use_cache`` opts into the persistent result cache (see
    :mod:`repro.core.simcache`); ``None`` defers to ``REPRO_SIMCACHE``.
    """
    return net.simulate(
        point.machine, point.policy, n_layers=n_layers, use_cache=use_cache
    )


def sweep(
    net: Network,
    axis_name: str,
    values: Iterable,
    machine_for: Callable[[object], MachineConfig],
    policy: KernelPolicy = KernelPolicy(),
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SweepResult:
    """Generic one-axis sweep: build a machine per value and simulate.

    ``jobs`` selects parallel execution over design points: ``None``
    consults the ``REPRO_JOBS`` environment variable (default serial),
    0 or negative means all cores.  Parallel runs return results in the
    same order, with statistics identical to the serial path; if the
    inputs cannot be shipped to workers the sweep silently runs
    serially.  ``use_cache`` opts into the persistent result cache
    (see :mod:`repro.core.simcache`).
    """
    values = list(values)
    machines = [machine_for(v) for v in values]
    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1:
        stats_list = simulate_points(
            net, machines, policy, n_layers, n_jobs, use_cache
        )
        if stats_list is not None:
            return SweepResult(axis_name=axis_name, axis=values, stats=stats_list)
    result = SweepResult(axis_name=axis_name)
    for v, machine in zip(values, machines):
        stats = net.simulate(machine, policy, n_layers=n_layers, use_cache=use_cache)
        result.axis.append(v)
        result.stats.append(stats)
    return result


def sweep_vector_lengths(
    net: Network,
    vlens: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: KernelPolicy = KernelPolicy(),
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SweepResult:
    """Fig. 6 / Fig. 8 axis: vary the hardware vector length.

    ``base_machine`` maps a vector length in bits to a machine config
    (e.g. ``lambda v: rvv_gem5(vlen_bits=v, lanes=8, l2_mb=1)``).
    """
    return sweep(net, "vlen_bits", vlens, base_machine, policy, n_layers, jobs, use_cache)


def sweep_cache_sizes(
    net: Network,
    l2_mbs: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: KernelPolicy = KernelPolicy(),
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SweepResult:
    """Fig. 7 / Figs. 8-10 axis: vary the L2 capacity (1-256 MB)."""
    return sweep(net, "l2_mb", l2_mbs, base_machine, policy, n_layers, jobs, use_cache)


def sweep_lanes(
    net: Network,
    lanes: Sequence[int],
    base_machine: Callable[[int], MachineConfig],
    policy: KernelPolicy = KernelPolicy(),
    n_layers: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> SweepResult:
    """Section VI-B(c) axis: vary the number of vector lanes (2-8)."""
    return sweep(net, "lanes", lanes, base_machine, policy, n_layers, jobs, use_cache)
