"""Parallel design-point evaluation.

Trace replay is embarrassingly parallel across design points (each
point builds its own simulator and touches no shared state), so sweeps
fan points out over a :mod:`multiprocessing` pool.  The network is
pickled once and shipped to each worker via the pool initializer;
per-chunk tasks then carry only (picklable, frozen) machine configs,
the kernel policy, and an optional trace-registry key.

Capture-once / replay-many across processes: the parent groups points
by :func:`repro.core.tracecache.trace_key`, captures each distinct
kernel event stream once, and spills it to disk (``.npz`` next to
``.simcache/``) so every worker — a separate process with its own
in-memory registry — can load it and price its chunk of points with
:func:`repro.machine.replay.replay_sweep` instead of re-running the
kernels.  Workers that cannot load the trace (spill disabled by the
filesystem, say) silently fall back to direct per-point simulation.

Guarantees:

* **Deterministic ordering** — results come back in task order
  (``Pool.map`` preserves it), so a parallel sweep's ``SweepResult``
  is indistinguishable from the serial one.
* **Bitwise-identical stats** — workers run the same simulation code on
  the same inputs, and trace replay is bitwise-faithful by
  construction; no accumulation order changes.
* **Graceful fallback** — if the network or a task fails to pickle, or
  ``jobs`` resolves to 1, the caller gets ``None`` and runs serially.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy

__all__ = ["resolve_jobs", "simulate_points"]

#: Environment variable consulted when ``jobs`` is not given explicitly,
#: so benchmark scripts and the CLI pick up parallelism without code
#: changes: ``REPRO_JOBS=4 pytest benchmarks/...``.
JOBS_ENV = "REPRO_JOBS"

_worker_net = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count.

    ``None`` consults the ``REPRO_JOBS`` environment variable (default
    1, i.e. serial); 0 or a negative value means "all cores".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_worker(payload: bytes) -> None:
    global _worker_net
    _worker_net = pickle.loads(payload)


#: One task = one chunk of machines sharing a trace key (or a single
#: machine with ``tkey=None`` for the direct path).
_Chunk = Tuple[
    List[MachineConfig], KernelPolicy, Optional[int], Optional[bool], Optional[str]
]


def _run_chunk(task: _Chunk) -> Tuple[List[SimStats], List[str]]:
    machines, policy, n_layers, use_cache, tkey = task
    if tkey is not None and len(machines) > 1:
        from . import simcache, tracecache
        from ..machine.replay import replay_sweep

        trace = tracecache.get(tkey, spill=True)
        if trace is not None:
            priced = replay_sweep(trace, machines)
            if priced is not None:
                if simcache.cache_enabled(use_cache):
                    for machine, stats in zip(machines, priced):
                        simcache.store(
                            simcache.cache_key(
                                _worker_net, machine, policy, n_layers, True
                            ),
                            stats,
                        )
                return priced, ["replayed"] * len(machines)
    out = [
        _worker_net.simulate(m, policy, n_layers=n_layers, use_cache=use_cache)
        for m in machines
    ]
    return out, ["direct"] * len(machines)


def _chunk_indices(idxs: List[int], n_chunks: int) -> List[List[int]]:
    """Split *idxs* into at most *n_chunks* contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(idxs)))
    size, extra = divmod(len(idxs), n_chunks)
    chunks, start = [], 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(idxs[start:end])
        start = end
    return chunks


def simulate_points(
    net,
    machines: Sequence[MachineConfig],
    policy: KernelPolicy,
    n_layers: Optional[int],
    jobs: int,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
) -> Optional[Tuple[List[SimStats], List[str]]]:
    """Simulate *net* on each machine in *machines* using *jobs* workers.

    Returns ``(stats, sources)`` in input order, or ``None`` when
    parallel execution is not possible (single job, single point, or
    unpicklable inputs) — the caller then falls back to the serial
    loop.  With tracing enabled (the default for sweeps), each distinct
    kernel event stream is captured once in the parent, spilled to
    disk, and replayed by the workers; a point's entry in ``sources``
    says which path priced it.
    """
    if jobs <= 1 or len(machines) <= 1:
        return None
    try:
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # graceful serial fallback, before any capture

    from . import tracecache

    machines = list(machines)
    # key -> indices sharing one kernel event stream; None = trace off.
    trace_groups: Dict[Optional[str], List[int]] = {}
    captured_idx = None
    if tracecache.trace_enabled(use_trace, default=True):
        from ..machine.replay import uniform_group

        for i, machine in enumerate(machines):
            key = tracecache.trace_key(net, machine, policy, n_layers, True)
            trace_groups.setdefault(key, []).append(i)
        for key, idxs in list(trace_groups.items()):
            group = [machines[i] for i in idxs]
            if len(idxs) < 2 or not uniform_group(group):
                # Replay cannot price the group; run its points direct.
                for i in idxs:
                    trace_groups.setdefault(None, []).append(i)
                del trace_groups[key]
                continue
            if tracecache.get(key, spill=True) is None:
                # Capture once here; forced spill hands the stream to
                # the worker processes.  record_trace may be slower
                # than one direct simulation only for tiny nets, where
                # the whole sweep is cheap anyway.
                trace = net.record_trace(
                    machines[idxs[0]], policy, n_layers=n_layers, key=key
                )
                tracecache.put(key, trace, spill=True)
                if captured_idx is None:
                    captured_idx = idxs[0]
    else:
        trace_groups[None] = list(range(len(machines)))

    tasks: List[_Chunk] = []
    task_idxs: List[List[int]] = []
    for key, idxs in trace_groups.items():
        if key is None:
            for i in idxs:  # direct points parallelize individually
                tasks.append(([machines[i]], policy, n_layers, use_cache, None))
                task_idxs.append([i])
        else:
            for chunk in _chunk_indices(idxs, jobs):
                tasks.append(
                    ([machines[i] for i in chunk], policy, n_layers, use_cache, key)
                )
                task_idxs.append(chunk)

    try:
        pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # graceful serial fallback
    n_procs = min(jobs, len(tasks))
    try:
        with multiprocessing.Pool(
            processes=n_procs, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            chunk_results = pool.map(_run_chunk, tasks, chunksize=1)
    except (pickle.PicklingError, AttributeError):
        return None
    stats: List[Optional[SimStats]] = [None] * len(machines)
    sources = ["direct"] * len(machines)
    for idxs, (chunk_stats, chunk_sources) in zip(task_idxs, chunk_results):
        for i, s, src in zip(idxs, chunk_stats, chunk_sources):
            stats[i] = s
            sources[i] = src
    if captured_idx is not None and sources[captured_idx] == "replayed":
        sources[captured_idx] = "captured"
    return stats, sources
