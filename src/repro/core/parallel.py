"""Parallel design-point evaluation with per-point supervision.

Trace replay is embarrassingly parallel across design points (each
point builds its own simulator and touches no shared state), so sweeps
fan points out over a :mod:`multiprocessing` pool.  The network is
pickled once and shipped to each worker via the pool initializer;
per-chunk tasks then carry only (picklable, frozen) machine configs,
the kernel policy, and an optional trace-registry key.

Capture-once / replay-many across processes: the parent groups points
by :func:`repro.core.tracecache.trace_key`, captures each distinct
kernel event stream once, publishes it as a shared-memory segment
(:func:`repro.core.tracecache.publish_shm`) and spills it to disk
(compressed ``.rtz`` next to ``.simcache/``) so every worker — a
separate process with its own in-memory registry — can attach/load it
once and price its chunk of points with
:func:`repro.machine.replay.replay_sweep` instead of re-running the
kernels.  Workers prefer the shared-memory tier (one decode per worker
lifetime, no disk traffic per task); those that cannot obtain the
trace at all (shared memory and spill both unavailable, or a corrupt
spill quarantined on load) silently fall back to direct per-point
simulation.

Supervision (see docs/RESILIENCE.md): instead of one blocking
``Pool.map``, the parent runs a small event loop over ``apply_async``
results.  A task that raises is retried with exponential backoff and
deterministic jitter; a multi-point chunk that fails is split into
single-point tasks so one poison point cannot take its siblings down;
a worker that dies (the pool replenishes its process automatically) or
exceeds the per-point timeout gets its in-flight work resubmitted.
Results are deterministic and journal/simcache writes are idempotent,
so a duplicated task is harmless — first completion wins.  A point
whose retry budget runs out becomes a structured
:class:`~repro.core.resilience.PointFailure` charged against the
sweep's failure budget.

Guarantees:

* **Deterministic ordering** — results are keyed by input index, so a
  parallel sweep's ``SweepResult`` is indistinguishable from the
  serial one.
* **Bitwise-identical stats** — workers run the same simulation code on
  the same inputs, and trace replay is bitwise-faithful by
  construction; no accumulation order changes.
* **Graceful fallback** — if the network or a task fails to pickle, or
  ``jobs`` resolves to 1, the caller gets ``None`` and runs serially.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy
from ..testing import faults
from . import knobs
from .resilience import FailureBudget, PointFailure, RetryPolicy

__all__ = ["resolve_jobs", "simulate_points"]

#: Environment variable consulted when ``jobs`` is not given explicitly,
#: so benchmark scripts and the CLI pick up parallelism without code
#: changes: ``REPRO_JOBS=4 pytest benchmarks/...``.
JOBS_ENV = "REPRO_JOBS"

#: Seconds a suspect in-flight task is given to complete after a worker
#: death is observed before it is resubmitted.  Duplicates are safe
#: (deterministic results, idempotent writes), so this only trades a
#: little redundant work for prompt crash recovery.
_DEATH_GRACE_S = 0.2

#: Supervisor poll interval.
_POLL_S = 0.01

_worker_net = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count.

    ``None`` consults the ``REPRO_JOBS`` environment variable (default
    1, i.e. serial); 0 or a negative value means "all cores".
    """
    if jobs is None:
        jobs = knobs.get_int(JOBS_ENV, 1)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_worker(payload: bytes) -> None:
    global _worker_net
    _worker_net = pickle.loads(payload)


#: One task = one chunk of machines sharing a trace key (or a single
#: machine with ``tkey=None`` for the direct path), plus the global
#: sweep index of every point (journaling and fault injection).
_Chunk = Tuple[
    List[MachineConfig], List[int], KernelPolicy, Optional[int], Optional[bool],
    Optional[str],
]


def _run_chunk(task: _Chunk) -> Tuple[List[SimStats], List[str]]:
    machines, idxs, policy, n_layers, use_cache, tkey = task
    for i in idxs:
        faults.maybe_fault("worker.point", index=i)
    if tkey is not None:
        from . import simcache, tracecache
        from ..machine.replay import replay_sweep, replay_sweep_cached

        # Compiled-pass warm path first: a digest-matching .rpp (shared
        # by the parent via shm, or on disk from a previous sweep)
        # prices the chunk without attaching or decoding the trace.
        priced = replay_sweep_cached(tkey, machines)
        if priced is None:
            trace = tracecache.get(tkey, spill=True)
            if trace is not None:
                priced = replay_sweep(trace, machines)
        if priced is not None:
            if simcache.cache_enabled(use_cache):
                for machine, stats in zip(machines, priced):
                    simcache.store(
                        simcache.cache_key(
                            _worker_net, machine, policy, n_layers, True
                        ),
                        stats,
                    )
            return priced, ["replayed"] * len(machines)
    out = [
        _worker_net.simulate(m, policy, n_layers=n_layers, use_cache=use_cache)
        for m in machines
    ]
    return out, ["direct"] * len(machines)


def _chunk_indices(idxs: List[int], n_chunks: int) -> List[List[int]]:
    """Split *idxs* into at most *n_chunks* contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(idxs)))
    size, extra = divmod(len(idxs), n_chunks)
    chunks, start = [], 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(idxs[start:end])
        start = end
    return chunks


class _Submission:
    """One in-flight ``apply_async`` call for a work item."""

    __slots__ = ("ar", "at", "era", "suspected")

    def __init__(self, ar, at: float, era: int):
        self.ar = ar
        self.at = at
        self.era = era
        self.suspected = False


class _Work:
    """Supervision state for one task (a chunk or a single point)."""

    __slots__ = ("task", "attempts", "subs", "done", "next_at")

    def __init__(self, task: _Chunk):
        self.task = task
        self.attempts = 0
        self.subs: List[_Submission] = []
        self.done = False
        self.next_at = 0.0

    @property
    def idxs(self) -> List[int]:
        return self.task[1]


class _PoolWatch:
    """Tracks worker deaths across the pool's automatic replenishment."""

    def __init__(self, pool):
        self._known: set = set()
        self._dead: set = set()
        self.era = 0
        self.poll(pool)

    def poll(self, pool) -> int:
        procs = getattr(pool, "_pool", None) or []
        current = {}
        for p in procs:
            current[p.pid] = p.exitcode
        for pid, code in current.items():
            if code is not None:
                self._dead.add(pid)
        for pid in self._known - set(current):
            self._dead.add(pid)  # silently replaced by the pool
        self._known |= set(current)
        self.era = len(self._dead)
        return self.era


def _supervise(
    pool,
    works: List[_Work],
    retry: RetryPolicy,
    budget: FailureBudget,
    on_result: Callable[[_Work, List[SimStats], List[str]], None],
    on_fail: Callable[[PointFailure, Optional[BaseException]], None],
    on_tick: Optional[Callable[[], None]] = None,
) -> None:
    """Drive *works* to completion (or budget exhaustion, which raises).

    Event loop over async results: submit eligible work (respecting
    backoff), harvest completions, and convert exceptions, per-task
    timeouts, and observed worker deaths into retries — splitting
    multi-point chunks into single points first, so a poison point is
    isolated before it is finally declared a :class:`PointFailure`.

    *on_tick* fires once per loop iteration (~every ``_POLL_S``
    seconds while work is outstanding): the durable job layer's lease
    heartbeat, which must keep renewing even when a single chunk runs
    for minutes.  An exception from it aborts the supervision loop (the
    pool context manager terminates the workers).
    """
    watch = _PoolWatch(pool)
    queue: List[_Work] = list(works)

    def attempt_failed(work: _Work, exc: Optional[BaseException], reason: str) -> None:
        now = time.monotonic()
        if len(work.idxs) > 1:
            # Isolate the poison point: the chunk becomes single-point
            # tasks (keeping the trace key — the survivors still price
            # by replay, bitwise-identical to the direct path).
            work.done = True
            machines, idxs, policy, n_layers, use_cache, tkey = work.task
            for m, i in zip(machines, idxs):
                split = _Work(([m], [i], policy, n_layers, use_cache, tkey))
                split.attempts = work.attempts
                split.next_at = now + retry.delay(max(1, work.attempts), f"pt{i}")
                queue.append(split)
            return
        if work.attempts > retry.max_retries:
            work.done = True
            idx = work.idxs[0]
            failure = PointFailure(
                index=idx,
                error=str(exc) if exc is not None else reason,
                exc_type=type(exc).__name__ if exc is not None else reason,
                attempts=work.attempts,
            )
            on_fail(failure, exc)  # may raise (budget exhausted)
            return
        work.next_at = now + retry.delay(work.attempts, f"pt{work.idxs[0]}")

    while True:
        if on_tick is not None:
            on_tick()
        now = time.monotonic()
        watch.poll(pool)
        alive = [w for w in queue if not w.done]
        if not alive:
            return
        for work in alive:
            # Harvest completions / exceptions.
            for sub in list(work.subs):
                if not sub.ar.ready():
                    continue
                work.subs.remove(sub)
                try:
                    chunk_stats, chunk_sources = sub.ar.get(0)
                except Exception as exc:
                    if not work.done and not work.subs:
                        attempt_failed(work, exc, "task raised")
                    continue
                if not work.done:
                    work.done = True
                    on_result(work, chunk_stats, chunk_sources)
            if work.done:
                continue
            # Expire submissions: per-task deadline, then worker-death
            # suspicion (the lost task never completes on its own).
            for sub in list(work.subs):
                if retry.timeout_s is not None and now - sub.at > retry.timeout_s:
                    work.subs.remove(sub)
                    if not work.subs:
                        attempt_failed(work, None, "timeout")
                elif (
                    watch.era > sub.era
                    and now - sub.at > _DEATH_GRACE_S
                    and not sub.suspected
                ):
                    # The dying worker may or may not have held this
                    # task; resubmit a duplicate (kept: it may still
                    # complete) rather than wait forever.
                    sub.suspected = True
                    attempt_failed(work, None, "worker died")
            if work.done:
                continue
            # (Re)submit when idle and past the backoff deadline.
            if not any(not s.suspected for s in work.subs) and now >= work.next_at:
                if work.attempts > retry.max_retries:
                    if not work.subs:
                        attempt_failed(work, None, "retries exhausted")
                    continue
                work.attempts += 1
                ar = pool.apply_async(_run_chunk, (work.task,))
                work.subs.append(_Submission(ar, now, watch.era))
        time.sleep(_POLL_S)


def simulate_points(
    net,
    machines: Sequence[MachineConfig],
    policy: KernelPolicy,
    n_layers: Optional[int],
    jobs: int,
    use_cache: Optional[bool] = None,
    use_trace: Optional[bool] = None,
    indices: Optional[Sequence[int]] = None,
    retry: Optional[RetryPolicy] = None,
    budget: Optional[FailureBudget] = None,
    on_point: Optional[Callable[[int, SimStats, str], None]] = None,
    on_failure: Optional[Callable[[PointFailure], None]] = None,
    on_tick: Optional[Callable[[], None]] = None,
) -> Optional[Tuple[List, List[str]]]:
    """Simulate *net* on each machine in *machines* using *jobs* workers.

    Returns ``(stats, sources)`` in input order, or ``None`` when
    parallel execution is not possible (single job, single point, or
    unpicklable inputs) — the caller then falls back to the serial
    loop.  With tracing enabled (the default for sweeps), each distinct
    kernel event stream is captured once in the parent, spilled to
    disk, and replayed by the workers; a point's entry in ``sources``
    says which path priced it.

    Fault tolerance: *retry* configures per-task supervision (bounded
    retries with backoff, per-point timeout, dead-worker recovery —
    see :class:`~repro.core.resilience.RetryPolicy`); a point that
    fails permanently appears as a
    :class:`~repro.core.resilience.PointFailure` in ``stats`` with
    source ``"failed"``, subject to *budget* (fail-fast by default).
    *indices* carries each machine's global sweep index (for resumed
    sweeps operating on a pending subset); *on_point* / *on_failure*
    are invoked in the parent as results arrive, in completion order —
    the journaling hook.  *on_tick* fires in the parent on every
    supervisor poll — the job-lease heartbeat hook.
    """
    if jobs <= 1 or len(machines) <= 1:
        return None
    try:
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # graceful serial fallback, before any capture

    from . import tracecache

    machines = list(machines)
    indices = list(indices) if indices is not None else list(range(len(machines)))
    retry = retry if retry is not None else RetryPolicy.from_env()
    budget = budget if budget is not None else FailureBudget(retry.max_failures)
    # key -> positions (into machines) sharing one kernel event stream;
    # None = trace off.
    trace_groups: Dict[Optional[str], List[int]] = {}
    captured_pos = None
    if tracecache.trace_enabled(use_trace, default=True):
        from ..machine.replay import group_mode

        for pos, machine in enumerate(machines):
            key = tracecache.trace_key(net, machine, policy, n_layers, True)
            trace_groups.setdefault(key, []).append(pos)
        for key, poss in list(trace_groups.items()):
            group = [machines[p] for p in poss]
            if len(poss) > 1 and group_mode(group) is None:
                # Replay cannot price the group; run its points direct.
                for p in poss:
                    trace_groups.setdefault(None, []).append(p)
                del trace_groups[key]
                continue
            if tracecache.get(key, spill=True) is None:
                if len(poss) < 2:
                    # A singleton with no existing capture: one direct
                    # simulation is cheaper than capture + replay.
                    trace_groups.setdefault(None, []).append(poss[0])
                    del trace_groups[key]
                    continue
                # Capture once here; forced spill hands the stream to
                # the worker processes.  record_trace may be slower
                # than one direct simulation only for tiny nets, where
                # the whole sweep is cheap anyway.
                trace = net.record_trace(
                    machines[poss[0]], policy, n_layers=n_layers, key=key
                )
                tracecache.put(key, trace, spill=True)
                if captured_pos is None:
                    captured_pos = poss[0]
            # Shared-memory fast path: workers attach and decode once
            # per worker lifetime instead of re-reading the spill per
            # task.  Best-effort; released after the pool is done.
            tracecache.publish_shm(key)
            if tracecache.pass_cache_enabled():
                # Likewise for a previously compiled shared pass: a
                # warm .rpp in shm lets every worker skip the event
                # walk (replay_sweep_cached) without touching disk.
                from ..machine.replay import _shared_pass_sig, _sig_token

                tracecache.publish_pass_shm(
                    key, _sig_token(_shared_pass_sig(group[0], True))
                )
    else:
        trace_groups[None] = list(range(len(machines)))

    tasks: List[_Chunk] = []
    task_pos: List[List[int]] = []
    for key, poss in trace_groups.items():
        if key is None:
            for p in poss:  # direct points parallelize individually
                tasks.append(
                    ([machines[p]], [indices[p]], policy, n_layers, use_cache, None)
                )
                task_pos.append([p])
        else:
            for chunk in _chunk_indices(poss, jobs):
                tasks.append(
                    (
                        [machines[p] for p in chunk],
                        [indices[p] for p in chunk],
                        policy, n_layers, use_cache, key,
                    )
                )
                task_pos.append(chunk)

    try:
        pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # graceful serial fallback
    n_procs = min(jobs, len(tasks))

    stats: List[Optional[SimStats]] = [None] * len(machines)
    sources = ["direct"] * len(machines)
    pos_of = {g: p for p, g in enumerate(indices)}

    def on_result(work: _Work, chunk_stats, chunk_sources) -> None:
        for g, s, src in zip(work.idxs, chunk_stats, chunk_sources):
            p = pos_of[g]
            if stats[p] is not None and not isinstance(stats[p], PointFailure):
                continue  # duplicate completion: first one won
            stats[p] = s
            sources[p] = src
            if on_point is not None:
                on_point(g, s, src)

    def on_fail(failure: PointFailure, exc) -> None:
        p = pos_of[failure.index]
        stats[p] = failure
        sources[p] = "failed"
        if on_failure is not None:
            on_failure(failure)
        budget.record(failure, exc)  # raises when the budget overflows

    works = [_Work(t) for t in tasks]
    try:
        with multiprocessing.Pool(
            processes=n_procs, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            _supervise(pool, works, retry, budget, on_result, on_fail, on_tick)
    except (pickle.PicklingError, AttributeError):
        return None
    finally:
        tracecache.release_shm()
    if captured_pos is not None and sources[captured_pos] == "replayed":
        sources[captured_pos] = "captured"
    return stats, sources
