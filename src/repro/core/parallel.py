"""Parallel design-point evaluation.

Trace replay is embarrassingly parallel across design points (each
point builds its own simulator and touches no shared state), so sweeps
fan points out over a :mod:`multiprocessing` pool.  The network is
pickled once and shipped to each worker via the pool initializer;
per-point tasks then carry only the (picklable, frozen) machine config
and kernel policy.

Guarantees:

* **Deterministic ordering** — results come back in task order
  (``Pool.map`` preserves it), so a parallel sweep's ``SweepResult``
  is indistinguishable from the serial one.
* **Bitwise-identical stats** — workers run the same simulation code on
  the same inputs; no accumulation order changes.
* **Graceful fallback** — if the network or a task fails to pickle, or
  ``jobs`` resolves to 1, the caller gets ``None`` and runs serially.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import List, Optional, Sequence, Tuple

from ..machine.config import MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy

__all__ = ["resolve_jobs", "simulate_points"]

#: Environment variable consulted when ``jobs`` is not given explicitly,
#: so benchmark scripts and the CLI pick up parallelism without code
#: changes: ``REPRO_JOBS=4 pytest benchmarks/...``.
JOBS_ENV = "REPRO_JOBS"

_worker_net = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count.

    ``None`` consults the ``REPRO_JOBS`` environment variable (default
    1, i.e. serial); 0 or a negative value means "all cores".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_worker(payload: bytes) -> None:
    global _worker_net
    _worker_net = pickle.loads(payload)


def _run_task(task: Tuple[MachineConfig, KernelPolicy, Optional[int], Optional[bool]]):
    machine, policy, n_layers, use_cache = task
    return _worker_net.simulate(
        machine, policy, n_layers=n_layers, use_cache=use_cache
    )


def simulate_points(
    net,
    machines: Sequence[MachineConfig],
    policy: KernelPolicy,
    n_layers: Optional[int],
    jobs: int,
    use_cache: Optional[bool] = None,
) -> Optional[List[SimStats]]:
    """Simulate *net* on each machine in *machines* using *jobs* workers.

    Returns the stats in input order, or ``None`` when parallel
    execution is not possible (single job, single point, or unpicklable
    inputs) — the caller then falls back to the serial loop.
    """
    if jobs <= 1 or len(machines) <= 1:
        return None
    try:
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
        tasks = [(m, policy, n_layers, use_cache) for m in machines]
        pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None  # graceful serial fallback
    n_procs = min(jobs, len(machines))
    try:
        with multiprocessing.Pool(
            processes=n_procs, initializer=_init_worker, initargs=(payload,)
        ) as pool:
            return pool.map(_run_task, tasks, chunksize=1)
    except (pickle.PicklingError, AttributeError):
        return None
