"""Persistent memoization of simulation results.

Trace simulation is deterministic: the ``SimStats`` produced by
:meth:`repro.nets.network.Network.simulate` is a pure function of the
network's layer structure, the :class:`MachineConfig`, the
:class:`KernelPolicy`, the layer limit / dedup settings, and the timing
model itself.  The ~20 benchmark scripts and repeated figure
reproductions therefore re-simulate the same design points over and
over.  This module caches results on disk, keyed by a content hash of
all of those inputs, so repeated points are free across processes *and*
across runs.

Usage is opt-in:

* ``Network.simulate(..., use_cache=True)`` or
* environment ``REPRO_SIMCACHE=1`` (picked up when ``use_cache`` is left
  as ``None``), or
* the CLI's ``--simcache`` flag.

Invalidation is structural: the key hashes every field of every config
dataclass (recursively), so changing *any* parameter — a cache latency,
a block size, the layer count — produces a different key.  Changes to
the timing model itself are covered by :data:`MODEL_VERSION`, which must
be bumped whenever simulator/hierarchy arithmetic changes results.

Entries are one JSON file per key under :func:`cache_dir` (default
``.simcache/``, override with ``REPRO_SIMCACHE_DIR``).  Writes are
atomic (temp file + ``Path.replace`` via
:func:`repro.core.resilience.atomic_replace`), so concurrent sweep
workers can share one cache directory.  Every entry carries a sha256
content digest; a corrupt, truncated, schema- or version-mismatched
entry is quarantined to ``.simcache/quarantine/`` and treated as a
miss — the point transparently recomputes, and ``repro analyze``
surfaces the quarantined file (rule ``cache/corrupt-entry``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from contextlib import suppress
from pathlib import Path
from typing import Optional

from ..machine.simulator import SimStats
from ..testing import faults
from . import knobs
from .resilience import (
    atomic_replace,
    payload_digest,
    quarantine,
    stats_from_payload,
    stats_payload,
)

__all__ = [
    "MODEL_VERSION",
    "cache_dir",
    "cache_enabled",
    "cache_key",
    "load",
    "store",
    "clear",
]

#: Bump whenever the timing model changes numerics (simulator,
#: hierarchy, cache, VPU, kernel traces): cached entries from older
#: versions are then never returned.
MODEL_VERSION = "2026-08-pr1"

_ENV_FLAG = "REPRO_SIMCACHE"
_ENV_DIR = "REPRO_SIMCACHE_DIR"


def cache_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve an opt-in flag: explicit argument wins, else the
    ``REPRO_SIMCACHE`` environment variable ("1"/"true"/"yes" enable)."""
    if flag is not None:
        return flag
    return knobs.get_bool(_ENV_FLAG)


def cache_dir() -> str:
    """Directory holding cache entries (created lazily by :func:`store`)."""
    return knobs.get_str(_ENV_DIR, ".simcache")


def _canon(obj):
    """Canonical, JSON-serializable form of a config value tree."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__class__": type(obj).__name__,
            **{
                f.name: _canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    # Fallback for non-dataclass objects (layer instances define a
    # parameter-complete repr; see Layer.shape_key).
    return repr(obj)


def cache_key(net, machine, policy, n_layers, deduplicate: bool = True) -> str:
    """Content hash identifying one simulation's full input."""
    payload = {
        "model_version": MODEL_VERSION,
        "net": {
            "name": net.name,
            "input_shape": list(net.input_shape),
            "layers": [repr(layer) for layer in net.layers],
        },
        "machine": _canon(machine),
        "policy": _canon(policy),
        "n_layers": n_layers,
        "deduplicate": deduplicate,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> str:
    return str(Path(cache_dir()) / (key + ".json"))


def load(key: str) -> Optional[SimStats]:
    """Return the cached :class:`SimStats` for *key*, or ``None``.

    A missing file is a plain miss.  Anything else wrong — bad JSON,
    wrong schema, stale model version, content-digest mismatch — is
    *quarantined* (moved to ``.simcache/quarantine/`` with a reason
    sidecar) and then treated as a miss, never an error.
    """
    path = _entry_path(key)
    try:
        with Path(path).open(encoding="utf-8") as fh:
            entry = json.load(fh)
        if entry.get("model_version") != MODEL_VERSION:
            raise ValueError(f"model version {entry.get('model_version')!r}")
        payload = entry["payload"]
        if entry.get("sha256") != payload_digest(payload):
            raise ValueError("content digest mismatch")
        return stats_from_payload(payload)
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        quarantine(path, f"corrupt simcache entry: {exc}")
        return None


def store(key: str, stats: SimStats) -> None:
    """Persist *stats* under *key* (atomic; failures are silent).

    JSON float round-tripping in Python is exact (repr is the shortest
    round-trip form), so a cache hit returns bitwise-identical numbers.
    The entry carries a sha256 digest of its payload, verified by
    :func:`load` so torn or bit-flipped files can never be served.
    """
    payload = stats_payload(stats)
    entry = {
        "model_version": MODEL_VERSION,
        "payload": payload,
        "sha256": payload_digest(payload),
    }
    path = _entry_path(key)

    def write(tmp: str) -> None:
        with Path(tmp).open("w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
        faults.maybe_fault("simcache.write", key=key, path=tmp)

    try:
        atomic_replace(path, write)
    except OSError:
        return  # read-only filesystem etc.: caching is best-effort
    faults.maybe_fault("simcache.store", key=key, path=path)


def clear() -> int:
    """Delete all entries in the cache directory; returns the count.

    Also sweeps up stray ``.tmp`` files a SIGKILLed writer may have
    left behind (they are never read, only waste space).
    """
    directory = Path(cache_dir())
    removed = 0
    try:
        entries = sorted(directory.iterdir())
    except OSError:
        return 0
    for entry in entries:
        if entry.name.endswith(".json"):
            with suppress(OSError):
                entry.unlink()
                removed += 1
        elif entry.name.endswith(".tmp"):
            with suppress(OSError):
                entry.unlink()
    return removed
