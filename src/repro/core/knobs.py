"""Single registry of every ``REPRO_*`` environment knob.

Before this module existed, a dozen ``os.environ`` reads were scattered
across the caches, the resilience layer, the parallel engine, and the
replay dispatcher — undocumented, undiscoverable, and impossible to
lint.  Every knob is now *declared* here once (name, type, default,
doc) and *read* through the typed accessors below, which preserve the
historical parsing semantics exactly:

* values are stripped; an empty or unset variable means "use the
  default";
* booleans accept ``1/true/yes/on`` (and tri-states additionally
  ``0/false/no/off`` for an explicit *off* that overrides a dynamic
  default);
* unparseable ints/floats silently fall back to the default (a typo in
  an environment variable must never crash a sweep).

``repro knobs`` prints the registry (name, type, default, current
value, doc), and the ``api/env-knob`` / ``api/knob-undeclared`` rules
of ``repro check-code`` statically enforce that no module outside this
one touches ``os.environ`` and that every ``REPRO_*`` literal in the
package names a declared knob.  Reading an undeclared name through an
accessor raises ``KeyError`` — the runtime mirror of the static rule.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "KNOBS",
    "Knob",
    "get_bool",
    "get_float",
    "get_int",
    "get_raw",
    "get_str",
    "get_tristate",
    "knob_rows",
]

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


@dataclass(frozen=True)
class Knob:
    """Declaration of one environment knob.

    ``kind`` is documentation (``bool``, ``tristate``, ``int``,
    ``float``, ``str``, ``path``): the accessor called at the read
    site determines the actual parsing.  ``default`` is the
    human-readable default shown by ``repro knobs`` — dynamic defaults
    ("follows REPRO_TRACE_SPILL") are described, not computed.
    """

    name: str
    kind: str
    default: str
    doc: str


#: name -> declaration, in definition order (``knob_rows`` sorts).
KNOBS: Dict[str, Knob] = {}


def _declare(name: str, kind: str, default: str, doc: str) -> str:
    KNOBS[name] = Knob(name, kind, default, doc)
    return name


# -- sweep engine ------------------------------------------------------
_declare(
    "REPRO_JOBS", "int", "1",
    "parallel workers for sweep design points (0 or negative = all cores)",
)
_declare(
    "REPRO_RETRIES", "int", "2",
    "extra per-point attempts after a failure, with exponential backoff",
)
_declare(
    "REPRO_BACKOFF", "float", "0.05",
    "base backoff seconds between per-point retries",
)
_declare(
    "REPRO_POINT_TIMEOUT", "float", "none",
    "per-point deadline in parallel mode, seconds (<=0 = no deadline)",
)
_declare(
    "REPRO_MAX_FAILURES", "int", "0",
    "sweep-wide budget of permanently failed points (0 = fail fast)",
)
# -- durable job layer -------------------------------------------------
_declare(
    "REPRO_LEASE_TTL", "float", "60",
    "seconds an unrenewed job lease stays live before the job becomes "
    "adoptable (same-host dead owners are adoptable immediately)",
)
_declare(
    "REPRO_HEARTBEAT", "float", "5",
    "minimum seconds between job-lease heartbeat renewals",
)
_declare(
    "REPRO_MAX_JOBS", "int", "0",
    "max concurrently leased (running) jobs the scheduler allows before "
    "queueing new submissions (0 = unlimited)",
)
# -- result cache ------------------------------------------------------
_declare(
    "REPRO_SIMCACHE", "bool", "off",
    "persist simulation results under the cache directory",
)
_declare(
    "REPRO_SIMCACHE_DIR", "path", ".simcache",
    "root directory for the persistent caches, journals and quarantine",
)
# -- trace engine ------------------------------------------------------
_declare(
    "REPRO_TRACE", "tristate", "per-command",
    "capture-once/replay-many trace engine (sweeps default on, single "
    "simulations off)",
)
_declare(
    "REPRO_TRACE_SPILL", "bool", "off",
    "spill captured traces to disk as .rtz containers",
)
_declare(
    "REPRO_TRACE_DIR", "path", "<simcache>/traces",
    "directory for spilled traces and compiled passes",
)
_declare(
    "REPRO_TRACE_VERIFY", "bool", "off",
    "run the static verifier on every spill-loaded trace before replay",
)
_declare(
    "REPRO_TRACE_LOAD_LOG", "path", "off",
    "append one '<pid> <source> <key>' line per cross-process trace load",
)
_declare(
    "REPRO_PASS_CACHE", "tristate", "follows REPRO_TRACE_SPILL",
    "persist compiled shared/point passes (.rpp/.rvp) next to traces",
)
_declare(
    "REPRO_REPLAY_ENGINE", "str", "vec",
    "shared-pass engine: 'vec' (NumPy columns) or 'python' (reference "
    "oracle, hex-identical)",
)
# -- testing / benchmarks ----------------------------------------------
_declare(
    "REPRO_FAULTS", "path", "off",
    "JSON fault-injection schedule for the resilience test harness",
)
_declare(
    "REPRO_BENCH_SWEEP_LAYERS", "int", "20",
    "layer count for the self-performance benchmarks (CI smoke uses 6)",
)


def get_raw(name: str) -> str:
    """Stripped raw value of a *declared* knob ("" when unset).

    Raises :class:`KeyError` for an undeclared name — the runtime
    counterpart of the ``api/knob-undeclared`` static rule.
    """
    if name not in KNOBS:
        raise KeyError(
            f"undeclared environment knob {name!r}: declare it in "
            "repro.core.knobs before reading it"
        )
    return os.environ.get(name, "").strip()


def get_str(name: str, default: str = "") -> str:
    """String knob; empty/unset falls back to *default*."""
    return get_raw(name) or default


def get_bool(name: str) -> bool:
    """Boolean knob: true iff the value is ``1/true/yes/on``."""
    return get_raw(name).lower() in _TRUE


def get_tristate(name: str) -> Optional[bool]:
    """Tri-state knob: ``True``/``False`` when explicitly set either
    way, ``None`` when unset or unrecognized (caller picks the
    dynamic default)."""
    val = get_raw(name).lower()
    if val in _TRUE:
        return True
    if val in _FALSE:
        return False
    return None


def get_int(name: str, default: int) -> int:
    """Integer knob; empty or unparseable values fall back to *default*."""
    raw = get_raw(name)
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


def get_float(name: str, default: float) -> float:
    """Float knob; empty or unparseable values fall back to *default*."""
    raw = get_raw(name)
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


def knob_rows() -> List[Dict]:
    """Rows for ``repro knobs`` (sorted by name; current value included)."""
    return [
        {
            "knob": k.name,
            "type": k.kind,
            "default": k.default,
            "value": os.environ.get(k.name, ""),
            "doc": k.doc,
        }
        for _, k in sorted(KNOBS.items())
    ]
