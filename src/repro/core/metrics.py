"""Derived metrics shared by benches and examples."""

from __future__ import annotations

from typing import Dict

from ..machine.simulator import SimStats

__all__ = ["summarize_stats", "speedup", "geomean"]


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Baseline-relative speedup (>1 means faster than baseline)."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / cycles


def geomean(values) -> float:
    """Geometric mean (the right average for speedups)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    prod = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("geomean requires positive values")
        prod *= v
    return prod ** (1.0 / len(vals))


def summarize_stats(stats: SimStats, freq_ghz: float = 2.0) -> Dict[str, float]:
    """Flatten a :class:`SimStats` into the fields reports care about."""
    return {
        "cycles": stats.cycles,
        "time_ms": stats.cycles / (freq_ghz * 1e6),
        "gflops": stats.gflops_per_sec(freq_ghz),
        "l2_miss_rate": stats.l2_miss_rate,
        "l1_miss_rate": stats.l1_miss_rate,
        "avg_vlen_bits": stats.avg_vlen_bits,
        "vec_instrs": stats.vec_instrs,
        "dram_fills": stats.dram_fills,
    }
