"""Plain-text table/series formatting for benches and examples.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep the output uniform and readable
without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_kv", "format_table", "format_series", "normalize"]


def format_kv(title: str, pairs: Dict) -> str:
    """Render a dict as an aligned ``key: value`` block with a title.

    Used by report headers (e.g. ``repro analyze``) where a table would
    waste width on a single row.  Floats get the same 4-significant-digit
    treatment as :func:`format_table`.
    """
    lines = [title] if title else []
    width = max((len(str(k)) for k in pairs), default=0)
    for k, v in pairs.items():
        if isinstance(v, float):
            v = f"{v:.4g}"
        lines.append(f"  {str(k):<{width}} : {v}")
    return "\n".join(lines)


def format_table(rows: Sequence[Dict], columns: Sequence[str] = None, title: str = "") -> str:
    """Render dict rows as an aligned text table.

    Floats are shown with 4 significant digits; column order follows
    *columns* (default: keys of the first row).
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v):
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    cells = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence, ys: Sequence[float], x_name: str = "x", y_name: str = "y"
) -> str:
    """Render one figure series as aligned ``x y`` pairs."""
    lines = [f"series: {name} ({x_name} -> {y_name})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {str(x):>10s}  {y:.4g}")
    return "\n".join(lines)


def normalize(values: Sequence[float], to_index: int = 0) -> List[float]:
    """Normalize a series to the value at *to_index* (paper-style
    relative performance)."""
    base = values[to_index]
    if base == 0:
        raise ValueError("cannot normalize to a zero baseline")
    return [v / base for v in values]
