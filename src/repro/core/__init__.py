"""Co-design study machinery — the paper's primary contribution.

Design-point sweeps over vector length / cache size / lanes
(:mod:`codesign`), roofline analysis (:mod:`roofline`, Table IV),
per-layer algorithm selection (:mod:`selection`, Section VII), and
plain-text reporting used by the benchmark harness.
"""

from .autotune import TuneResult, autotune_blocks, candidate_blockings
from .export import rows_to_csv, sweep_to_csv
from .codesign import (
    DesignPoint,
    SweepResult,
    run_design_point,
    sweep,
    sweep_cache_sizes,
    sweep_lanes,
    sweep_vector_lengths,
)
from .metrics import geomean, speedup, summarize_stats
from .parallel import resolve_jobs, simulate_points
from . import resilience, simcache, tracecache
from .resilience import (
    FailureBudget,
    Journal,
    PointFailure,
    RetryPolicy,
    SweepError,
    list_journals,
    list_quarantined,
)
from .multicore import (
    MulticoreResult,
    machine_per_core,
    scaling_curve,
    simulate_multicore,
)
from .reporting import format_series, format_table, normalize
from .roofline import RooflineRow, arithmetic_intensity, roofline_table, sustained_gflops
from .selection import (
    Choice,
    measured_choice,
    measured_choice_all,
    paper_rule,
    tuned_choice,
)

__all__ = [
    "TuneResult",
    "autotune_blocks",
    "candidate_blockings",
    "DesignPoint",
    "rows_to_csv",
    "sweep_to_csv",
    "SweepResult",
    "run_design_point",
    "sweep",
    "sweep_cache_sizes",
    "sweep_lanes",
    "sweep_vector_lengths",
    "geomean",
    "resolve_jobs",
    "simulate_points",
    "resilience",
    "simcache",
    "tracecache",
    "FailureBudget",
    "Journal",
    "PointFailure",
    "RetryPolicy",
    "SweepError",
    "list_journals",
    "list_quarantined",
    "MulticoreResult",
    "machine_per_core",
    "scaling_curve",
    "simulate_multicore",
    "speedup",
    "summarize_stats",
    "format_series",
    "format_table",
    "normalize",
    "RooflineRow",
    "arithmetic_intensity",
    "roofline_table",
    "sustained_gflops",
    "Choice",
    "measured_choice",
    "measured_choice_all",
    "tuned_choice",
    "paper_rule",
]
