"""Fault tolerance for long co-design sweeps.

A production sweep over the paper's VL × lanes × L2-size grids runs for
hours; this module makes that survivable.  Four cooperating pieces:

* **Sweep journal** (:class:`Journal`) — an append-only, checksummed
  JSONL file under ``.simcache/journal/`` recording each design point's
  :class:`~repro.machine.simulator.SimStats` as it completes.  An
  interrupted ``sweep(..., resume=True)`` (CLI ``repro sweep --resume``)
  reloads completed points and simulates only the remainder; because
  JSON float round-tripping is exact, the resumed result is bitwise
  identical to an uninterrupted run.

* **Retry policy** (:class:`RetryPolicy`) — bounded retries with
  exponential backoff and deterministic jitter, plus an optional
  per-point timeout used by the parallel supervisor to reclaim hung or
  dead workers.

* **Failure budget** (:class:`FailureBudget`, :class:`PointFailure`,
  :class:`SweepError`) — with ``max_failures > 0`` a design point that
  keeps failing degrades to a structured :class:`PointFailure` cell in
  the :class:`~repro.core.codesign.SweepResult` instead of killing the
  sweep; the default (0) preserves fail-fast semantics.

* **Cache quarantine** (:func:`quarantine`) — corrupt, truncated, or
  version-mismatched simcache entries and trace spills are moved to
  ``.simcache/quarantine/`` (with a ``.reason.json`` sidecar) and
  transparently recomputed; ``repro analyze`` surfaces leftovers via
  the ``cache/corrupt-entry`` and ``sweep/orphaned-journal`` rules.

:func:`atomic_replace` is the shared temp-file-plus-rename writer both
caches use, so an interrupt mid-write can never publish a partial
entry and never leaks the temp file (short of SIGKILL, which the next
``clear()`` sweeps up).

See docs/RESILIENCE.md for the journal format and the fault matrix.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..machine.simulator import SimStats
from ..testing import faults
from . import knobs

__all__ = [
    "JOURNAL_VERSION",
    "SEALED_VERSION",
    "FailureBudget",
    "Journal",
    "PointFailure",
    "RetryPolicy",
    "SweepError",
    "atomic_replace",
    "call_with_retries",
    "finish_seal",
    "journal_dir",
    "journal_path",
    "list_journals",
    "list_quarantined",
    "list_sealed",
    "load_sealed",
    "payload_digest",
    "quarantine",
    "quarantine_dir",
    "seal_journal",
    "sealed_path",
    "stats_from_payload",
    "stats_payload",
    "sweep_key",
]

#: Bump when the journal line format changes; older journals are then
#: quarantined and the sweep restarts from scratch.
JOURNAL_VERSION = 1

#: Bump when the sealed-record format changes; older sealed records are
#: then quarantined and the live journal (or a re-run) takes over.
SEALED_VERSION = 1

_ENV_RETRIES = "REPRO_RETRIES"
_ENV_TIMEOUT = "REPRO_POINT_TIMEOUT"
_ENV_BACKOFF = "REPRO_BACKOFF"
_ENV_MAX_FAILURES = "REPRO_MAX_FAILURES"


def _cache_dir() -> str:
    from .simcache import cache_dir  # deferred: simcache imports this module

    return cache_dir()


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------

def atomic_replace(path: str, write: Callable[[str], None], suffix: str = ".tmp") -> None:
    """Write *path* via ``write(tmp)`` + :meth:`pathlib.Path.replace`.

    Readers never observe a partial file, and the temp file is removed
    on any failure — including :class:`KeyboardInterrupt` mid-write,
    which used to leak partial ``.simcache/`` entries from interrupted
    sweeps.  *suffix* matters for writers that key off the extension
    (``numpy.savez`` appends ``.npz`` to anything else).
    """
    directory = Path(path).parent
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=suffix)
    os.close(fd)
    try:
        write(tmp)
        Path(tmp).replace(path)
    finally:
        with suppress(OSError):
            Path(tmp).unlink()  # no-op when the replace happened


# ----------------------------------------------------------------------
# SimStats (de)serialization with content digests
# ----------------------------------------------------------------------

def stats_payload(stats: SimStats) -> Dict:
    """JSON-ready payload for *stats* (exact float round-trip)."""
    return {
        "fields": {name: getattr(stats, name) for name in SimStats.FIELDS},
        "kernel_cycles": dict(stats.kernel_cycles),
    }


def stats_from_payload(payload: Dict) -> SimStats:
    """Rebuild a :class:`SimStats` from :func:`stats_payload` output."""
    fields = payload["fields"]
    stats = SimStats(**{name: float(fields[name]) for name in SimStats.FIELDS})
    stats.kernel_cycles = {
        str(k): float(v) for k, v in payload["kernel_cycles"].items()
    }
    return stats


def payload_digest(payload: Dict) -> str:
    """sha256 over the canonical JSON encoding of *payload*."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------

def quarantine_dir() -> str:
    """Directory corrupt cache files are moved to (created lazily)."""
    return str(Path(_cache_dir()) / "quarantine")


def quarantine(path: str, reason: str) -> Optional[str]:
    """Move *path* into the quarantine directory; returns the new path.

    A ``<name>.reason.json`` sidecar records why.  Best-effort: when
    the move itself fails the offending file is deleted instead, so a
    bad entry can never be served twice.  Returns ``None`` when there
    was nothing to move.
    """
    source = Path(path)
    if not source.exists():
        return None
    directory = Path(quarantine_dir())
    tag = hashlib.sha256(path.encode("utf-8")).hexdigest()[:8]
    dest = str(directory / f"{tag}-{source.name}")
    try:
        directory.mkdir(parents=True, exist_ok=True)
        source.replace(dest)
    except OSError:
        with suppress(OSError):
            source.unlink()
        return None
    sidecar = {"path": path, "reason": reason, "when": time.time()}

    def write(tmp: str) -> None:
        with Path(tmp).open("w", encoding="utf-8") as fh:
            json.dump(sidecar, fh, sort_keys=True)

    with suppress(OSError, TypeError, ValueError):
        atomic_replace(dest + ".reason.json", write)
    return dest


def list_quarantined() -> List[Dict]:
    """One dict per quarantined file (path, reason, when)."""
    directory = Path(quarantine_dir())
    try:
        entries = sorted(directory.iterdir())
    except OSError:
        return []
    out = []
    for entry in entries:
        if entry.name.endswith(".reason.json"):
            continue
        info = {"file": str(entry), "reason": "", "when": 0.0}
        with suppress(OSError, ValueError):
            sidecar = entry.with_name(entry.name + ".reason.json")
            side = json.loads(sidecar.read_text(encoding="utf-8"))
            info["reason"] = str(side.get("reason", ""))
            info["when"] = float(side.get("when", 0.0))
        out.append(info)
    return out


# ----------------------------------------------------------------------
# Failures, retries, budgets
# ----------------------------------------------------------------------

class PointFailure:
    """Structured error record standing in for one design point's stats.

    Quacks enough like :class:`SimStats` (NaN cycles and rates, empty
    ``kernel_cycles``) for :class:`~repro.core.codesign.SweepResult`
    reporting to keep working on a partially failed sweep.
    """

    __slots__ = ("index", "error", "exc_type", "attempts")

    def __init__(self, index: int, error: str, exc_type: str = "Exception",
                 attempts: int = 1):
        self.index = index
        self.error = error
        self.exc_type = exc_type
        self.attempts = attempts

    ok = False
    cycles = float("nan")
    l2_miss_rate = float("nan")
    avg_vlen_elems = float("nan")

    @property
    def kernel_cycles(self) -> Dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return (
            f"PointFailure(index={self.index}, exc_type={self.exc_type!r}, "
            f"attempts={self.attempts}, error={self.error!r})"
        )


class SweepError(RuntimeError):
    """Raised when a sweep exceeds its failure budget.

    Completed points are already journaled (when journaling is on), so
    the sweep is resumable despite the raise.
    """

    def __init__(self, failures: List[PointFailure]):
        self.failures = list(failures)
        detail = "; ".join(
            f"#{f.index}: {f.exc_type}: {f.error}" for f in self.failures[:4]
        )
        more = "" if len(self.failures) <= 4 else f" (+{len(self.failures) - 4} more)"
        super().__init__(
            f"{len(self.failures)} design point(s) failed permanently: "
            f"{detail}{more}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-point supervision knobs for :func:`repro.core.codesign.sweep`.

    ``max_retries`` extra attempts follow a failed one, separated by
    ``backoff_s * factor**attempt`` (capped at ``max_backoff_s``) plus
    deterministic jitter.  ``timeout_s`` is the per-task deadline the
    parallel supervisor enforces (``None`` = no deadline; dead workers
    are still detected by liveness, but a *hung* worker then blocks its
    point forever).  ``max_failures`` is the sweep-wide budget of
    points allowed to fail permanently: 0 (default) means fail fast.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    max_failures: int = 0

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults, overridden by ``REPRO_RETRIES`` / ``REPRO_BACKOFF``
        / ``REPRO_POINT_TIMEOUT`` / ``REPRO_MAX_FAILURES``."""
        timeout = knobs.get_float(_ENV_TIMEOUT, 0.0)
        return cls(
            max_retries=knobs.get_int(_ENV_RETRIES, 2),
            backoff_s=knobs.get_float(_ENV_BACKOFF, 0.05),
            timeout_s=timeout if timeout > 0 else None,
            max_failures=knobs.get_int(_ENV_MAX_FAILURES, 0),
        )

    def delay(self, attempt: int, seed: str) -> float:
        """Backoff before retry *attempt* (1-based), jittered.

        The jitter is a deterministic function of ``(seed, attempt)``
        so sweeps — and their tests — are reproducible, while distinct
        points still desynchronize instead of retrying in lockstep.
        """
        base = min(self.backoff_s * self.factor ** (attempt - 1), self.max_backoff_s)
        h = hashlib.sha256(f"{seed}:{attempt}".encode("utf-8")).digest()
        frac = int.from_bytes(h[:4], "big") / 2**32  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * frac - 1.0))


def call_with_retries(fn: Callable[[], SimStats], retry: RetryPolicy, seed: str):
    """Run *fn*, retrying :class:`Exception` per *retry*; re-raises the
    last error once the budget is exhausted.  Returns ``(result,
    attempts)``.  ``KeyboardInterrupt``/``SystemExit`` never retry."""
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), attempt
        except Exception:
            if attempt > retry.max_retries:
                raise
            time.sleep(retry.delay(attempt, seed))


class FailureBudget:
    """Counts permanent point failures against ``max_failures``.

    :meth:`record` re-raises the point's original exception in
    fail-fast mode (budget 0, preserving historical sweep semantics)
    and raises :class:`SweepError` once a positive budget overflows.
    """

    def __init__(self, max_failures: int = 0):
        self.max_failures = max_failures
        self.failures: List[PointFailure] = []

    def record(self, failure: PointFailure, exc: Optional[BaseException] = None) -> None:
        self.failures.append(failure)
        if len(self.failures) > self.max_failures:
            if self.max_failures == 0 and exc is not None:
                raise exc
            raise SweepError(self.failures)


# ----------------------------------------------------------------------
# Sweep journal
# ----------------------------------------------------------------------

def journal_dir() -> str:
    """Directory holding sweep journals (created lazily)."""
    return str(Path(_cache_dir()) / "journal")


def journal_path(key: str) -> str:
    """Live (JSONL) journal file for sweep *key*."""
    return str(Path(journal_dir()) / (key[:32] + ".jsonl"))


def sealed_path(key: str) -> str:
    """Sealed (compacted) results record for sweep *key*."""
    return str(Path(journal_dir()) / (key[:32] + ".sealed.json"))


def sweep_key(net, axis_name, values, machines, policy, n_layers) -> str:
    """Content hash identifying one sweep's full input grid.

    Same recipe as :func:`repro.core.simcache.cache_key`, extended over
    the whole axis, so a journal can never be replayed against a
    different grid, network, policy, or timing-model version.
    """
    from .simcache import MODEL_VERSION, _canon  # deferred (import cycle)

    payload = {
        "journal_version": JOURNAL_VERSION,
        "model_version": MODEL_VERSION,
        "net": {
            "name": net.name,
            "input_shape": list(net.input_shape),
            "layers": [repr(layer) for layer in net.layers],
        },
        "axis_name": axis_name,
        "values": [repr(v) for v in values],
        "machines": [_canon(m) for m in machines],
        "policy": _canon(policy),
        "n_layers": n_layers,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class Journal:
    """Append-only per-sweep checkpoint file (JSONL, checksummed lines).

    Line kinds: one ``header`` (sweep identity), any number of
    ``point`` (completed design point with its exact stats payload) and
    ``failure`` records, and a final ``done`` marker.  A journal
    without ``done`` is an *orphan*: either a sweep in flight or an
    interrupted one awaiting ``--resume`` (the
    ``sweep/orphaned-journal`` analysis rule surfaces old ones).

    Corrupt, truncated, or checksum-mismatched lines are skipped — the
    affected point simply recomputes — and a header that does not match
    the requesting sweep quarantines the stale file and starts fresh.
    """

    def __init__(self, path: str, key: str, n_points: int):
        self.path = path
        self.key = key
        self.n_points = n_points
        self.completed: Dict[int, Tuple[SimStats, str]] = {}
        self.failed: Dict[int, Dict] = {}
        self.done = False
        self._fh = None

    # -- reading -------------------------------------------------------
    @classmethod
    def _read_records(cls, path: str) -> List[Dict]:
        records = []
        try:
            with Path(path).open(encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    with suppress(ValueError):
                        rec = json.loads(line)
                        if isinstance(rec, dict):
                            records.append(rec)
        except OSError:
            return []
        return records

    def _absorb(self, records: List[Dict]) -> None:
        for rec in records:
            kind = rec.get("kind")
            if kind == "point":
                with suppress(KeyError, TypeError, ValueError):
                    idx = int(rec["index"])
                    payload = rec["stats"]
                    if rec.get("sha256") != payload_digest(payload):
                        continue  # damaged line: recompute that point
                    if 0 <= idx < self.n_points:
                        self.completed[idx] = (
                            stats_from_payload(payload),
                            str(rec.get("source", "direct")),
                        )
                        self.failed.pop(idx, None)
            elif kind == "failure":
                with suppress(KeyError, TypeError, ValueError):
                    idx = int(rec["index"])
                    if 0 <= idx < self.n_points and idx not in self.completed:
                        self.failed[idx] = rec
            elif kind == "done":
                self.done = True

    @classmethod
    def open(cls, key: str, n_points: int, meta: Optional[Dict] = None) -> "Journal":
        """Open (resuming) or create the journal for *key*.

        Reads any prior run's records first, then reopens the file for
        appending — an interrupted sweep's completed points survive.
        """
        path = journal_path(key)
        journal = cls(path, key, n_points)
        records = cls._read_records(path)
        header = next((r for r in records if r.get("kind") == "header"), None)
        fresh = True
        if header is not None:
            if (
                header.get("sweep_key") == key
                and header.get("journal_version") == JOURNAL_VERSION
                and header.get("n_points") == n_points
            ):
                journal._absorb(records)
                fresh = False
            else:
                quarantine(path, "journal header mismatch (different sweep?)")
        Path(journal_dir()).mkdir(parents=True, exist_ok=True)
        # Append mode is the journal's whole point: completed points
        # accumulate across interrupted runs (fsync'd per line), so
        # this is the one sanctioned non-atomic durable write.
        journal._fh = Path(path).open("a", encoding="utf-8")  # reprolint: ignore[io/bare-write]
        if fresh:
            journal._append(
                {
                    "kind": "header",
                    "journal_version": JOURNAL_VERSION,
                    "sweep_key": key,
                    "n_points": n_points,
                    **(meta or {}),
                }
            )
        return journal

    @classmethod
    def status(cls, key: str, n_points: int) -> "Journal":
        """Read-only view of the journal for *key* (``--dry-run``);
        never creates or modifies the file."""
        path = journal_path(key)
        journal = cls(path, key, n_points)
        records = cls._read_records(path)
        header = next((r for r in records if r.get("kind") == "header"), None)
        if (
            header is not None
            and header.get("sweep_key") == key
            and header.get("journal_version") == JOURNAL_VERSION
            and header.get("n_points") == n_points
        ):
            journal._absorb(records)
        return journal

    # -- writing -------------------------------------------------------
    def _append(self, record: Dict) -> None:
        if self._fh is None:
            return
        with suppress(OSError, ValueError):
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())  # survive SIGKILL mid-sweep

    def record_point(self, index: int, stats: SimStats, source: str) -> None:
        """Checkpoint one completed design point."""
        payload = stats_payload(stats)
        self._append(
            {
                "kind": "point",
                "index": index,
                "source": source,
                "stats": payload,
                "sha256": payload_digest(payload),
            }
        )
        self.completed[index] = (stats, source)
        self.failed.pop(index, None)

    def record_failure(self, failure: PointFailure) -> None:
        """Checkpoint a permanent point failure (retried on resume)."""
        rec = {
            "kind": "failure",
            "index": failure.index,
            "error": failure.error,
            "exc_type": failure.exc_type,
            "attempts": failure.attempts,
        }
        self._append(rec)
        self.failed[failure.index] = rec

    def mark_done(self) -> None:
        self._append({"kind": "done", "n_points": self.n_points})
        self.done = True

    def close(self) -> None:
        if self._fh is not None:
            with suppress(OSError):
                self._fh.close()
            self._fh = None

    def pending(self) -> List[int]:
        """Indices still to simulate (failures are retried)."""
        return [i for i in range(self.n_points) if i not in self.completed]


# ----------------------------------------------------------------------
# Journal lifecycle: sealing (compaction) and sealed-record loading
# ----------------------------------------------------------------------

def _results_chain(points: List[Dict]) -> str:
    """Rolling sha256 chain over the per-point payload digests.

    Each link hashes the previous link plus the next point's digest, so
    the final value commits to every point *and* their order — a sealed
    record cannot be truncated, reordered, or spliced undetected.
    """
    chain = ""
    for payload in points:
        blob = (chain + payload_digest(payload)).encode("utf-8")
        chain = hashlib.sha256(blob).hexdigest()
    return chain


def load_sealed(key: str, n_points: Optional[int] = None) -> Optional[Dict]:
    """Verified sealed-record payload for sweep *key*, or ``None``.

    Verification is total: document digest, sealed/journal versions,
    sweep key, point count (when the caller knows it), and the replayed
    digest chain must all match.  Any mismatch quarantines the file —
    PR-5 semantics, a bad record is never served twice — and returns
    ``None`` so the caller falls back to the live journal or a re-run.
    """
    path = sealed_path(key)
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return None
    except ValueError:
        quarantine(path, "sealed record is not valid JSON")
        return None
    try:
        payload = doc["payload"]
        ok = (
            doc.get("sha256") == payload_digest(payload)
            and payload.get("sealed_version") == SEALED_VERSION
            and payload.get("journal_version") == JOURNAL_VERSION
            and payload.get("sweep_key") == key
            and (n_points is None or payload.get("n_points") == n_points)
            and len(payload["points"]) == payload["n_points"]
            and len(payload["sources"]) == payload["n_points"]
            and payload.get("chain") == _results_chain(payload["points"])
        )
    except (KeyError, TypeError, ValueError):
        ok = False
    if not ok:
        quarantine(path, "sealed record failed its integrity check")
        return None
    return payload


def _sealed_matches_journal(sealed: Dict, journal: "Journal") -> bool:
    """True when *sealed* round-trips to the journal's replayed state."""
    if len(journal.completed) != sealed.get("n_points"):
        return False
    for i in range(sealed["n_points"]):
        stats, _source = journal.completed[i]
        if sealed["points"][i] != stats_payload(stats):
            return False
    return True


def finish_seal(key: str, n_points: int) -> bool:
    """Complete an interrupted compaction: verify, then drop the journal.

    Re-verifies the sealed record against the live journal's replayed
    state and unlinks the journal only on an exact match (the write →
    verify → unlink protocol's last two steps, re-runnable any number
    of times).  Returns True when no live journal remains afterwards.
    """
    live = Path(journal_path(key))
    if not live.exists():
        return True
    sealed = load_sealed(key, n_points)
    if sealed is None:
        return False
    journal = Journal.status(key, n_points)
    if not _sealed_matches_journal(sealed, journal):
        # The journal moved past the sealed snapshot (or the record is
        # subtly wrong): keep both, never destroy the source of truth.
        return False
    with suppress(OSError):
        live.unlink()
    return True


def seal_journal(key: str, n_points: int, meta: Optional[Dict] = None) -> Optional[Dict]:
    """Compact sweep *key*'s finished journal into one sealed record.

    The sealed record is a single atomic JSON document holding every
    point's exact stats payload (in index order), its provenance, a
    digest chain over the points, and a whole-document sha256.  The
    write → verify → unlink protocol makes compaction crash-safe:

    1. write the sealed record via :func:`atomic_replace`;
    2. re-load it from disk and compare against the journal's replayed
       state (bitwise payload equality);
    3. only then unlink the live journal.

    A kill between (1) and (3) — the ``journal.seal`` fault site —
    leaves a *recoverable pair*: both files exist, the sealed record is
    self-verifying, and the next resume (or ``repro jobs gc``) finishes
    the protocol.  Returns the sealed payload, or ``None`` when the
    journal is not complete (failures or pending points cannot seal).
    """
    existing = load_sealed(key, n_points)
    if existing is not None:
        finish_seal(key, n_points)
        return existing
    journal = Journal.status(key, n_points)
    if len(journal.completed) != n_points:
        return None
    points = [stats_payload(journal.completed[i][0]) for i in range(n_points)]
    sources = [journal.completed[i][1] for i in range(n_points)]
    payload = {
        "sealed_version": SEALED_VERSION,
        "journal_version": JOURNAL_VERSION,
        "sweep_key": key,
        "n_points": n_points,
        "points": points,
        "sources": sources,
        "chain": _results_chain(points),
        "meta": dict(meta or {}),
    }
    doc = {"payload": payload, "sha256": payload_digest(payload)}
    path = sealed_path(key)

    def write(tmp: str) -> None:
        with Path(tmp).open("w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)

    atomic_replace(path, write)
    faults.maybe_fault("journal.seal", key=key, path=path)
    if not finish_seal(key, n_points):
        return None  # unreadable round-trip: keep the journal authoritative
    return payload


def list_sealed() -> List[Dict]:
    """Summaries of every sealed record on disk (gc / dry-run / CLI)."""
    directory = Path(journal_dir())
    try:
        entries = sorted(directory.iterdir())
    except OSError:
        return []
    out = []
    for entry in entries:
        if not entry.name.endswith(".sealed.json"):
            continue
        info = {
            "path": str(entry),
            "sweep_key": "",
            "n_points": 0,
            "meta": {},
            "age_s": 0.0,
        }
        with suppress(OSError):
            info["age_s"] = time.time() - entry.stat().st_mtime
        with suppress(OSError, KeyError, TypeError, ValueError):
            doc = json.loads(entry.read_text(encoding="utf-8"))
            payload = doc["payload"]
            info["sweep_key"] = str(payload.get("sweep_key", ""))
            info["n_points"] = int(payload.get("n_points", 0))
            info["meta"] = dict(payload.get("meta") or {})
        out.append(info)
    return out


def list_journals() -> List[Dict]:
    """Summaries of every journal on disk (dry-run / analysis rules)."""
    directory = Path(journal_dir())
    try:
        entries = sorted(directory.iterdir())
    except OSError:
        return []
    out = []
    for entry in entries:
        if not entry.name.endswith(".jsonl"):
            continue
        path = str(entry)
        records = Journal._read_records(path)
        header = next((r for r in records if r.get("kind") == "header"), None)
        n_points = int(header.get("n_points", 0)) if header else 0
        done = any(r.get("kind") == "done" for r in records)
        n_ok = len({r.get("index") for r in records if r.get("kind") == "point"})
        n_failed = len(
            {r.get("index") for r in records if r.get("kind") == "failure"}
        )
        age = 0.0
        with suppress(OSError):
            age = time.time() - entry.stat().st_mtime
        out.append(
            {
                "path": path,
                "sweep_key": str(header.get("sweep_key", "")) if header else "",
                "n_points": n_points,
                "n_ok": n_ok,
                "n_failed": n_failed,
                "done": done,
                "age_s": age,
            }
        )
    return out
