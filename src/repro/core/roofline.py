"""Roofline analysis of convolutional layers (paper Table IV).

Computes each layer's arithmetic intensity with the paper's formula
(Section VI-C(a)) and its sustained fraction of peak by simulating the
optimized GEMM on the A64FX model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..kernels import trace_gemm_3loop, trace_gemm_6loop
from ..machine.config import MachineConfig, a64fx
from ..machine.simulator import TraceSimulator
from ..workloads.layer_specs import TABLE4_LAYERS, Table4Row

__all__ = ["RooflineRow", "arithmetic_intensity", "roofline_table"]


@dataclass(frozen=True)
class RooflineRow:
    """One output row: layer id, dims, AI, simulated sustained %peak,
    and the paper's reported numbers for comparison."""

    layer: str
    M: int
    N: int
    K: int
    ai: float
    pct_peak: float
    ai_paper: float
    pct_peak_paper: float


def arithmetic_intensity(M: int, N: int, K: int) -> float:
    """``AI = 2 M N K / (4 (M N + K N + M K))`` (Section VI-C(a))."""
    return (2.0 * M * N * K) / (4.0 * (M * N + K * N + M * K))


def sustained_gflops(
    M: int, N: int, K: int, machine: MachineConfig, gemm: str = "6loop"
) -> float:
    """Simulated sustained GFLOP/s of one GEMM on *machine*."""
    sim = TraceSimulator(machine)
    a = sim.alloc("A", M * K * 4)
    b = sim.alloc("B", K * N * 4)
    c = sim.alloc("C", M * N * 4)
    tracer = trace_gemm_6loop if gemm == "6loop" else trace_gemm_3loop
    tracer(sim, M, N, K, a.base, b.base, c.base)
    return sim.stats.gflops_per_sec(machine.core.freq_ghz)


def roofline_table(
    machine: Optional[MachineConfig] = None,
    rows: Sequence[Table4Row] = TABLE4_LAYERS,
    gemm: str = "6loop",
) -> List[RooflineRow]:
    """Reproduce Table IV: AI and sustained %peak per discrete layer."""
    machine = machine or a64fx()
    out: List[RooflineRow] = []
    for r in rows:
        gf = sustained_gflops(r.M, r.N, r.K, machine, gemm)
        out.append(
            RooflineRow(
                layer=r.layer,
                M=r.M,
                N=r.N,
                K=r.K,
                ai=arithmetic_intensity(r.M, r.N, r.K),
                pct_peak=100.0 * gf / machine.peak_gflops,
                ai_paper=r.ai_paper,
                pct_peak_paper=r.pct_peak_paper,
            )
        )
    return out
