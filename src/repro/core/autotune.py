"""Block-size auto-tuning for the 6-loop GEMM.

Table II of the paper is a hand-run grid search over
``blockM x blockN x blockK``; this module automates it: enumerate
candidate blockings (filtered by a cache-footprint feasibility rule),
simulate each on the target machine, and return the ranking.  A
compiler or library (BLIS's own analytical model, ATLAS-style
empirical search) would embed exactly this loop.

With ``prune=K`` the tuner is *model-guided*: every candidate is first
ranked by the static cost model (``analysis.predict`` — reuse-distance
miss curves composed with the simulator's pricing, ~400x cheaper than
a simulation) and only the top-``K`` survivors are simulated.  Pruned
candidates keep their predicted cycle count and are marked
``source="pruned-by-model"`` so provenance is never lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..kernels import trace_gemm_6loop
from ..kernels.gemm_6loop import BlockSizes
from ..machine.config import MachineConfig
from ..machine.simulator import TraceSimulator

__all__ = ["TuneResult", "candidate_blockings", "autotune_blocks"]


@dataclass(frozen=True)
class TuneResult:
    """Ranking entry for one blocking candidate.

    ``cycles`` is simulated for ``source == "simulated"`` entries and
    the static model's prediction for ``source == "pruned-by-model"``
    ones; ``predicted_cycles`` carries the model's estimate whenever
    the model ran (both sources under ``prune=``).
    """

    blocks: BlockSizes
    cycles: float
    feasible: bool
    predicted_cycles: Optional[float] = None
    source: str = "simulated"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.blocks.m}x{self.blocks.n}x{self.blocks.k}: {self.cycles:.4g}"


def candidate_blockings(
    machine: MachineConfig,
    ms: Sequence[int] = (16, 32, 64, 128),
    ns: Sequence[int] = (256, 512, 1024),
    ks: Sequence[int] = (64, 128, 256),
    unroll: int = 16,
) -> List[BlockSizes]:
    """Enumerate blockings whose packed working set fits the cache that
    feeds the VPU (the BLIS sizing rule, adapted to the VPU integration:
    on RVV that is the L2, per Section VI-A)."""
    # The budget is the L2 for *both* integration styles: an L2-fed VPU
    # (RVV) streams panels straight from it, and on an L1-fed VPU (SVE)
    # the packed B panel still lives in L2 — the L1 only holds the
    # current jc slice, while the whole bn x bk panel must survive
    # across i1 iterations for the packing cost to amortize.
    budget = machine.l2.size_bytes
    out = []
    for m in ms:
        if m < unroll:
            continue
        for n in ns:
            for k in ks:
                b = BlockSizes(m, n, k)
                if b.footprint_bytes() <= budget:
                    out.append(b)
    return out


def _simulate(machine: MachineConfig, M: int, N: int, K: int,
              blocks: BlockSizes, unroll: int) -> float:
    sim = TraceSimulator(machine)
    a = sim.alloc("A", M * K * 4)
    b = sim.alloc("B", K * N * 4)
    c = sim.alloc("C", M * N * 4)
    trace_gemm_6loop(sim, M, N, K, a.base, b.base, c.base, blocks=blocks,
                     unroll=unroll)
    return sim.stats.cycles


def autotune_blocks(
    machine: MachineConfig,
    M: int,
    N: int,
    K: int,
    candidates: Optional[Sequence[BlockSizes]] = None,
    unroll: int = 16,
    prune: Optional[int] = None,
) -> Tuple[BlockSizes, List[TuneResult]]:
    """Grid-search block sizes for one GEMM shape on *machine*.

    Returns the best blocking and the full ranking (fastest first).
    ``prune=K`` switches to the model-guided search: all candidates are
    ranked by the static cost model and only the best ``K`` are
    simulated; the rest are returned after the survivors with their
    predicted cycles and ``source="pruned-by-model"``.
    """
    if M <= 0 or N <= 0 or K <= 0:
        raise ValueError("GEMM dimensions must be positive")
    if prune is not None and prune < 1:
        raise ValueError(f"prune must be a positive candidate count, got {prune}")
    cands = (
        list(candidates) if candidates is not None
        else candidate_blockings(machine, unroll=unroll)
    )
    if not cands:
        raise ValueError("no feasible blocking candidates for this machine")

    if prune is None:
        results = [
            TuneResult(blocks, _simulate(machine, M, N, K, blocks, unroll), True)
            for blocks in cands
        ]
        results.sort(key=lambda r: r.cycles)
        return results[0].blocks, results

    # Model-guided path: static ranking first, simulate the survivors.
    # Imported lazily: core must stay importable without the analysis
    # package's numpy machinery on the exhaustive path.
    from ..analysis.predict import gemm_summary, predict_cycles

    predicted = [
        (predict_cycles(gemm_summary(M, N, K, machine, blocks, unroll=unroll),
                        machine).cycles, i)
        for i, blocks in enumerate(cands)
    ]
    predicted.sort()
    survivors = predicted[:prune]
    pruned = predicted[prune:]

    results = [
        TuneResult(cands[i], _simulate(machine, M, N, K, cands[i], unroll),
                   True, predicted_cycles=pc, source="simulated")
        for pc, i in survivors
    ]
    results.sort(key=lambda r: r.cycles)
    results.extend(
        TuneResult(cands[i], pc, True, predicted_cycles=pc,
                   source="pruned-by-model")
        for pc, i in pruned
    )
    return results[0].blocks, results
