"""Block-size auto-tuning for the 6-loop GEMM.

Table II of the paper is a hand-run grid search over
``blockM x blockN x blockK``; this module automates it: enumerate
candidate blockings (filtered by a cache-footprint feasibility rule),
simulate each on the target machine, and return the ranking.  A
compiler or library (BLIS's own analytical model, ATLAS-style
empirical search) would embed exactly this loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..kernels import trace_gemm_6loop
from ..kernels.gemm_6loop import BlockSizes
from ..machine.config import MachineConfig
from ..machine.simulator import TraceSimulator

__all__ = ["TuneResult", "candidate_blockings", "autotune_blocks"]


@dataclass(frozen=True)
class TuneResult:
    """Ranking entry for one blocking candidate."""

    blocks: BlockSizes
    cycles: float
    feasible: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.blocks.m}x{self.blocks.n}x{self.blocks.k}: {self.cycles:.4g}"


def candidate_blockings(
    machine: MachineConfig,
    ms: Sequence[int] = (16, 32, 64, 128),
    ns: Sequence[int] = (256, 512, 1024),
    ks: Sequence[int] = (64, 128, 256),
    unroll: int = 16,
) -> List[BlockSizes]:
    """Enumerate blockings whose packed working set fits the cache that
    feeds the VPU (the BLIS sizing rule, adapted to the VPU integration:
    on RVV that is the L2, per Section VI-A)."""
    budget = (
        machine.l2.size_bytes
        if machine.vpu.mem_port == "L2"
        else machine.l2.size_bytes  # B panel targets L2 on L1-fed VPUs too
    )
    out = []
    for m in ms:
        if m < unroll:
            continue
        for n in ns:
            for k in ks:
                b = BlockSizes(m, n, k)
                if b.footprint_bytes() <= budget:
                    out.append(b)
    return out


def autotune_blocks(
    machine: MachineConfig,
    M: int,
    N: int,
    K: int,
    candidates: Optional[Sequence[BlockSizes]] = None,
    unroll: int = 16,
) -> Tuple[BlockSizes, List[TuneResult]]:
    """Grid-search block sizes for one GEMM shape on *machine*.

    Returns the best blocking and the full ranking (fastest first).
    """
    if M <= 0 or N <= 0 or K <= 0:
        raise ValueError("GEMM dimensions must be positive")
    cands = (
        list(candidates) if candidates is not None
        else candidate_blockings(machine, unroll=unroll)
    )
    if not cands:
        raise ValueError("no feasible blocking candidates for this machine")
    results: List[TuneResult] = []
    for blocks in cands:
        sim = TraceSimulator(machine)
        a = sim.alloc("A", M * K * 4)
        b = sim.alloc("B", K * N * 4)
        c = sim.alloc("C", M * N * 4)
        trace_gemm_6loop(sim, M, N, K, a.base, b.base, c.base, blocks=blocks,
                         unroll=unroll)
        results.append(TuneResult(blocks, sim.stats.cycles, True))
    results.sort(key=lambda r: r.cycles)
    return results[0].blocks, results
