"""CSV export for figure data.

The benchmark harness prints text tables; this utility writes the same
series as CSV so users can plot Figs. 6-10 with their tool of choice
(the repository deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from ..testing import faults
from .codesign import SweepResult
from .resilience import atomic_replace

__all__ = ["sweep_to_csv", "rows_to_csv"]


def rows_to_csv(rows: Sequence[dict], path: str) -> None:
    """Atomically write dict rows to *path* (header from the first
    row's keys); a crash mid-export never leaves a torn CSV."""
    if not rows:
        raise ValueError("no rows to export")

    def write(tmp: str) -> None:
        with Path(tmp).open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        faults.maybe_fault("export.write", path=tmp)

    atomic_replace(path, write)


def sweep_to_csv(result: SweepResult, path: str) -> None:
    """Write a :class:`SweepResult` (one figure series) as CSV.

    Columns: the swept axis, cycles, speedup, L2 miss rate, average
    consumed vector length — everything Figs. 6-10 and Table III plot.
    """
    rows_to_csv(result.as_rows(), path)
