"""CSV export for figure data.

The benchmark harness prints text tables; this utility writes the same
series as CSV so users can plot Figs. 6-10 with their tool of choice
(the repository deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
from typing import Sequence

from .codesign import SweepResult

__all__ = ["sweep_to_csv", "rows_to_csv"]


def rows_to_csv(rows: Sequence[dict], path: str) -> None:
    """Write dict rows to *path* (header from the first row's keys)."""
    if not rows:
        raise ValueError("no rows to export")
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def sweep_to_csv(result: SweepResult, path: str) -> None:
    """Write a :class:`SweepResult` (one figure series) as CSV.

    Columns: the swept axis, cycles, speedup, L2 miss rate, average
    consumed vector length — everything Figs. 6-10 and Table III plot.
    """
    rows_to_csv(result.as_rows(), path)
