"""Multi-core scaling extension.

The paper evaluates a single core ("on a single core of A64FX") and
names wider architectural exploration as future work.  This module adds
the simplest faithful multi-core model on top of the single-core
simulator: *data-parallel* convolution (the output-pixel dimension N is
split across cores, the standard OpenMP strategy in Darknet/NNPACK),
with two shared resources:

* the L2 is shared — each core sees ``l2_size / cores`` of capacity
  (a capacity-partitioning approximation of competitive sharing);
* DRAM bandwidth is shared — each core sees
  ``dram_bytes_per_cycle / cores``.

Per-core work is simulated with the ordinary trace machinery on the
reduced-N layer shapes; the slowest core bounds the layer.  This exposes
the co-design interaction the single-core study cannot: long vectors
push per-core bandwidth demand up, so they saturate at fewer cores.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from ..machine.config import CacheParams, MachineConfig
from ..machine.simulator import SimStats
from ..nets.layers import KernelPolicy
from ..nets.network import Network

__all__ = ["MulticoreResult", "machine_per_core", "simulate_multicore"]


@dataclass(frozen=True)
class MulticoreResult:
    """Outcome of a multi-core simulation."""

    cores: int
    cycles: float
    speedup_vs_1: float
    per_core: SimStats


def machine_per_core(machine: MachineConfig, cores: int) -> MachineConfig:
    """The machine as seen by one of *cores* concurrently-active cores."""
    if cores < 1:
        raise ValueError("core count must be >= 1")
    if cores == 1:
        return machine
    l2 = machine.l2
    share = max(l2.assoc * l2.line_bytes, (l2.size_bytes // cores))
    # Keep the geometry legal: round down to a multiple of assoc*line.
    share -= share % (l2.assoc * l2.line_bytes)
    return machine.with_(
        l2=CacheParams(share, l2.assoc, l2.line_bytes, l2.latency),
        dram_bytes_per_cycle=max(1, machine.dram_bytes_per_cycle // cores),
    )


def _split_network(net: Network, cores: int) -> Network:
    """A per-core view of the network: conv layers keep their channel
    dimensions but each core computes ~1/cores of the output pixels.

    Output pixels split along the image width, so every per-core layer
    stays a valid convolution; pooling and elementwise layers scale the
    same way.
    """
    c, h, w = net.input_shape
    # Downsampling towers need widths divisible by the network's total
    # stride (32 for YOLOv3/VGG16-class nets); round the shard down and
    # let the widest shard bound the barrier.
    align = 32
    w_share = max(align, (w // cores) // align * align)
    return Network(net.layers, (c, h, w_share), name=f"{net.name}/core")


def simulate_multicore(
    net: Network,
    machine: MachineConfig,
    policy: Optional[KernelPolicy] = None,
    cores: int = 4,
    n_layers: Optional[int] = None,
) -> MulticoreResult:
    """Simulate data-parallel inference on *cores* cores.

    Returns cycles for the slowest core (= the layer-barrier time) and
    the speedup versus the same machine with one core.
    """
    if policy is None:
        policy = KernelPolicy()
    single = net.simulate(machine, policy, n_layers=n_layers)
    if cores == 1:
        return MulticoreResult(1, single.cycles, 1.0, single)
    shard = _split_network(net, cores)
    per_core = shard.simulate(machine_per_core(machine, cores), policy, n_layers=n_layers)
    return MulticoreResult(
        cores=cores,
        cycles=per_core.cycles,
        speedup_vs_1=single.cycles / per_core.cycles,
        per_core=per_core,
    )


def scaling_curve(
    net: Network,
    machine: MachineConfig,
    policy: Optional[KernelPolicy] = None,
    core_counts=(1, 2, 4, 8),
    n_layers: Optional[int] = None,
) -> List[MulticoreResult]:
    """Speedup-vs-cores curve (used by the multicore extension bench)."""
    if policy is None:
        policy = KernelPolicy()
    return [
        simulate_multicore(net, machine, policy, cores, n_layers)
        for cores in core_counts
    ]


__all__.append("scaling_curve")

# dataclasses imported for users extending MulticoreResult.
_ = dataclasses
