"""Per-layer convolution-algorithm selection.

Section VII of the paper concludes that "convolutional layers require
careful algorithmic selection related to the kernel sizes and strides":
Winograd wins for 3x3 stride-1 layers (2.4x over the optimized
im2col+GEMM), loses for 3x3 stride-2 (1.4x slower), and does not apply
to other kernel sizes.  This module provides both the paper's static
rule and a measurement-driven selector that simulates both algorithms
and picks the cheaper — the co-design tool a compiler/runtime would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernels import ConvSpec, trace_gemm_6loop, trace_im2col
from ..kernels.gemm_6loop import BlockSizes
from ..kernels.winograd import trace_winograd_conv
from ..machine.config import MachineConfig
from ..machine.simulator import TraceSimulator

__all__ = [
    "Choice",
    "paper_rule",
    "measured_choice",
    "measured_choice_all",
    "tuned_choice",
]


@dataclass(frozen=True)
class Choice:
    """Outcome of algorithm selection for one layer.

    ``blocks`` is set by :func:`tuned_choice` only: the GEMM blocking
    the model-guided tuner settled on for the im2col side.
    """

    algorithm: str  # "winograd" or "im2col"
    reason: str
    gemm_cycles: Optional[float] = None
    winograd_cycles: Optional[float] = None
    blocks: Optional[BlockSizes] = None


def paper_rule(spec: ConvSpec) -> Choice:
    """The paper's final recommendation (Section VII-B): Winograd for
    3x3 stride-1 layers, im2col+GEMM otherwise."""
    if spec.ksize == 3 and spec.stride == 1:
        return Choice("winograd", "3x3 stride-1: Winograd 2.4x faster (Sec. VII-A)")
    if spec.ksize == 3 and spec.stride == 2:
        return Choice("im2col", "3x3 stride-2: Winograd 1.4x slower (Sec. VII-A)")
    return Choice("im2col", f"{spec.ksize}x{spec.ksize} kernel: Winograd n/a")


def _gemm_cycles(
    spec: ConvSpec, machine: MachineConfig, blocks: Optional[BlockSizes] = None
) -> float:
    sim = TraceSimulator(machine)
    a = sim.alloc("A", spec.M * spec.K * 4)
    b = sim.alloc("B", spec.K * spec.N * 4)
    c = sim.alloc("C", spec.M * spec.N * 4)
    src = sim.alloc("x", spec.in_channels * spec.in_h * spec.in_w * 4)
    if not (spec.ksize == 1 and spec.stride == 1 and spec.pad == 0):
        trace_im2col(sim, spec, src.base, b.base)
    trace_gemm_6loop(sim, spec.M, spec.N, spec.K, a.base, b.base, c.base,
                     blocks=blocks)
    return sim.stats.cycles


def _winograd_cycles(spec: ConvSpec, machine: MachineConfig) -> float:
    sim = TraceSimulator(machine)
    trace_winograd_conv(sim, spec)
    return sim.stats.cycles


def measured_choice(spec: ConvSpec, machine: MachineConfig) -> Choice:
    """Simulate both algorithms for *spec* on *machine*, pick the faster.

    Falls back to im2col+GEMM when Winograd does not apply (non-3x3 or
    stride > 2).
    """
    if spec.ksize != 3 or spec.stride not in (1, 2):
        return Choice("im2col", "winograd inapplicable")
    g = _gemm_cycles(spec, machine)
    w = _winograd_cycles(spec, machine)
    algo = "winograd" if w < g else "im2col"
    return Choice(
        algo,
        f"measured: winograd {w:.3g} vs im2col+gemm {g:.3g} cycles",
        gemm_cycles=g,
        winograd_cycles=w,
    )


def tuned_choice(
    spec: ConvSpec, machine: MachineConfig, prune: Optional[int] = 8
) -> Choice:
    """Algorithm selection with a model-guided blocking search.

    Like :func:`measured_choice`, but the im2col+GEMM side first tunes
    its block sizes with :func:`repro.core.autotune.autotune_blocks` —
    by default model-guided (``prune=8``: the static cost model ranks
    every feasible blocking and only the 8 most promising simulate;
    ``prune=None`` falls back to the exhaustive grid).  The winning
    blocking is reported in ``Choice.blocks``, so a compiler/runtime
    gets the algorithm *and* its tuned configuration from one call.
    """
    from .autotune import autotune_blocks

    best, _ranking = autotune_blocks(
        machine, spec.M, spec.N, spec.K, prune=prune
    )
    g = _gemm_cycles(spec, machine, blocks=best)
    if spec.ksize != 3 or spec.stride not in (1, 2):
        return Choice(
            "im2col",
            f"winograd inapplicable; tuned blocking "
            f"{best.m}x{best.n}x{best.k}",
            gemm_cycles=g,
            blocks=best,
        )
    w = _winograd_cycles(spec, machine)
    algo = "winograd" if w < g else "im2col"
    return Choice(
        algo,
        f"measured: winograd {w:.3g} vs tuned im2col+gemm {g:.3g} cycles "
        f"(blocking {best.m}x{best.n}x{best.k})",
        gemm_cycles=g,
        winograd_cycles=w,
        blocks=best,
    )


def measured_choice_all(spec: ConvSpec, machine: MachineConfig) -> dict:
    """Extension: simulate the full algorithm landscape of Section
    II-B(c) — im2col+GEMM, Winograd (3x3 only) and FFT — and return
    their cycle counts plus the winner.

    Completes the "no one-size-fits-all convolution implementation"
    study: the paper implements GEMM and Winograd; FFT (best for large
    kernels) is implemented here as the natural extension.
    """
    from ..kernels.fft_conv import trace_fft_conv

    cycles = {"im2col": _gemm_cycles(spec, machine)}
    if spec.ksize == 3 and spec.stride in (1, 2):
        cycles["winograd"] = _winograd_cycles(spec, machine)
    sim = TraceSimulator(machine)
    trace_fft_conv(sim, spec)
    cycles["fft"] = sim.stats.cycles
    winner = min(cycles, key=cycles.get)
    return {"cycles": cycles, "winner": winner}
