"""Registry for recorded kernel traces (capture-once / replay-many).

The macro-event stream a network's kernels emit is a pure function of
(layer structure, :class:`KernelPolicy`, layer limit / dedup settings)
plus the *VL-relevant* machine fields the kernels actually read: the ISA
name, the vector length, and the L1 line size (which sets burst and
unroll granularity in the GEMM micro-kernels).  Everything else — L2
geometry, lane count, latencies, prefetchers — only affects *pricing*,
not the event stream.  A one-axis co-design sweep along any of those
axes therefore re-emits the exact same trace at every design point.

This module keys traces by a content hash of exactly those inputs and
holds them in a small in-process registry, with two cross-process
tiers:

* an **on-disk spill** (compressed ``.rtz`` next to ``.simcache/``) so
  traces survive the process and can be committed as CI references, and
* a **shared-memory segment** per published trace
  (:func:`publish_shm`), so spawn-platform pool workers attach and
  decode the parent's capture once instead of re-reading the spill
  file from disk on every task.

The ``.rtz`` container (trace format v4) is a magic + JSON header +
per-column compressed blocks.  The address/size operand columns are
delta + zigzag + varint encoded before block compression (zlib, or
zstd when the ``zstandard`` package is importable) — trace addresses
are bump-allocated and overwhelmingly sequential, so deltas are tiny
and a multi-hundred-MB column set shrinks to a few MB.  Decoding
recomputes the sha256 content digest and refuses (→ quarantine, see
repro.core.resilience) on any mismatch.

Resolution of the ``use_trace`` tri-state (mirrors simcache):
explicit ``True``/``False`` wins; otherwise ``REPRO_TRACE`` ("0"/"off"
disable, "1"/"on" enable); otherwise the caller's *default* — ``True``
for multi-point sweeps, ``False`` for single simulations (capturing a
trace costs about a tenth of pricing it, so it only pays off when the
trace is replayed more than once).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.trace import TRACE_FORMAT_VERSION, RecordedTrace
from ..testing import faults
from .resilience import atomic_replace, quarantine
from .simcache import _canon, cache_dir

try:  # optional: the container may not ship zstandard
    import zstandard as _zstd  # type: ignore
except ImportError:  # pragma: no cover - environment-dependent
    _zstd = None

__all__ = [
    "trace_enabled",
    "spill_enabled",
    "verify_enabled",
    "spill_dir",
    "trace_key",
    "get",
    "put",
    "get_or_capture",
    "clear_registry",
    "encode_trace",
    "decode_trace",
    "save_compressed",
    "load_compressed",
    "read_header",
    "publish_shm",
    "release_shm",
    "load_counts",
    "reset_load_counts",
    "SPILL_SUFFIX",
]

_ENV_FLAG = "REPRO_TRACE"
_ENV_SPILL = "REPRO_TRACE_SPILL"
_ENV_DIR = "REPRO_TRACE_DIR"
_ENV_VERIFY = "REPRO_TRACE_VERIFY"
#: When set to a writable path, every cross-process trace load (shm
#: attach or spill read) appends one ``"<pid> <source> <key>"`` line —
#: the observability hook the single-load-per-worker test asserts on.
_ENV_LOAD_LOG = "REPRO_TRACE_LOAD_LOG"

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")

#: In-process registry: key -> RecordedTrace.  Bounded — a 20-layer
#: YOLOv3 trace is ~1.4M events (~60 MB columnar, more once decoded), so
#: only the most recently used few stay resident.
_REGISTRY: dict = {}
_REGISTRY_CAP = 4

#: Spill file suffix for the v4 compressed container.
SPILL_SUFFIX = ".rtz"
_MAGIC = b"RTRC"


def trace_enabled(flag: Optional[bool] = None, default: bool = False) -> bool:
    """Resolve the ``use_trace`` tri-state (see module docstring)."""
    if flag is not None:
        return flag
    env = os.environ.get(_ENV_FLAG, "").strip().lower()
    if env in _TRUE:
        return True
    if env in _FALSE:
        return False
    return default


def spill_enabled(flag: Optional[bool] = None) -> bool:
    """Whether traces spill to disk (``REPRO_TRACE_SPILL``; default off)."""
    if flag is not None:
        return flag
    return os.environ.get(_ENV_SPILL, "").strip().lower() in _TRUE


def spill_dir() -> str:
    """Directory for spilled traces (next to the simcache by default)."""
    return os.environ.get(_ENV_DIR, "").strip() or os.path.join(
        cache_dir(), "traces"
    )


def trace_key(net, machine, policy, n_layers, deduplicate: bool = True) -> str:
    """Content hash of everything the *event stream* depends on.

    Deliberately excludes L2 size/assoc/latency, lane count, DRAM
    parameters, prefetchers — kernels never read those, so traces are
    shared across such sweep axes.  Includes the trace format version so
    stale spill files are never reused after an encoding change.
    """
    payload = {
        "trace_format": TRACE_FORMAT_VERSION,
        "net": {
            "name": net.name,
            "input_shape": list(net.input_shape),
            "layers": [repr(layer) for layer in net.layers],
        },
        "policy": _canon(policy),
        "n_layers": n_layers,
        "deduplicate": deduplicate,
        "machine": {
            "isa_name": machine.isa_name,
            "vlen_bits": machine.vlen_bits,
            "l1_line_bytes": machine.l1.line_bytes,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _spill_path(key: str) -> str:
    return os.path.join(spill_dir(), key + SPILL_SUFFIX)


def verify_enabled() -> bool:
    """Whether spill-loaded traces are run through the static verifier.

    ``REPRO_TRACE_VERIFY=1`` guards against corrupted or hand-edited
    spill files poisoning a sweep: a trace that fails
    :func:`repro.analysis.verify_trace` is treated as a cache miss (and
    re-captured), never replayed.  Off by default — in-process traces
    are trusted, and the verifier costs a few ms per load.
    """
    return os.environ.get(_ENV_VERIFY, "").strip().lower() in _TRUE


# ----------------------------------------------------------------------
# v4 compressed container (.rtz)
# ----------------------------------------------------------------------
def _compress(blob: bytes) -> Tuple[str, bytes]:
    if _zstd is not None:
        return "zstd", _zstd.ZstdCompressor(level=19).compress(blob)
    return "zlib", zlib.compress(blob, 9)


def _decompress(codec: str, blob: bytes) -> bytes:
    if codec == "zlib":
        return zlib.decompress(blob)
    if codec == "zstd":
        if _zstd is None:
            raise ValueError(
                "trace block compressed with zstd but zstandard is not "
                "installed; re-capture or re-encode with zlib"
            )
        return _zstd.ZstdDecompressor().decompress(blob)
    raise ValueError(f"unknown trace block codec {codec!r}")


def _varint_encode(u: np.ndarray) -> bytes:
    """LEB128-style varint encoding of a uint64 array, vectorized.

    Each value becomes 1-10 bytes of 7-bit groups, LSB first, high bit
    set on every byte but the last.  Pure column arithmetic: byte
    counts come from threshold comparisons, output offsets from a
    cumulative sum, and the bytes themselves from at most ten masked
    scatter passes.
    """
    n = len(u)
    if n == 0:
        return b""
    nb = np.ones(n, np.int64)
    for k in range(1, 10):  # 7*9 = 63 bits: the widest uint64 shift
        nb += (u >= (np.uint64(1) << np.uint64(7 * k))).astype(np.int64)
    offs = np.zeros(n + 1, np.int64)
    np.cumsum(nb, out=offs[1:])
    out = np.zeros(int(offs[-1]), np.uint8)
    rem = u.copy()
    starts = offs[:-1]
    for j in range(int(nb.max())):
        mask = nb > j
        vals = (rem[mask] & np.uint64(0x7F)).astype(np.uint8)
        cont = (nb[mask] > j + 1).astype(np.uint8) << np.uint8(7)
        out[starts[mask] + j] = vals | cont
        rem >>= np.uint64(7)
    return out.tobytes()


def _varint_decode(buf: bytes, n: int) -> np.ndarray:
    """Inverse of :func:`_varint_encode`; returns *n* uint64 values."""
    if n == 0:
        if buf:
            raise ValueError("varint stream: trailing bytes")
        return np.zeros(0, np.uint64)
    b = np.frombuffer(buf, np.uint8)
    ends = np.flatnonzero((b & 0x80) == 0)  # terminator bytes
    if len(ends) != n or (len(b) and ends[-1] != len(b) - 1):
        raise ValueError("varint stream: value count mismatch")
    starts = np.empty(n, np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    nb = ends - starts + 1
    if int(nb.max()) > 10:
        raise ValueError("varint stream: value wider than 64 bits")
    payload = (b & np.uint8(0x7F)).astype(np.uint64)
    out = np.zeros(n, np.uint64)
    for j in range(int(nb.max())):
        mask = nb > j
        out[mask] |= payload[starts[mask] + j] << np.uint64(7 * j)
    return out


def _zigzag(v: np.ndarray) -> np.ndarray:
    """Map int64 to uint64 so small magnitudes stay small: 0,-1,1,-2…"""
    return ((v << 1) ^ (v >> 63)).view(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    x = (u >> np.uint64(1)).view(np.int64)
    return x ^ -((u & np.uint64(1)).view(np.int64))


def _delta_encode(col: np.ndarray) -> bytes:
    d = np.diff(col.astype(np.int64, copy=False), prepend=np.int64(0))
    return _varint_encode(_zigzag(d))


def _delta_decode(buf: bytes, n: int) -> np.ndarray:
    return np.cumsum(_unzigzag(_varint_decode(buf, n)), dtype=np.int64)


#: Per-column (filter, little-endian wire dtype).  The integer operand
#: columns i0..i3 carry addresses and sizes — monotone-ish, tiny
#: deltas — so they delta+zigzag+varint before block compression;
#: the rest compress raw.
_COLUMN_WIRE = {
    "op": ("raw", "<u1"),
    "w": ("raw", "<f8"),
    "kid": ("raw", "<u4"),
    "i0": ("delta", "<i8"),
    "i1": ("delta", "<i8"),
    "i2": ("delta", "<i8"),
    "i3": ("delta", "<i8"),
    "f0": ("raw", "<f8"),
}


def encode_trace(trace: RecordedTrace) -> bytes:
    """Serialize *trace* into the v4 ``.rtz`` container (bytes)."""
    cols = {name: getattr(trace, name) for name, _ in RecordedTrace._COLUMNS}
    n = trace.n_events
    blocks: List[bytes] = []
    col_meta = []
    for name, _ in RecordedTrace._COLUMNS:
        filt, wire = _COLUMN_WIRE[name]
        arr = np.ascontiguousarray(cols[name]).astype(wire, copy=False)
        raw = _delta_encode(arr) if filt == "delta" else arr.tobytes()
        codec, blob = _compress(raw)
        blocks.append(blob)
        col_meta.append(
            {"name": name, "filter": filt, "codec": codec, "nbytes": len(blob)}
        )
    header = json.dumps(
        {
            "key": trace.key,
            "isa_name": trace.isa_name,
            "vlen_bits": trace.vlen_bits,
            "l1_line_bytes": trace.l1_line_bytes,
            "format": TRACE_FORMAT_VERSION,
            "labels": list(trace.labels),
            "buffers": [list(b) for b in trace.buffers],
            "meta": trace.meta,
            "n_events": n,
            "columns": col_meta,
            "sha256": RecordedTrace._content_digest(
                tuple(cols[name] for name, _ in RecordedTrace._COLUMNS),
                trace.labels,
                trace.buffers,
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [_MAGIC, bytes([TRACE_FORMAT_VERSION]),
             len(header).to_bytes(4, "little"), header]
    parts.extend(blocks)
    return b"".join(parts)


def decode_trace(blob: bytes) -> RecordedTrace:
    """Inverse of :func:`encode_trace`; digest-verified.

    Raises :class:`ValueError` on a stale format, malformed container,
    or content-digest mismatch — callers treat any failure as a cache
    miss and quarantine the source file.
    """
    if blob[:4] != _MAGIC:
        raise ValueError("not an .rtz trace container (bad magic)")
    if blob[4] != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"trace format {blob[4]} != {TRACE_FORMAT_VERSION} "
            "(stale spill file)"
        )
    hlen = int.from_bytes(blob[5:9], "little")
    header = json.loads(blob[9:9 + hlen].decode("utf-8"))
    n = int(header["n_events"])
    pos = 9 + hlen
    cols = {}
    for meta in header["columns"]:
        name = meta["name"]
        filt, wire = _COLUMN_WIRE[name]
        if meta["filter"] != filt:
            raise ValueError(f"unexpected filter for column {name!r}")
        block = blob[pos:pos + int(meta["nbytes"])]
        if len(block) != int(meta["nbytes"]):
            raise ValueError("truncated trace container")
        pos += len(block)
        raw = _decompress(meta["codec"], block)
        if filt == "delta":
            arr = _delta_decode(raw, n)
        else:
            arr = np.frombuffer(raw, wire)
            if len(arr) != n:
                raise ValueError(f"column {name!r}: row count mismatch")
        dtype = dict(RecordedTrace._COLUMNS)[name]
        cols[name] = np.ascontiguousarray(arr).astype(dtype, copy=False)
    if pos != len(blob):
        raise ValueError("trailing bytes after trace columns")
    labels = [str(s) for s in header["labels"]]
    buffers = header.get("buffers", ())
    ordered = tuple(cols[name] for name, _ in RecordedTrace._COLUMNS)
    digest = RecordedTrace._content_digest(ordered, labels, buffers)
    if header.get("sha256") != digest:
        raise ValueError("trace content digest mismatch (corrupt container)")
    return RecordedTrace(
        header.get("key"),
        header["isa_name"],
        header["vlen_bits"],
        header["l1_line_bytes"],
        labels,
        *ordered,
        meta=header.get("meta"),
        buffers=buffers,
    )


def save_compressed(trace: RecordedTrace, path: str) -> None:
    """Write *trace* to *path* in the v4 ``.rtz`` container format."""
    blob = encode_trace(trace)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(blob)


def load_compressed(path: str) -> RecordedTrace:
    """Load a v4 ``.rtz`` trace; raises on corruption or stale format."""
    with open(path, "rb") as fh:
        return decode_trace(fh.read())


def read_header(path: str) -> dict:
    """Parse just the JSON header of an ``.rtz`` container.

    Cheap (no column decode, no digest check) — the inspection hook for
    ``repro trace-cache list`` and the CI smoke job's key-drift guard.
    The returned dict carries ``format``; compare it against
    :data:`~repro.machine.trace.TRACE_FORMAT_VERSION` for staleness.
    """
    with open(path, "rb") as fh:
        head = fh.read(9)
        if head[:4] != _MAGIC:
            raise ValueError("not an .rtz trace container (bad magic)")
        hlen = int.from_bytes(head[5:9], "little")
        return json.loads(fh.read(hlen).decode("utf-8"))


# ----------------------------------------------------------------------
# Cross-process load accounting
# ----------------------------------------------------------------------
_LOAD_COUNTS: Dict[str, int] = {"shm": 0, "spill": 0}


def load_counts() -> Dict[str, int]:
    """Cross-process trace loads this process has performed, by source."""
    return dict(_LOAD_COUNTS)


def reset_load_counts() -> None:
    for k in _LOAD_COUNTS:
        _LOAD_COUNTS[k] = 0


def _note_load(source: str, key: str) -> None:
    _LOAD_COUNTS[source] += 1
    path = os.environ.get(_ENV_LOAD_LOG, "").strip()
    if path:
        try:
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()} {source} {key}\n")
        except OSError:
            pass  # observability only; never fail a load over it


# ----------------------------------------------------------------------
# Shared-memory tier (parent publishes, pool workers attach)
# ----------------------------------------------------------------------
#: Shared-memory segments this process created, key -> SharedMemory.
#: The creator keeps the handle so :func:`release_shm` can unlink at
#: pool teardown; attachers close immediately after decoding.
_SHM_OWNED: dict = {}
_SHM_PREFIX = "rtc"


def _shm_name(key: str) -> str:
    return _SHM_PREFIX + key[:24]


def publish_shm(key: str, trace: Optional[RecordedTrace] = None) -> bool:
    """Publish *trace* (or the registry entry) as a shared-memory segment.

    Workers' :func:`get` attaches and decodes the segment once per
    worker lifetime instead of re-reading the spill file per task.
    Best-effort: returns ``False`` when shared memory is unavailable,
    ``True`` when the segment exists (fresh or already published).
    The creating process must call :func:`release_shm` when the pool
    is done, or the segment outlives it.
    """
    if key in _SHM_OWNED:
        return True
    trace = trace if trace is not None else _REGISTRY.get(key)
    if trace is None:
        return False
    try:
        from multiprocessing import shared_memory

        blob = encode_trace(trace)
        shm = shared_memory.SharedMemory(
            name=_shm_name(key), create=True, size=8 + len(blob)
        )
    except FileExistsError:
        return True  # already published (e.g. by an outer sweep)
    except Exception:
        return False
    try:
        shm.buf[:8] = len(blob).to_bytes(8, "little")
        shm.buf[8:8 + len(blob)] = blob
        _SHM_OWNED[key] = shm
        return True
    except Exception:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
        return False


def _shm_get(key: str) -> Optional[RecordedTrace]:
    """Attach + decode a published segment; None on any failure."""
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=_shm_name(key))
    except Exception:
        return None
    try:
        n = int.from_bytes(bytes(shm.buf[:8]), "little")
        return decode_trace(bytes(shm.buf[8:8 + n]))
    except Exception:
        return None
    finally:
        try:
            shm.close()
        except Exception:
            pass


def release_shm(key: Optional[str] = None) -> None:
    """Unlink shared-memory segments this process published.

    With *key* ``None`` every owned segment is released.  Idempotent
    and best-effort — safe to call from ``finally`` blocks.
    """
    keys = [key] if key is not None else list(_SHM_OWNED)
    for k in keys:
        shm = _SHM_OWNED.pop(k, None)
        if shm is None:
            continue
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def get(key: str, spill: Optional[bool] = None) -> Optional[RecordedTrace]:
    """Look *key* up in the registry, then shared memory, then disk."""
    trace = _REGISTRY.get(key)
    if trace is not None:
        # Refresh LRU position.
        _REGISTRY.pop(key, None)
        _REGISTRY[key] = trace
        return trace
    trace = _shm_get(key)
    if trace is not None:
        _note_load("shm", key)
        put(key, trace, spill=False)  # the parent already persists it
        return trace
    if spill_enabled(spill):
        path = _spill_path(key)
        try:
            trace = load_compressed(path)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Truncated container, bit-flipped columns, stale format,
            # digest mismatch: quarantine the spill and report a miss —
            # the caller re-captures (or simulates the point directly).
            quarantine(path, f"unreadable trace spill: {exc}")
            return None
        if verify_enabled():
            from ..analysis import verify_trace  # deferred import

            if verify_trace(trace):
                quarantine(path, "spilled trace failed static verification")
                return None  # corrupted spill: treat as a miss
        _note_load("spill", key)
        put(key, trace, spill=False)  # already on disk
        return trace
    return None


def put(key: str, trace: RecordedTrace, spill: Optional[bool] = None) -> None:
    """Register *trace* under *key*; optionally spill it to disk."""
    _REGISTRY.pop(key, None)
    _REGISTRY[key] = trace
    while len(_REGISTRY) > _REGISTRY_CAP:
        _REGISTRY.pop(next(iter(_REGISTRY)))
    if spill_enabled(spill):
        path = _spill_path(key)

        def write(tmp: str) -> None:
            save_compressed(trace, tmp)
            faults.maybe_fault("tracecache.write", key=key, path=tmp)

        try:
            atomic_replace(path, write, suffix=SPILL_SUFFIX)
        except OSError:
            return  # spilling is best-effort, like the simcache
        faults.maybe_fault("tracecache.spill", key=key, path=path)


def get_or_capture(
    net,
    machine,
    policy,
    n_layers,
    deduplicate: bool = True,
    spill: Optional[bool] = None,
) -> Tuple[RecordedTrace, bool]:
    """Return ``(trace, was_cached)`` for the given simulation inputs.

    On a registry/shm/spill miss the network is re-traced once with a
    :class:`~repro.machine.trace.TraceRecorder` and the result
    registered (and spilled, when enabled) for everyone else.
    """
    key = trace_key(net, machine, policy, n_layers, deduplicate)
    trace = get(key, spill=spill)
    if trace is not None:
        return trace, True
    trace = net.record_trace(
        machine, policy, n_layers=n_layers, deduplicate=deduplicate, key=key
    )
    put(key, trace, spill=spill)
    return trace, False


def clear_registry() -> None:
    """Drop all in-process traces (tests; does not touch spill files)."""
    _REGISTRY.clear()
