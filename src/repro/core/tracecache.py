"""Registry for recorded kernel traces (capture-once / replay-many).

The macro-event stream a network's kernels emit is a pure function of
(layer structure, :class:`KernelPolicy`, layer limit / dedup settings)
plus the *VL-relevant* machine fields the kernels actually read: the ISA
name, the vector length, and the L1 line size (which sets burst and
unroll granularity in the GEMM micro-kernels).  Everything else — L2
geometry, lane count, latencies, prefetchers — only affects *pricing*,
not the event stream.  A one-axis co-design sweep along any of those
axes therefore re-emits the exact same trace at every design point.

This module keys traces by a content hash of exactly those inputs and
holds them in a small in-process registry, with two cross-process
tiers:

* an **on-disk spill** (compressed ``.rtz`` next to ``.simcache/``) so
  traces survive the process and can be committed as CI references, and
* a **shared-memory segment** per published trace
  (:func:`publish_shm`), so spawn-platform pool workers attach and
  decode the parent's capture once instead of re-reading the spill
  file from disk on every task.

The ``.rtz`` container (trace format v4) is a magic + JSON header +
per-column compressed blocks.  The address/size operand columns are
delta + zigzag + varint encoded before block compression (zlib, or
zstd when the ``zstandard`` package is importable) — trace addresses
are bump-allocated and overwhelmingly sequential, so deltas are tiny
and a multi-hundred-MB column set shrinks to a few MB.  Decoding
recomputes the sha256 content digest and refuses (→ quarantine, see
repro.core.resilience) on any mismatch.

Resolution of the ``use_trace`` tri-state (mirrors simcache):
explicit ``True``/``False`` wins; otherwise ``REPRO_TRACE`` ("0"/"off"
disable, "1"/"on" enable); otherwise the caller's *default* — ``True``
for multi-point sweeps, ``False`` for single simulations (capturing a
trace costs about a tenth of pricing it, so it only pays off when the
trace is replayed more than once).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.trace import TRACE_FORMAT_VERSION, RecordedTrace
from ..testing import faults
from . import knobs
from .resilience import atomic_replace, quarantine
from .simcache import _canon, cache_dir

try:  # optional: the container may not ship zstandard
    import zstandard as _zstd  # type: ignore
except ImportError:  # pragma: no cover - environment-dependent
    _zstd = None

__all__ = [
    "trace_enabled",
    "spill_enabled",
    "verify_enabled",
    "spill_dir",
    "trace_key",
    "get",
    "put",
    "get_or_capture",
    "clear_registry",
    "encode_trace",
    "decode_trace",
    "save_compressed",
    "load_compressed",
    "read_header",
    "publish_shm",
    "release_shm",
    "load_counts",
    "reset_load_counts",
    "SPILL_SUFFIX",
    "PASS_SUFFIX",
    "VECPROG_SUFFIX",
    "pass_cache_enabled",
    "encode_pass",
    "decode_pass",
    "store_pass",
    "load_pass",
    "encode_vecprog",
    "decode_vecprog",
    "store_vecprog",
    "load_vecprog",
    "read_pass_header",
    "publish_pass_shm",
    "split_cache_filename",
]

_ENV_FLAG = "REPRO_TRACE"
_ENV_SPILL = "REPRO_TRACE_SPILL"
_ENV_DIR = "REPRO_TRACE_DIR"
_ENV_VERIFY = "REPRO_TRACE_VERIFY"
#: When set to a writable path, every cross-process trace load (shm
#: attach or spill read) appends one ``"<pid> <source> <key>"`` line —
#: the observability hook the single-load-per-worker test asserts on.
_ENV_LOAD_LOG = "REPRO_TRACE_LOAD_LOG"
#: Tri-state switch for the compiled-pass cache (``.rpp``/``.rvp``
#: files next to the trace spills).  Unset, it follows
#: :func:`spill_enabled` — persisting compiled passes only makes sense
#: alongside persisted traces.
_ENV_PASS = "REPRO_PASS_CACHE"

#: In-process registry: key -> RecordedTrace.  Bounded — a 20-layer
#: YOLOv3 trace is ~1.4M events (~60 MB columnar, more once decoded), so
#: only the most recently used few stay resident.
_REGISTRY: dict = {}
_REGISTRY_CAP = 4

#: Spill file suffix for the v4 compressed container.
SPILL_SUFFIX = ".rtz"
_MAGIC = b"RTRC"

#: Compiled-pass containers: a serialized shared-pass output
#: (``<key>.<sig>.rpp``) and a compiled point-pass tier
#: (``<key>.<sig>.<tier>.rvp``).  Both are derived artifacts of an
#: ``.rtz`` trace and carry its content digest, so they can never
#: outlive a re-captured trace.
PASS_SUFFIX = ".rpp"
VECPROG_SUFFIX = ".rvp"
PASS_FORMAT_VERSION = 1
_PASS_MAGIC = b"RPSS"
_VECPROG_MAGIC = b"RVPC"


def trace_enabled(flag: Optional[bool] = None, default: bool = False) -> bool:
    """Resolve the ``use_trace`` tri-state (see module docstring)."""
    if flag is not None:
        return flag
    env = knobs.get_tristate(_ENV_FLAG)
    if env is not None:
        return env
    return default


def spill_enabled(flag: Optional[bool] = None) -> bool:
    """Whether traces spill to disk (``REPRO_TRACE_SPILL``; default off)."""
    if flag is not None:
        return flag
    return knobs.get_bool(_ENV_SPILL)


def pass_cache_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the compiled-pass-cache tri-state.

    ``REPRO_PASS_CACHE=1/0`` forces it; unset, it follows
    :func:`spill_enabled` so a spilling sweep persists its compiled
    passes alongside the traces they derive from.
    """
    if flag is not None:
        return flag
    env = knobs.get_tristate(_ENV_PASS)
    if env is not None:
        return env
    return spill_enabled()


def spill_dir() -> str:
    """Directory for spilled traces (next to the simcache by default)."""
    return knobs.get_str(_ENV_DIR) or str(Path(cache_dir()) / "traces")


def trace_key(net, machine, policy, n_layers, deduplicate: bool = True) -> str:
    """Content hash of everything the *event stream* depends on.

    Deliberately excludes L2 size/assoc/latency, lane count, DRAM
    parameters, prefetchers — kernels never read those, so traces are
    shared across such sweep axes.  Includes the trace format version so
    stale spill files are never reused after an encoding change.
    """
    payload = {
        "trace_format": TRACE_FORMAT_VERSION,
        "net": {
            "name": net.name,
            "input_shape": list(net.input_shape),
            "layers": [repr(layer) for layer in net.layers],
        },
        "policy": _canon(policy),
        "n_layers": n_layers,
        "deduplicate": deduplicate,
        "machine": {
            "isa_name": machine.isa_name,
            "vlen_bits": machine.vlen_bits,
            "l1_line_bytes": machine.l1.line_bytes,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _spill_path(key: str) -> str:
    return str(Path(spill_dir()) / (key + SPILL_SUFFIX))


def verify_enabled() -> bool:
    """Whether spill-loaded traces are run through the static verifier.

    ``REPRO_TRACE_VERIFY=1`` guards against corrupted or hand-edited
    spill files poisoning a sweep: a trace that fails
    :func:`repro.analysis.verify_trace` is treated as a cache miss (and
    re-captured), never replayed.  Off by default — in-process traces
    are trusted, and the verifier costs a few ms per load.
    """
    return knobs.get_bool(_ENV_VERIFY)


# ----------------------------------------------------------------------
# v4 compressed container (.rtz)
# ----------------------------------------------------------------------
def _compress(blob: bytes) -> Tuple[str, bytes]:
    if _zstd is not None:
        return "zstd", _zstd.ZstdCompressor(level=19).compress(blob)
    return "zlib", zlib.compress(blob, 9)


def _compress_fast(blob: bytes) -> Tuple[str, bytes]:
    """Low-effort codec for hot-path writes (spills, compiled passes).

    The archive codec above costs seconds per sweep-sized trace; cache
    artifacts are rewritten often and read back through the same
    codec-tagged :func:`_decompress`, so they take the cheap setting.
    Committed reference traces keep the archive codec.
    """
    if _zstd is not None:
        return "zstd", _zstd.ZstdCompressor(level=3).compress(blob)
    return "zlib", zlib.compress(blob, 1)


def _decompress(codec: str, blob: bytes) -> bytes:
    # Corruption inside a compressed block surfaces as zlib.error /
    # ZstdError; normalise to ValueError so every loader's
    # quarantine-on-ValueError path catches it.
    if codec == "zlib":
        try:
            return zlib.decompress(blob)
        except zlib.error as exc:
            raise ValueError(f"corrupt zlib block: {exc}") from exc
    if codec == "zstd":
        if _zstd is None:
            raise ValueError(
                "trace block compressed with zstd but zstandard is not "
                "installed; re-capture or re-encode with zlib"
            )
        try:
            return _zstd.ZstdDecompressor().decompress(blob)
        except Exception as exc:
            raise ValueError(f"corrupt zstd block: {exc}") from exc
    raise ValueError(f"unknown trace block codec {codec!r}")


def _varint_encode(u: np.ndarray) -> bytes:
    """LEB128-style varint encoding of a uint64 array, vectorized.

    Each value becomes 1-10 bytes of 7-bit groups, LSB first, high bit
    set on every byte but the last.  Pure column arithmetic: byte
    counts come from threshold comparisons, output offsets from a
    cumulative sum, and the bytes themselves from at most ten masked
    scatter passes.
    """
    n = len(u)
    if n == 0:
        return b""
    nb = np.ones(n, np.int64)
    for k in range(1, 10):  # 7*9 = 63 bits: the widest uint64 shift
        nb += (u >= (np.uint64(1) << np.uint64(7 * k))).astype(np.int64)
    offs = np.zeros(n + 1, np.int64)
    np.cumsum(nb, out=offs[1:])
    out = np.zeros(int(offs[-1]), np.uint8)
    rem = u.copy()
    starts = offs[:-1]
    for j in range(int(nb.max())):
        mask = nb > j
        vals = (rem[mask] & np.uint64(0x7F)).astype(np.uint8)
        cont = (nb[mask] > j + 1).astype(np.uint8) << np.uint8(7)
        out[starts[mask] + j] = vals | cont
        rem >>= np.uint64(7)
    return out.tobytes()


def _varint_decode(buf: bytes, n: int) -> np.ndarray:
    """Inverse of :func:`_varint_encode`; returns *n* uint64 values."""
    if n == 0:
        if buf:
            raise ValueError("varint stream: trailing bytes")
        return np.zeros(0, np.uint64)
    b = np.frombuffer(buf, np.uint8)
    ends = np.flatnonzero((b & 0x80) == 0)  # terminator bytes
    if len(ends) != n or (len(b) and ends[-1] != len(b) - 1):
        raise ValueError("varint stream: value count mismatch")
    starts = np.empty(n, np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    nb = ends - starts + 1
    if int(nb.max()) > 10:
        raise ValueError("varint stream: value wider than 64 bits")
    payload = (b & np.uint8(0x7F)).astype(np.uint64)
    out = np.zeros(n, np.uint64)
    for j in range(int(nb.max())):
        mask = nb > j
        out[mask] |= payload[starts[mask] + j] << np.uint64(7 * j)
    return out


def _zigzag(v: np.ndarray) -> np.ndarray:
    """Map int64 to uint64 so small magnitudes stay small: 0,-1,1,-2…"""
    return ((v << 1) ^ (v >> 63)).view(np.uint64)


def _unzigzag(u: np.ndarray) -> np.ndarray:
    x = (u >> np.uint64(1)).view(np.int64)
    return x ^ -((u & np.uint64(1)).view(np.int64))


def _delta_encode(col: np.ndarray) -> bytes:
    d = np.diff(col.astype(np.int64, copy=False), prepend=np.int64(0))
    return _varint_encode(_zigzag(d))


def _delta_decode(buf: bytes, n: int) -> np.ndarray:
    return np.cumsum(_unzigzag(_varint_decode(buf, n)), dtype=np.int64)


#: Per-column (filter, little-endian wire dtype).  The integer operand
#: columns i0..i3 carry addresses and sizes — monotone-ish, tiny
#: deltas — so they delta+zigzag+varint before block compression;
#: the rest compress raw.
_COLUMN_WIRE = {
    "op": ("raw", "<u1"),
    "w": ("raw", "<f8"),
    "kid": ("raw", "<u4"),
    "i0": ("delta", "<i8"),
    "i1": ("delta", "<i8"),
    "i2": ("delta", "<i8"),
    "i3": ("delta", "<i8"),
    "f0": ("raw", "<f8"),
}


def encode_trace(trace: RecordedTrace, level: str = "archive") -> bytes:
    """Serialize *trace* into the v4 ``.rtz`` container (bytes).

    ``level="fast"`` swaps in the low-effort block codec — the right
    choice for sweep spills, where encode time is on the cold path and
    the file is a local cache artifact, not a committed reference.
    """
    compress = _compress_fast if level == "fast" else _compress
    cols = {name: getattr(trace, name) for name, _ in RecordedTrace._COLUMNS}
    n = trace.n_events
    blocks: List[bytes] = []
    col_meta = []
    for name, _ in RecordedTrace._COLUMNS:
        filt, wire = _COLUMN_WIRE[name]
        arr = np.ascontiguousarray(cols[name]).astype(wire, copy=False)
        raw = _delta_encode(arr) if filt == "delta" else arr.tobytes()
        codec, blob = compress(raw)
        blocks.append(blob)
        col_meta.append(
            {"name": name, "filter": filt, "codec": codec, "nbytes": len(blob)}
        )
    header = json.dumps(
        {
            "key": trace.key,
            "isa_name": trace.isa_name,
            "vlen_bits": trace.vlen_bits,
            "l1_line_bytes": trace.l1_line_bytes,
            "format": TRACE_FORMAT_VERSION,
            "labels": list(trace.labels),
            "buffers": [list(b) for b in trace.buffers],
            "meta": trace.meta,
            "n_events": n,
            "columns": col_meta,
            "sha256": RecordedTrace._content_digest(
                tuple(cols[name] for name, _ in RecordedTrace._COLUMNS),
                trace.labels,
                trace.buffers,
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [_MAGIC, bytes([TRACE_FORMAT_VERSION]),
             len(header).to_bytes(4, "little"), header]
    parts.extend(blocks)
    return b"".join(parts)


def decode_trace(blob: bytes) -> RecordedTrace:
    """Inverse of :func:`encode_trace`; digest-verified.

    Raises :class:`ValueError` on a stale format, malformed container,
    or content-digest mismatch — callers treat any failure as a cache
    miss and quarantine the source file.
    """
    if blob[:4] != _MAGIC:
        raise ValueError("not an .rtz trace container (bad magic)")
    if blob[4] != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"trace format {blob[4]} != {TRACE_FORMAT_VERSION} "
            "(stale spill file)"
        )
    hlen = int.from_bytes(blob[5:9], "little")
    header = json.loads(blob[9:9 + hlen].decode("utf-8"))
    n = int(header["n_events"])
    pos = 9 + hlen
    cols = {}
    for meta in header["columns"]:
        name = meta["name"]
        filt, wire = _COLUMN_WIRE[name]
        if meta["filter"] != filt:
            raise ValueError(f"unexpected filter for column {name!r}")
        block = blob[pos:pos + int(meta["nbytes"])]
        if len(block) != int(meta["nbytes"]):
            raise ValueError("truncated trace container")
        pos += len(block)
        raw = _decompress(meta["codec"], block)
        if filt == "delta":
            arr = _delta_decode(raw, n)
        else:
            arr = np.frombuffer(raw, wire)
            if len(arr) != n:
                raise ValueError(f"column {name!r}: row count mismatch")
        dtype = dict(RecordedTrace._COLUMNS)[name]
        cols[name] = np.ascontiguousarray(arr).astype(dtype, copy=False)
    if pos != len(blob):
        raise ValueError("trailing bytes after trace columns")
    labels = [str(s) for s in header["labels"]]
    buffers = header.get("buffers", ())
    ordered = tuple(cols[name] for name, _ in RecordedTrace._COLUMNS)
    digest = RecordedTrace._content_digest(ordered, labels, buffers)
    if header.get("sha256") != digest:
        raise ValueError("trace content digest mismatch (corrupt container)")
    return RecordedTrace(
        header.get("key"),
        header["isa_name"],
        header["vlen_bits"],
        header["l1_line_bytes"],
        labels,
        *ordered,
        meta=header.get("meta"),
        buffers=buffers,
    )


def save_compressed(
    trace: RecordedTrace, path: str, level: str = "archive"
) -> None:
    """Write *trace* to *path* in the v4 ``.rtz`` container format.

    The write is atomic (temp file + rename in the target directory),
    so a reader — or a crash — can never observe a torn container.
    """
    blob = encode_trace(trace, level=level)

    def write(tmp: str) -> None:
        Path(tmp).write_bytes(blob)
        faults.maybe_fault("tracecache.write", key=trace.key, path=tmp)

    atomic_replace(path, write, suffix=SPILL_SUFFIX)


def load_compressed(path: str) -> RecordedTrace:
    """Load a v4 ``.rtz`` trace; raises on corruption or stale format."""
    return decode_trace(Path(path).read_bytes())


def read_header(path: str) -> dict:
    """Parse just the JSON header of an ``.rtz`` container.

    Cheap (no column decode, no digest check) — the inspection hook for
    ``repro trace-cache list`` and the CI smoke job's key-drift guard.
    The returned dict carries ``format``; compare it against
    :data:`~repro.machine.trace.TRACE_FORMAT_VERSION` for staleness.
    """
    with Path(path).open("rb") as fh:
        head = fh.read(9)
        if head[:4] != _MAGIC:
            raise ValueError("not an .rtz trace container (bad magic)")
        hlen = int.from_bytes(head[5:9], "little")
        return json.loads(fh.read(hlen).decode("utf-8"))


# ----------------------------------------------------------------------
# Compiled-pass cache (.rpp / .rvp)
# ----------------------------------------------------------------------
# A shared pass over a multi-million-event trace costs seconds; its
# output — the replay program, the folded invariant stats, and the
# group constants — depends only on (trace content, group signature).
# Serializing it means a warm sweep re-prices points without ever
# re-walking the event stream.  The compiled point-pass tiers
# (``_VecProgram`` columns) additionally capture the resolved L2 walk,
# so a warm singleton point collapses to one column-arithmetic pricing.
#
# Both containers mirror the ``.rtz`` layout: magic + version + JSON
# header + per-column compressed blocks, with two sha256 digests — the
# source trace's (staleness) and the payload's own (corruption).  Any
# decode failure quarantines the file and reports a miss; a digest
# mismatch against a re-captured trace is a silent miss (the next
# store overwrites the stale file).

#: Wire layout of a serialized shared-pass program.  One row per prog
#: item in ``kinds``; per-tag operand columns hold only that tag's
#: items, in stream order.  Ragged tuple operands (pending-line and
#: first-touch addresses) split into a count column plus a flattened
#: delta-coded address column.
_PASS_COLUMNS = (
    ("kinds", "raw", "<u1"),
    ("f0", "raw", "<f8"),
    ("t1_kid", "varint", "<i8"),
    ("t2_base", "delta", "<i8"),
    ("t2_nbytes", "delta", "<i8"),
    ("t3_w", "raw", "<f8"),
    ("t3_lat", "delta", "<i8"),
    ("t3_occ", "raw", "<f8"),
    ("t3_nbytes", "delta", "<i8"),
    ("t3_nlines", "delta", "<i8"),
    ("t3_write", "raw", "<u1"),
    ("t3_unit", "raw", "<u1"),
    ("t3_iid", "delta", "<i8"),
    ("t3_nh0", "delta", "<i8"),
    ("t3_na", "varint", "<i8"),
    ("t3_addrs", "delta", "<i8"),
    ("t3_nft", "varint", "<i8"),
    ("t3_ft", "delta", "<i8"),
    ("t4_w", "raw", "<f8"),
    ("t4_lat", "delta", "<i8"),
    ("t4_occ", "raw", "<f8"),
    ("t4_write", "raw", "<u1"),
    ("t4_nh0", "delta", "<i8"),
    ("t4_na", "varint", "<i8"),
    ("t4_addrs", "delta", "<i8"),
    ("t4_nft", "varint", "<i8"),
    ("t4_ft", "delta", "<i8"),
    ("t5_n", "varint", "<i8"),
    ("t5_lines", "delta", "<i8"),
    ("t6_w", "raw", "<f8"),
    ("t6_cid", "varint", "<i8"),
    ("gc_distinct", "delta", "<i8"),
)

_VECPROG_COLUMNS = (
    ("base", "raw", "<f8"),
    ("kid", "delta", "<i8"),
    ("cls_pos", "delta", "<i8"),
    ("cls_idx", "varint", "<i8"),
    ("wh_by_cls", "raw", "<f8"),
    ("wm_by_cls", "raw", "<f8"),
)


def _pass_path(key: str, sig: str) -> str:
    return str(Path(spill_dir()) / f"{key}.{sig}{PASS_SUFFIX}")


def _vecprog_path(key: str, sig: str, tier: str) -> str:
    return str(Path(spill_dir()) / f"{key}.{sig}.{tier}{VECPROG_SUFFIX}")


def _pass_shm_name(key: str, sig: str) -> str:
    digest = hashlib.sha256(f"{key}.{sig}".encode("utf-8")).hexdigest()
    return _SHM_PREFIX + "p" + digest[:23]


def _int_col(vals: list) -> np.ndarray:
    """Exact int64 column; refuses silently-truncating inputs."""
    if not vals:
        return np.zeros(0, np.int64)
    arr = np.asarray(vals)
    if arr.dtype.kind not in "iu":
        raise ValueError("non-integral value in an integer pass column")
    return arr.astype(np.int64, copy=False)


def _encode_col(filt: str, wire: str, arr: np.ndarray) -> bytes:
    if filt == "delta":
        return _delta_encode(arr)
    if filt == "varint":
        if len(arr) and int(arr.min()) < 0:
            raise ValueError("negative value in a varint pass column")
        return _varint_encode(arr.astype(np.uint64, copy=False))
    return np.ascontiguousarray(arr).astype(wire, copy=False).tobytes()


def _decode_col(filt: str, wire: str, raw: bytes, n: int) -> np.ndarray:
    if filt == "delta":
        arr = _delta_decode(raw, n)
    elif filt == "varint":
        arr = _varint_decode(raw, n).astype(np.int64)
    else:
        arr = np.frombuffer(raw, wire)
    if len(arr) != n:
        raise ValueError("pass column: row count mismatch")
    return arr


def _tuples_to_lists(seq) -> list:
    return [list(t) for t in seq]


def _lists_to_tuples(seq) -> list:
    return [tuple(t) for t in seq]


def _ragged_split(flat: np.ndarray, counts: np.ndarray) -> list:
    """Rebuild a list of int tuples from (flattened values, counts)."""
    vals = flat.tolist()
    out = []
    pos = 0
    for c in counts.tolist():
        out.append(tuple(vals[pos:pos + c]))
        pos += c
    if pos != len(vals):
        raise ValueError("ragged pass column: length mismatch")
    return out


def _pack_blocks(
    magic: bytes, header_extra: dict, cols: dict, layout, fast: bool = True
) -> bytes:
    """Assemble a pass-family container: header + compressed columns."""
    compress = _compress_fast if fast else _compress
    blocks: List[bytes] = []
    col_meta = []
    payload = hashlib.sha256()
    for name, filt, wire in layout:
        arr = cols[name]
        raw = _encode_col(filt, wire, arr)
        payload.update(raw)
        codec, blob = compress(raw)
        blocks.append(blob)
        col_meta.append(
            {"name": name, "codec": codec, "nbytes": len(blob), "n": len(arr)}
        )
    header_extra = dict(header_extra)
    header_extra["format"] = PASS_FORMAT_VERSION
    header_extra["columns"] = col_meta
    header_extra["sha256"] = payload.hexdigest()
    header = json.dumps(
        header_extra, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    parts = [magic, bytes([PASS_FORMAT_VERSION]),
             len(header).to_bytes(4, "little"), header]
    parts.extend(blocks)
    return b"".join(parts)


def _unpack_blocks(magic: bytes, blob: bytes, layout) -> Tuple[dict, dict]:
    """Inverse of :func:`_pack_blocks`: ``(header, columns)``."""
    if blob[:4] != magic:
        raise ValueError("bad compiled-pass container magic")
    if blob[4] != PASS_FORMAT_VERSION:
        raise ValueError(
            f"compiled-pass format {blob[4]} != {PASS_FORMAT_VERSION} "
            "(stale cache file)"
        )
    hlen = int.from_bytes(blob[5:9], "little")
    header = json.loads(blob[9:9 + hlen].decode("utf-8"))
    wire_by_name = {name: (filt, wire) for name, filt, wire in layout}
    pos = 9 + hlen
    cols = {}
    payload = hashlib.sha256()
    for meta in header["columns"]:
        name = meta["name"]
        if name not in wire_by_name:
            raise ValueError(f"unknown pass column {name!r}")
        filt, wire = wire_by_name[name]
        block = blob[pos:pos + int(meta["nbytes"])]
        if len(block) != int(meta["nbytes"]):
            raise ValueError("truncated compiled-pass container")
        pos += len(block)
        raw = _decompress(meta["codec"], block)
        payload.update(raw)
        cols[name] = _decode_col(filt, wire, raw, int(meta["n"]))
    if pos != len(blob):
        raise ValueError("trailing bytes after pass columns")
    if header.get("sha256") != payload.hexdigest():
        raise ValueError("compiled-pass digest mismatch (corrupt container)")
    if set(cols) != {name for name, _, _ in layout}:
        raise ValueError("compiled-pass container is missing columns")
    return header, cols


def encode_pass(
    prog: list,
    inv_fields: Dict[str, float],
    gc: dict,
    *,
    key: str,
    sig: str,
    defer: bool,
    trace_sha256: str,
    compat: dict,
) -> bytes:
    """Serialize a shared-pass ``(prog, inv, gc)`` triple into ``.rpp``.

    Exact by construction: floats travel as f8 (bit-preserving), ints
    as int64 columns that refuse non-integral values, bools as u1.
    ``gc["vpu"]`` is *not* stored — no point engine reads it, and the
    loader rebinds the requesting machine's VPU.  Raises
    :class:`ValueError` on any operand the layout cannot carry exactly
    (callers treat that as "don't cache").
    """
    kinds: List[int] = []
    f0: List[float] = []
    labels: List[str] = []
    label_ids: dict = {}
    t1_kid: List[int] = []
    t2_base: List[int] = []
    t2_nbytes: List[int] = []
    t3_w: List[float] = []
    t3_lat: List[int] = []
    t3_occ: List[float] = []
    t3_nbytes: List[int] = []
    t3_nlines: List[int] = []
    t3_write: List[bool] = []
    t3_unit: List[bool] = []
    t3_iid: List[int] = []
    t3_nh0: List[int] = []
    t3_na: List[int] = []
    t3_addrs: List[int] = []
    t3_nft: List[int] = []
    t3_ft: List[int] = []
    t4_w: List[float] = []
    t4_lat: List[int] = []
    t4_occ: List[float] = []
    t4_write: List[bool] = []
    t4_nh0: List[int] = []
    t4_na: List[int] = []
    t4_addrs: List[int] = []
    t4_nft: List[int] = []
    t4_ft: List[int] = []
    t5_n: List[int] = []
    t5_lines: List[int] = []
    t6_w: List[float] = []
    t6_cid: List[int] = []
    for it in prog:
        if type(it) is float:
            kinds.append(0)
            f0.append(it)
            continue
        tag = it[0]
        kinds.append(tag)
        if tag == 3:
            (_, w, addrs, lat, occ1, nbytes, n_lines, write, unit, iid,
             nh0, ft) = it
            t3_w.append(w)
            t3_lat.append(lat)
            t3_occ.append(occ1)
            t3_nbytes.append(nbytes)
            t3_nlines.append(n_lines)
            t3_write.append(write)
            t3_unit.append(unit)
            t3_iid.append(iid)
            t3_nh0.append(nh0)
            t3_na.append(len(addrs))
            t3_addrs.extend(addrs)
            t3_nft.append(len(ft))
            t3_ft.extend(ft)
        elif tag == 4:
            _, w, addrs, lat, occ1, write, nh0, ft = it
            t4_w.append(w)
            t4_lat.append(lat)
            t4_occ.append(occ1)
            t4_write.append(write)
            t4_nh0.append(nh0)
            t4_na.append(len(addrs))
            t4_addrs.extend(addrs)
            t4_nft.append(len(ft))
            t4_ft.extend(ft)
        elif tag == 6:
            t6_w.append(it[1])
            t6_cid.append(it[2])
        elif tag == 1:
            label = it[1]
            kid = label_ids.get(label)
            if kid is None:
                kid = label_ids[label] = len(labels)
                labels.append(label)
            t1_kid.append(kid)
        elif tag == 2:
            t2_base.append(it[1])
            t2_nbytes.append(it[2])
        elif tag == 5:
            t5_n.append(len(it[1]))
            t5_lines.extend(it[1])
        else:
            raise ValueError(f"unknown prog item tag {tag!r}")
    distinct = gc["distinct"]
    cols = {
        "kinds": np.asarray(kinds, np.uint8),
        "f0": np.asarray(f0, np.float64),
        "t1_kid": _int_col(t1_kid),
        "t2_base": _int_col(t2_base),
        "t2_nbytes": _int_col(t2_nbytes),
        "t3_w": np.asarray(t3_w, np.float64),
        "t3_lat": _int_col(t3_lat),
        "t3_occ": np.asarray(t3_occ, np.float64),
        "t3_nbytes": _int_col(t3_nbytes),
        "t3_nlines": _int_col(t3_nlines),
        "t3_write": np.asarray(t3_write, np.uint8),
        "t3_unit": np.asarray(t3_unit, np.uint8),
        "t3_iid": _int_col(t3_iid),
        "t3_nh0": _int_col(t3_nh0),
        "t3_na": _int_col(t3_na),
        "t3_addrs": _int_col(t3_addrs),
        "t3_nft": _int_col(t3_nft),
        "t3_ft": _int_col(t3_ft),
        "t4_w": np.asarray(t4_w, np.float64),
        "t4_lat": _int_col(t4_lat),
        "t4_occ": np.asarray(t4_occ, np.float64),
        "t4_write": np.asarray(t4_write, np.uint8),
        "t4_nh0": _int_col(t4_nh0),
        "t4_na": _int_col(t4_na),
        "t4_addrs": _int_col(t4_addrs),
        "t4_nft": _int_col(t4_nft),
        "t4_ft": _int_col(t4_ft),
        "t5_n": _int_col(t5_n),
        "t5_lines": _int_col(t5_lines),
        "t6_w": np.asarray(t6_w, np.float64),
        "t6_cid": _int_col(t6_cid),
        "gc_distinct": _int_col(sorted(distinct)),
    }
    header = {
        "kind": "pass",
        "key": key,
        "sig": sig,
        "defer": bool(defer),
        "trace_sha256": trace_sha256,
        "compat": compat,
        "labels": labels,
        "inv": dict(inv_fields),
        "gc": {
            "port_l1": gc["port_l1"],
            "l1_lat": gc["l1_lat"],
            "ooo_hide": gc["ooo_hide"],
            "scalar_cpi": gc["scalar_cpi"],
            "l2_shift": gc["l2_shift"],
            "max_range_total": gc["max_range_total"],
            "has_fills": gc["has_fills"],
            "pf2_cfg": gc["pf2_cfg"],
            "classes": _tuples_to_lists(gc["classes"]),
        },
    }
    return _pack_blocks(_PASS_MAGIC, header, cols, _PASS_COLUMNS)


def decode_pass(blob: bytes) -> Tuple[dict, list, Dict[str, float], dict]:
    """Inverse of :func:`encode_pass`.

    Returns ``(header, prog, inv_fields, gc)``; ``gc["vpu"]`` is
    ``None`` — the caller rebinds the requesting machine's VPU.  Raises
    :class:`ValueError` on corruption (callers quarantine + miss).
    """
    header, cols = _unpack_blocks(_PASS_MAGIC, blob, _PASS_COLUMNS)
    kinds = cols["kinds"]
    n = len(kinds)
    counts = np.bincount(kinds, minlength=7)
    if len(counts) > 7 and counts[7:].any():
        raise ValueError("pass container: unknown item tag")
    for tag, name in ((0, "f0"), (1, "t1_kid"), (2, "t2_base"),
                      (3, "t3_w"), (4, "t4_w"), (5, "t5_n"), (6, "t6_w")):
        if counts[tag] != len(cols[name]):
            raise ValueError("pass container: tag count mismatch")
    labels = [str(s) for s in header["labels"]]
    out = np.empty(n, dtype=object)
    if counts[0]:
        out[kinds == 0] = cols["f0"].astype(object)
    if counts[1]:
        items = [(1, labels[k]) for k in cols["t1_kid"].tolist()]
        out[kinds == 1] = np.fromiter(items, object, count=len(items))
    if counts[2]:
        items = [
            (2, b, s)
            for b, s in zip(cols["t2_base"].tolist(),
                            cols["t2_nbytes"].tolist())
        ]
        out[kinds == 2] = np.fromiter(items, object, count=len(items))
    if counts[3]:
        addrs = _ragged_split(cols["t3_addrs"], cols["t3_na"])
        fts = _ragged_split(cols["t3_ft"], cols["t3_nft"])
        items = [
            (3, w, a, lat, occ, nb, nl, wr, un, iid, nh, ft)
            for w, a, lat, occ, nb, nl, wr, un, iid, nh, ft in zip(
                cols["t3_w"].tolist(), addrs, cols["t3_lat"].tolist(),
                cols["t3_occ"].tolist(), cols["t3_nbytes"].tolist(),
                cols["t3_nlines"].tolist(),
                (cols["t3_write"] != 0).tolist(),
                (cols["t3_unit"] != 0).tolist(),
                cols["t3_iid"].tolist(), cols["t3_nh0"].tolist(), fts,
            )
        ]
        out[kinds == 3] = np.fromiter(items, object, count=len(items))
    if counts[4]:
        addrs = _ragged_split(cols["t4_addrs"], cols["t4_na"])
        fts = _ragged_split(cols["t4_ft"], cols["t4_nft"])
        items = [
            (4, w, a, lat, occ, wr, nh, ft)
            for w, a, lat, occ, wr, nh, ft in zip(
                cols["t4_w"].tolist(), addrs, cols["t4_lat"].tolist(),
                cols["t4_occ"].tolist(),
                (cols["t4_write"] != 0).tolist(),
                cols["t4_nh0"].tolist(), fts,
            )
        ]
        out[kinds == 4] = np.fromiter(items, object, count=len(items))
    if counts[5]:
        lines = _ragged_split(cols["t5_lines"], cols["t5_n"])
        items = [(5, ln) for ln in lines]
        out[kinds == 5] = np.fromiter(items, object, count=len(items))
    if counts[6]:
        items = [
            (6, w, c)
            for w, c in zip(cols["t6_w"].tolist(), cols["t6_cid"].tolist())
        ]
        out[kinds == 6] = np.fromiter(items, object, count=len(items))
    prog = out.tolist()
    hgc = header["gc"]
    gc = {
        "vpu": None,
        "port_l1": bool(hgc["port_l1"]),
        "l1_lat": hgc["l1_lat"],
        "ooo_hide": hgc["ooo_hide"],
        "scalar_cpi": hgc["scalar_cpi"],
        "l2_shift": hgc["l2_shift"],
        "distinct": set(cols["gc_distinct"].tolist()),
        "max_range_total": hgc["max_range_total"],
        "has_fills": bool(hgc["has_fills"]),
        "pf2_cfg": bool(hgc["pf2_cfg"]),
        "classes": _lists_to_tuples(hgc["classes"]),
    }
    inv_fields = {str(k): float(v) for k, v in header["inv"].items()}
    return header, prog, inv_fields, gc


def encode_vecprog(
    cols: dict,
    inv_fields: Dict[str, float],
    gc: dict,
    *,
    key: str,
    sig: str,
    tier: dict,
    trace_sha256: str,
    compat: dict,
) -> bytes:
    """Serialize compiled ``_VecProgram`` columns into ``.rvp``.

    *cols* is the column dict (``base``, ``kid``, ``labels``,
    ``cls_pos``, ``cls_idx``, ``cls_defs``, ``wh_by_cls``,
    ``wm_by_cls``, ``max_nm``).  The header embeds the invariant stats
    and the pricing subset of *gc*, so a warm singleton point needs
    only this file — no trace decode, no ``.rpp`` decode.
    """
    arrays = {
        "base": np.asarray(cols["base"], np.float64),
        "kid": np.asarray(cols["kid"], np.int64),
        "cls_pos": np.asarray(cols["cls_pos"], np.int64),
        "cls_idx": np.asarray(cols["cls_idx"], np.int64),
        "wh_by_cls": np.asarray(cols["wh_by_cls"], np.float64),
        "wm_by_cls": np.asarray(cols["wm_by_cls"], np.float64),
    }
    header = {
        "kind": "vecprog",
        "key": key,
        "sig": sig,
        "tier": tier,
        "trace_sha256": trace_sha256,
        "compat": compat,
        "labels": list(cols["labels"]),
        "cls_defs": _tuples_to_lists(cols["cls_defs"]),
        "max_nm": int(cols["max_nm"]),
        "inv": dict(inv_fields),
        "gc": {
            "l1_lat": gc["l1_lat"],
            "ooo_hide": gc["ooo_hide"],
            "scalar_cpi": gc["scalar_cpi"],
            "classes": _tuples_to_lists(gc["classes"]),
        },
    }
    return _pack_blocks(_VECPROG_MAGIC, header, arrays, _VECPROG_COLUMNS)


def decode_vecprog(blob: bytes) -> Tuple[dict, dict, Dict[str, float], dict]:
    """Inverse of :func:`encode_vecprog`.

    Returns ``(header, cols, inv_fields, gc_pricing)`` where *cols* is
    the column dict of :func:`encode_vecprog` and *gc_pricing* holds
    just the fields :func:`repro.machine.replay._point_pass_vec` reads.
    """
    header, arrays = _unpack_blocks(_VECPROG_MAGIC, blob, _VECPROG_COLUMNS)
    cols = dict(arrays)
    cols["labels"] = [str(s) for s in header["labels"]]
    cols["cls_defs"] = _lists_to_tuples(header["cls_defs"])
    cols["max_nm"] = int(header["max_nm"])
    hgc = header["gc"]
    gc_pricing = {
        "l1_lat": hgc["l1_lat"],
        "ooo_hide": hgc["ooo_hide"],
        "scalar_cpi": hgc["scalar_cpi"],
        "classes": _lists_to_tuples(hgc["classes"]),
    }
    inv_fields = {str(k): float(v) for k, v in header["inv"].items()}
    return header, cols, inv_fields, gc_pricing


def read_pass_header(path: str) -> dict:
    """Parse just the JSON header of an ``.rpp``/``.rvp`` container."""
    with Path(path).open("rb") as fh:
        head = fh.read(9)
        if head[:4] not in (_PASS_MAGIC, _VECPROG_MAGIC):
            raise ValueError("not a compiled-pass container (bad magic)")
        hlen = int.from_bytes(head[5:9], "little")
        return json.loads(fh.read(hlen).decode("utf-8"))


def store_pass(
    prog: list,
    inv_fields: Dict[str, float],
    gc: dict,
    *,
    key: str,
    sig: str,
    defer: bool,
    trace_sha256: str,
    compat: dict,
) -> bool:
    """Best-effort write of a shared-pass output to the cache dir."""
    try:
        blob = encode_pass(
            prog, inv_fields, gc, key=key, sig=sig, defer=defer,
            trace_sha256=trace_sha256, compat=compat,
        )
    except ValueError:
        return False  # an operand the wire layout cannot carry exactly
    path = _pass_path(key, sig)

    def write(tmp: str) -> None:
        Path(tmp).write_bytes(blob)
        faults.maybe_fault("passcache.write", key=key, path=tmp)

    try:
        atomic_replace(path, write, suffix=PASS_SUFFIX)
    except OSError:
        return False
    faults.maybe_fault("passcache.spill", key=key, path=path)
    return True


def load_pass(
    key: str, sig: str, trace_sha256: str
) -> Optional[Tuple[dict, list, Dict[str, float], dict]]:
    """Load a cached shared pass; ``None`` on miss, stale, or corrupt.

    Checks shared memory first (a sweeping parent may have published
    the blob for its workers), then the cache directory.  A container
    whose embedded trace digest does not match *trace_sha256* is a
    stale derivative of a re-captured trace: treated as a miss (the
    next store overwrites it), never served.  Corrupt disk files are
    quarantined via the resilience layer.
    """
    blob = _shm_read(_pass_shm_name(key, sig))
    if blob is not None:
        try:
            out = decode_pass(blob)
        except ValueError:
            out = None
        if out is not None and out[0].get("trace_sha256") == trace_sha256:
            _note_load("pass_shm", key)
            return out
    path = _pass_path(key, sig)
    try:
        blob = Path(path).read_bytes()
    except OSError:
        return None
    try:
        out = decode_pass(blob)
    except ValueError as exc:
        quarantine(path, f"unreadable compiled pass: {exc}")
        return None
    if out[0].get("trace_sha256") != trace_sha256:
        return None
    _note_load("pass_spill", key)
    return out


def store_vecprog(
    cols: dict,
    inv_fields: Dict[str, float],
    gc: dict,
    *,
    key: str,
    sig: str,
    tier: dict,
    trace_sha256: str,
    compat: dict,
) -> bool:
    """Best-effort write of a compiled point-pass tier."""
    try:
        blob = encode_vecprog(
            cols, inv_fields, gc, key=key, sig=sig, tier=tier,
            trace_sha256=trace_sha256, compat=compat,
        )
    except ValueError:
        return False
    path = _vecprog_path(key, sig, tier["token"])

    def write(tmp: str) -> None:
        Path(tmp).write_bytes(blob)
        faults.maybe_fault("passcache.write", key=key, path=tmp)

    try:
        atomic_replace(path, write, suffix=VECPROG_SUFFIX)
    except OSError:
        return False
    faults.maybe_fault("passcache.spill", key=key, path=path)
    return True


def load_vecprog(
    key: str, sig: str, tier_token: str, trace_sha256: str
) -> Optional[Tuple[dict, dict, Dict[str, float], dict]]:
    """Load a compiled point-pass tier; ``None`` on miss/stale/corrupt."""
    path = _vecprog_path(key, sig, tier_token)
    try:
        blob = Path(path).read_bytes()
    except OSError:
        return None
    try:
        out = decode_vecprog(blob)
    except ValueError as exc:
        quarantine(path, f"unreadable compiled point pass: {exc}")
        return None
    if out[0].get("trace_sha256") != trace_sha256:
        return None
    _note_load("vecprog", key)
    return out


def publish_pass_shm(key: str, sig: str) -> bool:
    """Publish an on-disk ``.rpp`` blob to shared memory for workers.

    Mirrors :func:`publish_shm` for traces: the sweeping parent calls
    this before forking its pool so each worker decodes the compiled
    pass from memory instead of re-reading the cache file.  Best-effort.
    """
    owner = f"{key}.{sig}{PASS_SUFFIX}"
    if owner in _SHM_OWNED:
        return True
    try:
        blob = Path(_pass_path(key, sig)).read_bytes()
    except OSError:
        return False
    return _shm_create(_pass_shm_name(key, sig), blob, owner)


def split_cache_filename(fn: str) -> Optional[dict]:
    """Classify a cache-directory entry by suffix and name shape.

    Returns ``{"kind": "trace"|"pass"|"vecprog", "key": ..., ...}``
    with ``sig`` (pass/vecprog) and ``tier`` (vecprog) components, or
    ``None`` for files that belong to none of the three families.
    """
    if fn.endswith(SPILL_SUFFIX):
        return {"kind": "trace", "key": fn[: -len(SPILL_SUFFIX)]}
    if fn.endswith(PASS_SUFFIX):
        stem = fn[: -len(PASS_SUFFIX)]
        key, _, sig = stem.rpartition(".")
        if not key or not sig:
            return None
        return {"kind": "pass", "key": key, "sig": sig}
    if fn.endswith(VECPROG_SUFFIX):
        stem = fn[: -len(VECPROG_SUFFIX)]
        parts = stem.rsplit(".", 2)
        if len(parts) != 3 or not all(parts):
            return None
        return {"kind": "vecprog", "key": parts[0], "sig": parts[1],
                "tier": parts[2]}
    return None


# ----------------------------------------------------------------------
# Cross-process load accounting
# ----------------------------------------------------------------------
_LOAD_COUNTS: Dict[str, int] = {
    "shm": 0,
    "spill": 0,
    "pass_shm": 0,
    "pass_spill": 0,
    "vecprog": 0,
}


def load_counts() -> Dict[str, int]:
    """Cross-process trace loads this process has performed, by source."""
    return dict(_LOAD_COUNTS)


def reset_load_counts() -> None:
    for k in _LOAD_COUNTS:
        _LOAD_COUNTS[k] = 0


def _note_load(source: str, key: str) -> None:
    _LOAD_COUNTS[source] += 1
    path = knobs.get_str(_ENV_LOAD_LOG)
    if path:
        try:
            with Path(path).open("a", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()} {source} {key}\n")
        except OSError:
            pass  # observability only; never fail a load over it


# ----------------------------------------------------------------------
# Shared-memory tier (parent publishes, pool workers attach)
# ----------------------------------------------------------------------
#: Shared-memory segments this process created, key -> SharedMemory.
#: The creator keeps the handle so :func:`release_shm` can unlink at
#: pool teardown; attachers close immediately after decoding.
_SHM_OWNED: dict = {}
_SHM_PREFIX = "rtc"


def _shm_name(key: str) -> str:
    return _SHM_PREFIX + key[:24]


def _shm_create(name: str, blob: bytes, owner_key: str) -> bool:
    """Create a length-prefixed shared-memory segment holding *blob*.

    The handle is parked in ``_SHM_OWNED`` under *owner_key* so
    :func:`release_shm` can unlink it at pool teardown.  Best-effort:
    ``True`` when the segment exists (fresh or already published),
    ``False`` when shared memory is unavailable.
    """
    if owner_key in _SHM_OWNED:
        return True
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            name=name, create=True, size=8 + len(blob)
        )
    except FileExistsError:
        return True  # already published (e.g. by an outer sweep)
    except Exception:
        return False
    try:
        shm.buf[:8] = len(blob).to_bytes(8, "little")
        shm.buf[8:8 + len(blob)] = blob
        _SHM_OWNED[owner_key] = shm
        return True
    except Exception:
        try:
            shm.close()
            shm.unlink()
        except (OSError, BufferError):
            pass
        return False


def _shm_read(name: str) -> Optional[bytes]:
    """Attach a published segment and copy its blob out; None on failure."""
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
    except Exception:
        return None
    try:
        n = int.from_bytes(bytes(shm.buf[:8]), "little")
        return bytes(shm.buf[8:8 + n])
    except Exception:
        return None
    finally:
        try:
            shm.close()
        except (OSError, BufferError):
            pass


def publish_shm(key: str, trace: Optional[RecordedTrace] = None) -> bool:
    """Publish *trace* (or the registry entry) as a shared-memory segment.

    Workers' :func:`get` attaches and decodes the segment once per
    worker lifetime instead of re-reading the spill file per task.
    Best-effort: returns ``False`` when shared memory is unavailable,
    ``True`` when the segment exists (fresh or already published).
    The creating process must call :func:`release_shm` when the pool
    is done, or the segment outlives it.
    """
    if key in _SHM_OWNED:
        return True
    trace = trace if trace is not None else _REGISTRY.get(key)
    if trace is None:
        return False
    return _shm_create(_shm_name(key), encode_trace(trace, level="fast"), key)


def _shm_get(key: str) -> Optional[RecordedTrace]:
    """Attach + decode a published segment; None on any failure."""
    blob = _shm_read(_shm_name(key))
    if blob is None:
        return None
    try:
        return decode_trace(blob)
    except Exception:
        return None


def release_shm(key: Optional[str] = None) -> None:
    """Unlink shared-memory segments this process published.

    With *key* ``None`` every owned segment is released.  Idempotent
    and best-effort — safe to call from ``finally`` blocks.
    """
    keys = [key] if key is not None else list(_SHM_OWNED)
    for k in keys:
        shm = _SHM_OWNED.pop(k, None)
        if shm is None:
            continue
        try:
            shm.close()
        except (OSError, BufferError):
            pass
        try:
            shm.unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def get(key: str, spill: Optional[bool] = None) -> Optional[RecordedTrace]:
    """Look *key* up in the registry, then shared memory, then disk."""
    trace = _REGISTRY.get(key)
    if trace is not None:
        # Refresh LRU position.
        _REGISTRY.pop(key, None)
        _REGISTRY[key] = trace
        return trace
    trace = _shm_get(key)
    if trace is not None:
        _note_load("shm", key)
        put(key, trace, spill=False)  # the parent already persists it
        return trace
    if spill_enabled(spill):
        path = _spill_path(key)
        try:
            trace = load_compressed(path)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Truncated container, bit-flipped columns, stale format,
            # digest mismatch: quarantine the spill and report a miss —
            # the caller re-captures (or simulates the point directly).
            quarantine(path, f"unreadable trace spill: {exc}")
            return None
        if verify_enabled():
            from ..analysis import verify_trace  # deferred import

            if verify_trace(trace):
                quarantine(path, "spilled trace failed static verification")
                return None  # corrupted spill: treat as a miss
        _note_load("spill", key)
        put(key, trace, spill=False)  # already on disk
        return trace
    return None


def put(key: str, trace: RecordedTrace, spill: Optional[bool] = None) -> None:
    """Register *trace* under *key*; optionally spill it to disk."""
    _REGISTRY.pop(key, None)
    _REGISTRY[key] = trace
    while len(_REGISTRY) > _REGISTRY_CAP:
        _REGISTRY.pop(next(iter(_REGISTRY)))
    if spill_enabled(spill):
        path = _spill_path(key)
        try:
            save_compressed(trace, path, level="fast")
        except OSError:
            return  # spilling is best-effort, like the simcache
        faults.maybe_fault("tracecache.spill", key=key, path=path)


def get_or_capture(
    net,
    machine,
    policy,
    n_layers,
    deduplicate: bool = True,
    spill: Optional[bool] = None,
) -> Tuple[RecordedTrace, bool]:
    """Return ``(trace, was_cached)`` for the given simulation inputs.

    On a registry/shm/spill miss the network is re-traced once with a
    :class:`~repro.machine.trace.TraceRecorder` and the result
    registered (and spilled, when enabled) for everyone else.
    """
    key = trace_key(net, machine, policy, n_layers, deduplicate)
    trace = get(key, spill=spill)
    if trace is not None:
        return trace, True
    trace = net.record_trace(
        machine, policy, n_layers=n_layers, deduplicate=deduplicate, key=key
    )
    put(key, trace, spill=spill)
    return trace, False


def clear_registry() -> None:
    """Drop all in-process traces (tests; does not touch spill files)."""
    _REGISTRY.clear()
