"""Registry for recorded kernel traces (capture-once / replay-many).

The macro-event stream a network's kernels emit is a pure function of
(layer structure, :class:`KernelPolicy`, layer limit / dedup settings)
plus the *VL-relevant* machine fields the kernels actually read: the ISA
name, the vector length, and the L1 line size (which sets burst and
unroll granularity in the GEMM micro-kernels).  Everything else — L2
geometry, lane count, latencies, prefetchers — only affects *pricing*,
not the event stream.  A one-axis co-design sweep along any of those
axes therefore re-emits the exact same trace at every design point.

This module keys traces by a content hash of exactly those inputs and
holds them in a small in-process registry, with optional on-disk spill
(``.npz`` next to ``.simcache/``) so parallel sweep workers — separate
processes — can share one capture.  See docs/TRACE_REPLAY.md.

Resolution of the ``use_trace`` tri-state (mirrors simcache):
explicit ``True``/``False`` wins; otherwise ``REPRO_TRACE`` ("0"/"off"
disable, "1"/"on" enable); otherwise the caller's *default* — ``True``
for multi-point sweeps, ``False`` for single simulations (capturing a
trace costs about a tenth of pricing it, so it only pays off when the
trace is replayed more than once).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional, Tuple

from ..machine.trace import TRACE_FORMAT_VERSION, RecordedTrace
from ..testing import faults
from .resilience import atomic_replace, quarantine
from .simcache import _canon, cache_dir

__all__ = [
    "trace_enabled",
    "spill_enabled",
    "verify_enabled",
    "spill_dir",
    "trace_key",
    "get",
    "put",
    "get_or_capture",
    "clear_registry",
]

_ENV_FLAG = "REPRO_TRACE"
_ENV_SPILL = "REPRO_TRACE_SPILL"
_ENV_DIR = "REPRO_TRACE_DIR"
_ENV_VERIFY = "REPRO_TRACE_VERIFY"

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")

#: In-process registry: key -> RecordedTrace.  Bounded — a 20-layer
#: YOLOv3 trace is ~1.4M events (~60 MB columnar, more once decoded), so
#: only the most recently used few stay resident.
_REGISTRY: dict = {}
_REGISTRY_CAP = 4


def trace_enabled(flag: Optional[bool] = None, default: bool = False) -> bool:
    """Resolve the ``use_trace`` tri-state (see module docstring)."""
    if flag is not None:
        return flag
    env = os.environ.get(_ENV_FLAG, "").strip().lower()
    if env in _TRUE:
        return True
    if env in _FALSE:
        return False
    return default


def spill_enabled(flag: Optional[bool] = None) -> bool:
    """Whether traces spill to disk (``REPRO_TRACE_SPILL``; default off)."""
    if flag is not None:
        return flag
    return os.environ.get(_ENV_SPILL, "").strip().lower() in _TRUE


def spill_dir() -> str:
    """Directory for spilled traces (next to the simcache by default)."""
    return os.environ.get(_ENV_DIR, "").strip() or os.path.join(
        cache_dir(), "traces"
    )


def trace_key(net, machine, policy, n_layers, deduplicate: bool = True) -> str:
    """Content hash of everything the *event stream* depends on.

    Deliberately excludes L2 size/assoc/latency, lane count, DRAM
    parameters, prefetchers — kernels never read those, so traces are
    shared across such sweep axes.  Includes the trace format version so
    stale spill files are never reused after an encoding change.
    """
    payload = {
        "trace_format": TRACE_FORMAT_VERSION,
        "net": {
            "name": net.name,
            "input_shape": list(net.input_shape),
            "layers": [repr(layer) for layer in net.layers],
        },
        "policy": _canon(policy),
        "n_layers": n_layers,
        "deduplicate": deduplicate,
        "machine": {
            "isa_name": machine.isa_name,
            "vlen_bits": machine.vlen_bits,
            "l1_line_bytes": machine.l1.line_bytes,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _spill_path(key: str) -> str:
    return os.path.join(spill_dir(), key + ".npz")


def verify_enabled() -> bool:
    """Whether spill-loaded traces are run through the static verifier.

    ``REPRO_TRACE_VERIFY=1`` guards against corrupted or hand-edited
    spill files poisoning a sweep: a trace that fails
    :func:`repro.analysis.verify_trace` is treated as a cache miss (and
    re-captured), never replayed.  Off by default — in-process traces
    are trusted, and the verifier costs a few ms per load.
    """
    return os.environ.get(_ENV_VERIFY, "").strip().lower() in _TRUE


def get(key: str, spill: Optional[bool] = None) -> Optional[RecordedTrace]:
    """Look *key* up in the registry, then (optionally) on disk."""
    trace = _REGISTRY.get(key)
    if trace is not None:
        # Refresh LRU position.
        _REGISTRY.pop(key, None)
        _REGISTRY[key] = trace
        return trace
    if spill_enabled(spill):
        path = _spill_path(key)
        try:
            trace = RecordedTrace.load(path)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Truncated zip, bit-flipped columns, stale format, digest
            # mismatch: quarantine the spill and report a miss — the
            # caller re-captures (or simulates the point directly).
            quarantine(path, f"unreadable trace spill: {exc}")
            return None
        if verify_enabled():
            from ..analysis import verify_trace  # deferred import

            if verify_trace(trace):
                quarantine(path, "spilled trace failed static verification")
                return None  # corrupted spill: treat as a miss
        put(key, trace, spill=False)  # already on disk
        return trace
    return None


def put(key: str, trace: RecordedTrace, spill: Optional[bool] = None) -> None:
    """Register *trace* under *key*; optionally spill it to disk."""
    _REGISTRY.pop(key, None)
    _REGISTRY[key] = trace
    while len(_REGISTRY) > _REGISTRY_CAP:
        _REGISTRY.pop(next(iter(_REGISTRY)))
    if spill_enabled(spill):
        path = _spill_path(key)

        def write(tmp: str) -> None:
            trace.save(tmp)
            faults.maybe_fault("tracecache.write", key=key, path=tmp)

        try:
            # The .npz suffix matters: numpy would otherwise append one
            # and write next to the (empty) temp placeholder.
            atomic_replace(path, write, suffix=".npz")
        except OSError:
            return  # spilling is best-effort, like the simcache
        faults.maybe_fault("tracecache.spill", key=key, path=path)


def get_or_capture(
    net,
    machine,
    policy,
    n_layers,
    deduplicate: bool = True,
    spill: Optional[bool] = None,
) -> Tuple[RecordedTrace, bool]:
    """Return ``(trace, was_cached)`` for the given simulation inputs.

    On a registry/spill miss the network is re-traced once with a
    :class:`~repro.machine.trace.TraceRecorder` and the result
    registered (and spilled, when enabled) for everyone else.
    """
    key = trace_key(net, machine, policy, n_layers, deduplicate)
    trace = get(key, spill=spill)
    if trace is not None:
        return trace, True
    trace = net.record_trace(
        machine, policy, n_layers=n_layers, deduplicate=deduplicate, key=key
    )
    put(key, trace, spill=spill)
    return trace, False


def clear_registry() -> None:
    """Drop all in-process traces (tests; does not touch spill files)."""
    _REGISTRY.clear()
