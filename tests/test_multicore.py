"""Tests for the multi-core scaling extension."""

import pytest

from repro.core import machine_per_core, scaling_curve, simulate_multicore
from repro.machine import MB, rvv_gem5
from repro.nets import ConvLayer, KernelPolicy, Network


def net():
    # Width 256 so 32-pixel shard alignment stays exact up to 8 cores.
    return Network(
        [ConvLayer(16, 3, 1), ConvLayer(32, 3, 2)], input_shape=(8, 64, 256)
    )


class TestMachinePerCore:
    def test_single_core_identity(self):
        m = rvv_gem5()
        assert machine_per_core(m, 1) is m

    def test_l2_partitioned(self):
        m = rvv_gem5(l2_mb=8)
        per = machine_per_core(m, 4)
        assert per.l2.size_bytes == 2 * MB
        assert per.l2.assoc == m.l2.assoc

    def test_dram_bw_shared(self):
        m = rvv_gem5()
        per = machine_per_core(m, 4)
        assert per.dram_bytes_per_cycle == m.dram_bytes_per_cycle // 4

    def test_geometry_stays_legal(self):
        m = rvv_gem5(l2_mb=1)
        per = machine_per_core(m, 3)
        # size must stay a multiple of assoc*line
        assert per.l2.size_bytes % (per.l2.assoc * per.l2.line_bytes) == 0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            machine_per_core(rvv_gem5(), 0)


class TestSimulateMulticore:
    def test_one_core_matches_single(self):
        n = net()
        m = rvv_gem5(2048)
        single = n.simulate(m, KernelPolicy())
        multi = simulate_multicore(n, m, KernelPolicy(), cores=1)
        assert multi.cycles == pytest.approx(single.cycles, rel=1e-9)
        assert multi.speedup_vs_1 == 1.0

    def test_more_cores_faster(self):
        n = net()
        m = rvv_gem5(2048, l2_mb=8)
        r2 = simulate_multicore(n, m, KernelPolicy(), cores=2)
        assert r2.speedup_vs_1 > 1.3

    def test_scaling_curve_monotone(self):
        curve = scaling_curve(
            net(), rvv_gem5(2048, l2_mb=8), KernelPolicy(), (1, 2, 4)
        )
        speeds = [r.speedup_vs_1 for r in curve]
        assert speeds[0] == 1.0
        assert speeds == sorted(speeds)

    def test_long_vectors_scale_worse(self):
        """The extension's co-design point: long vectors demand more
        bandwidth per core, so they saturate at fewer cores."""
        big = Network([ConvLayer(32, 3, 1)], input_shape=(32, 128, 128))
        short = scaling_curve(
            big, rvv_gem5(1024, l2_mb=4), KernelPolicy(gemm="3loop"), (1, 8)
        )[-1]
        long_ = scaling_curve(
            big, rvv_gem5(16384, l2_mb=4), KernelPolicy(gemm="3loop"), (1, 8)
        )[-1]
        assert long_.speedup_vs_1 < short.speedup_vs_1
