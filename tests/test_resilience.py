"""Fault-tolerant sweep execution: checkpoint/resume, retries, quarantine.

Every test drives the *production* code paths under injected faults
(:mod:`repro.testing.faults`) — worker crashes, hangs, mid-write
interrupts, cache corruption — and asserts the recovery contract: the
sweep completes, and its statistics are bitwise identical to a clean,
uninterrupted run.
"""

import json
import math
import os

import pytest

from repro.cli import main as cli_main
from repro.core import simcache, sweep_cache_sizes, sweep_vector_lengths, tracecache
from repro.core.resilience import (
    Journal,
    PointFailure,
    RetryPolicy,
    SweepError,
    atomic_replace,
    call_with_retries,
    list_journals,
    list_quarantined,
    payload_digest,
    quarantine,
    stats_from_payload,
    stats_payload,
    sweep_key,
)
from repro.machine import rvv_gem5
from repro.machine.simulator import SimStats
from repro.nets import ConvLayer, KernelPolicy, MaxPoolLayer, Network
from repro.testing.faults import FAULTS_ENV, FaultSpec, InjectedFault, install_faults

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Isolated .simcache/ (and journal/quarantine/traces under it)."""
    monkeypatch.setenv("REPRO_SIMCACHE_DIR", str(tmp_path / ".simcache"))
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv("REPRO_SIMCACHE", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_SPILL", raising=False)
    tracecache.clear_registry()
    yield tmp_path
    tracecache.clear_registry()


@pytest.fixture()
def fault_env(cache_env, monkeypatch):
    """Returns ``arm(specs)``: installs a fault schedule for this test."""

    def arm(*specs):
        path = install_faults(str(cache_env / "faults.json"), specs)
        monkeypatch.setenv(FAULTS_ENV, path)
        return path

    return arm


def small_net(name="small"):
    return Network(
        [ConvLayer(8, 3, 1), MaxPoolLayer(2, 2), ConvLayer(16, 3, 1)],
        input_shape=(4, 16, 16),
        name=name,
    )


def rvv_cache_factory(mb):
    return rvv_gem5(vlen_bits=512, lanes=4, l2_mb=mb)


def rvv_vlen_factory(v):
    return rvv_gem5(vlen_bits=v, lanes=4, l2_mb=1)


def assert_identical(a: SimStats, b: SimStats):
    for name in SimStats.FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.kernel_cycles == b.kernel_cycles


#: Fast retry policy so tests never sleep for real.
FAST = RetryPolicy(max_retries=2, backoff_s=0.001, max_backoff_s=0.01)


# ----------------------------------------------------------------------
# Atomic writes (the PR's bugfix satellite)
# ----------------------------------------------------------------------

class TestAtomicReplace:
    def test_success_replaces_atomically(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_replace(str(path), lambda tmp: open(tmp, "w").write("new"))
        assert path.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_keyboard_interrupt_leaves_no_partial_file(self, tmp_path):
        path = tmp_path / "out.json"

        def write(tmp):
            with open(tmp, "w") as fh:
                fh.write("partial")
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            atomic_replace(str(path), write)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # temp file cleaned up too

    def test_simcache_store_interrupted_midwrite_leaves_nothing(
        self, cache_env, fault_env
    ):
        """The original leak: ^C during a simcache write used to leave a
        truncated entry behind that poisoned the next run."""
        arm = fault_env
        arm(FaultSpec(site="simcache.write", kind="keyboard-interrupt"))
        net = small_net()
        key = simcache.cache_key(net, rvv_cache_factory(1), KernelPolicy(), None, True)
        stats = net.simulate(rvv_cache_factory(1), use_cache=False, use_trace=False)
        with pytest.raises(KeyboardInterrupt):
            simcache.store(key, stats)
        cache = cache_env / ".simcache"
        assert not (cache / (key + ".json")).exists()
        assert not any(p.suffix == ".tmp" for p in cache.iterdir())
        assert simcache.load(key) is None  # a clean miss, not an error


# ----------------------------------------------------------------------
# Cache integrity: checksums and quarantine
# ----------------------------------------------------------------------

class TestSimcacheQuarantine:
    def _stored_entry(self, cache_env):
        net = small_net()
        machine = rvv_cache_factory(1)
        key = simcache.cache_key(net, machine, KernelPolicy(), None, True)
        stats = net.simulate(machine, use_cache=False, use_trace=False)
        simcache.store(key, stats)
        path = cache_env / ".simcache" / (key + ".json")
        assert path.exists()
        return key, path, stats

    def test_roundtrip_has_valid_digest(self, cache_env):
        key, path, stats = self._stored_entry(cache_env)
        entry = json.loads(path.read_text())
        assert entry["sha256"] == payload_digest(entry["payload"])
        assert_identical(simcache.load(key), stats)

    @pytest.mark.parametrize("damage", ["flip", "truncate", "garbage"])
    def test_damaged_entry_is_quarantined_and_recomputed(self, cache_env, damage):
        key, path, stats = self._stored_entry(cache_env)
        raw = path.read_bytes()
        if damage == "flip":  # valid JSON, wrong digest
            entry = json.loads(raw)
            entry["payload"]["fields"]["cycles"] += 1.0
            path.write_text(json.dumps(entry))
        elif damage == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        else:
            path.write_text("not json at all")
        assert simcache.load(key) is None
        assert not path.exists()  # moved, not left to be re-served
        (entry,) = list_quarantined()
        assert "corrupt simcache entry" in entry["reason"]
        # The sweep transparently recomputes and re-stores.
        fresh = small_net().simulate(
            rvv_cache_factory(1), use_cache=False, use_trace=False
        )
        simcache.store(key, fresh)
        assert_identical(simcache.load(key), stats)

    def test_stale_model_version_is_quarantined(self, cache_env):
        key, path, _ = self._stored_entry(cache_env)
        entry = json.loads(path.read_text())
        entry["model_version"] = "1999-01-pr0"
        path.write_text(json.dumps(entry))
        assert simcache.load(key) is None
        assert len(list_quarantined()) == 1

    def test_quarantine_records_reason_sidecar(self, cache_env):
        victim = cache_env / ".simcache" / "bad.json"
        victim.parent.mkdir(parents=True, exist_ok=True)
        victim.write_text("junk")
        dest = quarantine(str(victim), "because tests")
        assert dest is not None and os.path.exists(dest)
        (info,) = list_quarantined()
        assert info["reason"] == "because tests"
        assert info["when"] > 0


class TestTraceSpillQuarantine:
    @pytest.mark.parametrize("fault_kind", ["truncate", "corrupt"])
    def test_damaged_spill_degrades_gracefully(
        self, cache_env, fault_env, monkeypatch, fault_kind
    ):
        """A mangled on-disk trace must never poison a sweep: the spill
        is quarantined and the points simulate directly, bitwise equal."""
        monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
        net = small_net()
        mbs = [1, 2, 4]
        clean = sweep_cache_sizes(net, mbs, rvv_cache_factory, jobs=1)
        tracecache.get_or_capture(net, rvv_cache_factory(1), KernelPolicy(), None)
        spills = list((cache_env / ".simcache" / "traces").glob("*.rtz"))
        assert spills, "get_or_capture should have spilled the trace"
        tracecache.clear_registry()  # force the reload from disk
        arm = fault_env
        arm(FaultSpec(site="tracecache.spill", kind=fault_kind))
        # Fire the mangler on the existing spill via its own site.
        from repro.testing import faults

        faults.maybe_fault("tracecache.spill", path=str(spills[0]))
        again = sweep_cache_sizes(net, mbs, rvv_cache_factory, jobs=1)
        for a, b in zip(clean.stats, again.stats):
            assert_identical(a, b)
        assert any(
            "unreadable trace spill" in q["reason"] for q in list_quarantined()
        )

    def test_spill_header_carries_content_digest(self, cache_env, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
        net = small_net()
        tracecache.get_or_capture(net, rvv_cache_factory(1), KernelPolicy(), None)

        (spill,) = list((cache_env / ".simcache" / "traces").glob("*.rtz"))
        blob = spill.read_bytes()
        assert blob[:4] == b"RTRC"
        hlen = int.from_bytes(blob[5:9], "little")
        header = json.loads(blob[9:9 + hlen].decode("utf-8"))
        assert "sha256" in header


# ----------------------------------------------------------------------
# Retry policy and failure budgets
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff_s=0.1, factor=2.0, max_backoff_s=0.4, jitter=0.0)
        delays = [policy.delay(a, "x") for a in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.1, jitter=0.25)
        a = policy.delay(1, "pt0")
        assert a == policy.delay(1, "pt0")  # reproducible
        assert a != policy.delay(1, "pt1")  # desynchronized across points
        assert 0.075 <= a <= 0.125

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_BACKOFF", "0.5")
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "9")
        monkeypatch.setenv("REPRO_MAX_FAILURES", "3")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.backoff_s == 0.5
        assert policy.timeout_s == 9
        assert policy.max_failures == 3

    def test_call_with_retries_eventually_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        result, attempts = call_with_retries(flaky, FAST, "seed")
        assert result == "ok" and attempts == 3

    def test_call_with_retries_reraises_after_budget(self):
        def broken():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            call_with_retries(broken, RetryPolicy(max_retries=1, backoff_s=0.001), "s")


class TestFailureBudget:
    def test_serial_degrades_failed_point(self, cache_env, fault_env):
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="raise", index=1, times=99))
        net = small_net()
        res = sweep_cache_sizes(
            net, [1, 2, 4], rvv_cache_factory, jobs=1,
            retry=RetryPolicy(max_retries=1, backoff_s=0.001), max_failures=1,
        )
        assert not res.ok
        assert res.sources[1] == "failed"
        (failure,) = res.failures()
        assert failure.index == 1
        assert failure.exc_type == "InjectedFault"
        assert math.isnan(res.stats[1].cycles)  # reporting still works
        assert res.as_rows()[1]["source"] == "failed"

    def test_fail_fast_raises_original_exception(self, cache_env, fault_env):
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="raise", index=0, times=99))
        with pytest.raises(InjectedFault):
            sweep_cache_sizes(
                small_net(), [1, 2], rvv_cache_factory, jobs=1,
                retry=RetryPolicy(max_retries=0, backoff_s=0.001),
            )

    def test_budget_overflow_raises_sweep_error(self, cache_env, fault_env):
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="raise", times=99))
        with pytest.raises(SweepError) as err:
            sweep_cache_sizes(
                small_net(), [1, 2, 4], rvv_cache_factory, jobs=1,
                retry=RetryPolicy(max_retries=0, backoff_s=0.001), max_failures=1,
            )
        assert len(err.value.failures) == 2


# ----------------------------------------------------------------------
# The sweep journal
# ----------------------------------------------------------------------

class TestJournal:
    def _key(self):
        net = small_net()
        values = [1, 2, 4]
        machines = [rvv_cache_factory(v) for v in values]
        return sweep_key(net, "l2_mb", values, machines, KernelPolicy(), None)

    def _stats(self):
        return small_net().simulate(
            rvv_cache_factory(1), use_cache=False, use_trace=False
        )

    def test_roundtrip_restores_exact_stats(self, cache_env):
        key, stats = self._key(), self._stats()
        journal = Journal.open(key, 3)
        journal.record_point(1, stats, "direct")
        journal.close()
        reopened = Journal.open(key, 3)
        restored, source = reopened.completed[1]
        reopened.close()
        assert source == "direct"
        assert_identical(restored, stats)
        assert reopened.pending() == [0, 2]

    def test_corrupt_journal_line_is_skipped(self, cache_env):
        key, stats = self._key(), self._stats()
        journal = Journal.open(key, 3)
        journal.record_point(0, stats, "direct")
        journal.record_point(1, stats, "direct")
        journal.close()
        lines = open(journal.path).readlines()
        # Mangle point 1's checkpoint: flip a digit inside its digest.
        lines[2] = lines[2].replace(lines[2].split('"sha256": "')[1][:6], "000000")
        open(journal.path, "w").writelines(lines)
        reopened = Journal.open(key, 3)
        reopened.close()
        assert 0 in reopened.completed
        assert reopened.pending() == [1, 2]  # bad line dropped, not trusted

    def test_header_mismatch_quarantines_old_journal(self, cache_env):
        key = self._key()
        journal = Journal.open(key, 3)
        journal.record_point(0, self._stats(), "direct")
        journal.close()
        # Same key, different grid size: a different sweep entirely.
        reopened = Journal.open(key, 5)
        reopened.close()
        assert reopened.completed == {}
        assert any(
            "journal header mismatch" in q["reason"] for q in list_quarantined()
        )

    def test_status_never_creates_files(self, cache_env):
        key = self._key()
        status = Journal.status(key, 3)
        assert status.pending() == [0, 1, 2]
        assert not os.path.exists(status.path)

    def test_done_and_failure_records(self, cache_env):
        key = self._key()
        journal = Journal.open(key, 2)
        journal.record_failure(
            PointFailure(index=1, error="boom", exc_type="RuntimeError", attempts=3)
        )
        journal.mark_done()
        journal.close()
        summary = [j for j in list_journals() if j["sweep_key"] == key]
        assert summary and summary[0]["n_failed"] == 1 and summary[0]["done"]


# ----------------------------------------------------------------------
# Checkpoint/resume: the bitwise-identity property (tentpole)
# ----------------------------------------------------------------------

class TestResumeIdentity:
    """An interrupted sweep, resumed, equals an uninterrupted sweep —
    across serial/parallel execution and trace on/off."""

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("use_trace", [False, True])
    def test_interrupt_resume_is_bitwise_identical(
        self, cache_env, fault_env, monkeypatch, jobs, use_trace
    ):
        net = small_net()
        mbs = [1, 2, 4, 8]
        clean = sweep_cache_sizes(
            net, mbs, rvv_cache_factory, jobs=1, use_trace=use_trace
        )
        # Interrupt: point 2 raises until the fail-fast abort triggers.
        arm = fault_env
        schedule = arm(
            FaultSpec(site="worker.point", kind="raise", index=2, times=4)
        )
        with pytest.raises((InjectedFault, SweepError)):
            sweep_cache_sizes(
                net, mbs, rvv_cache_factory, jobs=jobs, use_trace=use_trace,
                resume=True, retry=RetryPolicy(max_retries=0, backoff_s=0.001),
            )
        monkeypatch.delenv(FAULTS_ENV)
        assert os.path.exists(schedule)
        # Resume: completes the grid, restoring any checkpointed points.
        resumed = sweep_cache_sizes(
            net, mbs, rvv_cache_factory, jobs=jobs, use_trace=use_trace,
            resume=True, retry=FAST,
        )
        assert resumed.ok
        for a, b in zip(clean.stats, resumed.stats):
            assert_identical(a, b)
        # A second resume is pure journal replay — nothing simulates.
        replayed = sweep_cache_sizes(
            net, mbs, rvv_cache_factory, jobs=jobs, use_trace=use_trace,
            resume=True,
        )
        assert replayed.sources == ["journal"] * len(mbs)
        for a, b in zip(clean.stats, replayed.stats):
            assert_identical(a, b)
        done = [j for j in list_journals() if j["done"]]
        assert done and done[0]["n_ok"] == len(mbs)

    def test_resume_after_failure_budget_retries_failed_points(
        self, cache_env, fault_env, monkeypatch
    ):
        """Points degraded to PointFailure are *not* checkpointed as
        done: the next resume retries exactly those."""
        net = small_net()
        mbs = [1, 2, 4]
        clean = sweep_cache_sizes(net, mbs, rvv_cache_factory, jobs=1)
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="raise", index=1, times=99))
        partial = sweep_cache_sizes(
            net, mbs, rvv_cache_factory, jobs=1, resume=True,
            retry=RetryPolicy(max_retries=0, backoff_s=0.001), max_failures=1,
        )
        assert partial.sources[1] == "failed"
        monkeypatch.delenv(FAULTS_ENV)
        resumed = sweep_cache_sizes(
            net, mbs, rvv_cache_factory, jobs=1, resume=True, retry=FAST
        )
        assert resumed.ok
        assert resumed.sources[0] == "journal" and resumed.sources[2] == "journal"
        assert resumed.sources[1] != "journal"  # genuinely re-simulated
        for a, b in zip(clean.stats, resumed.stats):
            assert_identical(a, b)


# ----------------------------------------------------------------------
# Parallel supervision: crashes, hangs, transient raises
# ----------------------------------------------------------------------

class TestParallelSupervision:
    def test_worker_crash_is_retried_and_identical(self, cache_env, fault_env):
        """A worker dying with SIGKILL semantics (os._exit) loses its
        task; the supervisor detects the death and resubmits."""
        net = small_net()
        vlens = [512, 1024, 2048]
        clean = sweep_vector_lengths(net, vlens, rvv_vlen_factory, jobs=1)
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="crash", index=1, times=1))
        recovered = sweep_vector_lengths(
            net, vlens, rvv_vlen_factory, jobs=2, retry=FAST
        )
        for a, b in zip(clean.stats, recovered.stats):
            assert_identical(a, b)

    def test_transient_raise_is_retried_and_identical(self, cache_env, fault_env):
        net = small_net()
        mbs = [1, 2, 4, 8]
        clean = sweep_cache_sizes(net, mbs, rvv_cache_factory, jobs=1)
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="raise", index=3, times=2))
        recovered = sweep_cache_sizes(
            net, mbs, rvv_cache_factory, jobs=2,
            retry=RetryPolicy(max_retries=3, backoff_s=0.001),
        )
        for a, b in zip(clean.stats, recovered.stats):
            assert_identical(a, b)

    def test_hung_worker_times_out_and_recovers(self, cache_env, fault_env):
        net = small_net()
        vlens = [512, 1024]
        clean = sweep_vector_lengths(net, vlens, rvv_vlen_factory, jobs=1)
        arm = fault_env
        arm(
            FaultSpec(
                site="worker.point", kind="hang", index=0, times=1, seconds=20.0
            )
        )
        recovered = sweep_vector_lengths(
            net, vlens, rvv_vlen_factory, jobs=2,
            retry=RetryPolicy(max_retries=2, backoff_s=0.001, timeout_s=1.0),
        )
        for a, b in zip(clean.stats, recovered.stats):
            assert_identical(a, b)


# ----------------------------------------------------------------------
# CLI: --dry-run, --resume, --json, --max-failures
# ----------------------------------------------------------------------

class TestSweepCli:
    ARGS = [
        "sweep", "--net", "yolov3-tiny", "--layers", "2",
        "--axis", "cache", "--values", "1", "2",
    ]

    def test_dry_run_reports_pending_grid(self, cache_env, capsys):
        assert cli_main([*self.ARGS, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "pending: 2/2" in out
        assert "estimated kernel runs: 1" in out  # one shared trace group

    def test_dry_run_json_counts_journal_and_cache(self, cache_env, capsys):
        assert cli_main([*self.ARGS, "--resume"]) == 0
        capsys.readouterr()
        assert cli_main([*self.ARGS, "--dry-run", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["journal"] == 2
        assert doc["summary"]["pending"] == 0
        assert doc["summary"]["journal_done"] is True
        assert [p["state"] for p in doc["points"]] == ["journal", "journal"]

    def test_dry_run_simulates_nothing(self, cache_env, capsys, monkeypatch):
        from repro.nets.network import Network as Net

        def boom(*a, **k):  # pragma: no cover - only fires on regression
            raise AssertionError("dry run must not simulate")

        monkeypatch.setattr(Net, "simulate", boom)
        assert cli_main([*self.ARGS, "--dry-run"]) == 0

    def test_resume_json_roundtrip_is_exact(self, cache_env, capsys):
        assert cli_main([*self.ARGS, "--resume", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli_main([*self.ARGS, "--resume", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert [p["source"] for p in second["points"]] == ["journal", "journal"]
        for a, b in zip(first["points"], second["points"]):
            assert a["stats"] == b["stats"]  # exact float round-trip

    def test_max_failures_exit_code_and_report(
        self, cache_env, fault_env, capsys
    ):
        arm = fault_env
        arm(FaultSpec(site="worker.point", kind="raise", index=0, times=99))
        code = cli_main(
            [*self.ARGS, "--max-failures", "1", "--retries", "0", "--json"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["points"][0]["source"] == "failed"
        assert doc["points"][0]["failure"]["exc_type"] == "InjectedFault"
        assert "stats" in doc["points"][1]


# ----------------------------------------------------------------------
# Analysis rules: cache/corrupt-entry and sweep/orphaned-journal
# ----------------------------------------------------------------------

class TestCacheStateRules:
    def test_rules_are_registered(self):
        from repro.analysis.rules import RULES

        assert RULES["cache/corrupt-entry"][0] == "warning"
        assert RULES["sweep/orphaned-journal"][1] == "cachestate"

    def test_quarantined_entry_yields_finding(self, cache_env):
        from repro.analysis import cache_state_findings

        victim = cache_env / ".simcache" / "bad.json"
        victim.parent.mkdir(parents=True, exist_ok=True)
        victim.write_text("junk")
        quarantine(str(victim), "torn write")
        (finding,) = cache_state_findings()
        assert finding.rule == "cache/corrupt-entry"
        assert finding.severity == "warning"
        assert finding.message == "torn write"

    def test_orphaned_journal_yields_finding(self, cache_env):
        from repro.analysis import cache_state_findings

        net = small_net()
        values = [1, 2]
        machines = [rvv_cache_factory(v) for v in values]
        key = sweep_key(net, "l2_mb", values, machines, KernelPolicy(), None)
        journal = Journal.open(key, 2)
        journal.record_point(
            0, net.simulate(machines[0], use_cache=False, use_trace=False), "direct"
        )
        journal.close()  # interrupted: never marked done
        old = os.path.getmtime(journal.path) - 3600
        os.utime(journal.path, (old, old))
        findings = [
            f for f in cache_state_findings() if f.rule == "sweep/orphaned-journal"
        ]
        assert len(findings) == 1
        assert "1/2 points done" in findings[0].message
        assert findings[0].detail["sweep_key"] == key

    def test_fresh_journal_is_not_an_orphan(self, cache_env):
        from repro.analysis import cache_state_findings

        sweep_cache_sizes(
            small_net(), [1, 2], rvv_cache_factory, jobs=1, resume=True
        )
        assert cache_state_findings() == []  # done journals never flagged

    def test_baseline_excludes_environmental_findings(self, cache_env):
        from repro.analysis import canonical_report
        from repro.analysis.findings import AnalysisReport, Finding

        report = AnalysisReport(net="n", machine="m", policy="p")
        report.findings.append(
            Finding(
                rule="cache/corrupt-entry", severity="warning",
                where="x.json", message="local noise",
            )
        )
        doc = canonical_report(report)
        assert doc["findings"] == []
        assert doc["ok"] is True  # committed baselines stay env-independent


# ----------------------------------------------------------------------
# Payload round-trips (property-based when hypothesis is present)
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:

    finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

    class TestPayloadProperties:
        @settings(max_examples=50, deadline=None)
        @given(
            values=st.lists(finite, min_size=len(SimStats.FIELDS),
                            max_size=len(SimStats.FIELDS)),
            kernels=st.dictionaries(
                st.text(min_size=1, max_size=8), finite, max_size=4
            ),
        )
        def test_stats_payload_roundtrip_is_exact(self, values, kernels):
            stats = SimStats(**dict(zip(SimStats.FIELDS, values)))
            stats.kernel_cycles = dict(kernels)
            payload = stats_payload(stats)
            # Through JSON text, as the journal and simcache store it.
            payload = json.loads(json.dumps(payload))
            restored = stats_from_payload(payload)
            for name in SimStats.FIELDS:
                assert getattr(restored, name) == getattr(stats, name)
            assert restored.kernel_cycles == stats.kernel_cycles
            assert payload_digest(payload) == payload_digest(
                json.loads(json.dumps(payload))
            )
