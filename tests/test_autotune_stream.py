"""Tests for the block-size auto-tuner and streaming-inference support."""

import pytest

from repro.core import autotune_blocks, candidate_blockings
from repro.kernels import BlockSizes
from repro.machine import MB, rvv_gem5
from repro.nets import ConvLayer, KernelPolicy, Network


class TestCandidates:
    def test_footprint_filter(self):
        small = candidate_blockings(rvv_gem5(l2_mb=1))
        large = candidate_blockings(rvv_gem5(l2_mb=64))
        assert len(small) <= len(large)
        budget = 1 * MB
        assert all(b.footprint_bytes() <= budget for b in small)

    def test_unroll_floor(self):
        cands = candidate_blockings(rvv_gem5(), ms=(8, 16, 32), unroll=16)
        assert all(b.m >= 16 for b in cands)


class TestAutotune:
    def test_returns_ranked(self):
        best, ranking = autotune_blocks(
            rvv_gem5(512), 64, 4096, 128,
            candidates=[BlockSizes(16, 256, 64), BlockSizes(16, 512, 128)],
        )
        assert best == ranking[0].blocks
        cycles = [r.cycles for r in ranking]
        assert cycles == sorted(cycles)

    def test_best_close_to_paper_on_rvv(self):
        """Table II: the paper's hand search lands on 16x512x128; the
        auto-tuner's winner must be within a few percent of it."""
        machine = rvv_gem5(512, l2_mb=1)
        M, N, K = 64, 23104, 288  # an early YOLOv3 layer
        best, ranking = autotune_blocks(machine, M, N, K)
        by_blocks = {r.blocks: r.cycles for r in ranking}
        paper = by_blocks.get(BlockSizes(16, 512, 128))
        assert paper is not None
        assert ranking[0].cycles >= 0.9 * paper * 0.9  # sanity
        assert by_blocks[best] <= paper <= 1.1 * by_blocks[best]

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            autotune_blocks(rvv_gem5(), 0, 10, 10)

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            autotune_blocks(rvv_gem5(), 8, 8, 8, candidates=[])


class TestStreaming:
    def net(self):
        return Network(
            [ConvLayer(16, 3, 1), ConvLayer(16, 3, 1)], input_shape=(8, 48, 48)
        )

    def test_per_image_stats(self):
        per = self.net().simulate_stream(rvv_gem5(2048, l2_mb=64), n_images=3)
        assert len(per) == 3
        assert all(st.cycles > 0 for st in per)

    def test_steady_state_at_least_as_fast(self):
        """Later images reuse warmed caches (weights, workspace)."""
        per = self.net().simulate_stream(rvv_gem5(2048, l2_mb=64), n_images=3)
        assert per[1].cycles <= per[0].cycles
        assert per[2].cycles == pytest.approx(per[1].cycles, rel=0.02)

    def test_small_cache_limits_steady_state_miss_rate(self):
        """With a ~10 MB working set, a 64 MB L2 retains it between
        images; a 1 MB L2 cannot."""
        net = Network([ConvLayer(32, 3, 1)], input_shape=(32, 96, 96))
        big = net.simulate_stream(rvv_gem5(2048, l2_mb=64), n_images=2)
        small = net.simulate_stream(rvv_gem5(2048, l2_mb=1), n_images=2)
        assert big[1].l2_miss_rate < small[1].l2_miss_rate
        assert big[1].cycles < small[1].cycles

    def test_matches_single_simulation_first_image(self):
        net = self.net()
        one = net.simulate(rvv_gem5(2048), KernelPolicy())
        stream = net.simulate_stream(rvv_gem5(2048), KernelPolicy(), n_images=1)
        assert stream[0].cycles == pytest.approx(one.cycles, rel=1e-9)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            self.net().simulate_stream(rvv_gem5(), n_images=0)
