"""Tests for ConvSpec geometry and the paper's GEMM mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels import ConvSpec


class TestGeometry:
    def test_same_padding_stride1(self):
        s = ConvSpec(3, 608, 608, 32, ksize=3, stride=1, pad=1)
        assert (s.out_h, s.out_w) == (608, 608)

    def test_stride2_halves(self):
        s = ConvSpec(32, 608, 608, 64, ksize=3, stride=2, pad=1)
        assert (s.out_h, s.out_w) == (304, 304)

    def test_1x1(self):
        s = ConvSpec(64, 304, 304, 32, ksize=1, stride=1, pad=0)
        assert (s.out_h, s.out_w) == (304, 304)

    def test_no_pad_shrinks(self):
        s = ConvSpec(3, 10, 10, 4, ksize=3, stride=1, pad=0)
        assert (s.out_h, s.out_w) == (8, 8)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConvSpec(0, 10, 10, 4)
        with pytest.raises(ValueError):
            ConvSpec(3, 10, 10, 4, pad=-1)
        with pytest.raises(ValueError):
            ConvSpec(3, 10, 10, 4, stride=0)


class TestGemmMapping:
    """Table IV of the paper pins YOLOv3's per-layer M/N/K at 608x608."""

    def test_yolo_l1(self):
        s = ConvSpec(3, 608, 608, 32, 3, 1, 1)
        assert (s.M, s.N, s.K) == (32, 369664, 27)

    def test_yolo_l2(self):
        s = ConvSpec(32, 608, 608, 64, 3, 2, 1)
        assert (s.M, s.N, s.K) == (64, 92416, 288)

    def test_yolo_l3(self):
        s = ConvSpec(64, 304, 304, 32, 1, 1, 0)
        assert (s.M, s.N, s.K) == (32, 92416, 64)

    def test_yolo_l44(self):
        s = ConvSpec(512, 19, 19, 1024, 3, 1, 1)
        assert (s.M, s.N, s.K) == (1024, 361, 4608)

    def test_macs(self):
        s = ConvSpec(3, 4, 4, 2, 3, 1, 1)
        assert s.macs == s.M * s.N * s.K
        assert s.flops == 2 * s.macs


class TestArithmeticIntensity:
    """AI formula from Section VI-C(a), checked against Table IV rows."""

    @pytest.mark.parametrize(
        "m,n,k,ai",
        [
            (32, 369664, 27, 7.32),
            (64, 92416, 288, 26),
            (128, 23104, 576, 52),
            (256, 5776, 1152, 101),
            (1024, 361, 4608, 126),
            (512, 1444, 2304, 162),
        ],
    )
    def test_table4_values(self, m, n, k, ai):
        computed = (2.0 * m * n * k) / (4.0 * (m * n + k * n + m * k))
        assert computed == pytest.approx(ai, rel=0.02)

    def test_spec_matches_formula(self):
        s = ConvSpec(32, 608, 608, 64, 3, 2, 1)
        m, n, k = s.M, s.N, s.K
        expect = (2.0 * m * n * k) / (4.0 * (m * n + k * n + m * k))
        assert s.arithmetic_intensity() == pytest.approx(expect)


class TestWinogradEligibility:
    def test_3x3_eligible(self):
        assert ConvSpec(3, 10, 10, 4, ksize=3).winograd_eligible
        assert ConvSpec(3, 10, 10, 4, ksize=3, stride=2).winograd_eligible

    def test_1x1_not(self):
        assert not ConvSpec(3, 10, 10, 4, ksize=1, pad=0).winograd_eligible


@given(
    c=st.integers(1, 16),
    h=st.integers(3, 64),
    w=st.integers(3, 64),
    f=st.integers(1, 16),
    k=st.integers(1, 5),
    s=st.integers(1, 3),
    p=st.integers(0, 3),
)
def test_output_dims_darknet_formula(c, h, w, f, k, s, p):
    if h + 2 * p < k or w + 2 * p < k:
        return
    spec = ConvSpec(c, h, w, f, k, s, p)
    assert spec.out_h == (h + 2 * p - k) // s + 1
    assert spec.out_w == (w + 2 * p - k) // s + 1
    assert spec.out_h >= 1 and spec.out_w >= 1
