"""Tests for the full Winograd convolution and inter-tile kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import RVV, SVE
from repro.kernels import ConvSpec, direct_conv2d
from repro.kernels.winograd import (
    f6x3,
    interchannel_count,
    pack_rows,
    row_combine,
    tile_transform_intertile,
    trace_winograd_conv,
    unpack_rows,
    weight_transform_batched,
    winograd_conv2d,
    winograd_tile_count,
)
from repro.machine import TraceSimulator, a64fx, rvv_gem5, sve_gem5


def rand_layer(spec, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.in_channels, spec.in_h, spec.in_w)).astype(np.float32)
    w = rng.standard_normal(
        (spec.out_channels, spec.in_channels, spec.ksize, spec.ksize)
    ).astype(np.float32)
    return x, w


class TestConvCorrectness:
    @pytest.mark.parametrize(
        "spec",
        [
            ConvSpec(1, 8, 8, 1, 3, 1, 1),
            ConvSpec(3, 14, 11, 5, 3, 1, 1),
            ConvSpec(4, 20, 17, 6, 3, 1, 1),
            ConvSpec(2, 6, 6, 2, 3, 1, 0),  # no padding
            ConvSpec(5, 32, 32, 4, 3, 1, 1),
        ],
    )
    def test_stride1_matches_direct(self, spec):
        x, w = rand_layer(spec)
        y = winograd_conv2d(x, w, spec)
        ref = direct_conv2d(x, w, spec)
        np.testing.assert_allclose(y, ref, rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize(
        "spec",
        [
            ConvSpec(2, 9, 9, 3, 3, 2, 1),
            ConvSpec(3, 16, 12, 4, 3, 2, 1),
        ],
    )
    def test_stride2_matches_direct(self, spec):
        x, w = rand_layer(spec, seed=1)
        y = winograd_conv2d(x, w, spec)
        ref = direct_conv2d(x, w, spec)
        assert y.shape == ref.shape
        np.testing.assert_allclose(y, ref, rtol=1e-3, atol=1e-3)

    def test_offline_weight_transform_path(self):
        spec = ConvSpec(3, 12, 12, 4, 3, 1, 1)
        x, w = rand_layer(spec, seed=2)
        u = weight_transform_batched(f6x3(), w.astype(np.float64))
        y = winograd_conv2d(x, w, spec, transformed_weights=u)
        np.testing.assert_allclose(
            y, winograd_conv2d(x, w, spec), rtol=1e-6, atol=1e-6
        )

    def test_rejects_non3x3(self):
        spec = ConvSpec(3, 12, 12, 4, 1, 1, 0)
        x = np.zeros((3, 12, 12), dtype=np.float32)
        w = np.zeros((4, 3, 1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            winograd_conv2d(x, w, spec)

    def test_rejects_stride3(self):
        spec = ConvSpec(3, 12, 12, 4, 3, 3, 1)
        x, w = rand_layer(spec)
        with pytest.raises(ValueError):
            winograd_conv2d(x, w, spec)

    @given(seed=st.integers(0, 50), h=st.integers(7, 24), w=st.integers(7, 24))
    @settings(max_examples=15, deadline=None)
    def test_property_random_geometry(self, seed, h, w):
        spec = ConvSpec(2, h, w, 3, 3, 1, 1)
        x, wt = rand_layer(spec, seed)
        y = winograd_conv2d(x, wt, spec)
        ref = direct_conv2d(x, wt, spec)
        np.testing.assert_allclose(y, ref, rtol=2e-3, atol=2e-3)


class TestInterTileKernels:
    def test_interchannel_count_matches_paper(self):
        # Fig. 4: 512-bit -> 4 channels, 2048-bit -> 16 channels.
        assert interchannel_count(SVE(512)) == 4
        assert interchannel_count(SVE(2048)) == 16
        assert interchannel_count(RVV(16384)) == 128

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        tiles = rng.standard_normal((4, 8, 8))
        buf = pack_rows(tiles)
        assert buf.shape == (8, 32)
        # Buffer row i = row i of each tile, concatenated (Fig. 5).
        np.testing.assert_array_equal(buf[2, 8:16], tiles[1, 2])
        np.testing.assert_array_equal(unpack_rows(buf, 4, 8), tiles)

    def test_row_combine_matches_matmul(self):
        rng = np.random.default_rng(1)
        t = f6x3()
        tiles = rng.standard_normal((4, 8, 8))
        buf = pack_rows(tiles)
        out = row_combine(SVE(512), t.Bt, buf)
        expected = pack_rows(np.einsum("ij,cjk->cik", t.Bt, tiles))
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-12)

    def test_row_combine_shape_mismatch(self):
        with pytest.raises(ValueError):
            row_combine(SVE(512), np.zeros((8, 8)), np.zeros((7, 32)))

    @pytest.mark.parametrize("isa", [SVE(512), SVE(2048), RVV(512), RVV(4096)])
    def test_full_transform_matches_reference(self, isa):
        """The inter-tile 2-D transform equals B^T d B per tile, on both
        the SVE (register-transpose) and RVV (scatter/gather) paths."""
        rng = np.random.default_rng(2)
        t = f6x3()
        tiles = rng.standard_normal((10, 8, 8))  # non-multiple of group
        out = tile_transform_intertile(isa, t.Bt, tiles)
        ref = np.einsum("ij,cjk,lk->cil", t.Bt, tiles, t.Bt)
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-10)

    def test_rectangular_transform(self):
        """Weight transform G g G^T: 3x3 -> 8x8 through the same kernel."""
        rng = np.random.default_rng(3)
        t = f6x3()
        gs = rng.standard_normal((5, 3, 3))
        out = tile_transform_intertile(SVE(512), t.G, gs)
        ref = np.einsum("ij,cjk,lk->cil", t.G, gs, t.G)
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-10)

    def test_single_channel_fallback(self):
        # Fig. 4's count < 4 branch: fewer tiles than interchannels.
        t = f6x3()
        tiles = np.random.default_rng(4).standard_normal((1, 8, 8))
        out = tile_transform_intertile(SVE(2048), t.Bt, tiles)
        ref = t.Bt @ tiles[0] @ t.Bt.T
        np.testing.assert_allclose(out[0], ref, rtol=1e-9, atol=1e-10)


class TestTileCount:
    def test_tile_count_stride1(self):
        spec = ConvSpec(3, 24, 24, 4, 3, 1, 1)  # out 24x24 -> 4x4 tiles
        assert winograd_tile_count(spec) == 16

    def test_tile_count_rounds_up(self):
        spec = ConvSpec(3, 20, 20, 4, 3, 1, 1)  # out 20x20 -> ceil(20/6)=4
        assert winograd_tile_count(spec) == 16

    def test_stride2_uses_stride1_grid(self):
        s1 = ConvSpec(3, 24, 24, 4, 3, 1, 1)
        s2 = ConvSpec(3, 24, 24, 4, 3, 2, 1)
        assert winograd_tile_count(s2) == winograd_tile_count(s1)


class TestTrace:
    def test_trace_runs_and_attributes(self):
        sim = TraceSimulator(a64fx())
        trace_winograd_conv(sim, ConvSpec(16, 38, 38, 32, 3, 1, 1))
        kc = sim.stats.kernel_cycles
        assert kc.get("wino_tuple_mult", 0) > 0
        assert kc.get("wino_input_transform", 0) > 0
        assert kc.get("wino_output_transform", 0) > 0
        assert "wino_weight_transform" not in kc  # offline by default

    def test_weight_transform_optional(self):
        sim = TraceSimulator(a64fx())
        trace_winograd_conv(
            sim, ConvSpec(16, 38, 38, 32, 3, 1, 1), include_weight_transform=True
        )
        assert sim.stats.kernel_cycles.get("wino_weight_transform", 0) > 0

    def test_tuple_mult_flops_match_theory(self):
        spec = ConvSpec(16, 38, 38, 32, 3, 1, 1)
        sim = TraceSimulator(a64fx())
        trace_winograd_conv(sim, spec)
        expect = 64 * spec.in_channels * spec.out_channels * winograd_tile_count(spec) * 2
        # Transforms add flops on top of the tuple multiplication.
        assert sim.stats.flops >= 0.9 * expect

    def test_rvv_transpose_penalty(self):
        """Section VII: without transpose intrinsics the RVV transforms
        bounce through memory, costing more than SVE's."""

        def transform_cycles(machine):
            sim = TraceSimulator(machine)
            trace_winograd_conv(sim, ConvSpec(16, 38, 38, 16, 3, 1, 1))
            kc = sim.stats.kernel_cycles
            return kc["wino_input_transform"] / sim.machine.core.freq_ghz

        assert transform_cycles(rvv_gem5(512)) > transform_cycles(sve_gem5(512))

    def test_stride2_costs_more_than_stride1_per_output(self):
        """The subsampling fallback wastes ~4x work (Section VII-A)."""

        def per_output(stride):
            spec = ConvSpec(16, 38, 38, 16, 3, stride, 1)
            sim = TraceSimulator(a64fx())
            trace_winograd_conv(sim, spec)
            return sim.stats.cycles / (spec.M * spec.N)

        assert per_output(2) > 2.5 * per_output(1)
