"""Tests for synthetic images and the paper's layer tables."""

import numpy as np

from repro.nets import yolov3
from repro.workloads import (
    TABLE4_LAYERS,
    discrete_conv_specs,
    first_n_conv_specs,
    letterbox,
    synthetic_image,
)


class TestSyntheticImage:
    def test_shape_and_range(self):
        img = synthetic_image()
        assert img.shape == (3, 576, 768)  # the paper's 768x576 input
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic(self):
        np.testing.assert_array_equal(synthetic_image(seed=5), synthetic_image(seed=5))

    def test_seed_changes_noise(self):
        assert not np.array_equal(synthetic_image(seed=0), synthetic_image(seed=1))


class TestLetterbox:
    def test_resizes_to_network_dims(self):
        img = synthetic_image(height=576, width=768)
        out = letterbox(img, 608, 608)
        assert out.shape == (3, 608, 608)

    def test_aspect_preserved_with_grey_bars(self):
        img = np.ones((3, 100, 200), dtype=np.float32)
        out = letterbox(img, 100, 100)
        # 2:1 image into a square: grey bars above and below.
        assert (out[:, 0, :] == 0.5).all()
        assert (out[:, 50, :] == 1.0).all()

    def test_identity_when_same_size(self):
        img = synthetic_image(height=64, width=64)
        np.testing.assert_array_equal(letterbox(img, 64, 64), img)


class TestTable4:
    def test_fourteen_discrete_layers(self):
        assert len(TABLE4_LAYERS) == 14

    def test_rows_have_paper_data(self):
        l44 = next(r for r in TABLE4_LAYERS if r.layer == "L44")
        assert (l44.M, l44.N, l44.K) == (1024, 361, 4608)
        assert l44.pct_peak_paper == 83

    def test_specs_helpers(self):
        net = yolov3()
        assert len(first_n_conv_specs(net, 20)) == 15
        discrete = discrete_conv_specs(net)
        # 14 discrete shapes of Table IV plus a few head variants.
        assert 14 <= len(discrete) <= 22
        dims = {(s.M, s.N, s.K) for s in discrete}
        assert len(dims) == len(discrete)  # actually unique
